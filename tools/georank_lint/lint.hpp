// georank-lint: project-invariant static analysis.
//
// The rankings this repository produces are only credible because every
// run over the same RIBs is bit-identical. That property rests on
// conventions — PCG32-only randomness, no wall-clock reads in library
// code, no result-bearing iteration over unordered containers, lock
// discipline around the pipeline's reload path — that a compiler will
// never enforce. This scanner turns each convention into a rule with a
// stable ID, a file:line diagnostic, an inline suppression tag, and a
// baseline file so legacy findings can be burned down incrementally.
//
// Rules (see `rules()` for the authoritative table):
//   GR001 determinism-rand        rand()/srand() banned everywhere
//   GR002 determinism-wallclock   wall-clock reads banned outside tools/
//   GR003 determinism-randdev     std::random_device banned everywhere
//   GR004 determinism-std-rng     <random> engines/distributions and
//                                 std::shuffle banned outside util/rng
//   GR010 ordering-unordered-iter range-for over an unordered container
//                                 in src/rank|core|robust needs
//                                 `// lint: ordered(<why>)`
//   GR011 ordering-shard-bypass   `.all()`/`.over()` global-row PathStore
//                                 access in src/ outside src/core needs
//                                 `// lint: shard-ok(<why>)` — consumers
//                                 are expected to take per-country shards
//   GR020 concurrency-annotation  GEORANK_GUARDED_BY must name a lock
//                                 declared in the same file (or its
//                                 paired header) and requires including
//                                 util/thread_safety.hpp
//   GR021 concurrency-mutable     mutable member without a guard
//                                 annotation or `// lint: guarded(...)`
//   GR022 concurrency-static      mutable function-local static state
//   GR023 concurrency-const-cast  const_cast needs justification
//   GR024 syscall-containment     raw socket/network syscalls and their
//                                 headers are contained to src/serve/
//                                 (the transport layer); elsewhere in
//                                 src/ they need `// lint: syscall-ok`
//   GR025 durability-containment  fsync/rename/O_* file-control
//                                 syscalls are contained to src/io +
//                                 src/live (the persistence layers);
//                                 elsewhere in src/ they need
//                                 `// lint: durable-ok`
//   GR030 include-pragma-once     public headers must start with
//                                 #pragma once (self-containment is
//                                 enforced separately by the generated
//                                 one-TU-per-header compile checks)
//   GR040 layering-illegal-edge   src/ module #include edge not in
//                                 tools/georank_lint/layers.def
//   GR041 layering-cycle          cycle in the observed module graph;
//                                 always fatal, no suppression
//   GR050 lock-order-cycle        inter-procedural lock acquisition
//                                 order graph contains a cycle
//   GR051 blocking-under-lock     blocking syscall reached (directly or
//                                 via callers) with a modeled lock held
//   GR060 view-lifetime           string_view/span/PathsView bound to a
//                                 temporary-producing expression
//   GR061 swallowed-error         discarded return of a fenced
//                                 durability/socket syscall or of a
//                                 [[nodiscard]] function from our
//                                 headers
//
// The engine is two-pass: pass one tokenizes every file exactly once
// (tokenizer.hpp) and builds a cross-TU model (model.hpp) of includes,
// mutexes, function bodies and declarations; pass two evaluates the
// per-file rules over the token/line views and the graph rules
// (layers.hpp, lockorder.hpp) over the model. It is a heuristic, not a
// C++ front end: anything it cannot see (iteration through an alias,
// locks behind wrappers) it stays silent on. False negatives are
// acceptable; false positives must be rare enough that a one-line
// suppression with a reason is never a burden.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace georank::lint {

struct RepoModel;  // model.hpp

struct Finding {
  std::string rule;     // e.g. "GR010"
  std::string path;     // repo-relative, '/'-separated
  std::size_t line = 0; // 1-based
  std::string message;
  std::string excerpt;  // trimmed source line for the report
};

struct RuleInfo {
  std::string_view id;
  std::string_view name;
  std::string_view suppression;  // inline tag: `// lint: <tag>[(reason)]`
  std::string_view summary;
  std::string_view detail;       // long-form rationale, for --explain
};

/// The authoritative rule table, sorted by ID.
[[nodiscard]] std::span<const RuleInfo> rules();

/// Scans one translation unit with the per-file rules. `rel_path`
/// decides rule scoping (tools/ is CLI code, src/rank|core|robust get
/// the ordering rule, ...); `paired_header` is the contents of the
/// matching .hpp for a .cpp (so member containers declared in the
/// header are tracked), empty when there is none. `model`, when given,
/// feeds GR060/GR061 the repo-wide temporary-producer and [[nodiscard]]
/// sets; without it those rules fall back to built-ins only. Findings
/// come back in line order.
[[nodiscard]] std::vector<Finding> scan_file(std::string_view rel_path,
                                             std::string_view contents,
                                             std::string_view paired_header = {},
                                             const RepoModel* model = nullptr);

/// Baseline/suppression file: one finding per line, `#` comments.
///   GR010 src/rank/hegemony.cpp:54   — suppress one site
///   GR021 src/geo/vp_geolocator.hpp  — suppress a rule for a whole file
class Baseline {
 public:
  Baseline() = default;
  [[nodiscard]] static Baseline parse(std::string_view text);
  [[nodiscard]] static Baseline load(const std::filesystem::path& file);

  [[nodiscard]] bool contains(const Finding& f) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_set<std::string> entries_;  // "RULE path:line" and "RULE path"
};

struct RepoScanResult {
  std::vector<Finding> findings;   // non-baselined, sorted by (path, line)
  std::size_t files_scanned = 0;
  std::size_t baselined = 0;       // findings matched by the baseline
};

struct ScanOptions {
  /// Run the cross-TU graph rules (GR040/041/050/051). Off in
  /// `--changed` mode — a partial file set cannot judge whole-repo
  /// properties — and under `--no-graph`.
  bool graph_rules = true;
  /// When non-empty, per-file findings are reported only for these
  /// repo-relative paths (the `--changed <ref>` diff set). The model is
  /// still built from everything so cross-TU lookups stay accurate.
  std::vector<std::string> only;
};

/// Scans `<root>/src`, `<root>/tools` and `<root>/bench` (every .hpp
/// and .cpp, sorted for deterministic output) against `baseline`:
/// pass one tokenizes everything and builds the RepoModel, pass two
/// runs the per-file rules and (per `options`) the graph rules, with
/// the layer DAG read from `<root>/tools/georank_lint/layers.def`.
/// GR041 (module cycle) findings ignore the baseline by design.
[[nodiscard]] RepoScanResult scan_repo(const std::filesystem::path& root,
                                       const Baseline& baseline,
                                       const ScanOptions& options = {});

}  // namespace georank::lint
