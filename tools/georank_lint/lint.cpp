#include "georank_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

#include "georank_lint/layers.hpp"
#include "georank_lint/lockorder.hpp"
#include "georank_lint/model.hpp"
#include "georank_lint/tokenizer.hpp"

namespace georank::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

constexpr std::array<RuleInfo, 19> kRules{{
    {"GR001", "determinism-rand", "",
     "std::rand()/srand(): unseeded, stdlib-dependent randomness; use util::Pcg32",
     "rand() output differs across C libraries and its hidden global state "
     "makes results depend on call order. Rankings must be bit-identical "
     "across runs and platforms, so all randomness flows through "
     "util::Pcg32 with an explicit seed. There is no legitimate use; the "
     "rule has no suppression tag."},
    {"GR002", "determinism-wallclock", "wallclock",
     "wall-clock read in library code; results must not depend on when they run",
     "A ranking computed from the same RIBs must not change because the "
     "clock moved. Library code takes timestamps as inputs; only CLI code "
     "(tools/) may read the clock. Suppress with `// lint: wallclock(<why>)` "
     "for operational logging that provably cannot reach results."},
    {"GR003", "determinism-randdev", "",
     "std::random_device is nondeterministic by design; derive seeds explicitly",
     "std::random_device exists to produce different values each run — the "
     "opposite of reproducibility. Seeds are configuration: plumb them "
     "through explicitly. No suppression tag."},
    {"GR004", "determinism-std-rng", "rng",
     "<random> engines/distributions and std::shuffle are implementation-defined; "
     "use util/rng.hpp",
     "The standard permits different outputs per stdlib for distributions "
     "and std::shuffle, so the same seed gives different rankings on "
     "libstdc++ vs libc++. util/rng.hpp pins the algorithms. Suppress with "
     "`// lint: rng(<why>)` only where output cannot reach results."},
    {"GR010", "ordering-unordered-iter", "ordered",
     "iteration order of unordered containers is stdlib-dependent; sort first or "
     "justify why order cannot reach reported output",
     "Hash-map iteration order varies across stdlib implementations and "
     "even across runs. In result-bearing code (src/rank, src/core, "
     "src/robust) every such loop must sort first or carry "
     "`// lint: ordered(<why order cannot matter>)`."},
    {"GR011", "ordering-shard-bypass", "shard-ok",
     "global-row PathStore iteration (.all()/.over()) outside src/core; query "
     "per-country shards so work scales with the country, not the world",
     "The PathStore is sharded per country precisely so consumers never "
     "touch the global row set. A `.all()`/`.over()` call outside src/core "
     "makes that consumer scale with the internet, not the country. "
     "Suppress with `// lint: shard-ok(<why>)` for true cross-country "
     "passes."},
    {"GR020", "concurrency-annotation", "",
     "GEORANK_GUARDED_BY must name a lock declared in the same file (or its paired "
     "header) and requires including util/thread_safety.hpp",
     "An annotation naming a lock that does not exist documents a lie and "
     "silently disables any tooling keyed on it. The macro also degrades "
     "to nothing without util/thread_safety.hpp included. Baseline-only; "
     "fix the annotation instead of suppressing."},
    {"GR021", "concurrency-mutable", "guarded",
     "mutable member without a guard annotation; const methods that write it race",
     "`mutable` lets const methods write state, and const methods are "
     "assumed thread-compatible — so unguarded mutable members are data "
     "races waiting for a second thread. Annotate with "
     "GEORANK_GUARDED_BY(lock) or justify with `// lint: guarded(<how>)`."},
    {"GR022", "concurrency-static", "static-ok",
     "mutable function-local static: hidden global state, racy initialization-"
     "after-C++11 aside, order-dependent results",
     "Function-local statics are invisible global state: they make output "
     "depend on call history and are shared across threads without a "
     "lock. Thread state through explicitly, or justify a genuinely "
     "immutable-after-init table with `// lint: static-ok(<why>)`."},
    {"GR023", "concurrency-const-cast", "const-cast-ok",
     "const_cast subverts the const-means-thread-compatible contract",
     "The concurrency story rests on const methods being safe to call "
     "concurrently. const_cast writes through that promise. Justify every "
     "use with `// lint: const-cast-ok(<why>)`."},
    {"GR024", "syscall-containment", "syscall-ok",
     "raw socket/network syscalls belong in src/serve (the transport layer); "
     "move the code there or justify with `// lint: syscall-ok(<why>)`",
     "One module owns the sockets so fault handling, timeouts and "
     "shutdown live in one place. Socket headers or ::socket-family "
     "calls anywhere else in src/ mean a second, unaudited transport."},
    {"GR025", "durability-containment", "durable-ok",
     "durability syscalls (fsync/rename/O_* file control) belong in src/io + "
     "src/live (the persistence layers); move the code there or justify with "
     "`// lint: durable-ok(<why>)`",
     "Crash-safety invariants (write-fsync-rename ordering) are only "
     "auditable if every durability syscall sits in the persistence "
     "layers. An ::fsync elsewhere is either redundant or a second, "
     "unaudited crash-consistency protocol."},
    {"GR030", "include-pragma-once", "",
     "public header must open with #pragma once",
     "Every header's first non-blank line must be #pragma once; include "
     "guards by macro are tedious to keep unique and the generated "
     "one-TU-per-header compile checks assume pragma semantics. "
     "Baseline-only."},
    {"GR040", "layering-illegal-edge", "layer-ok",
     "src/ module #include edge not permitted by tools/georank_lint/layers.def",
     "The module DAG (util at the bottom, serve/live at the top) is "
     "declared in tools/georank_lint/layers.def and versioned with the "
     "code. An #include creating an edge the file does not permit is an "
     "architecture change: either revert it or change layers.def in the "
     "same review. Suppress a deliberate exception with "
     "`// lint: layer-ok(<why>)` on the include line."},
    {"GR041", "layering-cycle", "",
     "cycle in the observed src/ module dependency graph; always fatal",
     "A cyclic module graph has no build order, no ownership story and "
     "no way to test layers in isolation. Unlike every other rule this "
     "one ignores both suppression tags and the baseline: break the "
     "cycle by moving the shared vocabulary down a layer."},
    {"GR050", "lock-order-cycle", "lock-order",
     "inter-procedural lock acquisition order graph contains a cycle",
     "Holding A while acquiring B adds edge A->B; the analysis follows "
     "call chains, so edges through helper functions count. A cycle "
     "means two threads can deadlock by locking in opposite orders. Fix "
     "by picking one global order; suppress a specific acquisition's "
     "edges with `// lint: lock-order(<why>)` when the analysis "
     "over-approximates (e.g. locks never held concurrently)."},
    {"GR051", "blocking-under-lock", "blocking-ok",
     "blocking syscall reached while a modeled lock is held",
     "fsync/write/accept/connect and friends can stall for disk or peer "
     "latency; reached under a lock (directly or via callers) they turn "
     "that lock into an I/O-rate limiter for every other thread. Move "
     "the I/O outside the critical section, or justify with "
     "`// lint: blocking-ok(<why>)` (e.g. lock is private to a "
     "single-threaded path)."},
    {"GR060", "view-lifetime", "lifetime-ok",
     "string_view/span/PathsView bound to a temporary-producing expression",
     "A view does not own storage: binding one to a std::string/vector "
     "temporary (to_string, .str(), concatenation, a by-value producer "
     "from our headers) leaves it dangling at the semicolon. Returning "
     "a view over a function-local string is the same bug. Take a copy, "
     "or annotate `// lint: lifetime-ok(<who owns the storage>)`."},
    {"GR061", "swallowed-error", "check-ok",
     "discarded return value of a fenced durability/socket syscall or a "
     "[[nodiscard]] function from our headers",
     "fsync/rename/setsockopt/shutdown report failure only through their "
     "return value; a bare `::fsync(fd);` statement turns an I/O error "
     "into silent corruption. The same goes for our own [[nodiscard]] "
     "APIs. Check the result, cast to (void) with a comment, or justify "
     "with `// lint: check-ok(<why>)`."},
}};

// ---------------------------------------------------------------------------
// Suppression tags + small string helpers
// ---------------------------------------------------------------------------

/// `// lint: ordered(why)` / `// lint: guarded(...)` tags in a comment.
std::vector<std::string> suppression_tags(const std::string& comment) {
  static const std::regex kTag(R"(lint:\s*([a-z][a-z-]*))");
  std::vector<std::string> tags;
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kTag);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    tags.push_back((*it)[1].str());
  }
  return tags;
}

/// A tag suppresses a finding on its own line, or on the next code line
/// when it sits on a comment-only line (long declarations).
bool line_suppressed(const std::vector<Line>& lines, std::size_t idx,
                     std::string_view tag) {
  if (tag.empty()) return false;
  auto has = [&](const Line& l) {
    auto tags = suppression_tags(l.comment);
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
  };
  if (has(lines[idx])) return true;
  if (idx > 0) {
    const Line& prev = lines[idx - 1];
    std::string t = prev.code;
    t.erase(std::remove_if(t.begin(), t.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            t.end());
    if (t.empty() && has(prev)) return true;
  }
  return false;
}

std::string trim(std::string s) {
  auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
  while (!s.empty() && issp(static_cast<unsigned char>(s.back()))) s.pop_back();
  if (s.size() > 90) s = s.substr(0, 87) + "...";
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains_word(const std::string& haystack, const std::string& word) {
  std::size_t pos = 0;
  auto is_word = [](unsigned char c) { return std::isalnum(c) || c == '_'; };
  while ((pos = haystack.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_word(static_cast<unsigned char>(haystack[pos - 1]));
    std::size_t end = pos + word.size();
    bool right_ok =
        end >= haystack.size() || !is_word(static_cast<unsigned char>(haystack[end]));
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

bool is_cli_code(std::string_view rel) { return starts_with(rel, "tools/"); }

bool in_ordering_scope(std::string_view rel) {
  return starts_with(rel, "src/rank/") || starts_with(rel, "src/core/") ||
         starts_with(rel, "src/robust/");
}

bool is_rng_home(std::string_view rel) {
  return rel == "src/util/rng.hpp" || rel == "src/util/rng.cpp";
}

/// GR011 applies to library code outside the store's home: src/core owns
/// the global-row representation, every other library consumes shards.
/// tools/ and bench/ are exempt (the benchmark measures the global path
/// on purpose; the CLI never touches a store directly).
bool in_shard_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/core/");
}

/// GR024 applies to library code outside the designated transport layer.
/// tools/ and bench/ are exempt like the CLI is for GR002: a binary may
/// talk to the network, the ranking libraries may not.
bool in_syscall_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/serve/");
}

/// GR025 applies to library code outside the persistence layers: src/io
/// owns the snapshot files, src/live the journal + checkpoint files.
/// tools/ and bench/ are exempt like they are for GR024 — a binary may
/// manage its own files, the ranking libraries may not.
bool in_durability_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/io/") &&
         !starts_with(rel, "src/live/");
}

/// GR060/GR061 are library-code rules: CLIs and benches may hold views
/// over argv and print errors instead of returning them.
bool in_library_scope(std::string_view rel) {
  return starts_with(rel, "src/");
}

// ---------------------------------------------------------------------------
// GR010 support: identifiers declared as unordered containers
// ---------------------------------------------------------------------------

void collect_unordered_names(const std::string& code_text,
                             std::vector<std::string>& names) {
  // Declarations can span lines (joined text comes in with '\n' intact):
  // scan windows that start at an `unordered_map<`/`unordered_set<` and
  // end at the first statement terminator.
  static const std::regex kDeclName(R"(>[\s&*]*([A-Za-z_]\w*)\s*[;={(,)\[])");
  static const std::regex kUsing(R"(using\s+([A-Za-z_]\w*)\s*=)");
  std::size_t pos = 0;
  while (true) {
    std::size_t a = code_text.find("unordered_map<", pos);
    std::size_t b = code_text.find("unordered_set<", pos);
    std::size_t start = std::min(a, b);
    if (start == std::string::npos) break;
    std::size_t stop = code_text.find_first_of(";{=", code_text.find('>', start));
    if (stop == std::string::npos) stop = code_text.size();
    // Back up to the start of the statement for `using X = ...`, but
    // only extract declared names from the container token onward —
    // otherwise an unrelated `> param)` earlier in the same statement
    // (e.g. a span parameter of the enclosing function) gets tracked.
    std::size_t stmt = code_text.rfind(';', start);
    stmt = stmt == std::string::npos ? 0 : stmt + 1;
    const std::string stmt_window = code_text.substr(stmt, stop + 1 - stmt);
    std::smatch m;
    if (std::regex_search(stmt_window, m, kUsing)) {
      names.push_back(m[1].str());
    }
    const std::string decl_window = code_text.substr(start, stop + 1 - start);
    auto it = std::sregex_iterator(decl_window.begin(), decl_window.end(), kDeclName);
    for (; it != std::sregex_iterator(); ++it) {
      names.push_back((*it)[1].str());
    }
    pos = start + 14;
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
}

// ---------------------------------------------------------------------------
// GR060: views over temporaries (token-level)
// ---------------------------------------------------------------------------

bool is_view_type(std::string_view word) {
  return word == "string_view" || word == "span" || word == "PathsView";
}

/// Token-level scanner for the PR-5 bug class. Tracks a light scope
/// stack (does the enclosing function return a view? which locals are
/// std::strings?) and flags (a) view declarations initialized from a
/// temporary-producing expression, (b) `return` of such an expression
/// or of a local std::string from a view-returning function.
class ViewLifetimeScanner {
 public:
  ViewLifetimeScanner(const std::vector<Token>& toks, const RepoModel* model)
      : toks_(toks), model_(model) {}

  /// (line, message) pairs, in token order.
  std::vector<std::pair<std::size_t, std::string>> run() {
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++paren_depth_;
        if (t.text == ")" && paren_depth_ > 0) --paren_depth_;
        if (t.text == "{" && paren_depth_ == 0) open_brace();
        if (t.text == "{" && paren_depth_ > 0) {
          frames_.push_back(frames_.empty() ? Frame{} : frames_.back());
        }
        if (t.text == "}") {
          if (!frames_.empty()) frames_.pop_back();
          head_ = i_ + 1;
        }
        if (t.text == ";" && paren_depth_ == 0) head_ = i_ + 1;
        ++i_;
        continue;
      }
      if (t.kind == TokKind::kIdent && paren_depth_ == 0) {
        if (is_view_type(t.text) && try_view_decl()) continue;
        if (t.text == "string" && try_string_local()) continue;
        if (t.text == "return" && !frames_.empty() &&
            frames_.back().returns_view) {
          check_return();
          ++i_;
          continue;
        }
      }
      ++i_;
      continue;
    }
    return std::move(out_);
  }

 private:
  struct Frame {
    bool returns_view = false;
    std::set<std::string> string_locals;
  };

  void open_brace() {
    // Plain blocks inherit the enclosing function's return kind; a
    // function definition head (`... name( ... ) ... {`) resets it to
    // whether a view type appeared at paren depth 0 BEFORE the name —
    // view types inside the parameter list must not count.
    Frame frame;
    if (!frames_.empty()) frame.returns_view = frames_.back().returns_view;
    bool view_in_return_type = false;
    int paren = 0;
    for (std::size_t j = head_; j < i_; ++j) {
      const Token& h = toks_[j];
      if (h.kind == TokKind::kPunct) {
        if (h.text == "(") ++paren;
        if (h.text == ")") --paren;
        if (h.text == "=" && paren == 0) break;  // lambda/init: block
        continue;
      }
      if (h.kind != TokKind::kIdent) continue;
      if (j == head_) {
        if (h.text == "if" || h.text == "for" || h.text == "while" ||
            h.text == "switch" || h.text == "do" || h.text == "else" ||
            h.text == "try" || h.text == "catch") {
          break;  // control statement: plain block
        }
        if (h.text == "namespace" || h.text == "class" ||
            h.text == "struct" || h.text == "enum" || h.text == "union") {
          frame.returns_view = false;
          break;
        }
      }
      if (paren == 0 && is_view_type(h.text)) view_in_return_type = true;
      if (paren == 0 && j + 1 < i_ && toks_[j + 1].text == "(" &&
          !is_view_type(h.text) && h.text != "return") {
        // Function definition named at j: the return type is decided.
        frame.returns_view = view_in_return_type;
        frame.string_locals.clear();
        break;
      }
    }
    frames_.push_back(std::move(frame));
    head_ = i_ + 1;
  }

  bool is_producer(const std::string& name) const {
    if (name == "to_string") return true;
    return model_ != nullptr && model_->temporary_producers.count(name) != 0;
  }

  /// Does this initializer/return expression yield a temporary a view
  /// must not outlive?
  bool dangles(std::size_t b, std::size_t e, std::string* what) const {
    bool has_plus = false;
    bool has_literal = false;
    for (std::size_t k = b; k < e; ++k) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kPunct && t.text == "+") has_plus = true;
      if (t.kind == TokKind::kString) has_literal = true;
      if (t.kind != TokKind::kIdent) continue;
      const bool called = k + 1 < e && (toks_[k + 1].text == "(" ||
                                        toks_[k + 1].text == "{");
      if (!called) continue;
      if (t.text == "string" && k >= 2 && toks_[k - 1].text == "::" &&
          toks_[k - 2].text == "std") {
        *what = "a std::string temporary";
        return true;
      }
      if (t.text == "str" && k >= 1 && toks_[k - 1].text == ".") {
        *what = "the temporary returned by .str()";
        return true;
      }
      if (is_producer(t.text)) {
        *what = "the temporary returned by " + t.text + "()";
        return true;
      }
    }
    if (has_plus && has_literal) {
      *what = "a concatenation temporary";
      return true;
    }
    return false;
  }

  /// toks_[i_] is a view type name at paren depth 0: if it declares a
  /// variable with an initializer, check the initializer.
  bool try_view_decl() {
    std::size_t j = i_ + 1;
    // A view type inside template args (vector<string_view>) has `<`
    // or `,` before it — not a declaration.
    if (i_ >= 1 &&
        (toks_[i_ - 1].text == "<" || toks_[i_ - 1].text == ",")) {
      return false;
    }
    if (j < toks_.size() && toks_[j].text == "<") {
      int depth = 0;
      while (j < toks_.size()) {
        if (toks_[j].text == "<") ++depth;
        if (toks_[j].text == ">" && --depth == 0) break;
        ++j;
      }
      ++j;
    }
    if (j >= toks_.size() || toks_[j].kind != TokKind::kIdent) return false;
    const Token& var = toks_[j];
    ++j;
    // Only `=` and braced initializers: `view name(...)` is ambiguous
    // with a function declaration/definition returning a view, and the
    // paren-init spelling for views is rare enough to let go.
    if (j >= toks_.size() ||
        (toks_[j].text != "=" && toks_[j].text != "{")) {
      return false;
    }
    // Initializer tokens run to the `;` (balanced through parens).
    std::size_t init_b = toks_[j].text == "=" ? j + 1 : j;
    std::size_t k = init_b;
    int paren = 0;
    int brace = 0;
    while (k < toks_.size()) {
      const std::string& s = toks_[k].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (s == "{") ++brace;
      if (s == "}") --brace;
      if (s == ";" && paren == 0 && brace <= 0) break;
      ++k;
    }
    std::string what;
    if (dangles(init_b, k, &what)) {
      out_.emplace_back(var.line,
                        "view '" + var.text + "' is bound to " + what +
                            ", which dies at the semicolon; copy into an "
                            "owning type or annotate "
                            "`// lint: lifetime-ok(<who owns the storage>)`");
    }
    i_ = k;
    return true;
  }

  /// `std::string name ...` inside a function: remember the local so a
  /// later `return name;` from a view-returning function is caught.
  bool try_string_local() {
    if (frames_.empty() || i_ < 2 || toks_[i_ - 1].text != "::" ||
        toks_[i_ - 2].text != "std") {
      return false;
    }
    std::size_t j = i_ + 1;
    if (j >= toks_.size() || toks_[j].kind != TokKind::kIdent) return false;
    frames_.back().string_locals.insert(toks_[j].text);
    return false;  // do not consume: GR010 etc. still see the tokens
  }

  void check_return() {
    std::size_t b = i_ + 1;
    std::size_t k = b;
    int paren = 0;
    while (k < toks_.size()) {
      const std::string& s = toks_[k].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (s == ";" && paren == 0) break;
      ++k;
    }
    std::string what;
    if (dangles(b, k, &what)) {
      out_.emplace_back(toks_[i_].line,
                        "returns a view over " + what +
                            "; the storage is gone before the caller "
                            "looks — return an owning type or annotate "
                            "`// lint: lifetime-ok(<who owns the storage>)`");
      return;
    }
    // `return local_string;` from a view-returning function.
    if (k == b + 1 && toks_[b].kind == TokKind::kIdent) {
      for (const Frame& f : frames_) {
        if (f.string_locals.count(toks_[b].text) != 0) {
          out_.emplace_back(
              toks_[i_].line,
              "returns a view over function-local std::string '" +
                  toks_[b].text +
                  "'; the storage dies with the frame — return an owning "
                  "type or annotate `// lint: lifetime-ok(...)`");
          return;
        }
      }
    }
  }

  const std::vector<Token>& toks_;
  const RepoModel* model_;
  std::size_t i_ = 0;
  std::size_t head_ = 0;
  int paren_depth_ = 0;
  std::vector<Frame> frames_;
  std::vector<std::pair<std::size_t, std::string>> out_;
};

// ---------------------------------------------------------------------------
// GR061: discarded error-bearing returns (token-level)
// ---------------------------------------------------------------------------

/// Syscalls whose only failure channel is the return value. A bare
/// `::name(...);` statement discards it.
bool is_checked_syscall(std::string_view word) {
  return word == "fsync" || word == "fdatasync" || word == "ftruncate" ||
         word == "write" || word == "rename" || word == "setsockopt" ||
         word == "shutdown" || word == "listen" || word == "bind" ||
         word == "connect" || word == "send" || word == "recv" ||
         word == "unlink" || word == "open" || word == "socket" ||
         word == "accept" || word == "close";
}

/// Statement-level scanner: a statement of the exact shape
/// `[::]chain(args);` whose final callee is a checked syscall (when
/// ::-qualified or std::-qualified) or a [[nodiscard]] function from
/// our headers (any chain) discards the result.
class SwallowedErrorScanner {
 public:
  SwallowedErrorScanner(const std::vector<Token>& toks,
                        const RepoModel* model)
      : toks_(toks), model_(model) {}

  std::vector<std::pair<std::size_t, std::string>> run() {
    bool at_start = true;
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        at_start = true;
        ++i;
        continue;
      }
      if (!at_start) {
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "if" || t.text == "for" || t.text == "while" ||
           t.text == "switch") &&
          i + 1 < toks_.size() && toks_[i + 1].text == "(") {
        // Skip the control clause; its body is a fresh statement.
        std::size_t j = i + 1;
        int depth = 0;
        while (j < toks_.size()) {
          if (toks_[j].text == "(") ++depth;
          if (toks_[j].text == ")" && --depth == 0) break;
          ++j;
        }
        i = j + 1;
        continue;  // at_start stays true for the body statement
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "else" || t.text == "do")) {
        ++i;
        continue;  // at_start stays true
      }
      check_statement(i);
      at_start = false;
      ++i;
    }
    return std::move(out_);
  }

 private:
  void check_statement(std::size_t b) {
    std::size_t j = b;
    bool global_qualified = false;
    if (toks_[j].kind == TokKind::kPunct && toks_[j].text == "::") {
      global_qualified = true;
      ++j;
    } else if (toks_[j].kind != TokKind::kIdent) {
      return;
    }
    // chain: ident ((:: | . | ->) ident)*
    std::string callee;
    std::string first;
    bool via_receiver = false;
    while (j < toks_.size() && toks_[j].kind == TokKind::kIdent) {
      callee = toks_[j].text;
      if (first.empty()) first = callee;
      ++j;
      if (j < toks_.size() &&
          (toks_[j].text == "::" || toks_[j].text == "." ||
           toks_[j].text == "->")) {
        if (toks_[j].text != "::") via_receiver = true;
        ++j;
        continue;
      }
      break;
    }
    if (callee.empty() || j >= toks_.size() || toks_[j].text != "(") return;
    // Balanced argument list, then the statement must end immediately.
    int depth = 0;
    while (j < toks_.size()) {
      if (toks_[j].text == "(") ++depth;
      if (toks_[j].text == ")" && --depth == 0) break;
      ++j;
    }
    if (j + 1 >= toks_.size() || toks_[j + 1].text != ";") return;

    const std::size_t line = toks_[b].line;
    const bool std_qualified = first == "std";
    if (is_checked_syscall(callee) && (global_qualified || std_qualified)) {
      out_.emplace_back(
          line, "return value of ::" + callee +
                    " discarded; the error vanishes — check it, "
                    "`(void)`-cast with a comment, or justify with "
                    "`// lint: check-ok(<why>)`");
      return;
    }
    // The [[nodiscard]] set binds by bare name, so receiver calls
    // (`w.key(...)`, `t.join()`) would collide with same-named std/
    // project methods — only free-function calls are checked.
    if (model_ != nullptr && !global_qualified && !std_qualified &&
        !via_receiver && model_->nodiscard_functions.count(callee) != 0) {
      out_.emplace_back(
          line, "return value of [[nodiscard]] " + callee +
                    "() discarded; check it or justify with "
                    "`// lint: check-ok(<why>)`");
    }
  }

  const std::vector<Token>& toks_;
  const RepoModel* model_;
  std::vector<std::pair<std::size_t, std::string>> out_;
};

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

class FileScanner {
 public:
  FileScanner(std::string_view rel_path, std::string_view contents,
              std::string_view paired_header, const RepoModel* model)
      : rel_(rel_path), tz_(tokenize(contents)), model_(model) {
    std::string all_code;
    for (const Line& l : tz_.lines) {
      all_code += l.code;  // include paths survive tokenization
      all_code += '\n';
    }
    if (!paired_header.empty()) {
      Tokenized header = tokenize(paired_header);
      header_code_.reserve(paired_header.size());
      for (const Line& l : header.lines) {
        header_code_ += l.code;
        header_code_ += '\n';
      }
    }
    code_text_ = std::move(all_code);
    collect_unordered_names(code_text_, unordered_names_);
    collect_unordered_names(header_code_, unordered_names_);
    std::sort(unordered_names_.begin(), unordered_names_.end());
    unordered_names_.erase(
        std::unique(unordered_names_.begin(), unordered_names_.end()),
        unordered_names_.end());
  }

  std::vector<Finding> run() {
    if (ends_with(rel_, ".hpp")) check_pragma_once();
    for (std::size_t i = 0; i < tz_.lines.size(); ++i) {
      scan_line(i);
    }
    if (in_library_scope(rel_)) {
      for (auto& [line, msg] :
           ViewLifetimeScanner(tz_.tokens, model_).run()) {
        add(line - 1, "GR060", std::move(msg));
      }
      for (auto& [line, msg] :
           SwallowedErrorScanner(tz_.tokens, model_).run()) {
        add(line - 1, "GR061", std::move(msg));
      }
    }
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) { return a.line < b.line; });
    return std::move(findings_);
  }

 private:
  void add(std::size_t idx, std::string_view rule, std::string message) {
    const RuleInfo* info = nullptr;
    for (const RuleInfo& r : kRules) {
      if (r.id == rule) info = &r;
    }
    if (idx >= tz_.lines.size()) idx = tz_.lines.empty() ? 0 : tz_.lines.size() - 1;
    if (info != nullptr && !tz_.lines.empty() &&
        line_suppressed(tz_.lines, idx, info->suppression)) {
      return;
    }
    findings_.push_back(Finding{std::string(rule), std::string(rel_), idx + 1,
                                std::move(message),
                                tz_.lines.empty() ? "" : trim(tz_.lines[idx].raw)});
  }

  void check_pragma_once() {
    for (std::size_t i = 0; i < tz_.lines.size(); ++i) {
      std::string t = trim(tz_.lines[i].code);
      if (t.empty()) continue;
      if (t == "#pragma once") return;
      add(i, "GR030", "header does not open with #pragma once");
      return;
    }
    if (!tz_.lines.empty()) add(0, "GR030", "header does not open with #pragma once");
  }

  void scan_line(std::size_t i) {
    const std::string& code = tz_.lines[i].code;
    if (code.empty()) return;

    static const std::regex kRand(R"(\b(?:std\s*::\s*)?s?rand\s*\()");
    static const std::regex kWallclock(
        R"(std\s*::\s*chrono\s*::\s*system_clock|\bgettimeofday\s*\(|\blocaltime\s*\(|\bctime\s*\(|\b(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0|&))");
    static const std::regex kRandomDevice(R"(std\s*::\s*random_device)");
    static const std::regex kStdRng(
        R"(std\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b|(?:uniform_int|uniform_real|normal|bernoulli|poisson|exponential|geometric|binomial|discrete|piecewise\w*)_distribution|shuffle)\b)");
    static const std::regex kRangeFor(R"(\bfor\s*\([^;]*[^:]:([^:][^)]*))");
    static const std::regex kMutable(R"(\bmutable\b)");
    static const std::regex kLambdaMutable(R"(\)\s*mutable\b)");
    static const std::regex kStaticLocal(R"(^\s+static\s+(?!cons|inline|assert|thread_local))");
    static const std::regex kConstCast(R"(\bconst_cast\s*<)");
    static const std::regex kGuardedBy(R"(GEORANK(?:_PT)?_GUARDED_BY\s*\(\s*([^)]*)\))");

    if (std::regex_search(code, kRand)) {
      add(i, "GR001", "banned rand()/srand(): use util::Pcg32 with an explicit seed");
    }
    if (!is_cli_code(rel_) && std::regex_search(code, kWallclock)) {
      add(i, "GR002",
          "wall-clock read in non-CLI code: results must be a pure function of "
          "their inputs");
    }
    if (std::regex_search(code, kRandomDevice)) {
      add(i, "GR003", "std::random_device is nondeterministic; seeds must be explicit");
    }
    if (!is_rng_home(rel_) && std::regex_search(code, kStdRng)) {
      add(i, "GR004",
          "<random>/std::shuffle outputs are implementation-defined; use the "
          "PCG32 helpers in util/rng.hpp");
    }

    if (in_ordering_scope(rel_)) {
      // Range-for headers wrap; join a few continuation lines so
      // `for (const auto& [k, v] :\n    some_map)` still matches.
      std::string forline = code;
      for (std::size_t j = i + 1;
           j < tz_.lines.size() && j < i + 4 &&
           forline.find("for") != std::string::npos &&
           forline.find(')') == std::string::npos;
           ++j) {
        forline += ' ';
        forline += tz_.lines[j].code;
      }
      std::smatch m;
      if (std::regex_search(forline, m, kRangeFor)) {
        const std::string iterand = m[1].str();
        for (const std::string& name : unordered_names_) {
          if (contains_word(iterand, name)) {
            add(i, "GR010",
                "iterates unordered container '" + name +
                    "'; order is stdlib-dependent — sort, or justify with "
                    "`// lint: ordered(<why>)`");
            break;
          }
        }
      }
    }

    if (in_shard_scope(rel_) && mentions_path_store()) {
      // Only the row-form accessors bypass sharding; `.all_*()` methods
      // of other classes don't match (the call must be exactly all()),
      // and files that never name a PathStore type are not gated at all
      // (a prefix trie's `.all()` is somebody else's API).
      static const std::regex kGlobalRows(
          R"((?:\.|->)\s*(?:all\s*\(\s*\)|over\s*\())");
      if (std::regex_search(code, kGlobalRows)) {
        add(i, "GR011",
            "global-row PathStore access outside src/core; consume per-country "
            "shards (views/metrics take a shard) or justify with "
            "`// lint: shard-ok(<why>)`");
      }
    }

    // Preprocessor lines define the annotation macros themselves; the
    // GR020 sanity checks only apply to uses.
    const bool preprocessor =
        code.find_first_not_of(" \t") != std::string::npos &&
        code[code.find_first_not_of(" \t")] == '#';

    std::smatch guard;
    if (!preprocessor && std::regex_search(code, guard, kGuardedBy)) {
      std::string arg = guard[1].str();
      // The lock is the last identifier in the argument (cache_->mutex -> mutex).
      static const std::regex kLastId(R"(([A-Za-z_]\w*)\s*$)");
      std::smatch id;
      if (std::regex_search(arg, id, kLastId)) {
        const std::string lock = id[1].str();
        std::string code_without_annotations;
        for (const Line& l : tz_.lines) {
          if (l.code.find("GEORANK") == std::string::npos) {
            code_without_annotations += l.code;
            code_without_annotations += '\n';
          }
        }
        if (!contains_word(code_without_annotations, lock) &&
            !contains_word(header_code_, lock)) {
          add(i, "GR020",
              "GEORANK_GUARDED_BY names '" + lock +
                  "', which is not declared in this file or its paired header");
        }
      } else {
        add(i, "GR020", "GEORANK_GUARDED_BY with no lock argument");
      }
      if (code_text_.find("util/thread_safety.hpp") == std::string::npos &&
          header_code_.find("util/thread_safety.hpp") == std::string::npos) {
        add(i, "GR020",
            "uses GEORANK_GUARDED_BY without including util/thread_safety.hpp");
      }
    }

    if (std::regex_search(code, kMutable) && !std::regex_search(code, kLambdaMutable)) {
      if (code.find("GEORANK_GUARDED_BY") == std::string::npos &&
          code.find("GEORANK_PT_GUARDED_BY") == std::string::npos) {
        add(i, "GR021",
            "mutable member without GEORANK_GUARDED_BY or a "
            "`// lint: guarded(<how>)` justification");
      }
    }

    if (ends_with(rel_, ".cpp") && std::regex_search(code, kStaticLocal)) {
      add(i, "GR022",
          "mutable function-local static; thread it through explicitly or "
          "justify with `// lint: static-ok(<why>)`");
    }

    if (std::regex_search(code, kConstCast)) {
      add(i, "GR023",
          "const_cast breaks the const-is-thread-compatible contract; justify "
          "with `// lint: const-cast-ok(<why>)`");
    }

    if (in_syscall_scope(rel_)) {
      // Both the headers and the call sites; `::`-qualified calls only,
      // so std::bind / a member named send() do not trip the rule.
      static const std::regex kSocketHeader(
          R"(#\s*include\s*<(?:sys/socket\.h|netinet/\w+\.h|arpa/inet\.h|netdb\.h|sys/epoll\.h|poll\.h)>)");
      static const std::regex kSocketCall(
          R"((?:^|[^\w:])::\s*(?:socket|bind|listen|accept4?|connect|recv(?:from|msg)?|send(?:to|msg)?|setsockopt|getsockopt|getsockname|getaddrinfo|shutdown|epoll_\w+|poll)\s*\()");
      if (std::regex_search(code, kSocketHeader)) {
        add(i, "GR024",
            "network/socket header outside src/serve; the transport layer owns "
            "all socket I/O");
      } else if (std::regex_search(code, kSocketCall)) {
        add(i, "GR024",
            "raw socket syscall outside src/serve; route through the serve "
            "transport or justify with `// lint: syscall-ok(<why>)`");
      }
    }

    if (in_durability_scope(rel_)) {
      // <fcntl.h> carries the O_* file-control flags; the call list is
      // the write-durability surface (`::`-qualified or std::rename, so
      // an ifstream's .open() member never trips the rule).
      static const std::regex kDurabilityHeader(
          R"(#\s*include\s*<fcntl\.h>)");
      static const std::regex kDurabilityCall(
          R"((?:(?:^|[^\w:])::|\bstd\s*::\s*)(?:fsync|fdatasync|ftruncate|rename|open(?:at)?|creat|mkstemp|unlink(?:at)?)\s*\()");
      if (std::regex_search(code, kDurabilityHeader)) {
        add(i, "GR025",
            "file-control header outside src/io + src/live; the persistence "
            "layers own durability syscalls");
      } else if (std::regex_search(code, kDurabilityCall)) {
        add(i, "GR025",
            "durability syscall outside src/io + src/live; move the write "
            "path there or justify with `// lint: durable-ok(<why>)`");
      }
    }
  }

  /// True when this TU (or its paired header) names a PathStore type in
  /// CODE — comment mentions don't gate GR011.
  [[nodiscard]] bool mentions_path_store() const {
    return code_text_.find("PathStore") != std::string::npos ||
           header_code_.find("PathStore") != std::string::npos;
  }

  std::string_view rel_;
  Tokenized tz_;
  const RepoModel* model_;
  std::string code_text_;
  std::string header_code_;
  std::vector<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

}  // namespace

std::span<const RuleInfo> rules() { return kRules; }

std::vector<Finding> scan_file(std::string_view rel_path, std::string_view contents,
                               std::string_view paired_header,
                               const RepoModel* model) {
  FileScanner scanner{rel_path, contents, paired_header, model};
  return scanner.run();
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    b.entries_.insert(std::move(t));
  }
  return b;
}

Baseline Baseline::load(const std::filesystem::path& file) {
  std::ifstream in{file};
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Baseline::contains(const Finding& f) const {
  if (entries_.empty()) return false;
  const std::string exact =
      f.rule + " " + f.path + ":" + std::to_string(f.line);
  const std::string whole_file = f.rule + " " + f.path;
  return entries_.count(exact) > 0 || entries_.count(whole_file) > 0;
}

RepoScanResult scan_repo(const std::filesystem::path& root, const Baseline& baseline,
                         const ScanOptions& options) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  auto slurp = [](const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  // Pass one: read everything once, build the cross-TU model from it.
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    sources.emplace_back(fs::relative(file, root).generic_string(),
                         slurp(file));
  }
  const RepoModel model = build_model(sources);

  std::map<std::string_view, std::string_view> by_rel;
  for (const auto& [rel, contents] : sources) by_rel[rel] = contents;
  const std::set<std::string> only(options.only.begin(), options.only.end());

  auto admit = [&](RepoScanResult& result, Finding&& f) {
    // A cyclic module graph is fatal by design: no baseline either.
    if (f.rule != "GR041" && baseline.contains(f)) {
      ++result.baselined;
    } else {
      result.findings.push_back(std::move(f));
    }
  };

  // Pass two: per-file rules (restricted to `only` when set) ...
  RepoScanResult result;
  for (const auto& [rel, contents] : sources) {
    if (!only.empty() && only.count(rel) == 0) continue;
    std::string_view paired;
    if (ends_with(rel, ".cpp")) {
      std::string header_rel = rel.substr(0, rel.size() - 4) + ".hpp";
      auto it = by_rel.find(header_rel);
      if (it != by_rel.end()) paired = it->second;
    }
    ++result.files_scanned;
    for (Finding& f : scan_file(rel, contents, paired, &model)) {
      admit(result, std::move(f));
    }
  }

  // ... then the graph rules over the whole model.
  if (options.graph_rules) {
    LayerSpec spec;
    const fs::path def = root / "tools" / "georank_lint" / "layers.def";
    if (fs::exists(def)) spec = parse_layers(slurp(def));
    for (Finding& f : check_layering(model, spec)) {
      admit(result, std::move(f));
    }
    for (Finding& f : check_lock_order(model)) {
      admit(result, std::move(f));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return result;
}

}  // namespace georank::lint
