#include "georank_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace georank::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

constexpr std::array<RuleInfo, 13> kRules{{
    {"GR001", "determinism-rand", "",
     "std::rand()/srand(): unseeded, stdlib-dependent randomness; use util::Pcg32"},
    {"GR002", "determinism-wallclock", "wallclock",
     "wall-clock read in library code; results must not depend on when they run"},
    {"GR003", "determinism-randdev", "",
     "std::random_device is nondeterministic by design; derive seeds explicitly"},
    {"GR004", "determinism-std-rng", "rng",
     "<random> engines/distributions and std::shuffle are implementation-defined; "
     "use util/rng.hpp"},
    {"GR010", "ordering-unordered-iter", "ordered",
     "iteration order of unordered containers is stdlib-dependent; sort first or "
     "justify why order cannot reach reported output"},
    {"GR011", "ordering-shard-bypass", "shard-ok",
     "global-row PathStore iteration (.all()/.over()) outside src/core; query "
     "per-country shards so work scales with the country, not the world"},
    {"GR020", "concurrency-annotation", "",
     "GEORANK_GUARDED_BY must name a lock declared in this file (or its paired "
     "header) and requires util/thread_safety.hpp"},
    {"GR021", "concurrency-mutable", "guarded",
     "mutable member without a guard annotation; const methods that write it race"},
    {"GR022", "concurrency-static", "static-ok",
     "mutable function-local static: hidden global state, racy initialization-"
     "after-C++11 aside, order-dependent results"},
    {"GR023", "concurrency-const-cast", "const-cast-ok",
     "const_cast subverts the const-means-thread-compatible contract"},
    {"GR024", "syscall-containment", "syscall-ok",
     "raw socket/network syscalls belong in src/serve (the transport layer); "
     "move the code there or justify with `// lint: syscall-ok(<why>)`"},
    {"GR025", "durability-containment", "durable-ok",
     "durability syscalls (fsync/rename/O_* file control) belong in src/io + "
     "src/live (the persistence layers); move the code there or justify with "
     "`// lint: durable-ok(<why>)`"},
    {"GR030", "include-pragma-once", "",
     "public header must open with #pragma once"},
}};

// ---------------------------------------------------------------------------
// Line model: code with comments/literals stripped + suppression tags
// ---------------------------------------------------------------------------

struct Line {
  std::string raw;
  std::string code;     // literals blanked, comments removed
  std::string comment;  // comment text (for suppression tags)
};

std::vector<Line> split_lines(std::string_view contents) {
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos <= contents.size()) {
    std::size_t nl = contents.find('\n', pos);
    if (nl == std::string_view::npos) {
      if (pos < contents.size()) {
        lines.push_back({std::string(contents.substr(pos)), "", ""});
      }
      break;
    }
    lines.push_back({std::string(contents.substr(pos, nl - pos)), "", ""});
    pos = nl + 1;
  }
  return lines;
}

/// Blanks string/char literal contents, splits comments out of the code.
/// Tracks /* */ state across lines. Not a full lexer (raw strings and
/// line continuations are ignored) — good enough for rule matching.
void strip_literals_and_comments(std::vector<Line>& lines) {
  bool in_block = false;
  for (Line& line : lines) {
    std::string code;
    std::string comment;
    code.reserve(line.raw.size());
    const std::string& s = line.raw;
    for (std::size_t i = 0; i < s.size();) {
      if (in_block) {
        if (s[i] == '*' && i + 1 < s.size() && s[i + 1] == '/') {
          in_block = false;
          i += 2;
        } else {
          comment += s[i++];
        }
        continue;
      }
      char c = s[i];
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        comment.append(s, i + 2, std::string::npos);
        break;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        in_block = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        code += quote;
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\' && i + 1 < s.size()) {
            i += 2;
            continue;
          }
          if (s[i] == quote) break;
          ++i;
        }
        if (i < s.size()) {
          code += quote;
          ++i;
        }
        continue;
      }
      code += c;
      ++i;
    }
    line.code = std::move(code);
    line.comment = std::move(comment);
  }
}

/// `// lint: ordered(why)` / `// lint: guarded(...)` tags in a comment.
std::vector<std::string> suppression_tags(const std::string& comment) {
  static const std::regex kTag(R"(lint:\s*([a-z][a-z-]*))");
  std::vector<std::string> tags;
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kTag);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    tags.push_back((*it)[1].str());
  }
  return tags;
}

/// A tag suppresses a finding on its own line, or on the next code line
/// when it sits on a comment-only line (long declarations).
bool line_suppressed(const std::vector<Line>& lines, std::size_t idx,
                     std::string_view tag) {
  if (tag.empty()) return false;
  auto has = [&](const Line& l) {
    auto tags = suppression_tags(l.comment);
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
  };
  if (has(lines[idx])) return true;
  std::string trimmed_prev;
  if (idx > 0) {
    const Line& prev = lines[idx - 1];
    std::string t = prev.code;
    t.erase(std::remove_if(t.begin(), t.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            t.end());
    if (t.empty() && has(prev)) return true;
  }
  return false;
}

std::string trim(std::string s) {
  auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
  while (!s.empty() && issp(static_cast<unsigned char>(s.back()))) s.pop_back();
  if (s.size() > 90) s = s.substr(0, 87) + "...";
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains_word(const std::string& haystack, const std::string& word) {
  std::size_t pos = 0;
  auto is_word = [](unsigned char c) { return std::isalnum(c) || c == '_'; };
  while ((pos = haystack.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_word(static_cast<unsigned char>(haystack[pos - 1]));
    std::size_t end = pos + word.size();
    bool right_ok =
        end >= haystack.size() || !is_word(static_cast<unsigned char>(haystack[end]));
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

bool is_cli_code(std::string_view rel) { return starts_with(rel, "tools/"); }

bool in_ordering_scope(std::string_view rel) {
  return starts_with(rel, "src/rank/") || starts_with(rel, "src/core/") ||
         starts_with(rel, "src/robust/");
}

bool is_rng_home(std::string_view rel) {
  return rel == "src/util/rng.hpp" || rel == "src/util/rng.cpp";
}

/// GR011 applies to library code outside the store's home: src/core owns
/// the global-row representation, every other library consumes shards.
/// tools/ and bench/ are exempt (the benchmark measures the global path
/// on purpose; the CLI never touches a store directly).
bool in_shard_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/core/");
}

/// GR024 applies to library code outside the designated transport layer.
/// tools/ and bench/ are exempt like the CLI is for GR002: a binary may
/// talk to the network, the ranking libraries may not.
bool in_syscall_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/serve/");
}

/// GR025 applies to library code outside the persistence layers: src/io
/// owns the snapshot files, src/live the journal + checkpoint files.
/// tools/ and bench/ are exempt like they are for GR024 — a binary may
/// manage its own files, the ranking libraries may not.
bool in_durability_scope(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/io/") &&
         !starts_with(rel, "src/live/");
}

// ---------------------------------------------------------------------------
// GR010 support: identifiers declared as unordered containers
// ---------------------------------------------------------------------------

void collect_unordered_names(const std::string& code_text,
                             std::vector<std::string>& names) {
  // Declarations can span lines (joined text comes in with '\n' intact):
  // scan windows that start at an `unordered_map<`/`unordered_set<` and
  // end at the first statement terminator.
  static const std::regex kDeclName(R"(>[\s&*]*([A-Za-z_]\w*)\s*[;={(,)\[])");
  static const std::regex kUsing(R"(using\s+([A-Za-z_]\w*)\s*=)");
  std::size_t pos = 0;
  while (true) {
    std::size_t a = code_text.find("unordered_map<", pos);
    std::size_t b = code_text.find("unordered_set<", pos);
    std::size_t start = std::min(a, b);
    if (start == std::string::npos) break;
    std::size_t stop = code_text.find_first_of(";{=", code_text.find('>', start));
    if (stop == std::string::npos) stop = code_text.size();
    // Back up to the start of the statement for `using X = ...`, but
    // only extract declared names from the container token onward —
    // otherwise an unrelated `> param)` earlier in the same statement
    // (e.g. a span parameter of the enclosing function) gets tracked.
    std::size_t stmt = code_text.rfind(';', start);
    stmt = stmt == std::string::npos ? 0 : stmt + 1;
    const std::string stmt_window = code_text.substr(stmt, stop + 1 - stmt);
    std::smatch m;
    if (std::regex_search(stmt_window, m, kUsing)) {
      names.push_back(m[1].str());
    }
    const std::string decl_window = code_text.substr(start, stop + 1 - start);
    auto it = std::sregex_iterator(decl_window.begin(), decl_window.end(), kDeclName);
    for (; it != std::sregex_iterator(); ++it) {
      names.push_back((*it)[1].str());
    }
    pos = start + 14;
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

class FileScanner {
 public:
  FileScanner(std::string_view rel_path, std::string_view contents,
              std::string_view paired_header)
      : rel_(rel_path), lines_(split_lines(contents)) {
    strip_literals_and_comments(lines_);
    std::string all_code;
    for (const Line& l : lines_) {
      all_code += l.code;
      all_code += '\n';
      // Include paths live inside string literals, which stripping
      // removes — keep raw preprocessor lines visible to the checks.
      std::string t = trim(l.code);
      if (!t.empty() && t.front() == '#') {
        all_code += trim(l.raw);
        all_code += '\n';
      }
    }
    if (!paired_header.empty()) {
      std::vector<Line> header = split_lines(paired_header);
      strip_literals_and_comments(header);
      header_code_.reserve(paired_header.size());
      for (const Line& l : header) {
        header_code_ += l.code;
        header_code_ += '\n';
        std::string ht = trim(l.code);
        if (!ht.empty() && ht.front() == '#') {
          header_code_ += trim(l.raw);
          header_code_ += '\n';
        }
      }
    }
    code_text_ = std::move(all_code);
    collect_unordered_names(code_text_, unordered_names_);
    collect_unordered_names(header_code_, unordered_names_);
    std::sort(unordered_names_.begin(), unordered_names_.end());
    unordered_names_.erase(
        std::unique(unordered_names_.begin(), unordered_names_.end()),
        unordered_names_.end());
  }

  std::vector<Finding> run() {
    if (ends_with(rel_, ".hpp")) check_pragma_once();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      scan_line(i);
    }
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) { return a.line < b.line; });
    return std::move(findings_);
  }

 private:
  void add(std::size_t idx, std::string_view rule, std::string message) {
    const RuleInfo* info = nullptr;
    for (const RuleInfo& r : kRules) {
      if (r.id == rule) info = &r;
    }
    if (info != nullptr && line_suppressed(lines_, idx, info->suppression)) return;
    findings_.push_back(Finding{std::string(rule), std::string(rel_), idx + 1,
                                std::move(message), trim(lines_[idx].raw)});
  }

  void check_pragma_once() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::string t = trim(lines_[i].code);
      if (t.empty()) continue;
      if (t == "#pragma once") return;
      add(i, "GR030", "header does not open with #pragma once");
      return;
    }
    if (!lines_.empty()) add(0, "GR030", "header does not open with #pragma once");
  }

  void scan_line(std::size_t i) {
    const std::string& code = lines_[i].code;
    if (code.empty()) return;

    static const std::regex kRand(R"(\b(?:std\s*::\s*)?s?rand\s*\()");
    static const std::regex kWallclock(
        R"(std\s*::\s*chrono\s*::\s*system_clock|\bgettimeofday\s*\(|\blocaltime\s*\(|\bctime\s*\(|\b(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0|&))");
    static const std::regex kRandomDevice(R"(std\s*::\s*random_device)");
    static const std::regex kStdRng(
        R"(std\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b|(?:uniform_int|uniform_real|normal|bernoulli|poisson|exponential|geometric|binomial|discrete|piecewise\w*)_distribution|shuffle)\b)");
    static const std::regex kRangeFor(R"(\bfor\s*\([^;]*[^:]:([^:][^)]*))");
    static const std::regex kMutable(R"(\bmutable\b)");
    static const std::regex kLambdaMutable(R"(\)\s*mutable\b)");
    static const std::regex kStaticLocal(R"(^\s+static\s+(?!cons|inline|assert|thread_local))");
    static const std::regex kConstCast(R"(\bconst_cast\s*<)");
    static const std::regex kGuardedBy(R"(GEORANK(?:_PT)?_GUARDED_BY\s*\(\s*([^)]*)\))");

    if (std::regex_search(code, kRand)) {
      add(i, "GR001", "banned rand()/srand(): use util::Pcg32 with an explicit seed");
    }
    if (!is_cli_code(rel_) && std::regex_search(code, kWallclock)) {
      add(i, "GR002",
          "wall-clock read in non-CLI code: results must be a pure function of "
          "their inputs");
    }
    if (std::regex_search(code, kRandomDevice)) {
      add(i, "GR003", "std::random_device is nondeterministic; seeds must be explicit");
    }
    if (!is_rng_home(rel_) && std::regex_search(code, kStdRng)) {
      add(i, "GR004",
          "<random>/std::shuffle outputs are implementation-defined; use the "
          "PCG32 helpers in util/rng.hpp");
    }

    if (in_ordering_scope(rel_)) {
      // Range-for headers wrap; join a few continuation lines so
      // `for (const auto& [k, v] :\n    some_map)` still matches.
      std::string forline = code;
      for (std::size_t j = i + 1;
           j < lines_.size() && j < i + 4 &&
           forline.find("for") != std::string::npos &&
           forline.find(')') == std::string::npos;
           ++j) {
        forline += ' ';
        forline += lines_[j].code;
      }
      std::smatch m;
      if (std::regex_search(forline, m, kRangeFor)) {
        const std::string iterand = m[1].str();
        for (const std::string& name : unordered_names_) {
          if (contains_word(iterand, name)) {
            add(i, "GR010",
                "iterates unordered container '" + name +
                    "'; order is stdlib-dependent — sort, or justify with "
                    "`// lint: ordered(<why>)`");
            break;
          }
        }
      }
    }

    if (in_shard_scope(rel_) && mentions_path_store()) {
      // Only the row-form accessors bypass sharding; `.all_*()` methods
      // of other classes don't match (the call must be exactly all()),
      // and files that never name a PathStore type are not gated at all
      // (a prefix trie's `.all()` is somebody else's API).
      static const std::regex kGlobalRows(
          R"((?:\.|->)\s*(?:all\s*\(\s*\)|over\s*\())");
      if (std::regex_search(code, kGlobalRows)) {
        add(i, "GR011",
            "global-row PathStore access outside src/core; consume per-country "
            "shards (views/metrics take a shard) or justify with "
            "`// lint: shard-ok(<why>)`");
      }
    }

    // Preprocessor lines define the annotation macros themselves; the
    // GR020 sanity checks only apply to uses.
    const bool preprocessor =
        code.find_first_not_of(" \t") != std::string::npos &&
        code[code.find_first_not_of(" \t")] == '#';

    std::smatch guard;
    if (!preprocessor && std::regex_search(code, guard, kGuardedBy)) {
      std::string arg = guard[1].str();
      // The lock is the last identifier in the argument (cache_->mutex -> mutex).
      static const std::regex kLastId(R"(([A-Za-z_]\w*)\s*$)");
      std::smatch id;
      if (std::regex_search(arg, id, kLastId)) {
        const std::string lock = id[1].str();
        std::string code_without_annotations;
        for (const Line& l : lines_) {
          if (l.code.find("GEORANK") == std::string::npos) {
            code_without_annotations += l.code;
            code_without_annotations += '\n';
          }
        }
        if (!contains_word(code_without_annotations, lock) &&
            !contains_word(header_code_, lock)) {
          add(i, "GR020",
              "GEORANK_GUARDED_BY names '" + lock +
                  "', which is not declared in this file or its paired header");
        }
      } else {
        add(i, "GR020", "GEORANK_GUARDED_BY with no lock argument");
      }
      if (code_text_.find("util/thread_safety.hpp") == std::string::npos &&
          header_code_.find("util/thread_safety.hpp") == std::string::npos) {
        add(i, "GR020",
            "uses GEORANK_GUARDED_BY without including util/thread_safety.hpp");
      }
    }

    if (std::regex_search(code, kMutable) && !std::regex_search(code, kLambdaMutable)) {
      if (code.find("GEORANK_GUARDED_BY") == std::string::npos &&
          code.find("GEORANK_PT_GUARDED_BY") == std::string::npos) {
        add(i, "GR021",
            "mutable member without GEORANK_GUARDED_BY or a "
            "`// lint: guarded(<how>)` justification");
      }
    }

    if (ends_with(rel_, ".cpp") && std::regex_search(code, kStaticLocal)) {
      add(i, "GR022",
          "mutable function-local static; thread it through explicitly or "
          "justify with `// lint: static-ok(<why>)`");
    }

    if (std::regex_search(code, kConstCast)) {
      add(i, "GR023",
          "const_cast breaks the const-is-thread-compatible contract; justify "
          "with `// lint: const-cast-ok(<why>)`");
    }

    if (in_syscall_scope(rel_)) {
      // Both the headers and the call sites; `::`-qualified calls only,
      // so std::bind / a member named send() do not trip the rule.
      static const std::regex kSocketHeader(
          R"(#\s*include\s*<(?:sys/socket\.h|netinet/\w+\.h|arpa/inet\.h|netdb\.h|sys/epoll\.h|poll\.h)>)");
      static const std::regex kSocketCall(
          R"((?:^|[^\w:])::\s*(?:socket|bind|listen|accept4?|connect|recv(?:from|msg)?|send(?:to|msg)?|setsockopt|getsockopt|getsockname|getaddrinfo|shutdown|epoll_\w+|poll)\s*\()");
      if (std::regex_search(code, kSocketHeader)) {
        add(i, "GR024",
            "network/socket header outside src/serve; the transport layer owns "
            "all socket I/O");
      } else if (std::regex_search(code, kSocketCall)) {
        add(i, "GR024",
            "raw socket syscall outside src/serve; route through the serve "
            "transport or justify with `// lint: syscall-ok(<why>)`");
      }
    }

    if (in_durability_scope(rel_)) {
      // <fcntl.h> carries the O_* file-control flags; the call list is
      // the write-durability surface (`::`-qualified or std::rename, so
      // an ifstream's .open() member never trips the rule).
      static const std::regex kDurabilityHeader(
          R"(#\s*include\s*<fcntl\.h>)");
      static const std::regex kDurabilityCall(
          R"((?:(?:^|[^\w:])::|\bstd\s*::\s*)(?:fsync|fdatasync|ftruncate|rename|open(?:at)?|creat|mkstemp|unlink(?:at)?)\s*\()");
      if (std::regex_search(code, kDurabilityHeader)) {
        add(i, "GR025",
            "file-control header outside src/io + src/live; the persistence "
            "layers own durability syscalls");
      } else if (std::regex_search(code, kDurabilityCall)) {
        add(i, "GR025",
            "durability syscall outside src/io + src/live; move the write "
            "path there or justify with `// lint: durable-ok(<why>)`");
      }
    }
  }

  /// True when this TU (or its paired header) names a PathStore type in
  /// CODE — comment mentions don't gate GR011.
  [[nodiscard]] bool mentions_path_store() const {
    return code_text_.find("PathStore") != std::string::npos ||
           header_code_.find("PathStore") != std::string::npos;
  }

  std::string_view rel_;
  std::vector<Line> lines_;
  std::string code_text_;
  std::string header_code_;
  std::vector<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

}  // namespace

std::span<const RuleInfo> rules() { return kRules; }

std::vector<Finding> scan_file(std::string_view rel_path, std::string_view contents,
                               std::string_view paired_header) {
  FileScanner scanner{rel_path, contents, paired_header};
  return scanner.run();
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    b.entries_.insert(std::move(t));
  }
  return b;
}

Baseline Baseline::load(const std::filesystem::path& file) {
  std::ifstream in{file};
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Baseline::contains(const Finding& f) const {
  if (entries_.empty()) return false;
  const std::string exact =
      f.rule + " " + f.path + ":" + std::to_string(f.line);
  const std::string whole_file = f.rule + " " + f.path;
  return entries_.count(exact) > 0 || entries_.count(whole_file) > 0;
}

RepoScanResult scan_repo(const std::filesystem::path& root, const Baseline& baseline) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  auto slurp = [](const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  RepoScanResult result;
  for (const fs::path& file : files) {
    const std::string contents = slurp(file);
    std::string rel = fs::relative(file, root).generic_string();
    std::string paired;
    if (ends_with(rel, ".cpp")) {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::exists(header)) paired = slurp(header);
    }
    ++result.files_scanned;
    for (Finding& f : scan_file(rel, contents, paired)) {
      if (baseline.contains(f)) {
        ++result.baselined;
      } else {
        result.findings.push_back(std::move(f));
      }
    }
  }
  return result;
}

}  // namespace georank::lint
