// SARIF 2.1.0 serialization of lint findings, for the CI artifact and
// any SARIF-consuming viewer. Shape kept to the minimal valid core:
// one run, tool.driver with the full rule table, one result per
// finding with ruleId / level / message / physicalLocation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "georank_lint/lint.hpp"

namespace georank::lint {

/// Renders findings as a SARIF 2.1.0 document (UTF-8, trailing
/// newline). Deterministic: output depends only on the arguments.
[[nodiscard]] std::string to_sarif(std::span<const RuleInfo> rules,
                                   const std::vector<Finding>& findings);

}  // namespace georank::lint
