#include "georank_lint/lockorder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace georank::lint {
namespace {

std::string last_component(const std::string& qualified) {
  std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// For every function, the set of locks that may already be held when
/// it is entered, via any caller chain: fixed point of
///   entry(G) ⊇ held-at-call-site ∪ entry(F)   for each call F -> G.
std::vector<std::set<std::size_t>> entry_held(const RepoModel& model) {
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < model.functions.size(); ++i) {
    by_name[last_component(model.functions[i].name)].push_back(i);
  }
  std::vector<std::set<std::size_t>> entry(model.functions.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < model.functions.size(); ++f) {
      for (const CallSite& call : model.functions[f].calls) {
        auto it = by_name.find(call.callee);
        if (it == by_name.end()) continue;
        std::set<std::size_t> incoming(entry[f]);
        incoming.insert(call.held.begin(), call.held.end());
        for (std::size_t g : it->second) {
          if (g == f) continue;
          for (std::size_t lock : incoming) {
            if (entry[g].insert(lock).second) changed = true;
          }
        }
      }
    }
  }
  return entry;
}

std::string lock_name(const RepoModel& model, std::size_t id) {
  return model.mutexes[id].name;
}

}  // namespace

std::vector<LockEdge> build_lock_edges(const RepoModel& model) {
  const std::vector<std::set<std::size_t>> entry = entry_held(model);
  std::map<std::pair<std::size_t, std::size_t>, LockEdge> edges;
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    const FunctionModel& fn = model.functions[f];
    for (const AcquireSite& a : fn.acquires) {
      // A suppressed acquisition contributes no ordering edges.
      if (model.suppressed(fn.file, a.line, "lock-order")) continue;
      std::set<std::size_t> held(a.held.begin(), a.held.end());
      held.insert(entry[f].begin(), entry[f].end());
      for (std::size_t before : held) {
        if (before == a.lock) continue;
        edges.emplace(std::make_pair(before, a.lock),
                      LockEdge{before, a.lock, fn.file, a.line});
      }
    }
  }
  std::vector<LockEdge> out;
  out.reserve(edges.size());
  for (auto& [key, e] : edges) out.push_back(std::move(e));
  return out;
}

std::vector<Finding> check_lock_order(const RepoModel& model) {
  std::vector<Finding> out;

  // GR050: cycles in the acquisition-order graph.
  const std::vector<LockEdge> edges = build_lock_edges(model);
  std::map<std::size_t, std::vector<const LockEdge*>> graph;
  for (const LockEdge& e : edges) graph[e.before].push_back(&e);
  std::map<std::size_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> path;
  std::set<std::vector<std::size_t>> seen;

  auto canonical = [](std::vector<std::size_t> cycle) {
    auto smallest = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), smallest, cycle.end());
    return cycle;
  };
  auto dfs = [&](auto&& self, std::size_t node) -> void {
    color[node] = 1;
    path.push_back(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const LockEdge* e : it->second) {
        if (color[e->after] == 1) {
          auto start = std::find(path.begin(), path.end(), e->after);
          std::vector<std::size_t> cycle(start, path.end());
          if (!seen.insert(canonical(cycle)).second) continue;
          std::string desc;
          for (std::size_t id : cycle) desc += lock_name(model, id) + " -> ";
          desc += lock_name(model, cycle.front());
          out.push_back(Finding{
              "GR050", e->file, e->line,
              "lock-order cycle: " + desc +
                  "; two threads taking these locks in opposite orders "
                  "deadlock — pick one global order or justify the "
                  "acquisition with `// lint: lock-order(<why>)`",
              ""});
        } else if (color[e->after] == 0) {
          self(self, e->after);
        }
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const LockEdge& e : edges) {
    if (color[e.before] == 0) dfs(dfs, e.before);
  }

  // GR051: blocking syscall reached while a lock is held (directly or
  // via the caller chain).
  const std::vector<std::set<std::size_t>> entry = entry_held(model);
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    const FunctionModel& fn = model.functions[f];
    for (const BlockingSite& b : fn.blocking) {
      std::set<std::size_t> held(b.held.begin(), b.held.end());
      held.insert(entry[f].begin(), entry[f].end());
      if (held.empty()) continue;
      if (model.suppressed(fn.file, b.line, "blocking-ok")) continue;
      std::string locks;
      for (std::size_t id : held) {
        if (!locks.empty()) locks += ", ";
        locks += lock_name(model, id);
      }
      out.push_back(Finding{
          "GR051", fn.file, b.line,
          "blocking syscall ::" + b.name + " while holding lock(s) " +
              locks + " (in " + fn.name +
              "); the critical section is now bounded by I/O latency — "
              "move the syscall outside the lock or justify with "
              "`// lint: blocking-ok(<why>)`",
          ""});
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule) <
           std::tie(b.path, b.line, b.rule);
  });
  return out;
}

}  // namespace georank::lint
