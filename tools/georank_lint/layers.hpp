// GR040/GR041: architecture layering. The allowed module dependency
// edges live in tools/georank_lint/layers.def (one line per module:
// `module: dep dep ...`), so the architecture itself is versioned and
// reviewed like code. Pass two walks every `#include` harvested into
// the RepoModel, maps src/<module>/... paths to modules, and:
//
//   GR040  an observed edge absent from layers.def — the finding names
//          the edge (`serve -> io`) and the include that created it.
//          Suppress with `// lint: layer-ok(why)` on the include line;
//          baseline entries also apply.
//   GR041  a cycle among observed edges — always fatal: a cyclic module
//          graph has no build order and no ownership story, so neither
//          suppression tags nor the baseline silence it.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "georank_lint/lint.hpp"
#include "georank_lint/model.hpp"

namespace georank::lint {

struct LayerSpec {
  /// module -> modules it may include from (besides itself).
  std::map<std::string, std::set<std::string>> allowed;

  [[nodiscard]] bool declares(std::string_view module) const;
  [[nodiscard]] bool permits(std::string_view from,
                             std::string_view to) const;
};

/// Parses layers.def text. `#` starts a comment; blank lines ignored;
/// each remaining line is `module: dep dep ...` (deps optional).
/// Unparseable lines are skipped — a broken layers.def then fails the
/// build via GR040 "module not declared" rather than silently passing.
[[nodiscard]] LayerSpec parse_layers(std::string_view text);

/// Evaluates GR040/GR041 over every src/ include edge in the model.
[[nodiscard]] std::vector<Finding> check_layering(const RepoModel& model,
                                                  const LayerSpec& spec);

}  // namespace georank::lint
