#include "georank_lint/tokenizer.hpp"

#include <cctype>

namespace georank::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The lexer proper: walks the buffer once, emitting tokens and
/// appending to the per-line code/comment strings as it goes.
class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {
    // Pre-split raw lines so every Line exists even when empty.
    std::size_t pos = 0;
    while (pos <= src.size()) {
      std::size_t nl = src.find('\n', pos);
      if (nl == std::string_view::npos) {
        if (pos < src.size()) out_.lines.push_back({std::string(src.substr(pos)), "", ""});
        break;
      }
      out_.lines.push_back({std::string(src.substr(pos, nl - pos)), "", ""});
      pos = nl + 1;
    }
  }

  Tokenized run() {
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (c == '\n') {
        ++line_;
        line_began_ = false;
        ++i_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        code() += c;
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        std::size_t nl = src_.find('\n', i_);
        std::size_t end = nl == std::string_view::npos ? src_.size() : nl;
        comment().append(src_, i_ + 2, end - i_ - 2);
        i_ = end;
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start()) {
        preprocessor_line_ = line_;
        code() += c;
        ++i_;
        continue;
      }
      if (c == '"') {
        lex_string(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_raw_string();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  std::string& code() { return out_.lines[line_ - 1].code; }
  std::string& comment() { return out_.lines[line_ - 1].comment; }

  /// True when only whitespace precedes the cursor on this line.
  bool at_line_start() {
    for (char c : out_.lines[line_ - 1].code) {
      if (c != ' ' && c != '\t' && c != '\r') return false;
    }
    return true;
  }

  void emit(TokKind kind, std::string text) {
    out_.tokens.push_back(Token{kind, std::move(text), line_});
    line_began_ = true;
  }

  void lex_block_comment() {
    i_ += 2;
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        return;
      }
      if (src_[i_] == '\n') {
        ++line_;
      } else {
        comment() += src_[i_];
      }
      ++i_;
    }
  }

  /// Ordinary string/char lexing: contents captured into the token, the
  /// per-line code keeps bare quotes — except on a `#include` line,
  /// where the path stays visible to the include-based rules.
  void lex_string(bool keep_in_code_override) {
    const bool keep = keep_in_code_override || preprocessor_line_ == line_;
    std::string contents;
    code() += '"';
    ++i_;
    while (i_ < src_.size() && src_[i_] != '"') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        contents += src_[i_];
        contents += src_[i_ + 1];
        i_ += 2;
        continue;
      }
      if (src_[i_] == '\n') break;  // unterminated; recover at newline
      contents += src_[i_];
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '"') ++i_;
    if (keep) code() += contents;
    code() += '"';
    emit(TokKind::kString, std::move(contents));
  }

  void lex_char() {
    std::string contents;
    code() += '\'';
    ++i_;
    while (i_ < src_.size() && src_[i_] != '\'') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        contents += src_[i_];
        contents += src_[i_ + 1];
        i_ += 2;
        continue;
      }
      if (src_[i_] == '\n') break;
      contents += src_[i_];
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
    code() += '\'';
    emit(TokKind::kChar, std::move(contents));
  }

  /// R"delim( ... )delim" — contents fully blanked, even across lines.
  void lex_raw_string() {
    ++i_;  // consume the opening quote
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(' && delim.size() < 16) {
      delim += src_[i_++];
    }
    if (i_ < src_.size()) ++i_;  // consume '('
    const std::string close = ")" + delim + "\"";
    std::string contents;
    code() += "\"\"";
    while (i_ < src_.size()) {
      if (src_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        break;
      }
      if (src_[i_] == '\n') {
        ++line_;
      } else {
        contents += src_[i_];
      }
      ++i_;
    }
    emit(TokKind::kString, std::move(contents));
  }

  void lex_ident_or_raw_string() {
    std::size_t start = i_;
    while (i_ < src_.size() && is_ident_char(src_[i_])) ++i_;
    std::string word(src_.substr(start, i_ - start));
    // Raw-string prefix? R"..., u8R"..., LR"..., etc.
    if (i_ < src_.size() && src_[i_] == '"' &&
        (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
         word == "LR")) {
      lex_raw_string();
      return;
    }
    // Encoding prefix of an ordinary literal (u8"x") — drop the prefix
    // into code and lex the string normally.
    if (i_ < src_.size() && src_[i_] == '"' &&
        (word == "u8" || word == "u" || word == "U" || word == "L")) {
      code() += word;
      lex_string(false);
      return;
    }
    code() += word;
    emit(TokKind::kIdent, std::move(word));
  }

  void lex_number() {
    std::size_t start = i_;
    while (i_ < src_.size() &&
           (is_ident_char(src_[i_]) || src_[i_] == '.' ||
            ((src_[i_] == '+' || src_[i_] == '-') && i_ > start &&
             (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
              src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')))) {
      ++i_;
    }
    std::string text(src_.substr(start, i_ - start));
    code() += text;
    emit(TokKind::kNumber, std::move(text));
  }

  void lex_punct() {
    char c = src_[i_];
    // Two-character operators the rules care about as units.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>')) {
      std::string text{c, src_[i_ + 1]};
      code() += text;
      i_ += 2;
      emit(TokKind::kPunct, std::move(text));
      return;
    }
    code() += c;
    ++i_;
    emit(TokKind::kPunct, std::string(1, c));
  }

  std::string_view src_;
  Tokenized out_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  bool line_began_ = false;
  std::uint32_t preprocessor_line_ = 0;  // line currently in a # directive
};

}  // namespace

Tokenized tokenize(std::string_view contents) {
  if (contents.empty()) return {};
  return Lexer{contents}.run();
}

}  // namespace georank::lint
