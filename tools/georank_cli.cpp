// georank — command-line front end to the library.
//
// Subcommands:
//
//   generate   synthesize a world and write its data-set files:
//                ribs.txt (bgpdump -m style), as-rel.txt (CAIDA format),
//                geo.csv, collectors.csv, vps.csv, as-info.csv
//   sanitize   run the Table-1 filtering over a data-set directory
//   rank       compute CCI/AHI/CCN/AHN (+AHC/CTI) for one country
//   stability  VP-downsampling NDCG analysis for one country's view
//   health     per-country data-health audit (VPs, geo consensus, tiers)
//   robustness fault-injection sweep: NDCG drift under dropped VPs,
//                corrupted geo blocks and lost paths
//   snapshot   precompute all-country rankings + health into a binary
//                snapshot file (FORMATS.md "Ranking snapshot")
//   serve      boot the HTTP query service over one or more snapshots
//   live       replay an update archive through the incremental
//                pipeline (journaled + checkpointed with --journal-dir)
//   journal    read-only GRJRNL01 journal inspection (CI's recovery
//                tier polls it to time its kill -9)
//
// The generate output is exactly what the other subcommands consume, so
//   georank generate --out data/ && georank rank --dir data/ --country AU
// is a complete offline reproduction loop. Real RouteViews/RIS exports
// in the same formats slot straight in.
//
// Exit codes (scriptable degraded-data handling):
//   0  success
//   1  operational error (missing file, bad argument value)
//   2  usage error
//   3  parse failure (strict-mode parse error, or no parsable RIB data)
//   4  empty result (query ran but produced nothing)
//   5  --fail-on-drop-rate threshold exceeded
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/mrt_stream.hpp"
#include "bgp/update_stream.hpp"
#include "core/pipeline.hpp"
#include "core/rank_delta.hpp"
#include "core/report.hpp"
#include "core/stability.hpp"
#include "gen/internet.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "infer/relationships.hpp"
#include "io/as_info_csv.hpp"
#include "io/as_rel.hpp"
#include "io/geo_csv.hpp"
#include "io/rankings_csv.hpp"
#include "io/snapshot_codec.hpp"
#include "live/checkpoint.hpp"
#include "live/health_monitor.hpp"
#include "live/journal.hpp"
#include "live/update_pipeline.hpp"
#include "robust/data_health.hpp"
#include "robust/fault_plan.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario.hpp"
#include "serve/http_server.hpp"
#include "serve/ranking_service.hpp"
#include "serve/signal_pipe.hpp"
#include "serve/snapshot.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fs = std::filesystem;
using namespace georank;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParseFailure = 3;
constexpr int kExitEmptyResult = 4;
constexpr int kExitDropRate = 5;

// The --key=value parser lives in util/options.hpp so the serve and
// snapshot machinery (and future binaries) share one grammar.
using Args = util::Options;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  georank generate   --out DIR [--epoch 2021|2023] [--seed N]"
               " [--days N] [--mini]\n"
               "                     [--preset internet --scale X]\n"
               "  georank sanitize   --dir DIR [--samples N] [--strict]"
               " [--ingest-stats]\n"
               "  georank rank       --dir DIR --country CC [--out FILE]"
               " [--infer] [--strict]\n"
               "  georank stability  --dir DIR --country CC"
               " [--view national|international|outbound] [--threshold X]\n"
               "  georank compare    --before FILE --after FILE [--top N]"
               " [--metric CCI|AHI|CCN|AHN]\n"
               "  georank infer      --dir DIR --out FILE [--validate]\n"
               "  georank health     --dir DIR [--csv] [--out FILE]"
               " [--min-vps N] [--min-geo-consensus X]\n"
               "  georank robustness --dir DIR [--country CC[,CC...]]"
               " [--trials N] [--seed N] [--top N]\n"
               "                     [--vp-steps a,b,..] [--geo-steps x,y,..]"
               " [--path-steps x,y,..] [--vp-target CC] [--csv] [--out FILE]\n"
               "  georank snapshot   --dir DIR --out FILE [--id N]"
               " [--label STR] [--infer] [--strict]\n"
               "  georank serve      --snapshot FILE[,FILE...] | --dir DIR"
               " [--port N] [--bind ADDR]\n"
               "                     [--threads N] [--cache N] [--history N]\n"
               "  georank live       --dir DIR [--updates FILE] [--batch N]"
               " [--window N] [--reorder SECS]\n"
               "                     [--out FILE] [--id N] [--id-base N]"
               " [--created N] [--label STR]\n"
               "                     [--strict] [--ingest-stats] [--port N]"
               " [--bind ADDR] [--threads N]\n"
               "                     [--journal-dir DIR] [--checkpoint-every N]"
               " [--recover] [--fsync never|each]\n"
               "                     [--overflow drain|shed] [--follow]"
               " [--stale-after SECS] [--degraded-after SECS]\n"
               "  georank journal    --dir DIR [--stat]\n"
               "  georank whatif     --dir DIR --scenario FILE [--out FILE]"
               " [--csv FILE] [--top N]\n"
               "                     [--id N] [--created N] [--label STR]"
               " [--strict]\n"
               "common: --key=value and --key value both work;"
               " --fail-on-drop-rate=PCT exits %d when the sanitize or\n"
               "ingest layer drops more than PCT%% of its input"
               " (sanitize/rank/health/robustness).\n",
               kExitDropRate);
  return kExitUsage;
}

/// --fail-on-drop-rate=PCT: non-zero exit when the ingest or sanitize
/// layer dropped more than PCT percent of its input. Returns kExitOk, or
/// kExitDropRate / kExitError (unparsable threshold).
int check_drop_rate(const Args& args, const bgp::MrtParseStats& ingest,
                    const sanitize::SanitizeStats& sanitize_stats) {
  if (!args.has("fail-on-drop-rate")) return kExitOk;
  double pct = 0.0;
  try {
    pct = std::stod(args.get("fail-on-drop-rate"));
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad --fail-on-drop-rate '%s'\n",
                 args.get("fail-on-drop-rate").c_str());
    return kExitError;
  }
  double limit = pct / 100.0;
  double ingest_rate =
      ingest.lines == 0 ? 0.0
                        : static_cast<double>(ingest.malformed) /
                              static_cast<double>(ingest.lines);
  double sanitize_rate = sanitize_stats.drop_rate();
  if (ingest_rate > limit || sanitize_rate > limit) {
    std::fprintf(stderr,
                 "drop rate above %.2f%%: ingest %.2f%%, sanitize %.2f%%\n",
                 pct, ingest_rate * 100.0, sanitize_rate * 100.0);
    return kExitDropRate;
  }
  return kExitOk;
}

template <typename Writer>
bool write_file(const fs::path& path, Writer&& writer) {
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  writer(os);
  return true;
}

// ------------------------------------------------------------- generate

/// Writes the eight data-set files every other subcommand consumes.
bool write_dataset(const fs::path& dir, const gen::World& world,
                   const bgp::RibCollection& ribs) {
  io::AsInfoMap info;
  for (const auto& [asn, rec] : world.as_info) {
    if (rec.registered.valid()) {
      info[asn] = io::AsInfoRecord{rec.registered, rec.name};
    }
  }

  return write_file(dir / "ribs.txt",
                    [&](std::ostream& os) {
                      bgp::MrtTextWriter writer{os};
                      writer.write_collection(ribs);
                    }) &&
         write_file(dir / "as-rel.txt",
                    [&](std::ostream& os) { io::write_as_rel(os, world.graph); }) &&
         write_file(dir / "geo.csv",
                    [&](std::ostream& os) { io::write_geo_csv(os, world.geo_db); }) &&
         write_file(dir / "collectors.csv",
                    [&](std::ostream& os) { io::write_collectors_csv(os, world.vps); }) &&
         write_file(dir / "vps.csv",
                    [&](std::ostream& os) { io::write_vps_csv(os, world.vps); }) &&
         write_file(dir / "as-info.csv",
                    [&](std::ostream& os) { io::write_as_info_csv(os, info); }) &&
         write_file(dir / "route-servers.txt",
                    [&](std::ostream& os) {
                      for (bgp::Asn rs : world.route_servers) os << rs << '\n';
                    }) &&
         write_file(dir / "updates.txt", [&](std::ostream& os) {
           // The same data as an incremental update archive (IHR-style
           // consumption); `rank --dir` falls back to it when ribs.txt is
           // absent.
           bgp::UpdateTextWriter writer{os};
           writer.write_all(bgp::collection_to_updates(ribs));
         });
}

int cmd_generate(const Args& args) {
  if (!args.has("out")) return usage();
  fs::path dir{args.get("out")};
  std::error_code ec;
  fs::create_directories(dir, ec);

  if (args.get("preset", "") == "internet") {
    // Internet-scale preset: one `--scale` knob instead of a scripted
    // WorldSpec; see gen/internet.hpp for the topology model.
    double scale = 1.0;
    if (args.has("scale")) {
      try {
        scale = std::stod(args.get("scale"));
      } catch (const std::exception&) {
        scale = 0.0;
      }
      if (scale <= 0.0) {
        std::fprintf(stderr, "bad --scale '%s': expected a positive number\n",
                     args.get("scale").c_str());
        return kExitError;
      }
    }
    gen::InternetSpec spec = gen::internet_spec(scale, args.u64_or("seed", 0xA5));
    spec.rib_days = args.int_or("days", spec.rib_days);
    gen::InternetScaleGenerator generator{spec};
    std::printf("generating internet-scale world (scale %g, seed %llu, "
                "%zu countries)...\n",
                scale, static_cast<unsigned long long>(spec.seed),
                spec.country_count());
    gen::World world = generator.generate();
    bgp::RibCollection ribs = generator.synthesize_ribs(world);
    std::printf("  %zu ASes, %zu originations, %zu VPs, %zu RIB entries\n",
                world.graph.size(), world.originations.size(),
                world.vps.all_vps().size(), ribs.total_entries());
    if (!write_dataset(dir, world, ribs)) return kExitError;
    std::printf("wrote data set to %s\n", dir.string().c_str());
    return kExitOk;
  }

  gen::Epoch epoch = args.get("epoch", "2021") == "2023"
                         ? gen::Epoch::kMarch2023
                         : gen::Epoch::kApril2021;
  std::uint64_t seed = args.u64_or("seed", 20210401);
  int days = args.int_or("days", 5);

  gen::WorldSpec spec = args.has("mini") ? gen::mini_world_spec(seed)
                                         : gen::default_world_spec(epoch, seed);
  std::printf("generating world (seed %llu, %zu countries)...\n",
              static_cast<unsigned long long>(seed), spec.countries.size());
  gen::World world = gen::InternetGenerator{spec}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, spec.noise}.generate(days);
  std::printf("  %zu ASes, %zu originations, %zu VPs, %zu RIB entries\n",
              world.graph.size(), world.originations.size(),
              world.vps.all_vps().size(), ribs.total_entries());

  if (!write_dataset(dir, world, ribs)) return kExitError;
  std::printf("wrote data set to %s\n", dir.string().c_str());
  return kExitOk;
}

// ----------------------------------------------------------- data loading

struct DataSet {
  geo::GeoDatabase geo_db;
  geo::VpGeolocator vps;
  sanitize::AsnRegistry asn_registry;
  topo::AsGraph relationships;
  io::AsInfoMap as_info;
  rank::AsRegistry registry;
  std::vector<bgp::Asn> route_servers;
  bgp::RibCollection ribs;
  bgp::MrtParseStats ingest_stats;
  /// Set when the RIBs came from replaying updates.txt (spurious
  /// withdrawals, ordering/day drops, quiet days).
  std::optional<bgp::ReplayStats> replay_stats;
};

/// Loads a data-set directory. On failure returns nullopt and, when
/// `fail_code` is given, distinguishes kExitParseFailure (RIB/update
/// input present but nothing parsed from it) from kExitError (missing
/// files). Strict-mode parse errors throw bgp::MrtParseError (or
/// bgp::UpdateReplayError for stream-contract violations) instead,
/// mapped to kExitParseFailure in main(). `skip_ribs` loads only the
/// topology/geo side files (the live subcommand streams its own
/// updates).
std::optional<DataSet> load_dataset(const fs::path& dir, bool infer_relationships,
                                    bool strict = false, int* fail_code = nullptr,
                                    std::size_t ingest_threads = 0,
                                    bool skip_ribs = false) {
  if (fail_code) *fail_code = kExitError;
  auto open = [&](const char* name) -> std::optional<std::ifstream> {
    std::ifstream is{dir / name};
    if (!is) {
      std::fprintf(stderr, "missing %s in %s\n", name, dir.string().c_str());
      return std::nullopt;
    }
    return is;
  };

  DataSet data;
  auto geo_is = open("geo.csv");
  auto collectors_is = open("collectors.csv");
  auto vps_is = open("vps.csv");
  auto info_is = open("as-info.csv");
  if (!geo_is || !collectors_is || !vps_is || !info_is) {
    return std::nullopt;
  }

  data.geo_db = io::read_geo_csv(*geo_is);
  data.vps = io::read_vp_geolocator(*collectors_is, *vps_is);
  data.as_info = io::read_as_info_csv(*info_is);
  data.registry = io::to_registry(data.as_info);

  // RIB snapshots directly (streamed in bounded memory through the
  // chunked parallel loader), or an update archive replayed into them.
  // --strict turns the first malformed line into a hard error.
  if (skip_ribs) {
    // Live streaming: the caller feeds updates itself.
  } else if (std::ifstream ribs_is{dir / "ribs.txt"}; ribs_is) {
    bgp::MrtStreamOptions options;
    options.mode = strict ? bgp::ParseMode::kStrict : bgp::ParseMode::kTolerant;
    options.threads = ingest_threads;  // 0 -> GEORANK_THREADS / hw default
    bgp::MrtStreamLoader loader{options};
    data.ribs = loader.load(ribs_is);
    data.ingest_stats = loader.stats();
    std::printf("loaded %zu RIB entries (%zu malformed lines skipped, "
                "%.1f MB/s)\n",
                data.ingest_stats.parsed, data.ingest_stats.malformed,
                data.ingest_stats.mbytes_per_second());
  } else if (std::ifstream updates_is{dir / "updates.txt"}; updates_is) {
    const bgp::ParseMode mode =
        strict ? bgp::ParseMode::kStrict : bgp::ParseMode::kTolerant;
    bgp::UpdateTextReader reader{mode};
    std::vector<bgp::UpdateMessage> updates = reader.read_all(updates_is);
    bgp::ReplayOptions replay_options;
    replay_options.mode = mode;  // --strict also enforces stream ordering
    bgp::ReplayStats replay_stats;
    data.ribs = bgp::replay_to_collection(updates, replay_options, &replay_stats);
    data.ingest_stats = reader.stats();
    data.replay_stats = replay_stats;
    std::printf("replayed %zu updates into %zu daily snapshots "
                "(%zu malformed lines, %zu out-of-order, %zu out-of-range "
                "skipped; %zu spurious withdrawals)\n",
                replay_stats.applied, data.ribs.days.size(),
                reader.stats().malformed, replay_stats.skipped_out_of_order,
                replay_stats.skipped_day_out_of_range,
                replay_stats.spurious_withdrawals);
  } else {
    std::fprintf(stderr, "missing ribs.txt / updates.txt in %s\n",
                 dir.string().c_str());
    return std::nullopt;
  }

  if (!skip_ribs && data.ribs.total_entries() == 0) {
    std::fprintf(stderr, "no parsable RIB data in %s (%zu lines, %zu malformed)\n",
                 dir.string().c_str(), data.ingest_stats.lines,
                 data.ingest_stats.malformed);
    if (fail_code) *fail_code = kExitParseFailure;
    return std::nullopt;
  }

  if (std::ifstream rs_is{dir / "route-servers.txt"}; rs_is) {
    std::string line;
    while (std::getline(rs_is, line)) {
      if (auto asn = util::parse_int<bgp::Asn>(util::trim(line))) {
        data.route_servers.push_back(*asn);
      }
    }
  }

  if (infer_relationships) {
    std::printf("inferring AS relationships from the paths...\n");
    infer::RelationshipInference inference;
    for (const auto& snap : data.ribs.days) {
      for (const auto& e : snap.entries) inference.add_path(e.path);
      break;  // one snapshot suffices
    }
    infer::InferenceResult result = inference.infer();
    std::printf("  %zu links labeled, clique of %zu\n", result.link_count,
                result.clique.size());
    data.relationships = std::move(result.graph);
  } else if (auto rel_is = open("as-rel.txt")) {
    io::AsRelParseStats stats;
    data.relationships = io::read_as_rel(*rel_is, &stats);
    std::printf("loaded %zu relationship links\n", stats.links);
  } else {
    return std::nullopt;
  }

  // Registry: everything mentioned anywhere is considered allocated; the
  // generator's bogus range is not. A real deployment would load IANA's
  // delegation files here instead.
  data.asn_registry.allocate_range(1, 1000000);
  data.asn_registry.finalize();
  return data;
}

/// --min-vps / --min-geo-consensus override the paper-default
/// DegradationPolicy for the confidence annotation.
robust::DegradationPolicy degradation_from_args(const Args& args) {
  robust::DegradationPolicy policy;
  policy.min_vps = args.size_or("min-vps", policy.min_vps);
  policy.min_geo_consensus =
      args.double_or("min-geo-consensus", policy.min_geo_consensus);
  return policy;
}

core::Pipeline make_pipeline(const DataSet& data,
                             robust::DegradationPolicy degradation = {}) {
  core::PipelineConfig config;
  config.sanitizer.route_server_asns = data.route_servers;
  config.degradation = degradation;
  core::Pipeline pipeline{data.geo_db, data.vps, data.asn_registry,
                          data.relationships, config};
  pipeline.load(data.ribs);
  return pipeline;
}

// ------------------------------------------------------------- sanitize

void print_ingest_stats(const bgp::MrtParseStats& s,
                        const bgp::ReplayStats* replay = nullptr) {
  std::printf("\ningest diagnostics:\n");
  std::printf("  lines %zu  parsed %zu  malformed %zu  comments %zu\n",
              s.lines, s.parsed, s.malformed, s.skipped_comments);
  util::Table table{{"reason", "lines"}};
  table.set_align(1, util::Align::kRight);
  using bgp::ParseReason;
  for (ParseReason reason :
       {ParseReason::kBadFieldCount, ParseReason::kBadRecordType,
        ParseReason::kBadTimestamp, ParseReason::kBadIp, ParseReason::kBadAsn,
        ParseReason::kBadPrefix, ParseReason::kBadPath, ParseReason::kEmptyPath,
        ParseReason::kDayOutOfRange, ParseReason::kAsSet}) {
    std::size_t count = s.reason_count(reason);
    if (count == 0) continue;
    table.add_row({std::string(bgp::to_string(reason)), std::to_string(count)});
  }
  table.print(std::cout);
  if (s.elapsed_seconds > 0.0) {
    std::printf("  throughput: %.1f MB/s, %.0f lines/s\n",
                s.mbytes_per_second(), s.lines_per_second());
  }
  for (const auto& sample : s.samples) {
    std::printf("  line %zu (%s): %s\n", sample.line_number,
                std::string(bgp::to_string(sample.reason)).c_str(),
                sample.text.c_str());
  }
  if (replay != nullptr) {
    std::printf("replay diagnostics:\n");
    std::printf("  applied %zu  out-of-order %zu  day-out-of-range %zu\n",
                replay->applied, replay->skipped_out_of_order,
                replay->skipped_day_out_of_range);
    std::printf("  spurious withdrawals %zu  days %zu (%zu quiet)\n",
                replay->spurious_withdrawals, replay->days_emitted,
                replay->quiet_days);
  }
}

int cmd_sanitize(const Args& args) {
  if (!args.has("dir")) return usage();
  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                           &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;

  // --samples N captures audit examples per rejection category.
  auto samples = args.size_or("samples", 0);
  core::PipelineConfig config;
  config.sanitizer.route_server_asns = data->route_servers;
  config.sanitizer.samples_per_category = samples;
  core::Pipeline pipeline{data->geo_db, data->vps, data->asn_registry,
                          data->relationships, config};
  pipeline.load(data->ribs);
  const auto& s = pipeline.sanitized().stats;
  auto pct = [&](std::size_t v) {
    return util::percent(static_cast<double>(v) / static_cast<double>(s.total), 2);
  };
  util::Table table{{"category", "paths", "%"}};
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.add_row({"unstable", std::to_string(s.unstable), pct(s.unstable)});
  table.add_row({"as-set", std::to_string(s.as_set), pct(s.as_set)});
  table.add_row({"unallocated", std::to_string(s.unallocated), pct(s.unallocated)});
  table.add_row({"loop", std::to_string(s.loop), pct(s.loop)});
  table.add_row({"poisoned", std::to_string(s.poisoned), pct(s.poisoned)});
  table.add_row({"VP no location", std::to_string(s.vp_no_location),
                 pct(s.vp_no_location)});
  table.add_row({"covered prefix", std::to_string(s.covered_prefix),
                 pct(s.covered_prefix)});
  table.add_row({"prefix no location", std::to_string(s.prefix_no_location),
                 pct(s.prefix_no_location)});
  table.add_rule();
  table.add_row({"accepted", std::to_string(s.accepted), pct(s.accepted)});
  table.add_row({"total", std::to_string(s.total), "100.00%"});
  table.print(std::cout);
  std::printf("distinct sanitized paths: %zu\n", pipeline.sanitized().paths.size());

  if (args.has("ingest-stats")) {
    print_ingest_stats(data->ingest_stats,
                       data->replay_stats ? &*data->replay_stats : nullptr);
  }

  if (!pipeline.sanitized().samples.empty()) {
    std::printf("\nrejected-entry samples:\n");
    for (const sanitize::RejectedSample& sample : pipeline.sanitized().samples) {
      std::printf("  [%s] day %d vp %s AS%u  %s  path: %s\n",
                  std::string(sanitize::to_string(sample.reason)).c_str(),
                  sample.day, bgp::format_ipv4(sample.entry.vp.ip).c_str(),
                  sample.entry.vp.asn, sample.entry.prefix.to_string().c_str(),
                  sample.entry.path.to_string().c_str());
    }
  }
  return check_drop_rate(args, data->ingest_stats, s);
}

// ----------------------------------------------------------------- rank

int cmd_rank(const Args& args) {
  if (!args.has("dir") || !args.has("country")) return usage();
  auto country = geo::CountryCode::parse(args.get("country"));
  if (!country) {
    std::fprintf(stderr, "bad country code '%s'\n", args.get("country").c_str());
    return kExitError;
  }
  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                           &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;
  core::Pipeline pipeline = make_pipeline(*data, degradation_from_args(args));

  auto name_of = [&](bgp::Asn asn) -> std::string {
    auto it = data->as_info.find(asn);
    return it != data->as_info.end() ? it->second.name : std::string{};
  };

  core::CountryReport report =
      core::build_country_report(pipeline, data->registry, *country);
  if (report.empty()) {
    std::fprintf(stderr, "no paths toward %s in this data set\n",
                 country->to_string().c_str());
    return kExitEmptyResult;
  }
  std::printf("\n%s", core::render_country_report(report, name_of).c_str());

  if (args.has("out")) {
    if (!write_file(args.get("out"), [&](std::ostream& os) {
          io::write_country_metrics_csv(os, report.metrics, [&](bgp::Asn asn) {
            std::string n = name_of(asn);
            return n.empty() ? "AS" + std::to_string(asn) : n;
          });
        })) {
      return 1;
    }
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  return check_drop_rate(args, data->ingest_stats, pipeline.sanitized().stats);
}

// ------------------------------------------------------------ stability

int cmd_stability(const Args& args) {
  if (!args.has("dir") || !args.has("country")) return usage();
  auto country = geo::CountryCode::parse(args.get("country"));
  if (!country) return usage();
  double threshold = args.double_or("threshold", 0.9);

  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"),
                           /*strict=*/false, &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;
  core::Pipeline pipeline = make_pipeline(*data);
  const auto& paths = pipeline.sanitized().paths;

  std::string view_name = args.get("view", "national");
  core::CountryView view;
  if (view_name == "national") {
    view = core::ViewBuilder::national(paths, *country);
  } else if (view_name == "international") {
    view = core::ViewBuilder::international(paths, *country);
  } else if (view_name == "outbound") {
    view = core::ViewBuilder::outbound(paths, *country);
  } else {
    return usage();
  }

  std::printf("%s view of %s: %zu VPs, %zu paths\n", view_name.c_str(),
              country->to_string().c_str(), view.vp_count(), view.size());
  core::StabilityAnalyzer analyzer{pipeline.rankings()};
  for (auto [label, kind] :
       {std::pair{"hegemony", core::MetricKind::kHegemony},
        std::pair{"customer cone", core::MetricKind::kCustomerCone}}) {
    auto curve = analyzer.analyze(view, kind);
    std::size_t need = core::StabilityAnalyzer::min_vps_for(curve, threshold);
    std::printf("%-14s NDCG>=%.2f needs %s VPs\n", label, threshold,
                need ? std::to_string(need).c_str() : "more");
  }
  return 0;
}

// -------------------------------------------------------------- compare

int cmd_compare(const Args& args) {
  if (!args.has("before") || !args.has("after")) return usage();
  auto top_k = args.size_or("top", 10);
  std::string metric = args.get("metric", "CCI");

  // Accepts either a plain ranking CSV (rank,asn,score) or the long-form
  // country-metrics CSV (country,metric,rank,asn,score) filtered by
  // --metric.
  auto load = [&](const std::string& path) -> std::optional<rank::Ranking> {
    std::ifstream is{path};
    if (!is) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return std::nullopt;
    }
    rank::Ranking plain = io::read_ranking_csv(is);
    if (!plain.empty()) return plain;
    std::ifstream again{path};
    rank::Ranking long_form = io::read_metric_from_country_csv(again, metric);
    if (long_form.empty()) {
      std::fprintf(stderr, "%s holds no parsable ranking (metric %s)\n",
                   path.c_str(), metric.c_str());
      return std::nullopt;
    }
    return long_form;
  };
  auto before = load(args.get("before"));
  auto after = load(args.get("after"));
  if (!before || !after) return 1;

  core::RankDelta delta = core::compare_rankings(*before, *after, top_k);
  util::Table table{{"AS", "before", "after", "shift", "score change"}};
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);
  table.set_align(4, util::Align::kRight);
  for (const core::RankShift& s : delta.shifts) {
    std::string shift;
    if (s.entered()) shift = "new";
    else if (s.left()) shift = "out";
    else if (s.rank_change() > 0) shift = "+" + std::to_string(s.rank_change());
    else shift = std::to_string(s.rank_change());
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.4f", s.score_change());
    auto rank_cell = [](const std::optional<std::size_t>& r) {
      return r ? std::to_string(*r) : std::string("-");
    };
    table.add_row({std::to_string(s.asn), rank_cell(s.before_rank),
                   rank_cell(s.after_rank), shift, buf});
  }
  table.print(std::cout);
  std::printf("entries: %zu, exits: %zu, max movement: %ld, "
              "ordering agreement (Spearman): %.3f\n",
              delta.entries().size(), delta.exits().size(), delta.max_movement(),
              delta.agreement());
  return 0;
}

// ---------------------------------------------------------------- infer

int cmd_infer(const Args& args) {
  if (!args.has("dir") || !args.has("out")) return usage();
  fs::path dir{args.get("dir")};

  // Only the RIBs are needed; reuse the loader's RIB/update logic by
  // loading the full data set (cheap relative to inference itself).
  auto data = load_dataset(dir, /*infer_relationships=*/false);
  bool have_truth = data.has_value();
  bgp::RibCollection ribs;
  if (data) {
    ribs = std::move(data->ribs);
  } else {
    std::ifstream ribs_is{dir / "ribs.txt"};
    if (!ribs_is) return 1;
    bgp::MrtTextReader reader;
    ribs = reader.read_collection(ribs_is);
  }
  if (ribs.days.empty()) {
    std::fprintf(stderr, "no RIB data in %s\n", dir.string().c_str());
    return 1;
  }

  std::printf("inferring relationships from %zu paths...\n",
              ribs.days[0].entries.size());
  infer::RelationshipInference inference;
  for (const auto& e : ribs.days[0].entries) inference.add_path(e.path);
  infer::InferenceResult result = inference.infer();
  std::printf("labeled %zu links; clique of %zu:", result.link_count,
              result.clique.size());
  for (bgp::Asn asn : result.clique) std::printf(" %u", asn);
  std::printf("\n");

  if (args.has("validate") && have_truth) {
    infer::ValidationScore score =
        infer::validate_against(data->relationships, result.graph);
    std::printf("validation vs %s/as-rel.txt: accuracy %.1f%% "
                "(p2c %zu/%zu, p2p %zu/%zu over %zu shared links)\n",
                dir.string().c_str(), score.accuracy() * 100.0,
                score.correct_p2c, score.total_p2c, score.correct_p2p,
                score.total_p2p, score.shared_links);
  }

  if (!write_file(args.get("out"), [&](std::ostream& os) {
        io::write_as_rel(os, result.graph);
      })) {
    return 1;
  }
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

// --------------------------------------------------------------- health

int cmd_health(const Args& args) {
  if (!args.has("dir")) return usage();
  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                           &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;
  robust::DegradationPolicy policy = degradation_from_args(args);
  core::Pipeline pipeline = make_pipeline(*data, policy);

  robust::HealthReport report = robust::compute_health(pipeline, policy);
  if (report.countries.empty()) {
    std::fprintf(stderr, "no geolocated evidence in this data set\n");
    return kExitEmptyResult;
  }

  auto tier = [](robust::ConfidenceTier t) {
    return std::string(robust::to_string(t));
  };
  auto write_csv = [&](std::ostream& os) {
    os << "country,national_vps,international_vps,accepted_prefixes,"
          "geolocated_addresses,no_consensus_prefixes,no_consensus_addresses,"
          "geo_consensus,national_tier,international_tier,geo_tier,overall\n";
    for (const robust::CountryHealth& h : report.countries) {
      os << h.country.to_string() << ',' << h.national_vps << ','
         << h.international_vps << ',' << h.accepted_prefixes << ','
         << h.geolocated_addresses << ',' << h.no_consensus_prefixes << ','
         << h.no_consensus_addresses << ',' << h.geo_consensus() << ','
         << tier(h.national_tier) << ',' << tier(h.international_tier) << ','
         << tier(h.geo_tier) << ',' << tier(h.overall) << '\n';
    }
  };

  if (args.has("csv")) {
    write_csv(std::cout);
  } else {
    util::Table table{{"country", "natVP", "intlVP", "prefixes", "addresses",
                       "consensus", "nat", "intl", "geo", "overall"}};
    for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::kRight);
    for (const robust::CountryHealth& h : report.countries) {
      table.add_row({h.country.to_string(), std::to_string(h.national_vps),
                     std::to_string(h.international_vps),
                     std::to_string(h.accepted_prefixes),
                     std::to_string(h.geolocated_addresses),
                     util::percent(h.geo_consensus()), tier(h.national_tier),
                     tier(h.international_tier), tier(h.geo_tier),
                     tier(h.overall)});
    }
    table.print(std::cout);
    std::printf("\n%zu countries: %zu high, %zu degraded, %zu insufficient\n",
                report.countries.size(),
                report.count(robust::ConfidenceTier::kHigh),
                report.count(robust::ConfidenceTier::kDegraded),
                report.count(robust::ConfidenceTier::kInsufficient));
    std::printf("drop rates: ingest %s, sanitize %s\n",
                util::percent(report.ingest_drop_rate).c_str(),
                util::percent(report.sanitize_drop_rate).c_str());
  }

  if (args.has("out")) {
    if (!write_file(args.get("out"), write_csv)) return kExitError;
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  return check_drop_rate(args, data->ingest_stats, pipeline.sanitized().stats);
}

// ----------------------------------------------------------- robustness

std::optional<std::vector<std::size_t>> parse_size_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (std::string_view field : util::split(s, ',')) {
    auto v = util::parse_int<std::size_t>(util::trim(field));
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::optional<std::vector<double>> parse_double_list(const std::string& s) {
  std::vector<double> out;
  for (std::string_view field : util::split(s, ',')) {
    try {
      out.push_back(std::stod(std::string(util::trim(field))));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

int cmd_robustness(const Args& args) {
  if (!args.has("dir")) return usage();
  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                           &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;
  core::Pipeline pipeline = make_pipeline(*data, degradation_from_args(args));

  robust::FaultPlan plan = robust::FaultPlan::defaults();
  plan.seed = args.u64_or("seed", 42);
  plan.trials = args.size_or("trials", 3);
  plan.top_k = args.size_or("top", 10);
  if (args.has("vp-steps")) {
    auto steps = parse_size_list(args.get("vp-steps"));
    if (!steps) return usage();
    plan.vp_drop_steps = std::move(*steps);
  }
  if (args.has("geo-steps")) {
    auto steps = parse_double_list(args.get("geo-steps"));
    if (!steps) return usage();
    plan.geo_corrupt_steps = std::move(*steps);
  }
  if (args.has("path-steps")) {
    auto steps = parse_double_list(args.get("path-steps"));
    if (!steps) return usage();
    plan.path_drop_steps = std::move(*steps);
  }
  if (args.has("vp-target")) {
    auto target = geo::CountryCode::parse(args.get("vp-target"));
    if (!target) return usage();
    plan.vp_target = *target;
  }

  std::vector<geo::CountryCode> countries;
  if (args.has("country")) {
    const std::string country_list = args.get("country");
    for (std::string_view field : util::split(country_list, ',')) {
      auto cc = geo::CountryCode::parse(std::string(util::trim(field)));
      if (!cc) {
        std::fprintf(stderr, "bad country code '%s'\n",
                     std::string(field).c_str());
        return kExitError;
      }
      countries.push_back(*cc);
    }
  }

  robust::RobustnessHarness harness{pipeline};
  robust::RobustnessReport report = harness.run(plan, countries);
  if (report.curves.empty()) {
    std::fprintf(stderr, "no countries to perturb in this data set\n");
    return kExitEmptyResult;
  }

  auto fmt = [](double v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  auto write_csv = [&](std::ostream& os) {
    os << "country,dimension,severity,trials,cci,ccn,ahi,ahn,worst\n";
    for (const robust::RobustnessCurve& curve : report.curves) {
      for (const robust::RobustnessPoint& p : curve.points) {
        os << curve.country.to_string() << ',' << robust::to_string(p.dimension)
           << ',' << p.severity << ',' << p.trials << ',' << fmt(p.cci) << ','
           << fmt(p.ccn) << ',' << fmt(p.ahi) << ',' << fmt(p.ahn) << ','
           << fmt(p.worst) << '\n';
      }
    }
  };

  if (args.has("csv")) {
    write_csv(std::cout);
  } else {
    util::Table table{{"country", "fault", "severity", "CCI", "CCN", "AHI",
                       "AHN", "worst"}};
    for (std::size_t c = 2; c <= 7; ++c) table.set_align(c, util::Align::kRight);
    for (const robust::RobustnessCurve& curve : report.curves) {
      for (const robust::RobustnessPoint& p : curve.points) {
        std::string severity = p.dimension == robust::FaultDimension::kDropVps
                                   ? std::to_string(static_cast<std::size_t>(p.severity))
                                   : util::percent(p.severity);
        table.add_row({curve.country.to_string(),
                       std::string(robust::to_string(p.dimension)), severity,
                       fmt(p.cci), fmt(p.ccn), fmt(p.ahi), fmt(p.ahn),
                       fmt(p.worst)});
      }
    }
    table.print(std::cout);
    auto most_fragile = std::min_element(
        report.curves.begin(), report.curves.end(),
        [](const robust::RobustnessCurve& a, const robust::RobustnessCurve& b) {
          return a.worst() < b.worst();
        });
    std::printf("\nmost fragile: %s (worst single-trial NDCG %.4f over %zu "
                "trials/step, seed %llu)\n",
                most_fragile->country.to_string().c_str(),
                most_fragile->worst(), plan.trials,
                static_cast<unsigned long long>(plan.seed));
  }

  if (args.has("out")) {
    if (!write_file(args.get("out"), write_csv)) return kExitError;
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  return check_drop_rate(args, data->ingest_stats, pipeline.sanitized().stats);
}

// ------------------------------------------------------------- snapshot

/// Builds a serve::Snapshot from a data-set directory: the full batch
/// pipeline (all-country rankings + health report), frozen with a
/// caller-visible identity. The id defaults to the wall clock so
/// successive snapshots of a living feed order naturally (tools/ is
/// outside the GR002 determinism scope; pass --id for reproducibility).
std::optional<serve::Snapshot> build_snapshot(const Args& args, int* fail_code) {
  auto data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                           fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return std::nullopt;
  core::Pipeline pipeline = make_pipeline(*data, degradation_from_args(args));

  auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  serve::SnapshotMeta meta;
  meta.id = args.u64_or("id", now);
  // --created pins creation time for byte-reproducible snapshots (the
  // live-vs-batch CI tier compares GRSNAP01 files with cmp).
  meta.created_unix = args.u64_or("created", now);
  meta.label = args.get("label");
  serve::Snapshot snapshot = serve::Snapshot::build(pipeline, std::move(meta));
  if (snapshot.countries.empty()) {
    std::fprintf(stderr, "no geolocated evidence in this data set\n");
    if (fail_code) *fail_code = kExitEmptyResult;
    return std::nullopt;
  }
  return snapshot;
}

int cmd_snapshot(const Args& args) {
  if (!args.has("dir") || !args.has("out")) return usage();
  int fail_code = kExitError;
  auto snapshot = build_snapshot(args, &fail_code);
  if (!snapshot) return fail_code;
  std::ofstream os{args.get("out"), std::ios::binary};
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", args.get("out").c_str());
    return kExitError;
  }
  io::write_snapshot(os, *snapshot);
  if (!os.flush()) {
    std::fprintf(stderr, "short write to %s\n", args.get("out").c_str());
    return kExitError;
  }
  std::printf("wrote snapshot id %llu (%zu countries) to %s\n",
              static_cast<unsigned long long>(snapshot->meta.id),
              snapshot->countries.size(), args.get("out").c_str());
  return kExitOk;
}

// ----------------------------------------------------------------- live

/// The health monitor's view, reshaped for the service's /v1/health
/// "live" block and the georank_live_health_* metrics.
serve::LiveHealth live_health_of(const live::HealthMonitor& monitor,
                                 double now) {
  serve::LiveHealth health;
  health.valid = true;
  health.state = monitor.state();
  health.age_seconds = monitor.age(now);
  health.stale_after_seconds = monitor.options().staleness.stale_after_seconds;
  health.degraded_after_seconds =
      monitor.options().staleness.degraded_after_seconds;
  health.entered = monitor.counters().entered;
  health.reopen_failures = monitor.counters().reopen_failures;
  health.reopen_successes = monitor.counters().reopen_successes;
  health.last_backoff_seconds = monitor.last_backoff_seconds();
  return health;
}

/// Replays an update archive through the incremental live pipeline:
/// each flush re-sanitizes the rolling day window, reuses every shard
/// whose digest is unchanged, re-ranks only the changed countries and
/// republishes through the service's RCU swap. With --port the HTTP
/// front end serves the evolving snapshots while the replay runs; with
/// --out the final state is frozen to a GRSNAP01 file whose bytes match
/// a batch `georank snapshot` of the same archive (given the same
/// --id/--label/--created).
int cmd_live(const Args& args) {
  if (!args.has("dir")) return usage();
  const fs::path dir = args.get("dir");
  int fail_code = kExitError;
  auto data = load_dataset(dir, args.has("infer"), args.has("strict"),
                           &fail_code, 0, /*skip_ribs=*/true);
  if (!data) return fail_code;

  core::PipelineConfig config;
  config.sanitizer.route_server_asns = data->route_servers;
  config.degradation = degradation_from_args(args);
  core::Pipeline pipeline{data->geo_db, data->vps, data->asn_registry,
                          data->relationships, config};

  serve::RankingServiceOptions service_options;
  service_options.cache_capacity = args.size_or("cache", 256);
  service_options.history_limit = args.size_or("history", 8);
  serve::RankingService service{service_options};

  live::UpdatePipelineOptions live_options;
  live_options.flush_batch = args.size_or("batch", 4096);
  live_options.max_pending = args.size_or("max-pending", 65536);
  live_options.reorder_window = args.u64_or("reorder", 0);
  live_options.window_days = args.size_or("window", 0);
  live_options.mode = args.has("strict") ? bgp::ParseMode::kStrict
                                         : bgp::ParseMode::kTolerant;
  live_options.snapshot_id_base = args.u64_or("id-base", 1);
  live_options.label = args.get("label");
  const std::string overflow = args.get("overflow", "drain");
  if (overflow == "shed") {
    live_options.overflow = live::OverflowPolicy::kShedNewest;
  } else if (overflow != "drain") {
    std::fprintf(stderr, "bad --overflow '%s' (drain|shed)\n", overflow.c_str());
    return usage();
  }
  live::UpdatePipeline live{pipeline, service, live_options};

  // Durability wiring (--journal-dir): write-ahead journal, periodic
  // checkpoints, and --recover to resume an interrupted run. recover()
  // must run on the fresh pipeline BEFORE set_journal/set_checkpoint —
  // replayed records are already on disk and must not be re-journaled.
  std::optional<live::UpdateJournal> journal;
  if (args.has("journal-dir")) {
    const fs::path journal_dir = args.get("journal-dir");
    live::UpdateJournalOptions journal_options;
    journal_options.dir = journal_dir.string();
    journal_options.segment_bytes = args.u64_or("segment-bytes", 4u << 20);
    const std::string fsync = args.get("fsync", "never");
    if (fsync == "each") {
      journal_options.fsync = live::FsyncPolicy::kEachRecord;
    } else if (fsync != "never") {
      std::fprintf(stderr, "bad --fsync '%s' (never|each)\n", fsync.c_str());
      return usage();
    }
    journal.emplace(journal_options);
    const std::string checkpoint_path =
        (journal_dir / "checkpoint.grckpt").string();
    if (args.has("recover")) {
      const live::RecoveryResult recovery =
          live::recover(live, *journal, checkpoint_path);
      std::printf(
          "recovered: checkpoint %s, %llu records replayed from seq %llu, "
          "next seq %llu\n",
          recovery.checkpoint_discarded
              ? "discarded (corrupt)"
              : recovery.checkpoint_loaded ? "loaded" : "absent",
          static_cast<unsigned long long>(recovery.records_replayed),
          static_cast<unsigned long long>(recovery.replay_from),
          static_cast<unsigned long long>(recovery.next_seq));
    } else if (journal->next_seq() != 0) {
      std::fprintf(stderr,
                   "journal %s already holds records up to seq %llu; pass "
                   "--recover to resume it (or point --journal-dir at a "
                   "fresh directory)\n",
                   journal_dir.string().c_str(),
                   static_cast<unsigned long long>(journal->next_seq()));
      return kExitError;
    }
    live.set_journal(&*journal);
    live.set_checkpoint(checkpoint_path, args.u64_or("checkpoint-every", 0));
  } else if (args.has("recover") || args.has("checkpoint-every")) {
    std::fprintf(stderr, "--recover/--checkpoint-every need --journal-dir\n");
    return usage();
  }

  const fs::path updates_path =
      args.has("updates") ? fs::path{args.get("updates")} : dir / "updates.txt";
  std::ifstream updates_is{updates_path};
  if (!updates_is) {
    std::fprintf(stderr, "missing %s\n", updates_path.string().c_str());
    return kExitError;
  }
  bgp::UpdateTextReader reader{live_options.mode};
  std::printf("replaying updates from %s (batch %zu)\n",
              updates_path.string().c_str(), live_options.flush_batch);

  // Optional HTTP front end: queries hit the evolving snapshots while
  // the replay runs.
  std::optional<serve::HttpServer> server;
  if (args.has("port")) {
    serve::HttpServerOptions http_options;
    http_options.bind_address = args.get("bind", "127.0.0.1");
    http_options.port = static_cast<std::uint16_t>(args.size_or("port", 8080));
    http_options.threads = args.thread_count_or("threads", 4);
    server.emplace(service, http_options);
    try {
      server->start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot start server: %s\n", e.what());
      return kExitError;
    }
    std::printf("listening on %s:%u\n", http_options.bind_address.c_str(),
                static_cast<unsigned>(server->port()));
    std::fflush(stdout);  // scripts parse the port from this line
  }

  auto print_report = [](const live::FlushReport& report) {
    if (!report.published) return;
    std::printf("  flush -> snapshot %llu: %zu updates (%zu ann, %zu wd), "
                "%zu prefixes -> %zu countries, shards %zu kept / %zu "
                "rebuilt, memos %zu warm, %.1f ms\n",
                static_cast<unsigned long long>(report.snapshot_id),
                report.batch, report.announces, report.withdraws,
                report.touched_prefixes, report.touched_countries.size(),
                report.apply.shards_kept, report.apply.shards_rebuilt,
                report.apply.memos_kept, report.total_seconds * 1e3);
  };

  // Self-pipe signal handling: SIGINT/SIGTERM break the replay loop so
  // shutdown always takes the graceful path — drain, final checkpoint,
  // journal sync — instead of dying mid-batch.
  serve::SignalPipe signals;

  // Stream line by line (not read_all) so a fifo feeder's updates are
  // journaled as they arrive; the CI recovery tier kills this process
  // mid-burst and expects the journal to hold everything it accepted.
  std::string line;
  bgp::UpdateMessage message;
  while (std::getline(updates_is, line)) {
    if (signals.signalled()) {
      std::printf("interrupted; draining\n");
      break;
    }
    if (!reader.parse_line(line, message)) continue;
    if (auto report = live.push(message)) print_report(*report);
  }
  live.set_parse_stats(reader.stats());
  const live::FlushReport final_report = live.drain();
  print_report(final_report);

  if (journal) {
    // Shutdown checkpoint: the next --recover restores this state and
    // replays nothing. write_checkpoint() syncs the journal first.
    live.write_checkpoint();
    std::printf("checkpointed at seq %llu (%llu journaled records in %llu "
                "segments)\n",
                static_cast<unsigned long long>(live.next_seq()),
                static_cast<unsigned long long>(journal->stats().records),
                static_cast<unsigned long long>(journal->stats().segments));
  }

  const live::LiveStats& stats = live.stats();
  std::printf("replay done: %llu applied (%llu ann, %llu wd), %llu "
              "out-of-order, %llu out-of-range, %zu spurious withdrawals, "
              "%llu days (%llu quiet), %llu publishes\n",
              static_cast<unsigned long long>(stats.applied),
              static_cast<unsigned long long>(stats.announces),
              static_cast<unsigned long long>(stats.withdraws),
              static_cast<unsigned long long>(stats.out_of_order),
              static_cast<unsigned long long>(stats.day_out_of_range),
              live.rib().spurious_withdrawals(),
              static_cast<unsigned long long>(stats.days_closed + 1),
              static_cast<unsigned long long>(stats.quiet_days),
              static_cast<unsigned long long>(stats.publishes));
  if (args.has("ingest-stats")) print_ingest_stats(reader.stats());

  if (stats.publishes == 0) {
    std::fprintf(stderr, "no updates applied; nothing published\n");
    return kExitEmptyResult;
  }

  if (args.has("out")) {
    // Freeze the final state with pinned identity so the bytes are
    // comparable against a batch `georank snapshot` of the same archive.
    // current() can be null after a recovery that replayed nothing new
    // (publishes restored from the checkpoint, no fresh flush).
    const std::shared_ptr<const serve::Snapshot> current = service.current();
    serve::SnapshotMeta meta;
    meta.id = args.u64_or(
        "id", current ? current->meta.id
                      : live_options.snapshot_id_base + stats.publishes);
    meta.created_unix =
        args.u64_or("created", current ? current->meta.created_unix : 0);
    meta.label = args.get("label");
    serve::Snapshot final_snapshot =
        serve::Snapshot::build(pipeline, std::move(meta));
    std::ofstream os{args.get("out"), std::ios::binary};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", args.get("out").c_str());
      return kExitError;
    }
    io::write_snapshot(os, final_snapshot);
    if (!os.flush()) {
      std::fprintf(stderr, "short write to %s\n", args.get("out").c_str());
      return kExitError;
    }
    std::printf("wrote snapshot id %llu (%zu countries) to %s\n",
                static_cast<unsigned long long>(final_snapshot.meta.id),
                final_snapshot.countries.size(), args.get("out").c_str());
  }

  if (server) {
    // Stay up for queries until interrupted (mirrors cmd_serve),
    // ticking the staleness state machine so /v1/health tracks the
    // watermark's age while we idle. With --follow, keep consuming
    // lines appended to the updates file; when the file vanishes, back
    // off with the monitor's jittered exponential ladder and treat a
    // reopened file as a rotation (consume it from the beginning).
    live::HealthMonitorOptions monitor_options;
    const double stale_after = args.double_or(
        "stale-after", monitor_options.staleness.stale_after_seconds);
    monitor_options.staleness.stale_after_seconds = stale_after;
    monitor_options.staleness.degraded_after_seconds =
        args.double_or("degraded-after", stale_after * 3.0);
    live::HealthMonitor monitor{monitor_options};
    const auto start = std::chrono::steady_clock::now();
    auto now = [start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    monitor.note_progress(now());  // the replay just advanced the stream
    service.set_live_health(live_health_of(monitor, now()));

    const bool follow = args.has("follow");
    bool followed_past_drain = false;
    while (!signals.wait(200)) {
      if (follow) {
        bool advanced = false;
        updates_is.clear();
        while (std::getline(updates_is, line)) {
          if (!reader.parse_line(line, message)) continue;
          if (auto report = live.push(message)) print_report(*report);
          advanced = true;
          followed_past_drain = true;
        }
        live.set_parse_stats(reader.stats());
        if (advanced) {
          monitor.note_progress(now());
        } else if (!fs::exists(updates_path)) {
          const double delay = monitor.note_reopen_failure(now());
          service.set_live_health(live_health_of(monitor, now()));
          if (signals.wait(static_cast<int>(delay * 1000.0))) break;
          std::ifstream reopened{updates_path};
          if (reopened) {
            updates_is = std::move(reopened);
            monitor.note_reopen_success(now());
          }
        }
      }
      monitor.tick(now());
      service.set_live_health(live_health_of(monitor, now()));
    }
    if (followed_past_drain) {
      // --follow pushed past the pre-serve drain; drain again so the
      // shutdown checkpoint captures everything.
      print_report(live.drain());
      if (journal) live.write_checkpoint();
    }
    std::printf("draining...\n");
    server->stop();
  }
  return kExitOk;
}

// -------------------------------------------------------------- journal

/// Read-only inspection of a GRJRNL01 journal directory and the
/// checkpoint beside it. Never repairs or truncates, so it is safe to
/// point at a journal a running `georank live` has open for append —
/// CI's recovery tier polls this to decide when the feeder has durably
/// absorbed a burst before delivering its kill -9.
int cmd_journal(const Args& args) {
  if (!args.has("dir")) return usage();
  const fs::path dir = args.get("dir");
  try {
    const live::JournalScan scan = live::scan_journal(dir.string());
    std::printf("records %llu segments %llu next-seq %llu torn-bytes %llu\n",
                static_cast<unsigned long long>(scan.records),
                static_cast<unsigned long long>(scan.segments),
                static_cast<unsigned long long>(scan.next_seq),
                static_cast<unsigned long long>(scan.torn_bytes));
    const std::string checkpoint_path = (dir / "checkpoint.grckpt").string();
    if (const auto checkpoint = live::load_checkpoint_file(checkpoint_path)) {
      std::printf("checkpoint seq %llu routes %zu pending %zu publishes %llu\n",
                  static_cast<unsigned long long>(checkpoint->seq),
                  checkpoint->rib_entries.size(), checkpoint->pending.size(),
                  static_cast<unsigned long long>(checkpoint->stats.publishes));
    } else {
      std::printf("checkpoint none\n");
    }
  } catch (const live::JournalError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitParseFailure;
  }
  return kExitOk;
}

// ---------------------------------------------------------------- serve

// ------------------------------------------------------------- whatif

int cmd_whatif(const Args& args) {
  if (!args.has("dir") || !args.has("scenario")) return usage();

  std::ifstream scenario_is{args.get("scenario")};
  if (!scenario_is) {
    std::fprintf(stderr, "cannot open %s\n", args.get("scenario").c_str());
    return kExitError;
  }
  std::ostringstream scenario_text;
  scenario_text << scenario_is.rdbuf();

  scenario::Scenario parsed;
  try {
    parsed = scenario::parse(scenario_text.str());
  } catch (const scenario::ScenarioParseError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return kExitParseFailure;
  }

  int fail_code = kExitError;
  auto data = load_dataset(args.get("dir"), args.has("infer"),
                           args.has("strict"), &fail_code,
                           args.thread_count_or("ingest-threads", 0));
  if (!data) return fail_code;
  core::Pipeline pipeline = make_pipeline(*data, degradation_from_args(args));

  auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // --id pins the snapshot identity the JSON reports, so a `serve --id
  // N` endpoint and a `whatif --id N` file are byte-comparable.
  const std::uint64_t snapshot_id = args.u64_or("id", now);

  scenario::WhatIfEngine engine{pipeline, data->relationships, data->registry,
                                data->ribs};
  if (engine.baseline().empty()) {
    std::fprintf(stderr, "no geolocated evidence in this data set\n");
    return kExitEmptyResult;
  }

  scenario::Report report;
  try {
    report = engine.run(parsed, args.size_or("top", 10));
  } catch (const scenario::ApplyError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return kExitParseFailure;
  }

  std::fputs(scenario::render_text(report).c_str(), stdout);

  if (args.has("out")) {
    std::ofstream os{args.get("out"), std::ios::binary};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", args.get("out").c_str());
      return kExitError;
    }
    // Exactly the /v1/whatif 200 body (no trailing newline): the CI
    // whatif tier byte-compares this file against a curl of the
    // endpoint.
    os << serve::render_whatif_json(report, snapshot_id);
    if (!os.flush()) {
      std::fprintf(stderr, "short write to %s\n", args.get("out").c_str());
      return kExitError;
    }
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  if (args.has("csv")) {
    std::ofstream os{args.get("csv"), std::ios::binary};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", args.get("csv").c_str());
      return kExitError;
    }
    os << scenario::render_csv(report);
    if (!os.flush()) {
      std::fprintf(stderr, "short write to %s\n", args.get("csv").c_str());
      return kExitError;
    }
    std::printf("wrote %s\n", args.get("csv").c_str());
  }
  return kExitOk;
}

int cmd_serve(const Args& args) {
  if (!args.has("snapshot") && !args.has("dir")) return usage();

  serve::RankingServiceOptions service_options;
  service_options.cache_capacity = args.size_or("cache", 256);
  service_options.history_limit = args.size_or("history", 8);
  serve::RankingService service{service_options};

  // Serving from a data directory keeps the dataset + pipeline alive so
  // /v1/whatif has a world to counterfact over; snapshot-file serving
  // has no RIB data and leaves the endpoint answering 503.
  std::optional<DataSet> data;
  std::optional<core::Pipeline> pipeline;
  std::optional<scenario::WhatIfEngine> engine;

  if (args.has("snapshot")) {
    const std::string snapshot_list = args.get("snapshot");
    for (std::string_view field : util::split(snapshot_list, ',')) {
      const std::string path{util::trim(field)};
      try {
        std::ifstream is{path, std::ios::binary};
        if (!is) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          return kExitError;
        }
        auto snapshot =
            std::make_shared<serve::Snapshot>(io::read_snapshot(is));
        std::printf("loaded snapshot id %llu (%zu countries) from %s\n",
                    static_cast<unsigned long long>(snapshot->meta.id),
                    snapshot->countries.size(), path.c_str());
        service.publish(std::move(snapshot));
      } catch (const io::SnapshotDecodeError& e) {
        std::fprintf(stderr, "rejected snapshot %s: %s\n", path.c_str(),
                     e.what());
        return kExitParseFailure;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(), e.what());
        return kExitError;
      }
    }
  } else {
    int fail_code = kExitError;
    data = load_dataset(args.get("dir"), args.has("infer"), args.has("strict"),
                        &fail_code,
                        args.thread_count_or("ingest-threads", 0));
    if (!data) return fail_code;
    pipeline.emplace(make_pipeline(*data, degradation_from_args(args)));

    auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    serve::SnapshotMeta meta;
    meta.id = args.u64_or("id", now);
    meta.created_unix = args.u64_or("created", now);
    meta.label = args.get("label");
    serve::Snapshot snapshot =
        serve::Snapshot::build(*pipeline, std::move(meta));
    if (snapshot.countries.empty()) {
      std::fprintf(stderr, "no geolocated evidence in this data set\n");
      return kExitEmptyResult;
    }
    service.publish(std::make_shared<serve::Snapshot>(std::move(snapshot)));

    engine.emplace(*pipeline, data->relationships, data->registry,
                   data->ribs);
    service.set_whatif(&*engine);
    std::printf("what-if engine attached (%zu baseline countries)\n",
                engine->baseline().size());
  }

  serve::HttpServerOptions http_options;
  http_options.bind_address = args.get("bind", "127.0.0.1");
  http_options.port = static_cast<std::uint16_t>(args.size_or("port", 8080));
  http_options.threads = args.thread_count_or("threads", 4);
  serve::HttpServer server{service, http_options};
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start server: %s\n", e.what());
    return kExitError;
  }
  std::printf("listening on %s:%u\n", http_options.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts parse the port from this line

  // Self-pipe signal handling: SIGINT/SIGTERM wake the park below and
  // shutdown takes the graceful drain path.
  serve::SignalPipe signals;
  (void)signals.wait();

  std::printf("draining...\n");
  server.stop();
  const serve::HttpServerStats stats = server.stats();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::Options::parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command() == "generate") return cmd_generate(*args);
    if (args->command() == "sanitize") return cmd_sanitize(*args);
    if (args->command() == "rank") return cmd_rank(*args);
    if (args->command() == "stability") return cmd_stability(*args);
    if (args->command() == "compare") return cmd_compare(*args);
    if (args->command() == "infer") return cmd_infer(*args);
    if (args->command() == "health") return cmd_health(*args);
    if (args->command() == "robustness") return cmd_robustness(*args);
    if (args->command() == "snapshot") return cmd_snapshot(*args);
    if (args->command() == "serve") return cmd_serve(*args);
    if (args->command() == "whatif") return cmd_whatif(*args);
    if (args->command() == "live") return cmd_live(*args);
    if (args->command() == "journal") return cmd_journal(*args);
  } catch (const bgp::MrtParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return kExitParseFailure;
  } catch (const bgp::UpdateReplayError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return kExitParseFailure;
  } catch (const live::JournalError& e) {
    std::fprintf(stderr, "journal error: %s\n", e.what());
    return kExitParseFailure;
  } catch (const util::OptionParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitError;
  }
  return usage();
}
