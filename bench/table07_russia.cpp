// Table 7: Russia (§5.3). Rostelecom (12389) tops both hegemony views;
// Lumen (3356) and Arelion (1299) dominate CCI (foreign transit); the
// Vodafone (1273) CCN slot comes transitively through TransTelekom.
#include "common/case_study.hpp"

using namespace georank;
using namespace gen::asn;

int main() {
  bench::print_banner("Table 7", "Top ASes per metric in Russia (RU)");
  auto ctx = bench::make_context();
  const bench::PaperCell rows[] = {
      {kRostelecom, "7 60%", "1 32%", "3 48%", "1 20%"},
      {kVodafone, "5 68%", "53 0%", "1 58%", "10 2%"},
      {kLumen, "1 97%", "7 6%", "30 2%", "21 1%"},
      {kArelion, "2 86%", "3 11%", "4 32%", "85 0%"},
      {kErTelecom, "20 17%", "2 11%", "17 13%", "4 5%"},
      {kTransTelekom, "6 62%", "5 7%", "2 51%", "7 3%"},
      {kMtsRu, "19 17%", "8 6%", "14 15%", "2 7%"},
  };
  bench::print_case_study(*ctx, geo::CountryCode::of("RU"), rows);
  return 0;
}
