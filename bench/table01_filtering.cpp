// Table 1: path-filtering accounting. The paper processed 248M paths from
// the April 2021 RouteViews/RIS RIBs; 30.13% were rejected across six
// categories. We regenerate the same accounting over the synthetic
// five-day collection (our extra "covered prefix" row is folded into the
// paper's prefix handling; see §3.1).
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 1",
                      "Filtering paths from the (synthetic) April 2021 data");

  auto ctx = bench::make_context();
  const sanitize::SanitizeStats& s = ctx->pipeline->sanitized().stats;
  auto pct = [&](std::size_t n) {
    return util::percent(static_cast<double>(n) / static_cast<double>(s.total), 2);
  };

  util::Table table{{"category", "paths", "%", "paper %"}};
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);
  table.add_row({"rejected", std::to_string(s.rejected()), pct(s.rejected()),
                 "30.13%"});
  table.add_row({"  unstable (not seen across all five days)",
                 std::to_string(s.unstable), pct(s.unstable), "8.06%"});
  table.add_row({"  unallocated (unassigned AS)", std::to_string(s.unallocated),
                 pct(s.unallocated), "0.09%"});
  table.add_row({"  loop (nonadjacent duplicates)", std::to_string(s.loop),
                 pct(s.loop), "0.08%"});
  table.add_row({"  poisoned (non-top-tier AS between top-tier ASes)",
                 std::to_string(s.poisoned), pct(s.poisoned), "0.00%"});
  table.add_row({"  VP no location (VP at multi-hop IX)",
                 std::to_string(s.vp_no_location), pct(s.vp_no_location),
                 "20.98%"});
  table.add_row({"  covered prefix (more specifics cover it)",
                 std::to_string(s.covered_prefix), pct(s.covered_prefix),
                 "(within prefix handling)"});
  table.add_row({"  prefix no location (no or multiple countries)",
                 std::to_string(s.prefix_no_location), pct(s.prefix_no_location),
                 "0.91%"});
  table.add_rule();
  table.add_row({"accepted", std::to_string(s.accepted), pct(s.accepted),
                 "69.87%"});
  table.add_row({"total", std::to_string(s.total), "100.00%", "100.00%"});
  table.print(std::cout);

  std::printf("\ndistinct accepted (VP, prefix, path) triples: %zu\n",
              ctx->pipeline->sanitized().paths.size());
  std::printf("inferred top-tier clique used by the poisoning filter: %zu ASes\n",
              ctx->pipeline->sanitized().clique.size());
  return 0;
}
