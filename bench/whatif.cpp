// What-if engine benchmark behind BENCH_whatif.json: latency of a
// single-country de-peering counterfactual on an internet-preset world,
// four ways —
//
//   cold in-place the engine's own architecture (counterfactual computed
//                 ON the serving pipeline, baseline put back) without
//                 the memo machinery: two full Pipeline::load calls plus
//                 a from-scratch census per query
//   cold fresh    apply() + a from-scratch Pipeline::load of the edited
//                 collection into a SECOND pipeline + full census — no
//                 re-arm needed, but two sanitized worlds + stores live
//                 at peak (2x memory)
//   memo-assisted scenario::WhatIfEngine::run: Pipeline::apply_updates
//                 reusing every untouched country's shard columns and
//                 memoized rankings, then a Pipeline::restore of the
//                 baseline checkpoint (pure copies, no sanitize)
//   cache hit     the serve layer's LRU answering a repeated POST
//                 /v1/whatif without touching the engine at all
//
// The memo-assisted counterfactual is verified bit-identical to the
// cold recompute (same JSON bytes) before any speedup is reported.
//
// --smoke skips the timed repetitions: it runs one de-peering on a
// half-scale world and asserts bit identity, shard reuse on untouched
// countries, and LRU eviction on republish — the invariants the timed
// numbers depend on — as a cheap ctest guard.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_world.hpp"
#include "gen/internet.hpp"
#include "scenario/engine.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

using namespace georank;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WhatIfWorld {
  gen::World world;
  bgp::RibCollection ribs;
  core::PipelineConfig config;
  std::unique_ptr<core::Pipeline> pipeline;
  scenario::Scenario depeer;
};

/// The least-linked cross-country pair: severing it touches the fewest
/// shards, which is exactly the case the memo machinery is for.
scenario::Scenario thinnest_depeer(const gen::World& world) {
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::size_t> border;
  for (bgp::Asn asn : world.graph.ases()) {
    auto a = world.as_registry.find(asn);
    if (a == world.as_registry.end()) continue;
    for (const topo::Neighbor& n :
         world.graph.neighbors(world.graph.id_of(asn))) {
      auto b = world.as_registry.find(world.graph.asn_of(n.id));
      if (b == world.as_registry.end() || a->second == b->second) continue;
      if (a->second.raw() < b->second.raw()) {
        ++border[{a->second.raw(), b->second.raw()}];
      }
    }
  }
  auto thinnest = border.begin();
  for (auto it = border.begin(); it != border.end(); ++it) {
    if (it->second < thinnest->second) thinnest = it;
  }
  scenario::Event event;
  event.kind = scenario::EventKind::kDepeerCountries;
  event.country_a = geo::CountryCode::of(
      std::string{static_cast<char>(thinnest->first.first >> 8),
                  static_cast<char>(thinnest->first.first & 0xff)});
  event.country_b = geo::CountryCode::of(
      std::string{static_cast<char>(thinnest->first.second >> 8),
                  static_cast<char>(thinnest->first.second & 0xff)});
  scenario::Scenario s;
  s.name = "bench-depeer";
  s.seed = 7;
  s.events = {event};
  return s;
}

WhatIfWorld build_world(double scale) {
  gen::InternetScaleGenerator generator{gen::internet_spec(scale, 5)};
  WhatIfWorld w;
  w.world = generator.generate();
  w.ribs = generator.synthesize_ribs(w.world);
  w.config.sanitizer.clique = w.world.clique;
  w.config.sanitizer.route_server_asns = w.world.route_servers;
  w.pipeline = std::make_unique<core::Pipeline>(
      w.world.geo_db, w.world.vps, w.world.asn_registry, w.world.graph,
      w.config);
  w.pipeline->load(w.ribs);
  w.depeer = thinnest_depeer(w.world);
  return w;
}

/// Canonical bytes of a counterfactual census, memo stats zeroed so the
/// cold and memo-assisted paths are comparable field for field.
std::string census_bytes(const WhatIfWorld& w, const scenario::ApplyResult& edited,
                         const std::vector<core::CountryMetrics>& baseline,
                         const std::vector<core::CountryMetrics>& counterfactual) {
  scenario::Report report =
      scenario::build_report(w.depeer, edited.stats, scenario::MemoStats{},
                             baseline, counterfactual, 10);
  return serve::render_whatif_json(report, 1);
}

struct ColdRun {
  double seconds = 0.0;
  std::string bytes;
};

/// The no-memo strawman: re-propagate, then load the edited collection
/// into a FRESH pipeline and run the census from scratch.
ColdRun run_cold(const WhatIfWorld& w,
                 const std::vector<core::CountryMetrics>& baseline) {
  Clock::time_point start = Clock::now();
  scenario::ApplyResult edited =
      scenario::apply(w.depeer, w.world.graph, w.world.as_registry, w.ribs);
  core::Pipeline fresh{w.world.geo_db, w.world.vps, w.world.asn_registry,
                       w.world.graph, w.config};
  fresh.load(edited.ribs);
  std::vector<core::CountryMetrics> counterfactual = fresh.all_countries();
  ColdRun result;
  result.seconds = seconds_since(start);
  result.bytes = census_bytes(w, edited, baseline, counterfactual);
  return result;
}

int run_smoke() {
  WhatIfWorld w = build_world(0.5);
  scenario::WhatIfEngine engine{*w.pipeline, w.world.graph,
                                w.world.as_registry, w.ribs};

  scenario::Report report = engine.run(w.depeer, 10);
  if (report.memo.shards_kept == 0) {
    std::fprintf(stderr, "smoke FAIL: single de-peering kept no shards\n");
    return 1;
  }
  if (report.memo.memos_kept == 0) {
    std::fprintf(stderr, "smoke FAIL: no memoized rankings were reused\n");
    return 1;
  }

  // Memo-assisted counterfactual must be bit-identical to the cold
  // recompute of the same scenario.
  scenario::ApplyResult edited =
      scenario::apply(w.depeer, w.world.graph, w.world.as_registry, w.ribs);
  (void)w.pipeline->apply_updates(edited.ribs);
  std::vector<core::CountryMetrics> memo_census = w.pipeline->all_countries();
  (void)w.pipeline->apply_updates(w.ribs);
  (void)w.pipeline->all_countries();
  ColdRun cold = run_cold(w, engine.baseline());
  if (census_bytes(w, edited, engine.baseline(), memo_census) != cold.bytes) {
    std::fprintf(stderr,
                 "smoke FAIL: memo-assisted census differs from cold\n");
    return 1;
  }

  // The serve LRU must answer the repeat and drop the entry on
  // republish.
  serve::RankingService service;
  service.set_whatif(&engine);
  service.publish(std::make_shared<const serve::Snapshot>(
      serve::Snapshot::build(*w.pipeline, serve::SnapshotMeta{1, 1, "smoke"})));
  const std::string text = scenario::to_text(w.depeer);
  serve::Response first = service.handle("POST", "/v1/whatif", text);
  serve::Response second = service.handle("POST", "/v1/whatif", text);
  if (first.status != 200 || first.body != second.body) {
    std::fprintf(stderr, "smoke FAIL: repeat query not served coherently\n");
    return 1;
  }
  const auto counters = service.counters();
  if (counters.cache_hits == 0) {
    std::fprintf(stderr, "smoke FAIL: repeat query missed the LRU\n");
    return 1;
  }
  service.publish(std::make_shared<const serve::Snapshot>(
      serve::Snapshot::build(*w.pipeline, serve::SnapshotMeta{2, 2, "smoke"})));
  serve::Response after = service.handle("POST", "/v1/whatif", text);
  if (after.body.find("\"snapshot_id\":2") == std::string::npos) {
    std::fprintf(stderr, "smoke FAIL: republish served a stale whatif\n");
    return 1;
  }
  std::printf(
      "whatif smoke OK: %s, shards kept %zu/%zu, memos kept %zu, "
      "bit-identical to cold recompute, LRU hit + republish eviction\n",
      scenario::to_string(w.depeer.events[0].kind).data(),
      report.memo.shards_kept,
      report.memo.shards_kept + report.memo.shards_rebuilt,
      report.memo.memos_kept);
  return 0;
}

int run_timed(double scale) {
  bench::print_banner("BENCH_whatif.json",
                      "what-if latency: cold vs memo-assisted vs LRU hit");
  WhatIfWorld w = build_world(scale);
  scenario::WhatIfEngine engine{*w.pipeline, w.world.graph,
                                w.world.as_registry, w.ribs};
  std::printf("world: %zu ASes, %zu countries, %zu RIB entries\n",
              w.world.graph.ases().size(), engine.baseline().size(),
              w.ribs.total_entries());
  std::printf("scenario:\n%s", scenario::to_text(w.depeer).c_str());

  constexpr int kRounds = 5;

  // Memo-assisted: steady-state WhatIfEngine queries.
  scenario::Report report = engine.run(w.depeer, 10);  // warm-up + stats
  double memo_sum = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    Clock::time_point start = Clock::now();
    (void)engine.run(w.depeer, 10);
    memo_sum += seconds_since(start);
  }
  const double memo_seconds = memo_sum / kRounds;

  // Stage split of one steady-state query, timed by replaying the
  // engine's exact sequence by hand (run() itself is opaque).
  double t_apply = 0.0, t_swap = 0.0, t_census = 0.0, t_rearm = 0.0;
  {
    core::Pipeline::Checkpoint chk = w.pipeline->checkpoint();
    Clock::time_point start = Clock::now();
    scenario::ApplyResult staged =
        scenario::apply(w.depeer, w.world.graph, w.world.as_registry, w.ribs);
    t_apply = seconds_since(start);
    start = Clock::now();
    (void)w.pipeline->apply_updates(staged.ribs);
    t_swap = seconds_since(start);
    start = Clock::now();
    (void)w.pipeline->all_countries();
    t_census = seconds_since(start);
    start = Clock::now();
    (void)w.pipeline->restore(chk);
    t_rearm = seconds_since(start);
  }

  // Cold, fresh pipeline per query: sidesteps the re-arm entirely but
  // holds TWO sanitized worlds + stores in memory at peak.
  ColdRun cold_once = run_cold(w, engine.baseline());
  double cold_sum = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    Clock::time_point start = Clock::now();
    (void)run_cold(w, engine.baseline());
    cold_sum += seconds_since(start);
  }
  const double cold_seconds = cold_sum / kRounds;

  // Cold, in place: what the engine's own architecture — counterfactual
  // computed ON the serving pipeline, then the baseline put back — costs
  // without the memo machinery: two full loads per query.
  double inplace_sum = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    Clock::time_point start = Clock::now();
    scenario::ApplyResult staged =
        scenario::apply(w.depeer, w.world.graph, w.world.as_registry, w.ribs);
    w.pipeline->load(staged.ribs);
    (void)w.pipeline->all_countries();
    w.pipeline->load(w.ribs);
    inplace_sum += seconds_since(start);
  }
  const double inplace_seconds = inplace_sum / kRounds;
  // The loads above left the census memo cold; re-warm so stats below
  // describe the steady state.
  (void)w.pipeline->all_countries();

  // Bit identity between the two paths (the speedup is only meaningful
  // if the cheap path returns the same bytes).
  scenario::ApplyResult edited =
      scenario::apply(w.depeer, w.world.graph, w.world.as_registry, w.ribs);
  (void)w.pipeline->apply_updates(edited.ribs);
  std::vector<core::CountryMetrics> memo_census = w.pipeline->all_countries();
  (void)w.pipeline->apply_updates(w.ribs);
  (void)w.pipeline->all_countries();
  const bool identical =
      census_bytes(w, edited, engine.baseline(), memo_census) ==
      cold_once.bytes;

  // LRU hit: repeat POST against the serve layer.
  serve::RankingService service;
  service.set_whatif(&engine);
  service.publish(std::make_shared<const serve::Snapshot>(
      serve::Snapshot::build(*w.pipeline, serve::SnapshotMeta{1, 1, "bench"})));
  const std::string text = scenario::to_text(w.depeer);
  (void)service.handle("POST", "/v1/whatif", text);  // prime the cache
  double hit_sum = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    Clock::time_point start = Clock::now();
    (void)service.handle("POST", "/v1/whatif", text);
    hit_sum += seconds_since(start);
  }
  const double hit_seconds = hit_sum / kRounds;

  std::printf("\ncold, in place (2 full reloads): %8.4f s\n", inplace_seconds);
  std::printf("cold, fresh pipeline (2x mem):   %8.4f s\n", cold_seconds);
  std::printf("memo-assisted (engine.run):      %8.4f s  (%.1fx vs in-place, "
              "%.1fx vs fresh)\n",
              memo_seconds, inplace_seconds / memo_seconds,
              cold_seconds / memo_seconds);
  std::printf("  apply %0.4f + swap %0.4f + census %0.4f + re-arm %0.4f\n",
              t_apply, t_swap, t_census, t_rearm);
  std::printf("serve LRU hit:                 %10.6f s  (%.0fx)\n", hit_seconds,
              cold_seconds / hit_seconds);
  std::printf("shards kept %zu / rebuilt %zu, rankings kept %zu / evicted %zu\n",
              report.memo.shards_kept, report.memo.shards_rebuilt,
              report.memo.memos_kept, report.memo.memos_evicted);
  std::printf("bit-identical to cold recompute: %s\n",
              identical ? "yes" : "NO (bug)");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }
  return run_timed(scale);
}
