// Shared printer for the §5 case-study tables (Tables 5-8): for a set of
// notable ASes in one country, show each metric's rank and score plus the
// AS's global customer-cone rank (the paper's CCG subscript).
#pragma once

#include <span>
#include <string_view>

#include "common/bench_world.hpp"

namespace georank::bench {

struct PaperCell {
  bgp::Asn asn;
  /// The paper's "rank score%" strings for CCI/AHI/CCN/AHN, for
  /// side-by-side comparison, e.g. {"7 44%", "1 40%", "2 41%", "1 23%"}.
  std::string_view cci, ahi, ccn, ahn;
};

void print_case_study(const Context& ctx, geo::CountryCode country,
                      std::span<const PaperCell> paper_rows);

}  // namespace georank::bench
