#include "common/case_study.hpp"

#include <cstdio>
#include <iostream>

namespace georank::bench {

void print_case_study(const Context& ctx, geo::CountryCode country,
                      std::span<const PaperCell> paper_rows) {
  core::CountryMetrics m = ctx.pipeline->country(country);
  rank::Ranking ccg = ctx.pipeline->global_cone_by_as_count();

  std::printf("%s: national VPs=%zu, international VPs=%zu\n",
              country.to_string().c_str(), m.national_vps, m.international_vps);

  util::Table table{{"AS", "name", "cc", "CCI", "AHI", "CCN", "AHN", "CCG#"}};
  for (std::size_t c = 3; c <= 7; ++c) table.set_align(c, util::Align::kRight);
  for (const PaperCell& row : paper_rows) {
    table.add_row({std::to_string(row.asn), ctx.world.name_of(row.asn),
                   as_country(ctx.world, row.asn), rank_cell(m.cci, row.asn),
                   rank_cell(m.ahi, row.asn), rank_cell(m.ccn, row.asn),
                   rank_cell(m.ahn, row.asn), rank_only(ccg, row.asn)});
  }
  table.add_rule();
  for (const PaperCell& row : paper_rows) {
    table.add_row({std::to_string(row.asn), "(paper)", "",
                   std::string(row.cci), std::string(row.ahi),
                   std::string(row.ccn), std::string(row.ahn), ""});
  }
  table.print(std::cout);

  // The metric-by-metric top-3, so surprises outside the actor list show.
  auto print_top = [&](const char* name, const rank::Ranking& ranking) {
    std::printf("%s top-3:", name);
    for (const auto& e : ranking.top(3)) {
      std::printf("  %s (%.0f%%)", as_label(ctx.world, e.asn).c_str(),
                  e.score * 100.0);
    }
    std::printf("\n");
  };
  std::printf("\n");
  print_top("CCI", m.cci);
  print_top("AHI", m.ahi);
  print_top("CCN", m.ccn);
  print_top("AHN", m.ahn);
  std::printf("\n");
}

}  // namespace georank::bench
