#include "common/bench_world.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace georank::bench {

std::unique_ptr<Context> make_context(ContextOptions options) {
  auto ctx = std::make_unique<Context>();
  ctx->spec = gen::default_world_spec(options.epoch);
  ctx->world = gen::InternetGenerator{ctx->spec}.generate();
  bgp::RibCollection ribs =
      gen::RibGenerator{ctx->world, ctx->spec.noise, options.rib_seed}.generate(
          options.rib_days);

  core::PipelineConfig config;
  config.sanitizer.clique = ctx->world.clique;
  config.sanitizer.route_server_asns = ctx->world.route_servers;
  ctx->pipeline = std::make_unique<core::Pipeline>(
      ctx->world.geo_db, ctx->world.vps, ctx->world.asn_registry,
      ctx->world.graph, config);
  ctx->pipeline->load(ribs);
  if (options.keep_ribs) ctx->ribs = std::move(ribs);
  return ctx;
}

std::string as_label(const gen::World& world, bgp::Asn asn) {
  return std::to_string(asn) + " " + world.name_of(asn);
}

std::string as_country(const gen::World& world, bgp::Asn asn) {
  auto it = world.as_registry.find(asn);
  return it == world.as_registry.end() ? "??" : it->second.to_string();
}

std::string rank_cell(const rank::Ranking& ranking, bgp::Asn asn) {
  auto rank = ranking.rank_of(asn);
  if (!rank) return "-";
  return std::to_string(*rank) + " " + util::percent(ranking.score_of(asn));
}

std::string rank_only(const rank::Ranking& ranking, bgp::Asn asn) {
  auto rank = ranking.rank_of(asn);
  return rank ? std::to_string(*rank) : "-";
}

void print_banner(std::string_view artifact, std::string_view summary) {
  std::printf("================================================================\n");
  std::printf("Reproducing %.*s\n", static_cast<int>(artifact.size()), artifact.data());
  std::printf("%.*s\n", static_cast<int>(summary.size()), summary.data());
  std::printf("(synthetic world; see DESIGN.md for the substitution rationale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace georank::bench
