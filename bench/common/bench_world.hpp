// Shared scaffolding for the reproduction harnesses in bench/:
// builds the default world, synthesizes RIBs, runs the pipeline, and
// provides the formatting helpers the table printers share.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace georank::bench {

struct Context {
  gen::WorldSpec spec;
  gen::World world;
  bgp::RibCollection ribs;  // empty unless keep_ribs was requested
  std::unique_ptr<core::Pipeline> pipeline;
};

struct ContextOptions {
  gen::Epoch epoch = gen::Epoch::kApril2021;
  int rib_days = 5;
  std::uint64_t rib_seed = 7;
  /// RIBs are large; they are dropped after the pipeline ingests them
  /// unless a harness needs the raw entries (Table 1 accounting).
  bool keep_ribs = false;
};

[[nodiscard]] std::unique_ptr<Context> make_context(ContextOptions options = {});

/// "1221 Telstra" (falls back to "AS<asn>").
[[nodiscard]] std::string as_label(const gen::World& world, bgp::Asn asn);

/// Registration country of an AS, "??" if unknown.
[[nodiscard]] std::string as_country(const gen::World& world, bgp::Asn asn);

/// "<rank> <score%>" cell, e.g. "1 44%"; "-" when the AS is unranked.
[[nodiscard]] std::string rank_cell(const rank::Ranking& ranking, bgp::Asn asn);

/// Bare rank ("12") or "-" when unranked.
[[nodiscard]] std::string rank_only(const rank::Ranking& ranking, bgp::Asn asn);

/// Uniform harness banner: what is being reproduced and from where.
void print_banner(std::string_view artifact, std::string_view summary);

}  // namespace georank::bench
