// Table 14: per-country percentage of ADDRESSES filtered by the 50%
// geolocation-consensus threshold. Paper: US/RU/TW 0%, UA 0.2%, JP 3.0%,
// AU 7.6%; worst offenders AF/HR/IN/LT at 15-18%.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 14",
                      "Percentage of each country's addresses filtered by the "
                      "50% consensus threshold");

  auto ctx = bench::make_context();
  const geo::PrefixGeoResult& geo = ctx->pipeline->sanitized().prefix_geo;

  std::map<std::string, std::uint64_t> accepted, rejected;
  for (const auto& a : geo.accepted) {
    accepted[a.country.to_string()] += a.effective_addresses;
  }
  for (const auto& rej : geo.no_consensus) {
    if (rej.plurality.valid()) {
      rejected[rej.plurality.to_string()] += rej.effective_addresses;
    }
  }

  struct Row {
    std::string cc;
    double share;
    std::uint64_t rej, total;
  };
  std::vector<Row> rows;
  for (const auto& c : ctx->spec.countries) {
    std::string cc = c.code.to_string();
    std::uint64_t rej = rejected.contains(cc) ? rejected[cc] : 0;
    std::uint64_t total = rej + (accepted.contains(cc) ? accepted[cc] : 0);
    if (total == 0) continue;
    rows.push_back(
        {cc, static_cast<double>(rej) / static_cast<double>(total), rej, total});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.share > b.share; });

  util::Table table{{"country", "% addresses filtered", "filtered", "total"}};
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::kRight);
  for (const char* cc : {"US", "RU", "TW", "UA", "JP", "AU"}) {
    for (const Row& row : rows) {
      if (row.cc == cc) {
        table.add_row({row.cc, util::percent(row.share, 2),
                       util::human_count(static_cast<double>(row.rej)),
                       util::human_count(static_cast<double>(row.total))});
      }
    }
  }
  table.add_rule();
  for (std::size_t i = 0; i < rows.size() && i < 4; ++i) {
    table.add_row({rows[i].cc, util::percent(rows[i].share, 2),
                   util::human_count(static_cast<double>(rows[i].rej)),
                   util::human_count(static_cast<double>(rows[i].total))});
  }
  table.print(std::cout);

  std::printf("\npaper: US/RU/TW 0%%, UA 0.2%%, JP 3.0%%, AU 7.6%%; most "
              "filtered AF 15, HR 15, IN 16, LT 18.\n"
              "(the bottom block above shows OUR most-filtered countries)\n");
  return 0;
}
