// Scale benchmark behind BENCH_scale.json: grows an internet-preset
// world (`gen/internet.hpp`) at --scale X, pushes it through sanitize ->
// ShardedPathStore -> all_countries(), and reports per-stage wall time,
// store-build throughput (paths/sec) and peak RSS (VmHWM). Run one
// process per scale — VmHWM is a high-water mark, so chaining scales in
// one process would attribute the largest world's peak to every row.
//
//   bench_scale --scale 10 [--seed S] [--json]
//   bench_scale --smoke
//
// --smoke (registered in ctest) skips the timed runs and asserts the
// refactor's correctness contract instead: the sharded census is
// bit-identical to the monolithic PathStore's, and the sharded build is
// bit-identical across worker counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <string>
#include <vector>

#include "core/country_rankings.hpp"
#include "core/path_store.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_path_store.hpp"
#include "gen/internet.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace {

using namespace georank;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set (VmHWM) of this process, in kB; 0 if unreadable.
std::size_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

sanitize::SanitizerOptions sanitizer_options(const gen::World& world) {
  sanitize::SanitizerOptions options;
  options.clique = world.clique;
  options.route_server_asns = world.route_servers;
  return options;
}

int run_scale(double scale, std::uint64_t seed, bool json) {
  gen::InternetSpec spec = gen::internet_spec(scale, seed);
  std::fprintf(stderr, "scale %g: %zu ASes, %zu prefix target, %zu VPs\n",
               scale, spec.as_count(), spec.prefix_target(), spec.vp_count());

  auto t0 = Clock::now();
  gen::InternetScaleGenerator generator{spec};
  gen::World world = generator.generate();
  const double generate_s = seconds_since(t0);

  t0 = Clock::now();
  bgp::RibCollection ribs = generator.synthesize_ribs(world);
  const double synth_s = seconds_since(t0);
  const std::size_t entries = ribs.total_entries();
  std::fprintf(stderr, "  %zu RIB entries (gen %.2fs, synth %.2fs)\n", entries,
               generate_s, synth_s);

  t0 = Clock::now();
  sanitize::PathSanitizer sanitizer{world.geo_db, world.vps,
                                    world.asn_registry,
                                    sanitizer_options(world)};
  sanitize::SanitizeResult sanitized = sanitizer.run(ribs);
  const double sanitize_s = seconds_since(t0);

  t0 = Clock::now();
  core::ShardedPathStore store{
      std::span<const sanitize::SanitizedPath>{sanitized.paths}};
  const double build_s = seconds_since(t0);
  const double paths_per_s =
      build_s > 0 ? static_cast<double>(store.size()) / build_s : 0.0;
  std::fprintf(stderr,
               "  %zu accepted paths, %zu shards (sanitize %.2fs, "
               "store build %.2fs = %.0f paths/s)\n",
               store.size(), store.shards().size(), sanitize_s, build_s,
               paths_per_s);

  core::PipelineConfig config;
  config.sanitizer = sanitizer_options(world);
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);
  t0 = Clock::now();
  std::vector<core::CountryMetrics> census = pipeline.all_countries();
  const double census_s = seconds_since(t0);

  const double peak_mb = static_cast<double>(peak_rss_kb()) / 1024.0;
  std::fprintf(stderr, "  census: %zu countries in %.2fs, peak RSS %.1f MB\n",
               census.size(), census_s, peak_mb);

  if (json) {
    std::printf(
        "{\"scale\": %g, \"ases\": %zu, \"rib_entries\": %zu, "
        "\"accepted_paths\": %zu, \"countries\": %zu, "
        "\"generate_seconds\": %.3f, \"rib_synthesis_seconds\": %.3f, "
        "\"sanitize_seconds\": %.3f, \"store_build_seconds\": %.3f, "
        "\"store_paths_per_second\": %.0f, \"census_seconds\": %.3f, "
        "\"peak_rss_mb\": %.1f}\n",
        scale, spec.as_count(), entries, store.size(), census.size(),
        generate_s, synth_s, sanitize_s, build_s, paths_per_s, census_s,
        peak_mb);
  }
  return 0;
}

/// Bitwise ranking equality: same ASNs in the same order with the same
/// float bits (accumulation-order identity, not approximate equality).
bool same_ranking(const rank::Ranking& a, const rank::Ranking& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.entries()[i].asn != b.entries()[i].asn ||
        std::bit_cast<std::uint64_t>(a.entries()[i].score) !=
            std::bit_cast<std::uint64_t>(b.entries()[i].score)) {
      return false;
    }
  }
  return true;
}

int run_smoke() {
  gen::InternetSpec spec = gen::internet_spec(0.25, 3);
  gen::InternetScaleGenerator generator{spec};
  gen::World world = generator.generate();
  bgp::RibCollection ribs = generator.synthesize_ribs(world);
  sanitize::PathSanitizer sanitizer{world.geo_db, world.vps,
                                    world.asn_registry,
                                    sanitizer_options(world)};
  sanitize::SanitizeResult sanitized = sanitizer.run(ribs);
  std::span<const sanitize::SanitizedPath> paths{sanitized.paths};

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "[ ok ]" : "[FAIL]", what);
    if (!ok) ++failures;
  };

  core::PathStore mono{paths};
  core::ShardedPathStore sharded{paths};
  std::printf("       %zu paths across %zu shards\n", sharded.size(),
              sharded.shards().size());
  check(sharded.size() == mono.size() && !sharded.shards().empty(),
        "sharded store covers every accepted path");
  check(sharded.countries() == mono.countries(),
        "census domain matches the monolithic store");

  core::CountryRankings rankings{world.graph};
  bool census_identical = true;
  for (geo::CountryCode cc : mono.countries()) {
    core::CountryMetrics a = rankings.compute(mono, cc);
    core::CountryMetrics b = rankings.compute(sharded, cc);
    if (!same_ranking(a.cci, b.cci) || !same_ranking(a.ccn, b.ccn) ||
        !same_ranking(a.ahi, b.ahi) || !same_ranking(a.ahn, b.ahn)) {
      census_identical = false;
    }
    core::OutboundMetrics oa = rankings.compute_outbound(mono, cc);
    core::OutboundMetrics ob = rankings.compute_outbound(sharded, cc);
    if (!same_ranking(oa.cco, ob.cco) || !same_ranking(oa.aho, ob.aho)) {
      census_identical = false;
    }
  }
  check(census_identical,
        "sharded census is bit-identical to the monolithic census");

  core::ShardedPathStore one{paths, 1};
  core::ShardedPathStore sixteen{paths, 16};
  bool builds_identical = one.shards().size() == sixteen.shards().size();
  for (geo::CountryCode cc : one.countries()) {
    if (one.shard_digest(cc) != sixteen.shard_digest(cc)) {
      builds_identical = false;
    }
  }
  check(builds_identical, "shard digests identical across worker counts");

  std::printf(failures == 0 ? "smoke: PASS\n" : "smoke: FAIL (%d)\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::uint64_t seed = 0xA5;
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--smoke | --scale X [--seed S] "
                   "[--json]]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();
  if (scale <= 0) {
    std::fprintf(stderr, "bad --scale: expected a positive number\n");
    return 2;
  }
  return run_scale(scale, seed, json);
}
