// Figure 10 (Appendix C): VP concentration within ASes, by country. The
// paper: 81% of VPs are the only VP in their AS; 96% are in ASes with at
// most two; 15 of 17 countries have >93% of their VPs sharing an AS with
// at most one other; AU and US were the most concentrated.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 10", "VPs per AS, overall and by country");

  auto ctx = bench::make_context();

  std::map<std::string, std::map<bgp::Asn, int>> per_country;  // cc -> as -> VPs
  std::map<bgp::Asn, int> global;
  for (const auto& [vp, cc] : ctx->world.vps.located_vps()) {
    per_country[cc.to_string()][vp.asn] += 1;
    global[vp.asn] += 1;
  }

  // Overall distribution: % of VPs in ASes hosting 1 / 2 / 3+ VPs.
  std::size_t vps1 = 0, vps2 = 0, vps3 = 0, total = 0;
  for (const auto& [asn, n] : global) {
    total += static_cast<std::size_t>(n);
    if (n == 1) vps1 += 1;
    else if (n == 2) vps2 += 2;
    else vps3 += static_cast<std::size_t>(n);
  }
  std::printf("VPs alone in their AS: %s (paper: 81%%)\n",
              util::percent(static_cast<double>(vps1) / total).c_str());
  std::printf("VPs in ASes with <=2 VPs: %s (paper: 96%%)\n\n",
              util::percent(static_cast<double>(vps1 + vps2) / total).c_str());

  util::Table table{{"country", "VPs", "ASes", "%VPs sharing AS w/ <=1 other",
                     "max VPs in one AS"}};
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, util::Align::kRight);
  std::vector<std::pair<std::string, std::map<bgp::Asn, int>>> sorted(
      per_country.begin(), per_country.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    auto count = [](const std::map<bgp::Asn, int>& m) {
      std::size_t n = 0;
      for (const auto& [asn, k] : m) n += static_cast<std::size_t>(k);
      return n;
    };
    return count(a.second) > count(b.second);
  });
  for (const auto& [cc, ases] : sorted) {
    std::size_t country_vps = 0, low_share = 0;
    int max_in_one = 0;
    for (const auto& [asn, n] : ases) {
      country_vps += static_cast<std::size_t>(n);
      if (n <= 2) low_share += static_cast<std::size_t>(n);
      max_in_one = std::max(max_in_one, n);
    }
    if (country_vps < 4) continue;
    table.add_row({cc, std::to_string(country_vps), std::to_string(ases.size()),
                   util::percent(static_cast<double>(low_share) / country_vps),
                   std::to_string(max_in_one)});
  }
  table.print(std::cout);
  return 0;
}
