// Ablation (DESIGN.md §4): ground-truth vs inferred AS relationships
// feeding the customer-cone metrics. The paper uses CAIDA's inferred
// relationships; our pipeline can run on either the generator's ground
// truth or our Gao-style inference, and this harness quantifies the gap.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/country_rankings.hpp"
#include "core/ndcg.hpp"
#include "infer/relationships.hpp"

using namespace georank;

int main() {
  bench::print_banner("Ablation: relationship source",
                      "Country cone rankings on ground-truth vs inferred "
                      "relationships");

  bench::ContextOptions options;
  options.keep_ribs = true;
  auto ctx = bench::make_context(options);

  // Infer relationships from the raw (day-0) paths, as CAIDA would.
  infer::RelationshipInference inference;
  for (const auto& e : ctx->ribs.days[0].entries) inference.add_path(e.path);
  infer::InferenceResult inferred = inference.infer();
  infer::ValidationScore score =
      infer::validate_against(ctx->world.graph, inferred.graph);
  std::printf("inference: %zu links, accuracy %.1f%% (p2c %zu/%zu, p2p %zu/%zu), "
              "clique %zu ASes\n\n",
              score.shared_links, score.accuracy() * 100.0, score.correct_p2c,
              score.total_p2c, score.correct_p2p, score.total_p2p,
              inferred.clique.size());

  core::CountryRankings truth_rankings{ctx->world.graph};
  core::CountryRankings inferred_rankings{inferred.graph};
  const auto& paths = ctx->pipeline->sanitized().paths;

  util::Table table{{"country", "metric", "truth top-1", "inferred top-1",
                     "NDCG inferred vs truth"}};
  table.set_align(4, util::Align::kRight);
  for (const char* cc : {"AU", "JP", "RU", "US"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    for (auto kind : {core::ViewKind::kInternational, core::ViewKind::kNational}) {
      core::CountryView view = kind == core::ViewKind::kInternational
                                   ? core::ViewBuilder::international(paths, country)
                                   : core::ViewBuilder::national(paths, country);
      rank::Ranking truth = truth_rankings.cone_ranking(view);
      rank::Ranking guess = inferred_rankings.cone_ranking(view);
      auto top = [&](const rank::Ranking& r) {
        return r.empty() ? std::string("-")
                         : bench::as_label(ctx->world, r.entries()[0].asn);
      };
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.3f", core::ndcg(guess, truth));
      table.add_row({cc,
                     kind == core::ViewKind::kInternational ? "CCI" : "CCN",
                     top(truth), top(guess), buf});
    }
  }
  table.print(std::cout);
  std::printf("\nexpectation: high NDCG agreement — metric conclusions do not\n"
              "hinge on perfect relationship inference.\n");
  return 0;
}
