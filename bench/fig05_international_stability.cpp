// Figure 5: stability of the INTERNATIONAL rankings (AHI/CCI) under VP
// downsampling. The paper found both metrics stable (NDCG >= 0.9) with at
// least ~91 out-of-country VPs, and every country has far more than that,
// so international rankings are computable for all countries.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/stability.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 5",
                      "NDCG of international rankings (AHI/CCI) vs #VPs");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;
  core::StabilityAnalyzer analyzer{ctx->pipeline->rankings()};

  const char* countries[] = {"AU", "JP", "RU", "US", "TW"};
  struct MetricDef {
    const char* name;
    core::MetricKind kind;
  } metrics[] = {{"AHI", core::MetricKind::kHegemony},
                 {"CCI", core::MetricKind::kCustomerCone}};

  for (const MetricDef& metric : metrics) {
    std::printf("--- %s ---\n", metric.name);
    util::Table table{{"country", "VPs", "k=5", "k=10", "k=20", "k=40", "k=80",
                       "k=160", "min k: NDCG>=.9"}};
    std::size_t worst90 = 0;
    for (const char* cc : countries) {
      core::CountryView view =
          core::ViewBuilder::international(paths, geo::CountryCode::of(cc));
      core::StabilityOptions options;
      options.sample_sizes = {5, 10, 15, 20, 30, 40, 60, 80, 120, 160, 200};
      options.trials_per_size = 6;
      options.seed = 20210401;
      auto curve = analyzer.analyze(view, metric.kind, options);

      auto at = [&](std::size_t k) -> std::string {
        for (const auto& p : curve) {
          if (p.vp_count == k) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%.2f", p.mean_ndcg);
            return buf;
          }
        }
        return "-";
      };
      std::size_t k90 = core::StabilityAnalyzer::min_vps_for(curve, 0.9);
      worst90 = std::max(worst90, k90);
      table.add_row({cc, std::to_string(view.vp_count()), at(5), at(10), at(20),
                     at(40), at(80), at(160),
                     k90 ? std::to_string(k90) : ">max"});
    }
    table.print(std::cout);
    std::printf("%s: NDCG>=0.9 reached with <=%zu out-of-country VPs "
                "(paper: ~91; every country has enough)\n\n",
                metric.name, worst90);
  }
  return 0;
}
