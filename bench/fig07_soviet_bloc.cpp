// Figure 7: Russian carriers' hegemony over former Soviet-bloc countries
// (April 2021). The paper found Russian ASes with significant AHI (>20%)
// in Turkmenistan, Russia itself, Tajikistan, Kazakhstan and Kyrgyzstan,
// but NOT in the western former republics (e.g. Ukraine).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/views.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 7",
                      "Russian-AS hegemony (max AHI of a RU AS) per country");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;
  const auto& rankings = ctx->pipeline->rankings();
  geo::CountryCode ru = geo::CountryCode::of("RU");

  struct Row {
    std::string country;
    double max_ru_ahi = 0.0;
    bgp::Asn top_ru_as = 0;
  };
  std::vector<Row> rows;
  for (const auto& c : ctx->spec.countries) {
    core::CountryView view = core::ViewBuilder::international(paths, c.code);
    rank::Ranking ahi = rankings.hegemony_ranking(view);
    Row row;
    row.country = c.code.to_string();
    for (const auto& e : ahi.entries()) {
      auto reg = ctx->world.as_registry.find(e.asn);
      if (reg == ctx->world.as_registry.end() || reg->second != ru) continue;
      if (e.score > row.max_ru_ahi) {
        row.max_ru_ahi = e.score;
        row.top_ru_as = e.asn;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.max_ru_ahi > b.max_ru_ahi; });

  util::Table table{{"country", "max RU-AS AHI", "top RU AS", ">20%?"}};
  table.set_align(1, util::Align::kRight);
  for (const Row& row : rows) {
    if (row.max_ru_ahi < 0.01 && row.country != "UA") continue;
    table.add_row({row.country, util::percent(row.max_ru_ahi, 1),
                   row.top_ru_as ? bench::as_label(ctx->world, row.top_ru_as) : "-",
                   row.max_ru_ahi > 0.2 ? "yes" : ""});
  }
  table.print(std::cout);

  std::printf("\npaper: significant (>20%%) Russian AHI in TM, RU, TJ, KZ, KG "
              "only; the western/central\nformer republics (incl. UA) do not "
              "depend on Russian carriers.\n");
  return 0;
}
