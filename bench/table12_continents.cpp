// Table 12: which countries' carriers provide international connectivity
// around the world. For every country we compute AHI and collect foreign
// ASes with AHI > 0.1; grouping those by the AS's registration country
// yields the paper's matrix. Headline findings to reproduce:
//   - the US serves the most countries on every continent (76% overall);
//   - Sweden (Arelion) is second;
//   - regional powers dominate their regions (AU in Oceania, ZA/MU in
//     Africa, FR/GB/IT in their former spheres).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"
#include "core/views.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 12",
                      "Countries whose ASes have AHI > 0.1 abroad, by continent");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;
  const auto& rankings = ctx->pipeline->rankings();

  // continent -> number of countries in it.
  std::map<std::string, int> continent_sizes;
  for (const auto& c : ctx->spec.countries) continent_sizes[c.continent] += 1;

  struct Serving {
    std::map<std::string, int> per_continent;  // continent -> countries served
    int total = 0;
    std::map<bgp::Asn, int> per_as;  // which AS serves how many countries
  };
  std::map<std::string, Serving> by_provider_country;

  for (const auto& c : ctx->spec.countries) {
    core::CountryView view = core::ViewBuilder::international(paths, c.code);
    rank::Ranking ahi = rankings.hegemony_ranking(view);
    std::map<std::string, bool> provider_seen;  // provider country -> served?
    std::map<std::string, bgp::Asn> provider_as;
    for (const auto& e : ahi.entries()) {
      if (e.score <= 0.1) break;  // sorted descending
      auto reg = ctx->world.as_registry.find(e.asn);
      if (reg == ctx->world.as_registry.end()) continue;
      if (reg->second == c.code) continue;  // foreign carriers only
      std::string provider = reg->second.to_string();
      if (!provider_seen[provider]) {
        provider_seen[provider] = true;
        provider_as[provider] = e.asn;
      }
      by_provider_country[provider].per_as[e.asn] += 0;  // ensure key
    }
    for (const auto& [provider, seen] : provider_seen) {
      if (!seen) continue;
      Serving& s = by_provider_country[provider];
      s.per_continent[c.continent] += 1;
      s.total += 1;
    }
    // Count per-AS serving for the "top in country" column.
    for (const auto& e : ahi.entries()) {
      if (e.score <= 0.1) break;
      auto reg = ctx->world.as_registry.find(e.asn);
      if (reg == ctx->world.as_registry.end() || reg->second == c.code) continue;
      by_provider_country[reg->second.to_string()].per_as[e.asn] += 1;
    }
  }

  std::vector<std::pair<std::string, Serving>> sorted(
      by_provider_country.begin(), by_provider_country.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });

  int total_countries = static_cast<int>(ctx->spec.countries.size());
  util::Table table{{"provider", "No.Am", "So.Am", "Eu", "Af", "As", "Oc",
                     "total", "share", "top AS in most countries"}};
  for (std::size_t c = 1; c <= 8; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& [provider, s] : sorted) {
    if (s.total < 2) continue;
    auto cell = [&](const char* cont) {
      auto it = s.per_continent.find(cont);
      return it == s.per_continent.end() ? std::string("")
                                         : std::to_string(it->second);
    };
    bgp::Asn top_as = 0;
    int top_count = 0;
    for (const auto& [asn, n] : s.per_as) {
      if (n > top_count) {
        top_as = asn;
        top_count = n;
      }
    }
    table.add_row({provider, cell("No.Am"), cell("So.Am"), cell("Eu"),
                   cell("Af"), cell("As"), cell("Oc"), std::to_string(s.total),
                   util::percent(static_cast<double>(s.total) / total_countries),
                   top_as ? bench::as_label(ctx->world, top_as) + " (" +
                                std::to_string(top_count) + ")"
                          : ""});
  }
  table.print(std::cout);

  std::printf(
      "\npaper (255 countries): US served 196 (76%%), SE 56 (21%%), NL 26, "
      "FR 25, GB 23, IT 18,\n  AU 15 (48%% of Oceania), ZA 15, ES 15, MU 14; "
      "top US AS: Hurricane 6939.\n");
  return 0;
}
