// Table 13: per-country percentage of PREFIXES filtered by the 50%
// geolocation-consensus threshold. The paper: case-study countries lose
// at most 0.1%; the worst offenders (IM, GG, MQ, NA) lose ~1.0-1.4%.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 13",
                      "Percentage of each country's prefixes filtered by the "
                      "50% consensus threshold");

  auto ctx = bench::make_context();
  const geo::PrefixGeoResult& geo = ctx->pipeline->sanitized().prefix_geo;

  std::map<std::string, std::size_t> accepted, rejected;
  for (const auto& a : geo.accepted) accepted[a.country.to_string()] += 1;
  // A rejected prefix is charged to its plurality ("would-be") country.
  for (const auto& rej : geo.no_consensus) {
    if (rej.plurality.valid()) rejected[rej.plurality.to_string()] += 1;
  }

  struct Row {
    std::string cc;
    double share;
    std::size_t rej, total;
  };
  std::vector<Row> rows;
  for (const auto& c : ctx->spec.countries) {
    std::string cc = c.code.to_string();
    std::size_t rej = rejected.contains(cc) ? rejected[cc] : 0;
    std::size_t total = rej + (accepted.contains(cc) ? accepted[cc] : 0);
    if (total == 0) continue;
    rows.push_back(
        {cc, static_cast<double>(rej) / static_cast<double>(total), rej, total});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.share > b.share; });

  util::Table table{{"country", "% prefixes filtered", "filtered", "total"}};
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::kRight);
  std::printf("case-study countries:\n");
  for (const char* cc : {"RU", "TW", "UA", "US", "AU", "JP"}) {
    for (const Row& row : rows) {
      if (row.cc == cc) {
        table.add_row({row.cc, util::percent(row.share, 2),
                       std::to_string(row.rej), std::to_string(row.total)});
      }
    }
  }
  table.add_rule();
  for (std::size_t i = 0; i < rows.size() && i < 4; ++i) {
    table.add_row({rows[i].cc, util::percent(rows[i].share, 2),
                   std::to_string(rows[i].rej), std::to_string(rows[i].total)});
  }
  table.print(std::cout);

  std::printf("\npaper: case studies RU/TW/UA/US/AU 0.0%%, JP 0.1%%; most "
              "filtered: IM 1.0, GG 1.2, MQ 1.3, NA 1.4.\n"
              "(the bottom block above shows OUR most-filtered countries)\n");
  return 0;
}
