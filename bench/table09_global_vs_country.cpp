// Table 9: why filtering a GLOBAL ranking misleads (§5.1.1/§5.1.2).
// Australia's top-10 by CCI and AHI, each AS annotated with its global
// CCG/AHG ranks and the IHR-style AHC and our AHN ranks. Key paper
// observations to reproduce:
//   - global rankings order Australian ASes differently than the
//     country-specific ones (4637 above 1221/4826 globally);
//   - multinationals matter internationally but would be discarded by
//     country-filtering a global list;
//   - Amazon (16509) appears in AHN (prefix geolocation) but not in AHC
//     (AS registration).
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"

using namespace georank;
using namespace gen::asn;

int main() {
  bench::print_banner("Table 9",
                      "Australia: country-specific vs global rankings");

  auto ctx = bench::make_context();
  geo::CountryCode au = geo::CountryCode::of("AU");
  core::CountryMetrics m = ctx->pipeline->country(au);
  rank::Ranking ccg = ctx->pipeline->global_cone_by_as_count();
  rank::Ranking ahg = ctx->pipeline->global_hegemony();
  rank::Ranking ahc = ctx->pipeline->ahc(ctx->world.as_registry, au);

  auto domestic = [&](bgp::Asn asn) {
    auto it = ctx->world.as_registry.find(asn);
    return it != ctx->world.as_registry.end() && it->second == au;
  };

  std::printf("-- Customer cone: CCI top-10 vs CCG (AU ASes marked *) --\n");
  util::Table cone{{"CCI", "CCG", "AS", "name", "cc"}};
  cone.set_align(0, util::Align::kRight);
  cone.set_align(1, util::Align::kRight);
  std::size_t pos = 0;
  for (const auto& e : m.cci.top(10)) {
    ++pos;
    cone.add_row({std::to_string(pos), bench::rank_only(ccg, e.asn),
                  (domestic(e.asn) ? "*" : "") + std::to_string(e.asn),
                  ctx->world.name_of(e.asn), bench::as_country(ctx->world, e.asn)});
  }
  cone.print(std::cout);

  std::printf("\n-- Hegemony: AHI top-10 vs AHG / AHC / AHN --\n");
  util::Table heg{{"AHI", "AHG", "AHC", "AHN", "AS", "name", "cc"}};
  for (std::size_t c = 0; c <= 3; ++c) heg.set_align(c, util::Align::kRight);
  pos = 0;
  for (const auto& e : m.ahi.top(10)) {
    ++pos;
    heg.add_row({std::to_string(pos), bench::rank_only(ahg, e.asn),
                 bench::rank_only(ahc, e.asn), bench::rank_only(m.ahn, e.asn),
                 (domestic(e.asn) ? "*" : "") + std::to_string(e.asn),
                 ctx->world.name_of(e.asn), bench::as_country(ctx->world, e.asn)});
  }
  heg.print(std::cout);

  std::printf("\n-- The Amazon effect (prefix geolocation vs AS registration) --\n");
  std::printf("Amazon 16509: AHN rank %s (score %.2f%%), AHC rank %s (score %.4f)\n",
              bench::rank_only(m.ahn, kAmazon).c_str(),
              m.ahn.score_of(kAmazon) * 100.0,
              bench::rank_only(ahc, kAmazon).c_str(), ahc.score_of(kAmazon));
  std::printf("paper: Amazon appears in AHN's top-10 but not in AHC at all.\n");

  std::printf("\npaper Table 9 CCI order: 1299 Arelion, 4826* Vocus, 6461 Zayo, "
              "3356 Lumen, 3257 GTT,\n  4637* Telstra Intl, 1221* Telstra, "
              "6939 Hurricane, 6453 TATA, 3216 Vimpelcom\n");
  std::printf("paper Table 9 AHI order: 1221* Telstra, 4637* Telstra Intl, "
              "6939 Hurricane, 7545* TPG,\n  7473 Singapore Tel., 16509 Amazon, "
              "4804* SingTel, 4826* Vocus, 6461 Zayo, 1299 Arelion\n");
  return 0;
}
