// Table 5: Australia. The paper's flagship case study (§5.1):
//   - Telstra's domestic AS 1221 tops both hegemony views;
//   - Telstra's international AS 4637 is #2 by AHI but ~0 by AHN;
//   - Vocus (4826) holds a huge customer cone (~80% CCN/CCI #1-2) with a
//     small hegemony footprint;
//   - Arelion (1299) tops CCI transitively through Vocus.
#include "common/case_study.hpp"

using namespace georank;
using namespace gen::asn;

int main() {
  bench::print_banner("Table 5", "Top ASes per metric in Australia (AU)");
  auto ctx = bench::make_context();
  const bench::PaperCell rows[] = {
      {kTelstra, "7 44%", "1 40%", "2 41%", "1 23%"},
      {kVocus, "2 81%", "8 6%", "1 80%", "2 16%"},
      {kArelion, "1 83%", "10 5%", "12 5%", "101 0%"},
      {kTelstraIntl, "6 49%", "2 39%", "55 0%", "140 0%"},
      {kOptus, "12 28%", "12 3%", "3 26%", "5 10%"},
  };
  bench::print_case_study(*ctx, geo::CountryCode::of("AU"), rows);
  return 0;
}
