// Table 6: Japan (§5.2). NTT's split: NTT America (2914) tops both
// international metrics while NTT OCN (4713) ranks top-3 nationally;
// KDDI leads the national views; GTT (3257) is #2 by CCI purely through
// transit into Japan.
#include "common/case_study.hpp"

using namespace georank;
using namespace gen::asn;

int main() {
  bench::print_banner("Table 6", "Top ASes per metric in Japan (JP)");
  auto ctx = bench::make_context();
  const bench::PaperCell rows[] = {
      {kKddi, "4 50%", "2 21%", "1 28%", "1 29%"},
      {kNttAmerica, "1 87%", "1 25%", "8 5%", "20 1%"},
      {kSoftbank, "6 30%", "3 13%", "2 27%", "3 27%"},
      {kNttOcn, "11 22%", "5 9%", "3 22%", "2 28%"},
      {kGtt, "2 56%", "23 1%", "123 0%", "236 0%"},
  };
  bench::print_case_study(*ctx, geo::CountryCode::of("JP"), rows);
  return 0;
}
