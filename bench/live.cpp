// Live-pipeline benchmark behind BENCH_live.json: (1) republish latency
// as a function of flush batch size when streaming the default world's
// update archive through live::UpdatePipeline, and (2) the incremental
// win — after a single-country burst, apply_updates + Snapshot::build
// against a warm pipeline versus a from-scratch batch recompute of the
// same collection, with the two snapshots verified byte-identical
// through the GRSNAP01 codec before the speedup is reported.
//
// --smoke skips the timed runs: it replays a mini-world archive both
// ways and asserts byte identity plus shard reuse, as a cheap ctest
// guard for the equivalence the timed numbers depend on.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bench_world.hpp"
#include "bgp/update_stream.hpp"
#include "io/snapshot_codec.hpp"
#include "live/update_pipeline.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

using namespace georank;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

serve::SnapshotMeta bench_meta() { return serve::SnapshotMeta{1, 1, "bench"}; }

core::Pipeline fresh_pipeline(const bench::Context& context) {
  return core::Pipeline{context.world.geo_db, context.world.vps,
                        context.world.asn_registry, context.world.graph,
                        context.pipeline->config()};
}

// ---- (1) republish latency vs flush batch size -------------------------

struct CadenceResult {
  std::size_t flush_batch = 0;
  std::uint64_t publishes = 0;
  double mean_republish_seconds = 0.0;
  double mean_apply_seconds = 0.0;   // sanitize + shard rebuild + evict
  double mean_census_seconds = 0.0;  // Snapshot::build over warm memos
  double total_seconds = 0.0;        // whole replay, push to drain
};

CadenceResult bench_cadence(const bench::Context& context,
                            const std::vector<bgp::UpdateMessage>& archive,
                            std::size_t flush_batch) {
  core::Pipeline pipeline = fresh_pipeline(context);
  serve::RankingService service;
  live::UpdatePipelineOptions options;
  options.flush_batch = flush_batch;
  live::UpdatePipeline live{pipeline, service, options};

  CadenceResult result;
  result.flush_batch = flush_batch;
  double apply_sum = 0.0, census_sum = 0.0, republish_sum = 0.0;
  auto tally = [&](const live::FlushReport& report) {
    if (!report.published) return;
    apply_sum += report.apply_seconds;
    census_sum += report.census_seconds;
    republish_sum += report.total_seconds;
  };

  Clock::time_point start = Clock::now();
  for (const bgp::UpdateMessage& u : archive) {
    if (auto report = live.push(u)) tally(*report);
  }
  tally(live.drain());
  result.total_seconds = seconds_since(start);

  result.publishes = live.stats().publishes;
  if (result.publishes > 0) {
    double n = static_cast<double>(result.publishes);
    result.mean_republish_seconds = republish_sum / n;
    result.mean_apply_seconds = apply_sum / n;
    result.mean_census_seconds = census_sum / n;
  }
  return result;
}

// ---- (2) single-country burst: incremental vs full recompute -----------

/// Grafts ONE brand-new route onto the final day: for a prefix with
/// accepted rows from two different VPs carrying different (cleaned)
/// paths, re-announce VP A's prefix with VP B's path. Every filter that
/// admitted the donors admits the graft — same stable, located,
/// uncovered prefix; same located VP; a path that already passed the
/// path checks — and the (vp, prefix, path) dedup key is verified fresh
/// against the accepted rows, so EXACTLY one new sanitized row appears:
/// a genuine single-country burst. A simple withdrawal would not do —
/// final-day entries are near-universally cross-day duplicates the
/// dedup pass already merged, so deleting one changes no row. The graft
/// leaves the stable-prefix set intact, keeping the incremental
/// sanitize fast path eligible. `warm` must be loaded with `base`.
bgp::RibCollection burst_collection(const core::Pipeline& warm,
                                    const bgp::RibCollection& base) {
  bgp::RibCollection burst = base;
  if (burst.days.empty()) return burst;

  std::unordered_map<bgp::Prefix, std::vector<const sanitize::SanitizedPath*>,
                     bgp::PrefixHash>
      by_prefix;
  for (const sanitize::SanitizedPath& p : warm.sanitized().paths) {
    by_prefix[p.prefix].push_back(&p);
  }
  for (const auto& [prefix, rows] : by_prefix) {
    for (const sanitize::SanitizedPath* a : rows) {
      for (const sanitize::SanitizedPath* b : rows) {
        if (a->vp == b->vp || a->path == b->path) continue;
        bool taken = false;  // (a->vp, prefix, b->path) already a row?
        for (const sanitize::SanitizedPath* c : rows) {
          if (c->vp == a->vp && c->path == b->path) {
            taken = true;
            break;
          }
        }
        if (taken) continue;
        burst.days.back().entries.push_back(
            bgp::RouteEntry{a->vp, prefix, b->path});
        return burst;
      }
    }
  }
  if (!burst.days.back().entries.empty()) {
    burst.days.back().entries.pop_back();  // fallback: change *something*
  }
  return burst;
}

struct BurstResult {
  double incremental_seconds = 0.0;
  double apply_seconds = 0.0;  // apply_updates share of incremental
  double full_seconds = 0.0;
  core::Pipeline::ApplyResult apply;
  bool bit_identical = false;
  std::size_t shards_total = 0;
};

BurstResult bench_burst(const bench::Context& context,
                        const bgp::RibCollection& base) {
  BurstResult result;

  // Warm pipeline at the pre-burst state, census fully memoized (exactly
  // what a running UpdatePipeline looks like between flushes).
  core::Pipeline warm = fresh_pipeline(context);
  warm.load(base);
  (void)serve::Snapshot::build(warm, bench_meta());
  bgp::RibCollection burst = burst_collection(warm, base);

  serve::Snapshot incremental_snapshot;
  Clock::time_point start = Clock::now();
  result.apply = warm.apply_updates(burst);
  result.apply_seconds = seconds_since(start);
  incremental_snapshot = serve::Snapshot::build(warm, bench_meta());
  result.incremental_seconds = seconds_since(start);
  result.shards_total = warm.store().shards().size();

  serve::Snapshot full_snapshot;
  start = Clock::now();
  core::Pipeline cold = fresh_pipeline(context);
  cold.load(burst);
  full_snapshot = serve::Snapshot::build(cold, bench_meta());
  result.full_seconds = seconds_since(start);

  result.bit_identical = io::encode_snapshot(incremental_snapshot) ==
                         io::encode_snapshot(full_snapshot);
  return result;
}

int run_smoke() {
  // Mini world, replayed through the live pipeline and recomputed from
  // scratch: the two GRSNAP01 encodings must be byte-identical, and the
  // no-change re-apply must keep every shard.
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(29)}.generate();
  gen::NoiseSpec noise;
  bgp::RibCollection ribs = gen::RibGenerator{world, noise, 5}.generate(3);
  std::vector<bgp::UpdateMessage> archive = bgp::collection_to_updates(ribs);

  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;

  core::Pipeline batch{world.geo_db, world.vps, world.asn_registry,
                       world.graph, config};
  batch.load(bgp::replay_to_collection(archive, bgp::ReplayOptions{}));
  std::string want = io::encode_snapshot(serve::Snapshot::build(batch, bench_meta()));

  core::Pipeline streamed{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  serve::RankingService service;
  live::UpdatePipelineOptions options;
  options.flush_batch = 313;
  live::UpdatePipeline live{streamed, service, options};
  for (const bgp::UpdateMessage& u : archive) (void)live.push(u);
  (void)live.drain();
  std::string got = io::encode_snapshot(serve::Snapshot::build(streamed, bench_meta()));
  if (got != want) {
    std::fprintf(stderr, "smoke FAILED: live snapshot != batch recompute\n");
    return 1;
  }

  core::Pipeline::ApplyResult again = streamed.apply_updates(
      bgp::replay_to_collection(archive, bgp::ReplayOptions{}));
  if (again.shards_rebuilt != 0 || again.memos_evicted != 0) {
    std::fprintf(stderr,
                 "smoke FAILED: no-change re-apply rebuilt %zu shards, "
                 "evicted %zu memos\n",
                 again.shards_rebuilt, again.memos_evicted);
    return 1;
  }
  std::printf("smoke ok: %zu-update archive, live == batch (%zu bytes), "
              "no-change re-apply kept %zu shards\n",
              archive.size(), want.size(), again.shards_kept);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  // --burst: skip the cadence sweep (useful when iterating on the
  // incremental path; the burst section is the acceptance-bar number).
  const bool burst_only = argc > 1 && std::strcmp(argv[1], "--burst") == 0;

  bench::print_banner(
      "live", "incremental republish latency vs batch size, and the "
              "single-country-burst speedup over a full recompute");

  bench::ContextOptions options;
  options.keep_ribs = true;
  std::unique_ptr<bench::Context> context = bench::make_context(options);
  std::vector<bgp::UpdateMessage> archive =
      bgp::collection_to_updates(context->ribs);
  std::printf("update archive: %zu messages over %zu days\n\n", archive.size(),
              context->ribs.days.size());

  if (!burst_only) {
    std::printf("-- republish latency vs flush batch size --\n");
    std::printf("%10s %10s %14s %14s %14s %12s\n", "batch", "publishes",
                "mean repub s", "mean apply s", "mean census s", "replay s");
    for (std::size_t flush_batch : {2000u, 8000u, 32000u, 128000u}) {
      CadenceResult r = bench_cadence(*context, archive, flush_batch);
      std::printf("%10zu %10llu %14.4f %14.4f %14.4f %12.3f\n", r.flush_batch,
                  static_cast<unsigned long long>(r.publishes),
                  r.mean_republish_seconds, r.mean_apply_seconds,
                  r.mean_census_seconds, r.total_seconds);
    }
  }

  std::printf("\n-- single-country burst: incremental vs full recompute --\n");
  bgp::RibCollection base =
      bgp::replay_to_collection(archive, bgp::ReplayOptions{});
  BurstResult burst = bench_burst(*context, base);
  std::printf("shards: %zu kept / %zu rebuilt of %zu; memos: %zu warm / %zu "
              "evicted\n",
              burst.apply.shards_kept, burst.apply.shards_rebuilt,
              burst.shards_total, burst.apply.memos_kept,
              burst.apply.memos_evicted);
  std::printf("sanitize: %s, %zu day(s) resanitized\n",
              burst.apply.sanitize_fast_path ? "fast path" : "full run",
              burst.apply.days_resanitized);
  std::printf("incremental (apply_updates + build): %8.3f s (apply %.3f s)\n",
              burst.incremental_seconds, burst.apply_seconds);
  std::printf("full recompute (load + build):       %8.3f s\n",
              burst.full_seconds);
  std::printf("speedup: %.1fx, snapshots %s\n",
              burst.full_seconds / burst.incremental_seconds,
              burst.bit_identical ? "byte-identical" : "DIVERGED");
  return burst.bit_identical ? 0 : 1;
}
