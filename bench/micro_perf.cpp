// google-benchmark microbenchmarks for the hot paths of the pipeline:
// route propagation, prefix-trie operations, sanitization, and the two
// core metrics. These guard the throughput that makes full-world
// reproduction (5M RIB entries) practical.
#include <benchmark/benchmark.h>

#include "core/country_rankings.hpp"
#include "core/views.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "topo/route_propagation.hpp"
#include "util/rng.hpp"

namespace {

using namespace georank;

const gen::World& mini_world() {
  static gen::World world = gen::InternetGenerator{gen::mini_world_spec(5)}.generate();
  return world;
}

const bgp::RibCollection& mini_ribs() {
  static bgp::RibCollection ribs = [] {
    gen::NoiseSpec noise;
    return gen::RibGenerator{mini_world(), noise, 7}.generate(5);
  }();
  return ribs;
}

const sanitize::SanitizeResult& mini_sanitized() {
  static sanitize::SanitizeResult result = [] {
    const gen::World& w = mini_world();
    sanitize::SanitizerOptions options;
    options.clique = w.clique;
    options.route_server_asns = w.route_servers;
    sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
    return sanitizer.run(mini_ribs());
  }();
  return result;
}

void BM_RoutePropagation(benchmark::State& state) {
  const gen::World& w = mini_world();
  topo::RoutePropagator propagator{w.graph};
  std::uint64_t salt = 1;
  for (auto _ : state) {
    auto table = propagator.compute(gen::asn::kTelstra, salt++);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.graph.size()));
}
BENCHMARK(BM_RoutePropagation);

void BM_PrefixTrieInsertMatch(benchmark::State& state) {
  util::Pcg32 rng{3};
  std::vector<bgp::Prefix> prefixes;
  for (int i = 0; i < 4096; ++i) {
    prefixes.emplace_back(0x10000000 + rng.below(1 << 24) * 256,
                          static_cast<std::uint8_t>(16 + rng.below(9)));
  }
  for (auto _ : state) {
    bgp::PrefixTrie trie;
    for (const auto& p : prefixes) trie.insert(p);
    std::uint64_t hits = 0;
    for (const auto& p : prefixes) {
      hits += trie.most_specific_match(p.address()).has_value();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_PrefixTrieInsertMatch);

void BM_Sanitizer(benchmark::State& state) {
  const gen::World& w = mini_world();
  sanitize::SanitizerOptions options;
  options.clique = w.clique;
  options.route_server_asns = w.route_servers;
  sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
  for (auto _ : state) {
    auto result = sanitizer.run(mini_ribs());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(mini_ribs().total_entries()));
}
BENCHMARK(BM_Sanitizer);

void BM_CustomerCone(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::CustomerCone cone{mini_world().graph};
  for (auto _ : state) {
    auto result = cone.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_CustomerCone);

void BM_Hegemony(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::Hegemony hegemony;
  for (auto _ : state) {
    auto result = hegemony.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_Hegemony);

void BM_CountryMetrics(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  core::CountryRankings rankings{mini_world().graph};
  geo::CountryCode au = geo::CountryCode::of("AU");
  for (auto _ : state) {
    auto metrics = rankings.compute(sanitized.paths, au);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_CountryMetrics);

}  // namespace

BENCHMARK_MAIN();
