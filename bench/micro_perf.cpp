// google-benchmark microbenchmarks for the hot paths of the pipeline:
// route propagation, prefix-trie operations, sanitization, the two core
// metrics, and the PathStore view machinery. These guard the throughput
// that makes full-world reproduction (5M RIB entries) practical.
//
// The binary instruments global operator new/delete with an allocation
// counter, reported as the "allocs" counter on the view/census
// benchmarks: the copy-based path allocates per copied AsPath, the
// indexed path must not allocate per path at all.
//
// `bench_micro_perf --smoke` runs a fast self-check instead of the timed
// benchmarks (registered in ctest): it asserts the indexed views agree
// with the copy-based ones AND that indexed construction does zero
// per-path allocations.
#include <benchmark/benchmark.h>

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <sstream>

#include "bgp/fault_inject.hpp"
#include "bgp/mrt_stream.hpp"
#include "core/country_rankings.hpp"
#include "core/path_store.hpp"
#include "core/views.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "topo/route_propagation.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

// ---- global allocation counter ------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

// noinline keeps GCC from pairing the inlined malloc/free with the
// new/delete expressions and warning about the (intentional) mismatch.
[[gnu::noinline]] void* counted_malloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void counted_free(void* p) { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace georank;

std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }

const gen::World& mini_world() {
  // lint: static-ok(single-threaded bench; memoized fixture)
  static gen::World world = gen::InternetGenerator{gen::mini_world_spec(5)}.generate();
  return world;
}

const bgp::RibCollection& mini_ribs() {
  // lint: static-ok(single-threaded bench; memoized fixture)
  static bgp::RibCollection ribs = [] {
    gen::NoiseSpec noise;
    return gen::RibGenerator{mini_world(), noise, 7}.generate(5);
  }();
  return ribs;
}

const sanitize::SanitizeResult& mini_sanitized() {
  // lint: static-ok(single-threaded bench; memoized fixture)
  static sanitize::SanitizeResult result = [] {
    const gen::World& w = mini_world();
    sanitize::SanitizerOptions options;
    options.clique = w.clique;
    options.route_server_asns = w.route_servers;
    sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
    return sanitizer.run(mini_ribs());
  }();
  return result;
}

const core::PathStore& mini_store() {
  // lint: static-ok(single-threaded bench; memoized fixture)
  static core::PathStore store{
      std::span<const sanitize::SanitizedPath>{mini_sanitized().paths}};
  return store;
}

/// The SEED's view construction: filter the full path set and deep-copy
/// every matching SanitizedPath (each copy reallocating its AsPath hop
/// vector). Kept here verbatim as the "before" baseline.
std::vector<sanitize::SanitizedPath> legacy_copy_view(
    std::span<const sanitize::SanitizedPath> all, geo::CountryCode cc,
    core::ViewKind kind) {
  std::vector<sanitize::SanitizedPath> out;
  for (const sanitize::SanitizedPath& sp : all) {
    bool match = false;
    switch (kind) {
      case core::ViewKind::kNational:
        match = sp.prefix_country == cc && sp.vp_country == cc;
        break;
      case core::ViewKind::kInternational:
        match = sp.prefix_country == cc && sp.vp_country.valid() &&
                sp.vp_country != cc;
        break;
      case core::ViewKind::kOutbound:
        match = sp.vp_country == cc && sp.prefix_country.valid() &&
                sp.prefix_country != cc;
        break;
    }
    if (match) out.push_back(sp);
  }
  return out;
}

// ---- ingest baselines ----------------------------------------------------

/// The SEED's MRT parser, replicated verbatim as the "before" ingest
/// baseline: one std::vector of fields allocated per line (util::split),
/// a second per AS path (util::split_ws), a copied RouteEntry per
/// accepted line — and the unchecked (ts - base) / 86400 day index the
/// parsing bugfix sweep replaced.
std::optional<bgp::AsPath> seed_parse_path(std::string_view text) {
  bgp::AsPath path;
  for (std::string_view token : util::split_ws(text)) {
    auto asn = util::parse_int<bgp::Asn>(token);
    if (!asn) return std::nullopt;
    path.push_back(*asn);
  }
  return path;
}

// The seed's parse_ipv4 / Prefix::parse, frozen here so that hot-path
// rewrites of the live versions cannot leak into the "before" baseline.
std::optional<std::uint32_t> seed_parse_ipv4(std::string_view text) {
  std::uint32_t ip = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [ptr, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255 || ptr == p) return std::nullopt;
    ip = (ip << 8) | value;
    p = ptr;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return ip;
}

std::optional<bgp::Prefix> seed_parse_prefix(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = seed_parse_ipv4(text.substr(0, slash));
  if (!ip) return std::nullopt;
  unsigned len = 0;
  std::string_view len_text = text.substr(slash + 1);
  const char* first = len_text.data();
  const char* last = len_text.data() + len_text.size();
  auto [ptr, ec] = std::from_chars(first, last, len);
  if (ec != std::errc{} || ptr != last || len > 32) return std::nullopt;
  return bgp::Prefix{*ip, static_cast<std::uint8_t>(len)};
}

bgp::RibCollection seed_read_collection(std::string_view text,
                                        std::uint64_t base_time = 1617235200) {
  std::map<int, bgp::RibSnapshot> by_day;
  bgp::RouteEntry entry;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t newline = text.find('\n', pos);
    std::size_t end = newline == std::string_view::npos ? text.size() : newline;
    std::string_view trimmed = util::trim(text.substr(pos, end - pos));
    pos = newline == std::string_view::npos ? text.size() : newline + 1;
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::split(trimmed, '|');
    if (fields.size() != 8 || fields[0] != "TABLE_DUMP2" || fields[2] != "B") {
      continue;
    }
    auto ts = util::parse_int<std::uint64_t>(fields[1]);
    auto ip = seed_parse_ipv4(fields[3]);
    auto asn = util::parse_int<bgp::Asn>(fields[4]);
    auto prefix = seed_parse_prefix(fields[5]);
    auto path = seed_parse_path(fields[6]);
    if (!ts || !ip || !asn || !prefix || !path || path->empty() ||
        *asn == bgp::kInvalidAsn) {
      continue;
    }
    entry.vp = bgp::VpId{*ip, *asn};
    entry.prefix = *prefix;
    entry.path = std::move(*path);
    int day = static_cast<int>((*ts - base_time) / 86400);
    bgp::RibSnapshot& snap = by_day[day];
    snap.day = day;
    snap.entries.push_back(entry);
  }
  bgp::RibCollection out;
  out.days.reserve(by_day.size());
  for (auto& [d, snap] : by_day) out.days.push_back(std::move(snap));
  return out;
}

const std::string& mini_mrt_text() {
  // lint: static-ok(single-threaded bench; memoized fixture)
  static std::string text = bgp::to_mrt_text(mini_ribs());
  return text;
}

void BM_IngestSeedReader(benchmark::State& state) {
  const std::string& text = mini_mrt_text();
  for (auto _ : state) {
    auto ribs = seed_read_collection(text);
    benchmark::DoNotOptimize(ribs);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestSeedReader);

void BM_IngestReader(benchmark::State& state) {
  const std::string& text = mini_mrt_text();
  for (auto _ : state) {
    std::istringstream is{text};
    bgp::MrtTextReader reader;
    auto ribs = reader.read_collection(is);
    benchmark::DoNotOptimize(ribs);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestReader);

void BM_IngestStreamSingle(benchmark::State& state) {
  const std::string& text = mini_mrt_text();
  bgp::MrtStreamOptions options;
  options.threads = 1;
  for (auto _ : state) {
    bgp::MrtStreamLoader loader{options};
    auto ribs = loader.load_text(text);
    benchmark::DoNotOptimize(ribs);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestStreamSingle);

void BM_IngestStreamParallel(benchmark::State& state) {
  const std::string& text = mini_mrt_text();
  bgp::MrtStreamOptions options;  // threads = default_thread_count()
  for (auto _ : state) {
    bgp::MrtStreamLoader loader{options};
    auto ribs = loader.load_text(text);
    benchmark::DoNotOptimize(ribs);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestStreamParallel);

void BM_RoutePropagation(benchmark::State& state) {
  const gen::World& w = mini_world();
  topo::RoutePropagator propagator{w.graph};
  std::uint64_t salt = 1;
  for (auto _ : state) {
    auto table = propagator.compute(gen::asn::kTelstra, salt++);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.graph.size()));
}
BENCHMARK(BM_RoutePropagation);

void BM_PrefixTrieInsertMatch(benchmark::State& state) {
  util::Pcg32 rng{3};
  std::vector<bgp::Prefix> prefixes;
  for (int i = 0; i < 4096; ++i) {
    prefixes.emplace_back(0x10000000 + rng.below(1 << 24) * 256,
                          static_cast<std::uint8_t>(16 + rng.below(9)));
  }
  for (auto _ : state) {
    bgp::PrefixTrie trie;
    for (const auto& p : prefixes) trie.insert(p);
    std::uint64_t hits = 0;
    for (const auto& p : prefixes) {
      hits += trie.most_specific_match(p.address()).has_value();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_PrefixTrieInsertMatch);

void BM_Sanitizer(benchmark::State& state) {
  const gen::World& w = mini_world();
  sanitize::SanitizerOptions options;
  options.clique = w.clique;
  options.route_server_asns = w.route_servers;
  sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
  for (auto _ : state) {
    auto result = sanitizer.run(mini_ribs());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(mini_ribs().total_entries()));
}
BENCHMARK(BM_Sanitizer);

void BM_CustomerCone(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::CustomerCone cone{mini_world().graph};
  for (auto _ : state) {
    auto result = cone.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_CustomerCone);

void BM_Hegemony(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::Hegemony hegemony;
  for (auto _ : state) {
    auto result = hegemony.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_Hegemony);

void BM_PathStoreBuild(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  for (auto _ : state) {
    core::PathStore store{
        std::span<const sanitize::SanitizedPath>{sanitized.paths}};
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_PathStoreBuild);

/// Before: national+international+outbound views for every country, the
/// seed's deep-copy way.
void BM_ViewConstructionCopy(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  const auto countries = core::ViewBuilder::countries(sanitized.paths);
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : countries) {
      for (core::ViewKind kind :
           {core::ViewKind::kNational, core::ViewKind::kInternational,
            core::ViewKind::kOutbound}) {
        auto view = legacy_copy_view(sanitized.paths, cc, kind);
        benchmark::DoNotOptimize(view);
      }
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(countries.size() * sanitized.paths.size()));
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ViewConstructionCopy);

/// After: the same views as O(view size) index gathers over the store.
void BM_ViewConstructionIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : store.countries()) {
      for (core::ViewKind kind :
           {core::ViewKind::kNational, core::ViewKind::kInternational,
            core::ViewKind::kOutbound}) {
        core::CountryView view = store.view(cc, kind);
        benchmark::DoNotOptimize(view);
      }
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(store.countries().size() * store.size()));
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ViewConstructionIndexed);

void BM_CountryMetrics(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  core::CountryRankings rankings{mini_world().graph};
  geo::CountryCode au = geo::CountryCode::of("AU");
  for (auto _ : state) {
    auto metrics = rankings.compute(sanitized.paths, au);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_CountryMetrics);

void BM_CountryMetricsIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  core::CountryRankings rankings{mini_world().graph};
  geo::CountryCode au = geo::CountryCode::of("AU");
  for (auto _ : state) {
    auto metrics = rankings.compute(store, au);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_CountryMetricsIndexed);

/// The all-countries census (bench/table04's workload): before = one
/// span-based compute per country (views re-filter + copy the full set),
/// after = indexed computes over the shared store.
void BM_CensusCopy(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  core::CountryRankings rankings{mini_world().graph};
  const auto countries = core::ViewBuilder::countries(sanitized.paths);
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : countries) {
      auto metrics = rankings.compute(sanitized.paths, cc);
      benchmark::DoNotOptimize(metrics);
    }
  }
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CensusCopy);

void BM_CensusIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  core::CountryRankings rankings{mini_world().graph};
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : store.countries()) {
      auto metrics = rankings.compute(store, cc);
      benchmark::DoNotOptimize(metrics);
    }
  }
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CensusIndexed);

// ---- smoke mode ----------------------------------------------------------

/// Fast self-check for ctest: indexed views must agree with the legacy
/// copies AND must not allocate per contained path. Returns 0 on pass.
int run_smoke() {
  const auto& sanitized = mini_sanitized();
  const core::PathStore& store = mini_store();
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "[ ok ]" : "[FAIL]", what);
    if (!ok) ++failures;
  };

  std::printf("       %zu paths, %zu unique AS paths, %zu hop arena entries, "
              "%zu countries\n",
              store.size(), store.unique_path_count(), store.arena_hop_count(),
              store.countries().size());
  check(store.size() == sanitized.paths.size(), "store covers every path");
  check(store.unique_path_count() < store.size(),
        "interning collapses duplicate AS paths");

  // Selection equivalence on every country and view kind.
  bool selections_match = true;
  std::size_t total_view_paths = 0;
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      auto legacy = legacy_copy_view(sanitized.paths, cc, kind);
      core::CountryView view = store.view(cc, kind);
      total_view_paths += view.size();
      if (view.size() != legacy.size()) {
        selections_match = false;
        continue;
      }
      for (std::size_t i = 0; i < view.size(); ++i) {
        const sanitize::PathRecord rec = view[i];
        if (rec.vp != legacy[i].vp || rec.prefix != legacy[i].prefix ||
            !(rec.path == bgp::AsPathView{legacy[i].path})) {
          selections_match = false;
        }
      }
    }
  }
  check(selections_match, "indexed views match legacy copy-based views");

  // Allocation discipline: constructing all views again must allocate
  // only index vectors (a couple of allocations per view), never per
  // contained path. The legacy copies allocate at least one AsPath hop
  // vector per path.
  const std::uint64_t a0 = allocs();
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      core::CountryView view = store.view(cc, kind);
      benchmark::DoNotOptimize(view);
    }
  }
  const std::uint64_t indexed_allocs = allocs() - a0;
  const std::uint64_t b0 = allocs();
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      auto view = legacy_copy_view(sanitized.paths, cc, kind);
      benchmark::DoNotOptimize(view);
    }
  }
  const std::uint64_t copy_allocs = allocs() - b0;
  std::printf("       view construction allocs: indexed=%llu copy=%llu "
              "(%zu paths across views)\n",
              static_cast<unsigned long long>(indexed_allocs),
              static_cast<unsigned long long>(copy_allocs),
              total_view_paths);
  check(indexed_allocs < total_view_paths,
        "indexed view construction never allocates per path");
  check(copy_allocs > indexed_allocs,
        "indexed construction allocates less than copy construction");

  // ---- ingest: the chunked parallel loader must agree bit-for-bit with
  // the sequential reader, and tolerant-mode diagnostics must match a
  // known fault-injection log exactly. ----
  {
    const std::string& text = mini_mrt_text();
    std::istringstream is{text};
    bgp::MrtTextReader reader;
    bgp::RibCollection expected = reader.read_collection(is);
    bgp::MrtStreamOptions options;
    options.chunk_bytes = 4096;
    bgp::MrtStreamLoader loader{options};
    bgp::RibCollection streamed = loader.load_text(text);
    bool identical = streamed.days.size() == expected.days.size();
    for (std::size_t d = 0; identical && d < expected.days.size(); ++d) {
      identical = streamed.days[d].day == expected.days[d].day &&
                  streamed.days[d].entries == expected.days[d].entries;
    }
    check(identical, "streamed load is bit-identical to sequential reader");
    check(seed_read_collection(text).total_entries() == expected.total_entries(),
          "seed-replica baseline parses the same clean corpus");

    bgp::FaultSpec spec;
    spec.seed = 7;
    spec.fraction = 0.05;
    bgp::FaultCorpus corpus =
        bgp::inject_faults(bgp::make_clean_mrt_text(2000), spec);
    bgp::MrtStreamLoader tolerant;
    bgp::RibCollection survived = tolerant.load_text(corpus.text);
    const bgp::MrtParseStats& s = tolerant.stats();
    check(s.malformed == corpus.malformed_lines() &&
              s.parsed == corpus.lines - corpus.malformed_lines() &&
              survived.total_entries() == s.parsed,
          "tolerant mode drops exactly the injected faults");
    bool reasons_match = true;
    for (std::size_t r = 1; r < bgp::kParseReasonCount; ++r) {
      auto reason = static_cast<bgp::ParseReason>(r);
      if (reason == bgp::ParseReason::kBadRecordType) continue;  // not injected
      if (s.reason_count(reason) != corpus.expected_reason_count(reason)) {
        reasons_match = false;
      }
    }
    check(reasons_match, "per-reason counters match the injection log");
  }

  std::printf(failures == 0 ? "smoke: PASS\n" : "smoke: FAIL (%d)\n", failures);
  return failures == 0 ? 0 : 1;
}

// ---- ingest throughput report -------------------------------------------

/// `--ingest [--mini]`: times the seed-replica reader, the rewritten
/// sequential reader, and the chunked loader (1 thread and default
/// threads) over a generated world's RIB text, verifying all four produce
/// identical collections. Numbers feed BENCH_ingest.json.
int run_ingest_report(bool mini) {
  std::printf("generating %s world...\n", mini ? "mini" : "default");
  gen::WorldSpec spec = mini ? gen::mini_world_spec(5)
                             : gen::default_world_spec(gen::Epoch::kApril2021,
                                                       20210401);
  gen::World world = gen::InternetGenerator{spec}.generate();
  gen::NoiseSpec noise;
  bgp::RibCollection ribs = gen::RibGenerator{world, noise, 7}.generate(5);
  std::string text = bgp::to_mrt_text(ribs);
  std::printf("  %zu entries, %.1f MB of MRT text\n", ribs.total_entries(),
              static_cast<double>(text.size()) / 1e6);

  auto best_of = [&](auto&& fn) {
    double best = 1e100;
    for (int round = 0; round < 3; ++round) {
      auto t0 = std::chrono::steady_clock::now();
      fn();
      double s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      if (s < best) best = s;
    }
    return best;
  };

  bgp::RibCollection expected;
  double seed_s = best_of([&] { expected = seed_read_collection(text); });
  bgp::RibCollection reader_out;
  double reader_s = best_of([&] {
    std::istringstream is{text};
    bgp::MrtTextReader reader;
    reader_out = reader.read_collection(is);
  });
  bgp::MrtStreamOptions single;
  single.threads = 1;
  bgp::RibCollection single_out;
  double single_s = best_of([&] {
    bgp::MrtStreamLoader loader{single};
    single_out = loader.load_text(text);
  });
  bgp::RibCollection parallel_out;
  double parallel_s = best_of([&] {
    bgp::MrtStreamLoader loader;  // default threads
    parallel_out = loader.load_text(text);
  });

  auto identical = [&](const bgp::RibCollection& a) {
    if (a.days.size() != expected.days.size()) return false;
    for (std::size_t d = 0; d < a.days.size(); ++d) {
      if (a.days[d].day != expected.days[d].day ||
          a.days[d].entries != expected.days[d].entries) {
        return false;
      }
    }
    return true;
  };
  bool all_identical =
      identical(reader_out) && identical(single_out) && identical(parallel_out);

  double mb = static_cast<double>(text.size()) / 1e6;
  std::printf("\n  %-28s %8.3fs  %7.1f MB/s\n", "seed-replica reader", seed_s,
              mb / seed_s);
  std::printf("  %-28s %8.3fs  %7.1f MB/s  (%.2fx vs seed)\n",
              "rewritten reader", reader_s, mb / reader_s, seed_s / reader_s);
  std::printf("  %-28s %8.3fs  %7.1f MB/s  (%.2fx vs seed)\n",
              "stream loader, 1 thread", single_s, mb / single_s,
              seed_s / single_s);
  std::printf("  %-28s %8.3fs  %7.1f MB/s  (%.2fx vs seed)\n",
              "stream loader, default", parallel_s, mb / parallel_s,
              seed_s / parallel_s);
  std::printf("  collections identical: %s\n", all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool mini = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mini") == 0) mini = true;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strcmp(argv[i], "--ingest") == 0) return run_ingest_report(mini);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
