// google-benchmark microbenchmarks for the hot paths of the pipeline:
// route propagation, prefix-trie operations, sanitization, the two core
// metrics, and the PathStore view machinery. These guard the throughput
// that makes full-world reproduction (5M RIB entries) practical.
//
// The binary instruments global operator new/delete with an allocation
// counter, reported as the "allocs" counter on the view/census
// benchmarks: the copy-based path allocates per copied AsPath, the
// indexed path must not allocate per path at all.
//
// `bench_micro_perf --smoke` runs a fast self-check instead of the timed
// benchmarks (registered in ctest): it asserts the indexed views agree
// with the copy-based ones AND that indexed construction does zero
// per-path allocations.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/country_rankings.hpp"
#include "core/path_store.hpp"
#include "core/views.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "topo/route_propagation.hpp"
#include "util/rng.hpp"

// ---- global allocation counter ------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

// noinline keeps GCC from pairing the inlined malloc/free with the
// new/delete expressions and warning about the (intentional) mismatch.
[[gnu::noinline]] void* counted_malloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void counted_free(void* p) { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace georank;

std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }

const gen::World& mini_world() {
  static gen::World world = gen::InternetGenerator{gen::mini_world_spec(5)}.generate();
  return world;
}

const bgp::RibCollection& mini_ribs() {
  static bgp::RibCollection ribs = [] {
    gen::NoiseSpec noise;
    return gen::RibGenerator{mini_world(), noise, 7}.generate(5);
  }();
  return ribs;
}

const sanitize::SanitizeResult& mini_sanitized() {
  static sanitize::SanitizeResult result = [] {
    const gen::World& w = mini_world();
    sanitize::SanitizerOptions options;
    options.clique = w.clique;
    options.route_server_asns = w.route_servers;
    sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
    return sanitizer.run(mini_ribs());
  }();
  return result;
}

const core::PathStore& mini_store() {
  static core::PathStore store{
      std::span<const sanitize::SanitizedPath>{mini_sanitized().paths}};
  return store;
}

/// The SEED's view construction: filter the full path set and deep-copy
/// every matching SanitizedPath (each copy reallocating its AsPath hop
/// vector). Kept here verbatim as the "before" baseline.
std::vector<sanitize::SanitizedPath> legacy_copy_view(
    std::span<const sanitize::SanitizedPath> all, geo::CountryCode cc,
    core::ViewKind kind) {
  std::vector<sanitize::SanitizedPath> out;
  for (const sanitize::SanitizedPath& sp : all) {
    bool match = false;
    switch (kind) {
      case core::ViewKind::kNational:
        match = sp.prefix_country == cc && sp.vp_country == cc;
        break;
      case core::ViewKind::kInternational:
        match = sp.prefix_country == cc && sp.vp_country.valid() &&
                sp.vp_country != cc;
        break;
      case core::ViewKind::kOutbound:
        match = sp.vp_country == cc && sp.prefix_country.valid() &&
                sp.prefix_country != cc;
        break;
    }
    if (match) out.push_back(sp);
  }
  return out;
}

void BM_RoutePropagation(benchmark::State& state) {
  const gen::World& w = mini_world();
  topo::RoutePropagator propagator{w.graph};
  std::uint64_t salt = 1;
  for (auto _ : state) {
    auto table = propagator.compute(gen::asn::kTelstra, salt++);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.graph.size()));
}
BENCHMARK(BM_RoutePropagation);

void BM_PrefixTrieInsertMatch(benchmark::State& state) {
  util::Pcg32 rng{3};
  std::vector<bgp::Prefix> prefixes;
  for (int i = 0; i < 4096; ++i) {
    prefixes.emplace_back(0x10000000 + rng.below(1 << 24) * 256,
                          static_cast<std::uint8_t>(16 + rng.below(9)));
  }
  for (auto _ : state) {
    bgp::PrefixTrie trie;
    for (const auto& p : prefixes) trie.insert(p);
    std::uint64_t hits = 0;
    for (const auto& p : prefixes) {
      hits += trie.most_specific_match(p.address()).has_value();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_PrefixTrieInsertMatch);

void BM_Sanitizer(benchmark::State& state) {
  const gen::World& w = mini_world();
  sanitize::SanitizerOptions options;
  options.clique = w.clique;
  options.route_server_asns = w.route_servers;
  sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
  for (auto _ : state) {
    auto result = sanitizer.run(mini_ribs());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(mini_ribs().total_entries()));
}
BENCHMARK(BM_Sanitizer);

void BM_CustomerCone(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::CustomerCone cone{mini_world().graph};
  for (auto _ : state) {
    auto result = cone.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_CustomerCone);

void BM_Hegemony(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  rank::Hegemony hegemony;
  for (auto _ : state) {
    auto result = hegemony.compute(sanitized.paths);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_Hegemony);

void BM_PathStoreBuild(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  for (auto _ : state) {
    core::PathStore store{
        std::span<const sanitize::SanitizedPath>{sanitized.paths}};
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sanitized.paths.size()));
}
BENCHMARK(BM_PathStoreBuild);

/// Before: national+international+outbound views for every country, the
/// seed's deep-copy way.
void BM_ViewConstructionCopy(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  const auto countries = core::ViewBuilder::countries(sanitized.paths);
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : countries) {
      for (core::ViewKind kind :
           {core::ViewKind::kNational, core::ViewKind::kInternational,
            core::ViewKind::kOutbound}) {
        auto view = legacy_copy_view(sanitized.paths, cc, kind);
        benchmark::DoNotOptimize(view);
      }
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(countries.size() * sanitized.paths.size()));
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ViewConstructionCopy);

/// After: the same views as O(view size) index gathers over the store.
void BM_ViewConstructionIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : store.countries()) {
      for (core::ViewKind kind :
           {core::ViewKind::kNational, core::ViewKind::kInternational,
            core::ViewKind::kOutbound}) {
        core::CountryView view = store.view(cc, kind);
        benchmark::DoNotOptimize(view);
      }
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(store.countries().size() * store.size()));
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ViewConstructionIndexed);

void BM_CountryMetrics(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  core::CountryRankings rankings{mini_world().graph};
  geo::CountryCode au = geo::CountryCode::of("AU");
  for (auto _ : state) {
    auto metrics = rankings.compute(sanitized.paths, au);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_CountryMetrics);

void BM_CountryMetricsIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  core::CountryRankings rankings{mini_world().graph};
  geo::CountryCode au = geo::CountryCode::of("AU");
  for (auto _ : state) {
    auto metrics = rankings.compute(store, au);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_CountryMetricsIndexed);

/// The all-countries census (bench/table04's workload): before = one
/// span-based compute per country (views re-filter + copy the full set),
/// after = indexed computes over the shared store.
void BM_CensusCopy(benchmark::State& state) {
  const auto& sanitized = mini_sanitized();
  core::CountryRankings rankings{mini_world().graph};
  const auto countries = core::ViewBuilder::countries(sanitized.paths);
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : countries) {
      auto metrics = rankings.compute(sanitized.paths, cc);
      benchmark::DoNotOptimize(metrics);
    }
  }
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CensusCopy);

void BM_CensusIndexed(benchmark::State& state) {
  const core::PathStore& store = mini_store();
  core::CountryRankings rankings{mini_world().graph};
  const std::uint64_t before = allocs();
  for (auto _ : state) {
    for (geo::CountryCode cc : store.countries()) {
      auto metrics = rankings.compute(store, cc);
      benchmark::DoNotOptimize(metrics);
    }
  }
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CensusIndexed);

// ---- smoke mode ----------------------------------------------------------

/// Fast self-check for ctest: indexed views must agree with the legacy
/// copies AND must not allocate per contained path. Returns 0 on pass.
int run_smoke() {
  const auto& sanitized = mini_sanitized();
  const core::PathStore& store = mini_store();
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "[ ok ]" : "[FAIL]", what);
    if (!ok) ++failures;
  };

  std::printf("       %zu paths, %zu unique AS paths, %zu hop arena entries, "
              "%zu countries\n",
              store.size(), store.unique_path_count(), store.arena_hop_count(),
              store.countries().size());
  check(store.size() == sanitized.paths.size(), "store covers every path");
  check(store.unique_path_count() < store.size(),
        "interning collapses duplicate AS paths");

  // Selection equivalence on every country and view kind.
  bool selections_match = true;
  std::size_t total_view_paths = 0;
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      auto legacy = legacy_copy_view(sanitized.paths, cc, kind);
      core::CountryView view = store.view(cc, kind);
      total_view_paths += view.size();
      if (view.size() != legacy.size()) {
        selections_match = false;
        continue;
      }
      for (std::size_t i = 0; i < view.size(); ++i) {
        const sanitize::PathRecord rec = view[i];
        if (rec.vp != legacy[i].vp || rec.prefix != legacy[i].prefix ||
            !(rec.path == bgp::AsPathView{legacy[i].path})) {
          selections_match = false;
        }
      }
    }
  }
  check(selections_match, "indexed views match legacy copy-based views");

  // Allocation discipline: constructing all views again must allocate
  // only index vectors (a couple of allocations per view), never per
  // contained path. The legacy copies allocate at least one AsPath hop
  // vector per path.
  const std::uint64_t a0 = allocs();
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      core::CountryView view = store.view(cc, kind);
      benchmark::DoNotOptimize(view);
    }
  }
  const std::uint64_t indexed_allocs = allocs() - a0;
  const std::uint64_t b0 = allocs();
  for (geo::CountryCode cc : store.countries()) {
    for (core::ViewKind kind :
         {core::ViewKind::kNational, core::ViewKind::kInternational,
          core::ViewKind::kOutbound}) {
      auto view = legacy_copy_view(sanitized.paths, cc, kind);
      benchmark::DoNotOptimize(view);
    }
  }
  const std::uint64_t copy_allocs = allocs() - b0;
  std::printf("       view construction allocs: indexed=%llu copy=%llu "
              "(%zu paths across views)\n",
              static_cast<unsigned long long>(indexed_allocs),
              static_cast<unsigned long long>(copy_allocs),
              total_view_paths);
  check(indexed_allocs < total_view_paths,
        "indexed view construction never allocates per path");
  check(copy_allocs > indexed_allocs,
        "indexed construction allocates less than copy construction");

  std::printf(failures == 0 ? "smoke: PASS\n" : "smoke: FAIL (%d)\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
