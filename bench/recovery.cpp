// Crash-recovery benchmark behind BENCH_recovery.json: how long
// live::recover() takes as a function of journal length, with and
// without a checkpoint covering the log. The uncheckpointed column is
// the worst case (full journal replay through the normal push path);
// the checkpointed column shows what a checkpoint cadence buys — load
// the GRCKPT01 state, replay only the suffix.
//
// --smoke skips the timed sweep: it streams a mini-world archive with a
// journal attached, abandons the run mid-stream, recovers into a fresh
// pipeline, finishes the stream and asserts the final GRSNAP01 is
// byte-identical to an uninterrupted run — the cheap ctest guard for
// the invariant the timed numbers depend on.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/update_stream.hpp"
#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "io/snapshot_codec.hpp"
#include "live/checkpoint.hpp"
#include "live/journal.hpp"
#include "live/update_pipeline.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

using namespace georank;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TempDir {
  fs::path path;

  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "georank-bench-recovery-XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct Workload {
  gen::World world;
  std::vector<bgp::UpdateMessage> archive;

  explicit Workload(std::uint64_t seed, int days, double flap_rate = 0.10)
      : world(gen::InternetGenerator{gen::mini_world_spec(seed)}.generate()) {
    gen::NoiseSpec noise;
    noise.prefix_flap_rate = flap_rate;
    archive = bgp::collection_to_updates(
        gen::RibGenerator{world, noise, 5}.generate(days));
  }

  core::Pipeline make_pipeline() const {
    core::PipelineConfig config;
    config.sanitizer.clique = world.clique;
    config.sanitizer.route_server_asns = world.route_servers;
    return core::Pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  }
};

std::uint64_t dir_bytes(const fs::path& dir) {
  std::uint64_t total = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    total += static_cast<std::uint64_t>(e.file_size());
  }
  return total;
}

/// One sweep row: journal the first `length` updates, then time
/// recover() on a fresh pipeline — once against the bare journal (full
/// replay) and once with a checkpoint written at the end of the run
/// (load + empty suffix).
struct SweepRow {
  std::size_t length = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t segments = 0;
  double replay_seconds = 0.0;      // no checkpoint: full journal replay
  std::uint64_t records_replayed = 0;
  double checkpoint_seconds = 0.0;  // checkpoint load + suffix replay
};

SweepRow bench_length(const Workload& w, std::size_t length) {
  SweepRow row;
  row.length = length;

  TempDir dir;
  const std::string journal_dir = (dir.path / "journal").string();
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  {
    core::Pipeline pipeline = w.make_pipeline();
    serve::RankingService service;
    live::UpdatePipeline live{pipeline, service, {}};
    live::UpdateJournal journal{live::UpdateJournalOptions{journal_dir}};
    live.set_journal(&journal);
    live.set_checkpoint(ckpt, 0);
    for (std::size_t i = 0; i < length; ++i) (void)live.push(w.archive[i]);
    live.write_checkpoint();
    row.journal_bytes = dir_bytes(journal_dir);
    row.segments = journal.stats().segments;
  }

  {
    // Worst case: no usable checkpoint, recovery replays everything.
    core::Pipeline pipeline = w.make_pipeline();
    serve::RankingService service;
    live::UpdatePipeline live{pipeline, service, {}};
    live::UpdateJournal journal{live::UpdateJournalOptions{journal_dir}};
    Clock::time_point start = Clock::now();
    live::RecoveryResult r =
        live::recover(live, journal, (dir.path / "missing.grckpt").string());
    row.replay_seconds = seconds_since(start);
    row.records_replayed = r.records_replayed;
  }
  {
    core::Pipeline pipeline = w.make_pipeline();
    serve::RankingService service;
    live::UpdatePipeline live{pipeline, service, {}};
    live::UpdateJournal journal{live::UpdateJournalOptions{journal_dir}};
    Clock::time_point start = Clock::now();
    (void)live::recover(live, journal, ckpt);
    row.checkpoint_seconds = seconds_since(start);
  }
  return row;
}

int run_smoke() {
  Workload w{17, 3};
  const std::size_t half = w.archive.size() / 2;
  const serve::SnapshotMeta meta{1, 1, "bench-recovery"};

  core::Pipeline batch = w.make_pipeline();
  serve::RankingService batch_service;
  {
    live::UpdatePipeline live{batch, batch_service, {}};
    for (const bgp::UpdateMessage& u : w.archive) (void)live.push(u);
    (void)live.drain();
  }
  const std::string want =
      io::encode_snapshot(serve::Snapshot::build(batch, meta));

  TempDir dir;
  const std::string journal_dir = (dir.path / "journal").string();
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  {
    // The doomed run: crash (scope exit, no drain) mid-stream.
    core::Pipeline pipeline = w.make_pipeline();
    serve::RankingService service;
    live::UpdatePipeline live{pipeline, service, {}};
    live::UpdateJournal journal{live::UpdateJournalOptions{journal_dir}};
    live.set_journal(&journal);
    live.set_checkpoint(ckpt, 997);
    for (std::size_t i = 0; i < half; ++i) (void)live.push(w.archive[i]);
  }

  core::Pipeline pipeline = w.make_pipeline();
  serve::RankingService service;
  live::UpdatePipeline live{pipeline, service, {}};
  live::UpdateJournal journal{live::UpdateJournalOptions{journal_dir}};
  const live::RecoveryResult recovery = live::recover(live, journal, ckpt);
  if (recovery.next_seq != half) {
    std::fprintf(stderr, "smoke FAILED: recovered to seq %llu, wanted %zu\n",
                 static_cast<unsigned long long>(recovery.next_seq), half);
    return 1;
  }
  live.set_journal(&journal);
  for (std::size_t i = half; i < w.archive.size(); ++i) {
    (void)live.push(w.archive[i]);
  }
  (void)live.drain();
  const std::string got =
      io::encode_snapshot(serve::Snapshot::build(pipeline, meta));
  if (got != want) {
    std::fprintf(stderr,
                 "smoke FAILED: recovered snapshot != uninterrupted run\n");
    return 1;
  }
  std::printf("smoke ok: crash at %zu/%zu, checkpoint at seq %llu, "
              "%llu records replayed, snapshots byte-identical (%zu bytes)\n",
              half, w.archive.size(),
              static_cast<unsigned long long>(recovery.replay_from),
              static_cast<unsigned long long>(recovery.records_replayed),
              want.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  std::printf("== bench: recovery — recover() latency vs journal length ==\n");
  // Many more days and a much higher flap rate than the tests use, so
  // the longest journal spans multiple segments and replay (which
  // re-makes every drain, day-close and flush decision) dominates.
  Workload w{17, 120, 0.5};
  std::printf("workload: mini world (flap rate 0.5), %zu-update archive "
              "over 120 days\n\n",
              w.archive.size());
  std::printf("%10s %12s %9s %12s %10s %14s\n", "records", "journal B",
              "segments", "replay s", "replayed", "checkpoint s");
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const std::size_t length =
        static_cast<std::size_t>(fraction * static_cast<double>(w.archive.size()));
    SweepRow row = bench_length(w, length);
    std::printf("%10zu %12llu %9llu %12.4f %10llu %14.4f\n", row.length,
                static_cast<unsigned long long>(row.journal_bytes),
                static_cast<unsigned long long>(row.segments),
                row.replay_seconds,
                static_cast<unsigned long long>(row.records_replayed),
                row.checkpoint_seconds);
  }
  std::printf("\nreplay cost scales with journal length (every drain and "
              "flush decision is re-made); checkpointed recovery scales "
              "with STATE size (RIB + closed-day window), not stream "
              "length — the win grows as the journal outgrows the state.\n");
  return 0;
}
