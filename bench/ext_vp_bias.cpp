// Extension (paper §2/§7): VP-proximity bias diagnostics. The paper
// hypothesizes that single-VP views favor ASes close to the VP and that
// hegemony's 10% trim suppresses the effect; this harness measures both
// claims on the evaluation world, plus the per-VP leave-one-out
// influence that attributes §4's instability to individual VPs.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/vp_bias.hpp"

using namespace georank;

int main() {
  bench::print_banner("Extension: VP-proximity bias",
                      "Score-vs-distance correlation and per-VP influence");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;
  core::VpBiasAnalyzer analyzer{ctx->pipeline->rankings()};

  std::printf("-- proximity bias (negative = metric rewards VP-closeness) --\n");
  util::Table bias_table{{"country", "view", "AH corr", "CC corr",
                          "mean dist (AH top-10)"}};
  bias_table.set_align(2, util::Align::kRight);
  bias_table.set_align(3, util::Align::kRight);
  bias_table.set_align(4, util::Align::kRight);
  for (const char* cc : {"NL", "US", "AU", "RU"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    for (auto [label, view] :
         {std::pair{"national", core::ViewBuilder::national(paths, country)},
          std::pair{"international",
                    core::ViewBuilder::international(paths, country)}}) {
      core::ProximityBias ah =
          analyzer.proximity_bias(view, core::MetricKind::kHegemony);
      core::ProximityBias cone =
          analyzer.proximity_bias(view, core::MetricKind::kCustomerCone);
      char ah_buf[16], cc_buf[16], d_buf[16];
      std::snprintf(ah_buf, sizeof ah_buf, "%+.2f", ah.score_distance_correlation);
      std::snprintf(cc_buf, sizeof cc_buf, "%+.2f",
                    cone.score_distance_correlation);
      std::snprintf(d_buf, sizeof d_buf, "%.1f", ah.mean_distance);
      bias_table.add_row({cc, label, ah_buf, cc_buf, d_buf});
    }
  }
  bias_table.print(std::cout);

  std::printf("\n-- most influential VPs (lowest leave-one-out NDCG) --\n");
  util::Table vp_table{{"country", "view", "VP AS", "paths", "leave-out NDCG"}};
  vp_table.set_align(3, util::Align::kRight);
  vp_table.set_align(4, util::Align::kRight);
  for (const char* cc : {"NL", "AU"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    core::CountryView view = core::ViewBuilder::national(paths, country);
    auto influence = analyzer.vp_influence(view, core::MetricKind::kHegemony);
    for (std::size_t i = 0; i < influence.size() && i < 3; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.3f", influence[i].leave_out_ndcg);
      vp_table.add_row({cc, "national",
                        bench::as_label(ctx->world, influence[i].vp.asn),
                        std::to_string(influence[i].paths), buf});
    }
  }
  vp_table.print(std::cout);

  std::printf("\nexpectation: correlations are mildly negative in national views\n"
              "(few VPs, close topology) and near zero internationally, where the\n"
              "trim has hundreds of VPs to work with; no single VP should push\n"
              "leave-one-out NDCG far below 1 in a country with many VPs.\n");
  return 0;
}
