// Extension: three-epoch timelines (2018 -> 2021 -> 2023) for the two
// countries the paper studies over time. The Taiwan trajectory should
// show China Telecom sliding out of the CCI ranking; the Russia one
// should show near-total rank stability despite the 2022 sanctions.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/timeline.hpp"

using namespace georank;

namespace {

void print_timeline(const core::Timeline& timeline, const gen::World& world,
                    core::TimelineMetric metric, const char* title) {
  std::printf("-- %s --\n", title);
  util::Table table{{"AS", "name"}};
  std::vector<std::string> headers{"AS", "name"};
  for (const auto& p : timeline.points()) headers.push_back(p.label);
  util::Table t{headers};
  for (std::size_t c = 2; c < headers.size(); ++c) t.set_align(c, util::Align::kRight);
  for (const core::AsTrajectory& tr : timeline.trajectories(metric, 8)) {
    std::vector<std::string> row{std::to_string(tr.asn), world.name_of(tr.asn)};
    for (std::size_t i = 0; i < tr.ranks.size(); ++i) {
      if (tr.ranks[i]) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "#%zu %.0f%%", *tr.ranks[i],
                      tr.scores[i] * 100.0);
        row.push_back(buf);
      } else {
        row.push_back("-");
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  auto dropped = timeline.dropped_out(metric, 8);
  if (!dropped.empty()) {
    std::printf("dropped out of the top-8 between %s and %s:",
                timeline.points().front().label.c_str(),
                timeline.points().back().label.c_str());
    for (bgp::Asn asn : dropped) {
      std::printf("  %s", bench::as_label(world, asn).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_banner("Extension: epoch timelines",
                      "Rank trajectories across 2018 / 2021 / 2023 worlds");

  // One context per epoch; the world object of the LAST context provides
  // names (ASNs are stable across epochs by construction).
  std::vector<std::unique_ptr<bench::Context>> contexts;
  for (gen::Epoch epoch : {gen::Epoch::kMarch2018, gen::Epoch::kApril2021,
                           gen::Epoch::kMarch2023}) {
    bench::ContextOptions options;
    options.epoch = epoch;
    contexts.push_back(bench::make_context(options));
  }
  auto timeline_for = [&](const char* cc) {
    std::vector<core::TimelinePoint> points;
    gen::Epoch epochs[] = {gen::Epoch::kMarch2018, gen::Epoch::kApril2021,
                           gen::Epoch::kMarch2023};
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      points.push_back({gen::epoch_label(epochs[i]),
                        contexts[i]->pipeline->country(geo::CountryCode::of(cc))});
    }
    return core::Timeline{std::move(points)};
  };

  const gen::World& world = contexts.back()->world;
  print_timeline(timeline_for("TW"), world, core::TimelineMetric::kCci,
                 "Taiwan CCI (China Telecom should decline and vanish)");
  print_timeline(timeline_for("RU"), world, core::TimelineMetric::kAhi,
                 "Russia AHI (stable through the sanctions)");
  return 0;
}
