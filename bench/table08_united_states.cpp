// Table 8: United States (§5.4). Lumen (3356) dominates every ranking
// except AHI, where Hurricane's (6939) liberal peering puts it on more
// observed paths; scores are lower overall than other countries (a less
// concentrated market).
#include "common/case_study.hpp"

using namespace georank;
using namespace gen::asn;

int main() {
  bench::print_banner("Table 8", "Top ASes per metric in the United States (US)");
  auto ctx = bench::make_context();
  const bench::PaperCell rows[] = {
      {kLumen, "1 64%", "2 15%", "1 46%", "1 11%"},
      {kHurricane, "9 19%", "1 18%", "11 17%", "3 7%"},
      {kArelion, "3 35%", "7 4%", "2 34%", "12 2%"},
      {kAtt, "7 22%", "4 12%", "6 22%", "2 8%"},
      {kGtt, "2 39%", "17 2%", "7 22%", "22 1%"},
  };
  bench::print_case_study(*ctx, geo::CountryCode::of("US"), rows);
  return 0;
}
