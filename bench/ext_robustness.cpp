// Extension: degraded-data robustness. The paper's rankings assume the
// measurement substrate is healthy — enough VPs per view, a geolocation
// DB that reaches consensus. This harness asks what happens when it is
// not: it scores every country's data health, then deterministically
// degrades the loaded world (drop VPs, corrupt geo blocks, drop paths)
// and traces how far each metric's top-10 drifts (NDCG@10 vs the clean
// baseline). Countries whose curves collapse under mild faults are the
// ones whose published rankings deserve a confidence caveat.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "robust/data_health.hpp"
#include "robust/fault_plan.hpp"

using namespace georank;

int main() {
  bench::print_banner("Extension: degraded-data robustness",
                      "Health tiers + ranking drift under injected faults");

  auto ctx = bench::make_context();

  robust::HealthReport health = robust::compute_health(*ctx->pipeline);
  std::printf("=== data health (%zu countries) ===\n", health.countries.size());
  util::Table census{{"tier", "countries"}};
  census.set_align(1, util::Align::kRight);
  for (robust::ConfidenceTier tier :
       {robust::ConfidenceTier::kHigh, robust::ConfidenceTier::kDegraded,
        robust::ConfidenceTier::kInsufficient}) {
    census.add_row({std::string(robust::to_string(tier)),
                    std::to_string(health.count(tier))});
  }
  census.print(std::cout);

  util::Table detail{{"country", "natVP", "intlVP", "consensus", "tier"}};
  for (std::size_t c = 1; c <= 3; ++c) detail.set_align(c, util::Align::kRight);
  for (const robust::CountryHealth& h : health.countries) {
    detail.add_row({h.country.to_string(), std::to_string(h.national_vps),
                    std::to_string(h.international_vps),
                    util::percent(h.geo_consensus()),
                    std::string(robust::to_string(h.overall))});
  }
  detail.print(std::cout);
  std::printf("\n");

  // The paper's case-study countries, swept with the default fault plan.
  std::vector<geo::CountryCode> countries{geo::CountryCode::of("AU"),
                                          geo::CountryCode::of("JP"),
                                          geo::CountryCode::of("RU"),
                                          geo::CountryCode::of("US")};
  robust::RobustnessHarness harness{*ctx->pipeline};
  robust::RobustnessReport report =
      harness.run(robust::FaultPlan::defaults(), countries);

  std::printf("=== ranking drift under faults (mean NDCG@10 vs clean) ===\n");
  util::Table table{{"country", "fault", "severity", "CCI", "CCN", "AHI",
                     "AHN", "worst"}};
  for (std::size_t c = 2; c <= 7; ++c) table.set_align(c, util::Align::kRight);
  for (const robust::RobustnessCurve& curve : report.curves) {
    for (const robust::RobustnessPoint& p : curve.points) {
      std::string severity = p.dimension == robust::FaultDimension::kDropVps
                                 ? std::to_string(static_cast<int>(p.severity))
                                 : util::percent(p.severity);
      table.add_row({curve.country.to_string(),
                     std::string(to_string(p.dimension)), severity,
                     util::percent(p.cci), util::percent(p.ccn),
                     util::percent(p.ahi), util::percent(p.ahn),
                     util::percent(p.worst)});
    }
  }
  table.print(std::cout);

  std::printf("\nreading: 100%% = the top-10 survives the fault untouched;\n"
              "low CCN/AHN rows flag national views with no redundancy.\n");
  return 0;
}
