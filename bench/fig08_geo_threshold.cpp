// Figure 8 (Appendix B): sensitivity of prefix geolocation to the
// majority threshold. For thresholds from 0% to 100% we geolocate the
// stable announced prefixes and report how many countries keep >99%,
// 99-95%, <95% of their prefixes. The paper found the 50% default loses
// more than 1% of prefixes for only three countries.
#include <cstdio>
#include <iostream>
#include <map>
#include <unordered_map>

#include "common/bench_world.hpp"
#include "geo/prefix_geolocator.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 8",
                      "Countries by share of prefixes passing the geolocation "
                      "threshold, as the threshold sweeps");

  auto ctx = bench::make_context();

  // The announced (stable, uncovered) prefix set with "intended" country:
  // the country of each accepted prefix at threshold 0 (plurality only).
  std::vector<bgp::Prefix> announced;
  {
    std::unordered_map<bgp::Prefix, bool, bgp::PrefixHash> seen;
    for (const auto& sp : ctx->pipeline->sanitized().paths) {
      if (!seen.emplace(sp.prefix, true).second) continue;
      announced.push_back(sp.prefix);
    }
    // Include the no-consensus rejects so the sweep has the full universe.
    for (const auto& rej : ctx->pipeline->sanitized().prefix_geo.no_consensus) {
      announced.push_back(rej.prefix);
    }
  }

  geo::PrefixGeolocator plurality{ctx->world.geo_db, 0.0};
  geo::PrefixGeoResult base = plurality.run(announced);
  std::unordered_map<bgp::Prefix, geo::CountryCode, bgp::PrefixHash> intended;
  std::map<std::string, std::size_t> per_country_total;
  for (const auto& a : base.accepted) {
    intended[a.prefix] = a.country;
    per_country_total[a.country.to_string()] += 1;
  }

  util::Table table{{"threshold", ">99% kept", "99-95%", "<95%", "prefixes kept"}};
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, util::Align::kRight);
  for (double threshold : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    geo::PrefixGeolocator loc{ctx->world.geo_db, threshold};
    geo::PrefixGeoResult result = loc.run(announced);
    std::map<std::string, std::size_t> kept;
    for (const auto& a : result.accepted) kept[a.country.to_string()] += 1;
    int hi = 0, mid = 0, lo = 0;
    for (const auto& [cc, total] : per_country_total) {
      double share = total ? static_cast<double>(kept[cc]) /
                                 static_cast<double>(total)
                           : 0.0;
      if (share > 0.99) ++hi;
      else if (share >= 0.95) ++mid;
      else ++lo;
    }
    table.add_row({util::percent(threshold), std::to_string(hi),
                   std::to_string(mid), std::to_string(lo),
                   std::to_string(result.accepted.size())});
  }
  table.print(std::cout);

  std::printf("\npaper: at the 50%% threshold only Guernsey, Martinique and "
              "Namibia lose more than 1%%\nof their majority prefixes; "
              "high thresholds shed mixed prefixes rapidly.\n");
  return 0;
}
