// Table 4: countries with more than 7 in-country VPs — VP IPs, VP ASNs,
// total in-country ASNs, accepted prefixes and addresses. Absolute sizes
// are scaled down from the paper (DESIGN.md); the relative ordering (NL
// leads VPs, US dwarfs everyone in ASNs/prefixes/addresses) must hold.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "common/bench_world.hpp"
#include "util/strings.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 4", "Per-country census (VPs, ASNs, prefixes, addresses)");

  auto ctx = bench::make_context();

  struct Row {
    std::size_t vp_ips = 0;
    std::unordered_set<bgp::Asn> vp_asns;
    std::size_t asns = 0;
    std::size_t prefixes = 0;
    std::uint64_t addresses = 0;
  };
  std::unordered_map<geo::CountryCode, Row, geo::CountryCodeHash> rows;

  for (const auto& [vp, cc] : ctx->world.vps.located_vps()) {
    rows[cc].vp_ips += 1;
    rows[cc].vp_asns.insert(vp.asn);
  }
  for (const auto& [asn, info] : ctx->world.as_info) {
    if (info.home.valid()) rows[info.home].asns += 1;
  }
  // Prefix/address counts from the ACCEPTED sanitized set (the paper
  // counts what survives filtering).
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  for (const auto& sp : ctx->pipeline->sanitized().paths) {
    if (!seen.insert(sp.prefix).second) continue;
    rows[sp.prefix_country].prefixes += 1;
    rows[sp.prefix_country].addresses += sp.weight;
  }

  std::vector<std::pair<geo::CountryCode, Row>> sorted;
  for (auto& [cc, row] : rows) {
    if (row.vp_ips > 2) sorted.emplace_back(cc, std::move(row));
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.vp_ips > b.second.vp_ips;
  });

  util::Table table{{"country", "VP IPs", "VP ASNs", "ASNs", "prefixes",
                     "addresses"}};
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& [cc, row] : sorted) {
    table.add_row({cc.to_string(), std::to_string(row.vp_ips),
                   std::to_string(row.vp_asns.size()), std::to_string(row.asns),
                   std::to_string(row.prefixes),
                   util::human_count(static_cast<double>(row.addresses))});
  }
  table.print(std::cout);

  std::printf(
      "\nPaper (top rows, unscaled): NL 141/130/1578/10.5k/40.4m; "
      "GB 105/91/2810/17.2k/83.8m;\nUS 101/75/19850/230.2k/1062.1m; "
      "DE 73/70/2703/20.8k/122.0m; BR 46/39/8330/72.5k/113.9m;\n"
      "... JP 7/7/949/13.2k/190.6m.\n");
  return 0;
}
