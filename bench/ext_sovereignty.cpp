// Extension: cyber-sovereignty summaries — the paper's motivating
// questions ("how dependent is a country on foreign networks?", §1)
// compacted into per-country indices. Taiwan's self-reliance and the
// former-Soviet dependence gradient should be visible at a glance.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/bench_world.hpp"
#include "core/diversity.hpp"

using namespace georank;

int main() {
  bench::print_banner("Extension: sovereignty indices",
                      "Foreign-dependence and concentration per country");

  auto ctx = bench::make_context();

  struct Row {
    std::string cc;
    core::SovereigntySummary summary;
  };
  std::vector<Row> rows;
  for (const char* cc : {"AU", "JP", "RU", "US", "TW", "DE", "KZ", "KG", "TM",
                         "UA", "FR", "NL"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    core::CountryMetrics m = ctx->pipeline->country(country);
    if (m.ahi.empty()) continue;
    rows.push_back(Row{cc, core::summarize_sovereignty(m, ctx->world.as_registry)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.summary.international_foreign_share() <
           b.summary.international_foreign_share();
  });

  util::Table table{{"country", "intl foreign share", "natl foreign share",
                     "AHI HHI", "AHI domestic/foreign", "half-mass ASes"}};
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const Row& row : rows) {
    char hhi[16];
    std::snprintf(hhi, sizeof hhi, "%.2f", row.summary.ahi.hhi);
    table.add_row(
        {row.cc, util::percent(row.summary.international_foreign_share()),
         util::percent(row.summary.national_foreign_share()), hhi,
         std::to_string(row.summary.ahi.domestic_ases) + "/" +
             std::to_string(row.summary.ahi.foreign_ases),
         std::to_string(row.summary.ahi.half_mass_count)});
  }
  table.print(std::cout);

  std::printf("\nexpectation (paper §6): TW near the self-reliant end (7/10\n"
              "Taiwanese ASes in its AHI top-10); KZ/KG/TM at the dependent\n"
              "end (Russian carriers); US lowest foreign share of all.\n");
  return 0;
}
