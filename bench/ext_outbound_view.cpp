// Extension (paper §7 future work): OUTBOUND views — which ASes a
// country's own networks traverse to reach foreign address space. The
// paper only builds inbound ("international") and internal ("national")
// views and sketches this third direction; we compute it and contrast
// the egress ranking with the inbound one.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Extension: outbound views",
                      "CCO/AHO — how each case-study country reaches the world");

  auto ctx = bench::make_context();

  for (const char* cc : {"AU", "JP", "RU", "US", "TW"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    core::OutboundMetrics out = ctx->pipeline->outbound(country);
    core::CountryMetrics in = ctx->pipeline->country(country);

    std::printf("=== %s: %zu in-country VPs, %s foreign addresses observed ===\n",
                cc, out.vps,
                util::human_count(static_cast<double>(out.foreign_addresses)).c_str());
    util::Table table{{"#", "AHO (egress)", "score", "AHI (ingress)", "score"}};
    table.set_align(2, util::Align::kRight);
    table.set_align(4, util::Align::kRight);
    auto egress = out.aho.top(5);
    auto ingress = in.ahi.top(5);
    for (std::size_t i = 0; i < 5; ++i) {
      std::string e = i < egress.size() ? bench::as_label(ctx->world, egress[i].asn) : "";
      std::string es = i < egress.size() ? util::percent(egress[i].score) : "";
      std::string g = i < ingress.size() ? bench::as_label(ctx->world, ingress[i].asn) : "";
      std::string gs = i < ingress.size() ? util::percent(ingress[i].score) : "";
      table.add_row({std::to_string(i + 1), e, es, g, gs});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("expectation: egress rankings are dominated by the country's own\n"
              "international gateways (asymmetry with ingress shows who controls\n"
              "the country's OUTBOUND reachability — the §7 question).\n");
  return 0;
}
