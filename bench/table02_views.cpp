// Table 2: which AS-path input data each metric consumes. Rather than
// hard-coding the matrix, this harness DERIVES it by feeding four probe
// paths (in/out-of-country VP x in/out-of-country prefix) through the
// actual view builders and baseline implementations.
#include <cstdio>
#include <iostream>

#include "core/views.hpp"
#include "rank/ahc.hpp"
#include "util/table.hpp"

using namespace georank;

namespace {

sanitize::SanitizedPath probe(bool vp_in, bool prefix_in) {
  geo::CountryCode in = geo::CountryCode::of("AU");
  geo::CountryCode out = geo::CountryCode::of("US");
  sanitize::SanitizedPath sp;
  sp.vp = bgp::VpId{vp_in ? 1u : 2u, vp_in ? 100u : 200u};
  sp.vp_country = vp_in ? in : out;
  sp.prefix = bgp::Prefix{(prefix_in ? 0x0A000000u : 0x0B000000u) +
                              (vp_in ? 0u : 0x100u),
                          24};
  sp.prefix_country = prefix_in ? in : out;
  sp.weight = 256;
  sp.path = bgp::AsPath{sp.vp.asn, 50, prefix_in ? 300u : 400u};
  return sp;
}

}  // namespace

int main() {
  std::printf("Reproducing Table 2: input data per metric (derived from code)\n\n");
  geo::CountryCode au = geo::CountryCode::of("AU");

  std::vector<sanitize::SanitizedPath> probes{
      probe(true, true),    // in-VP, in-prefix
      probe(true, false),   // in-VP, out-prefix
      probe(false, true),   // out-VP, in-prefix
      probe(false, false),  // out-VP, out-prefix
  };

  auto uses = [&](const core::CountryView& selected,
                  const sanitize::SanitizedPath& p) {
    for (const sanitize::PathRecord sp : selected) {
      if (sp.vp == p.vp && sp.prefix == p.prefix) return true;
    }
    return false;
  };

  core::CountryView national = core::ViewBuilder::national(probes, au);
  core::CountryView international = core::ViewBuilder::international(probes, au);

  // AHC selects by ORIGIN REGISTRATION, not prefix country: both probe
  // origins are AU-registered, so even paths to OUT-of-country prefixes
  // feed the AU computation (the paper's §1.2.1 critique).
  rank::AsRegistry registry{{300, au}, {400, au}};
  auto ahc_uses = [&](const sanitize::SanitizedPath& p) {
    auto it = registry.find(p.path.origin());
    return it != registry.end() && it->second == au;
  };

  util::Table table{{"metric", "VP in", "VP out", "prefix in", "prefix out",
                     "selection rule"}};
  auto row = [&](const char* name, auto selector, const char* rule) {
    bool vin = false, vout = false, pin = false, pout = false;
    for (const auto& p : probes) {
      if (!selector(p)) continue;
      (p.vp_country == au ? vin : vout) = true;
      (p.prefix_country == au ? pin : pout) = true;
    }
    auto mark = [](bool b) { return std::string(b ? "X" : ""); };
    table.add_row({name, mark(vin), mark(vout), mark(pin), mark(pout), rule});
  };

  row("AHN,CCN (national)",
      [&](const auto& p) { return uses(national, p); },
      "in-country VPs -> in-country prefixes");
  row("AHI,CCI (international)",
      [&](const auto& p) { return uses(international, p); },
      "out-of-country VPs -> in-country prefixes");
  row("AHC (IHR country-level)", ahc_uses,
      "all VPs -> origins REGISTERED in country");
  row("AHG/CCG (global)", [](const auto&) { return true; },
      "all VPs -> all prefixes");
  table.print(std::cout);

  std::printf("\nPaper Table 2: national = in/in; international = out-VP/in-prefix;\n"
              "AHC = all VPs to in-registered ASes; global = everything.\n");
  return 0;
}
