// Ablation (DESIGN.md §4): path-observed vs recursively-closed customer
// cones. Luckie et al. (and this paper) include B in A's cone only when
// an observed path shows B downstream of A; closing the cone recursively
// over all inferred p2c links INFLATES cones (complex relationships leak
// whole customer trees). This harness quantifies the inflation.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "common/bench_world.hpp"
#include "rank/customer_cone.hpp"

using namespace georank;

namespace {

/// Recursive closure over ground-truth p2c links.
std::size_t recursive_cone_size(const topo::AsGraph& g, bgp::Asn root) {
  std::unordered_set<bgp::Asn> seen{root};
  std::vector<bgp::Asn> stack{root};
  while (!stack.empty()) {
    bgp::Asn cur = stack.back();
    stack.pop_back();
    for (bgp::Asn customer : g.customers_of(cur)) {
      if (seen.insert(customer).second) stack.push_back(customer);
    }
  }
  return seen.size();
}

}  // namespace

int main() {
  bench::print_banner("Ablation: cone construction",
                      "Path-observed cones vs recursive p2c closure");

  auto ctx = bench::make_context();
  rank::CustomerCone cone{ctx->world.graph};
  rank::ConeResult observed = cone.compute(ctx->pipeline->sanitized().paths);

  // Compare for the 15 largest observed cones.
  std::vector<std::pair<bgp::Asn, std::size_t>> largest;
  for (const auto& [asn, members] : observed.as_cone) {
    largest.emplace_back(asn, members.size());
  }
  std::sort(largest.begin(), largest.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (largest.size() > 15) largest.resize(15);

  util::Table table{{"AS", "name", "observed cone", "recursive cone", "inflation"}};
  for (std::size_t c = 2; c <= 4; ++c) table.set_align(c, util::Align::kRight);
  double total_observed = 0, total_recursive = 0;
  for (const auto& [asn, observed_size] : largest) {
    std::size_t rec = recursive_cone_size(ctx->world.graph, asn);
    total_observed += static_cast<double>(observed_size);
    total_recursive += static_cast<double>(rec);
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.2fx",
                  static_cast<double>(rec) / static_cast<double>(observed_size));
    table.add_row({std::to_string(asn), ctx->world.name_of(asn),
                   std::to_string(observed_size), std::to_string(rec), buf});
  }
  table.print(std::cout);
  std::printf("\naggregate inflation over the 15 largest cones: %.2fx\n",
              total_recursive / total_observed);
  std::printf("expectation: recursive closure never shrinks a cone and "
              "inflates mid-tier ones most\n(every partially-observed "
              "customer contributes its whole subtree).\n");
  return 0;
}
