// Table 11: Taiwan, April 2021 vs March 2023 (§6.2). The paper's
// findings to reproduce:
//   - Taiwanese ASes dominate the AHI top-10 (7 of 10 in 2021);
//   - China Telecom (4134) ranked #7 by CCI in 2021 and dropped OUT of
//     the top-10 by 2023;
//   - US and Taiwanese carriers fill the cone ranking.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"

using namespace georank;
using namespace gen::asn;

namespace {

void print_top10(const bench::Context& ctx, const char* title,
                 const rank::Ranking& r) {
  geo::CountryCode tw = geo::CountryCode::of("TW");
  std::printf("-- %s --\n", title);
  util::Table table{{"#", "AS", "name", "cc", "score"}};
  table.set_align(4, util::Align::kRight);
  std::size_t pos = 0, taiwanese = 0;
  for (const auto& e : r.top(10)) {
    ++pos;
    auto it = ctx.world.as_registry.find(e.asn);
    bool is_tw = it != ctx.world.as_registry.end() && it->second == tw;
    if (is_tw) ++taiwanese;
    table.add_row({std::to_string(pos), std::to_string(e.asn),
                   ctx.world.name_of(e.asn), bench::as_country(ctx.world, e.asn),
                   util::percent(e.score)});
  }
  table.print(std::cout);
  std::printf("Taiwanese ASes in top-10: %zu\n\n", taiwanese);
}

}  // namespace

int main() {
  bench::print_banner("Table 11", "Taiwan's top-10, April 2021 vs March 2023");

  bench::ContextOptions opt2021, opt2023;
  opt2021.epoch = gen::Epoch::kApril2021;
  opt2023.epoch = gen::Epoch::kMarch2023;
  auto ctx2021 = bench::make_context(opt2021);
  auto ctx2023 = bench::make_context(opt2023);

  geo::CountryCode tw = geo::CountryCode::of("TW");
  core::CountryMetrics m2021 = ctx2021->pipeline->country(tw);
  core::CountryMetrics m2023 = ctx2023->pipeline->country(tw);

  print_top10(*ctx2021, "CCI 20210401", m2021.cci);
  print_top10(*ctx2023, "CCI 20230301", m2023.cci);
  print_top10(*ctx2021, "AHI 20210401", m2021.ahi);
  print_top10(*ctx2023, "AHI 20230301", m2023.ahi);

  auto ct_rank = [](const rank::Ranking& r) {
    auto rank = r.rank_of(kChinaTelecom);
    return rank ? std::to_string(*rank) : std::string("unranked");
  };
  std::printf("China Telecom (4134) CCI rank: 2021 -> %s, 2023 -> %s\n",
              ct_rank(m2021.cci).c_str(), ct_rank(m2023.cci).c_str());
  std::printf("paper: CCI #7 in 2021, out of the top-10 (#77) by 2023.\n");
  return 0;
}
