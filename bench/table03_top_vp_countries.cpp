// Table 3: the five countries with the most in-country VPs (the paper's
// candidates for national-view stability analysis): NL 141, GB 105,
// US 101, DE 73, BR 46. Our world scales VP deployment down ~4x but must
// preserve the ordering.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Table 3", "Countries with the most in-country VPs");

  auto ctx = bench::make_context();
  std::map<std::string, std::size_t> by_country;
  for (const auto& [vp, cc] : ctx->world.vps.located_vps()) {
    ++by_country[cc.to_string()];
  }
  std::vector<std::pair<std::string, std::size_t>> sorted(by_country.begin(),
                                                          by_country.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  const std::map<std::string, int> paper{
      {"NL", 141}, {"GB", 105}, {"US", 101}, {"DE", 73}, {"BR", 46}};

  util::Table table{{"rank", "country", "in-country VPs", "paper VPs"}};
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);
  for (std::size_t i = 0; i < sorted.size() && i < 5; ++i) {
    auto it = paper.find(sorted[i].first);
    table.add_row({std::to_string(i + 1), sorted[i].first,
                   std::to_string(sorted[i].second),
                   it == paper.end() ? "-" : std::to_string(it->second)});
  }
  table.print(std::cout);
  return 0;
}
