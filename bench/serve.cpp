// Serving-layer benchmark: how fast can a query node come up from a
// persisted snapshot versus recomputing the rankings from raw RIBs, and
// how many requests per second does the loopback HTTP stack sustain at
// fixed thread counts? Prints one human table per question; the
// recorded numbers live in BENCH_serve.json.
//
// All timing uses steady_clock (monotonic); the world and RIBs are the
// deterministic default-world fixtures, so reruns measure the same work.
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_world.hpp"
#include "io/snapshot_codec.hpp"
#include "serve/http_client.hpp"
#include "serve/http_server.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

using namespace georank;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double best_of(int rounds, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    Clock::time_point start = Clock::now();
    fn();
    double elapsed = seconds_since(start);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct BootResult {
  double recompute_seconds = 0.0;  // pipeline.load + Snapshot::build
  double decode_seconds = 0.0;     // decode_snapshot + publish
  std::size_t snapshot_bytes = 0;
  std::size_t countries = 0;
};

BootResult bench_boot(const bench::Context& context,
                      const bgp::RibCollection& ribs) {
  BootResult result;

  // Cold path: what a node without a snapshot file must do — ingest the
  // RIB collection and run the full per-country ranking pipeline.
  serve::Snapshot built;
  result.recompute_seconds = best_of(3, [&] {
    core::Pipeline pipeline{context.world.geo_db, context.world.vps,
                            context.world.asn_registry, context.world.graph,
                            context.pipeline->config()};
    pipeline.load(ribs);
    built = serve::Snapshot::build(pipeline,
                                   serve::SnapshotMeta{1, 1, "bench"});
  });
  result.countries = built.countries.size();

  // Warm path: decode the persisted bytes and publish into a service.
  std::string bytes = io::encode_snapshot(built);
  result.snapshot_bytes = bytes.size();
  result.decode_seconds = best_of(3, [&] {
    serve::RankingService service;
    service.publish(std::make_shared<serve::Snapshot>(
        io::decode_snapshot(bytes)));
  });
  return result;
}

struct LoadResult {
  unsigned server_threads = 0;
  int client_threads = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double requests_per_second = 0.0;
};

LoadResult bench_loopback(serve::RankingService& service,
                          unsigned server_threads, int client_threads,
                          int requests_per_client,
                          const std::vector<std::string>& targets) {
  serve::HttpServerOptions options;
  options.threads = server_threads;
  serve::HttpServer server{service, options};
  server.start();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(client_threads));
  Clock::time_point start = Clock::now();
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      serve::HttpClient client;
      if (!client.connect("127.0.0.1", server.port())) return;
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string& target =
            targets[static_cast<std::size_t>(c + i) % targets.size()];
        auto response = client.get(target);
        if (!response || response->status != 200) {
          std::fprintf(stderr, "request failed: %s\n", target.c_str());
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed = seconds_since(start);
  server.stop();

  LoadResult result;
  result.server_threads = server_threads;
  result.client_threads = client_threads;
  result.requests =
      static_cast<std::size_t>(client_threads) *
      static_cast<std::size_t>(requests_per_client);
  result.seconds = elapsed;
  result.requests_per_second =
      elapsed > 0.0 ? static_cast<double>(result.requests) / elapsed : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "serve",
      "snapshot-boot latency vs full recompute, loopback HTTP throughput");

  bench::ContextOptions options;
  options.keep_ribs = true;
  std::unique_ptr<bench::Context> context = bench::make_context(options);

  BootResult boot = bench_boot(*context, context->ribs);
  std::printf("-- boot latency (best of 3) --\n");
  std::printf("full recompute (load RIBs + rank %zu countries): %8.3f s\n",
              boot.countries, boot.recompute_seconds);
  std::printf("snapshot boot  (decode %zu bytes + publish):  %8.3f s\n",
              boot.snapshot_bytes, boot.decode_seconds);
  std::printf("speedup: %.0fx\n\n",
              boot.recompute_seconds / boot.decode_seconds);

  // The service under load: a published snapshot and a target mix that
  // exercises rankings, health and single-AS lookup. Cache enabled with
  // defaults, as it would be in production.
  serve::RankingService service;
  service.publish(std::make_shared<serve::Snapshot>(serve::Snapshot::build(
      *context->pipeline, serve::SnapshotMeta{1, 1, "bench"})));
  std::vector<std::string> targets;
  for (const core::CountryMetrics& m :
       service.current()->countries) {
    targets.push_back("/v1/rankings?country=" + m.country.to_string() +
                      "&metric=cci&k=10");
    if (targets.size() >= 6) break;
  }
  targets.push_back("/v1/health");
  targets.push_back("/v1/as/3356");

  std::printf("-- loopback throughput (keep-alive, %zu-target mix) --\n",
              targets.size());
  std::printf("%15s %15s %10s %10s %12s\n", "server threads", "client threads",
              "requests", "seconds", "req/s");
  for (auto [server_threads, client_threads] :
       std::vector<std::pair<unsigned, int>>{{1, 1}, {2, 2}, {4, 4}}) {
    LoadResult load = bench_loopback(service, server_threads, client_threads,
                                     4000, targets);
    std::printf("%15u %15d %10zu %10.3f %12.0f\n", load.server_threads,
                load.client_threads, load.requests, load.seconds,
                load.requests_per_second);
  }
  return 0;
}
