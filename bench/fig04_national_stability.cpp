// Figure 4: stability of the NATIONAL rankings (AHN top, CCN bottom)
// under VP downsampling, for the five countries with the most in-country
// VPs. The paper found NDCG >= 0.9 needs ~25 (AHN) / ~19 (CCN) VPs and
// NDCG >= 0.8 needs ~9 / ~6; AHN was more stable than CCN at small
// samples in some countries, and more VPs always helped.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/stability.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 4",
                      "NDCG of national rankings (AHN/CCN) vs #in-country VPs");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;
  core::StabilityAnalyzer analyzer{ctx->pipeline->rankings()};

  const char* countries[] = {"NL", "GB", "US", "DE", "BR"};
  struct MetricDef {
    const char* name;
    core::MetricKind kind;
  } metrics[] = {{"AHN", core::MetricKind::kHegemony},
                 {"CCN", core::MetricKind::kCustomerCone}};

  for (const MetricDef& metric : metrics) {
    std::printf("--- %s ---\n", metric.name);
    util::Table table{{"country", "VPs", "k=2", "k=4", "k=6", "k=9", "k=12",
                       "k=16", "k=25", "min k: NDCG>=.8", ">=.9"}};
    std::size_t worst80 = 0, worst90 = 0;
    for (const char* cc : countries) {
      core::CountryView view =
          core::ViewBuilder::national(paths, geo::CountryCode::of(cc));
      core::StabilityOptions options;
      options.sample_sizes = {2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 20, 25, 30};
      options.trials_per_size = 10;
      options.seed = 20210401;
      auto curve = analyzer.analyze(view, metric.kind, options);

      auto at = [&](std::size_t k) -> std::string {
        for (const auto& p : curve) {
          if (p.vp_count == k) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%.2f", p.mean_ndcg);
            return buf;
          }
        }
        return "-";
      };
      std::size_t k80 = core::StabilityAnalyzer::min_vps_for(curve, 0.8);
      std::size_t k90 = core::StabilityAnalyzer::min_vps_for(curve, 0.9);
      worst80 = std::max(worst80, k80);
      worst90 = std::max(worst90, k90);
      table.add_row({cc, std::to_string(view.vp_count()), at(2), at(4), at(6),
                     at(9), at(12), at(16), at(25),
                     k80 ? std::to_string(k80) : ">max",
                     k90 ? std::to_string(k90) : ">max"});
    }
    table.print(std::cout);
    std::printf("%s: across the five countries, NDCG>=0.8 needs <=%zu VPs, "
                "NDCG>=0.9 needs <=%zu VPs\n",
                metric.name, worst80, worst90);
    std::printf("paper: %s\n\n",
                metric.kind == core::MetricKind::kHegemony
                    ? "AHN needed ~9 VPs for 0.8 and ~25 for 0.9"
                    : "CCN needed ~6 VPs for 0.8 and ~19 for 0.9");
  }
  return 0;
}
