// Table 10: Russia before (April 2021) and after (March 2023) the
// invasion-era sanctions. The paper's finding: despite Lumen and Cogent
// leaving the Russian domestic market, Russia's dependence on FOREIGN
// transit barely changed — ranks shuffle, structure persists.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"

using namespace georank;

namespace {

void print_epoch_pair(const bench::Context& a, const bench::Context& b,
                      const char* title, const rank::Ranking& ra,
                      const rank::Ranking& rb, const gen::World& world) {
  std::printf("-- %s --\n", title);
  util::Table table{{"#", "20210401", "score", "20230301", "score", "shift"}};
  table.set_align(2, util::Align::kRight);
  table.set_align(4, util::Align::kRight);
  table.set_align(5, util::Align::kRight);
  auto ta = ra.top(10);
  auto tb = rb.top(10);
  for (std::size_t i = 0; i < 10 && (i < ta.size() || i < tb.size()); ++i) {
    std::string left = i < ta.size() ? bench::as_label(world, ta[i].asn) : "";
    std::string ls = i < ta.size() ? util::percent(ta[i].score) : "";
    std::string right = i < tb.size() ? bench::as_label(world, tb[i].asn) : "";
    std::string rs = i < tb.size() ? util::percent(tb[i].score) : "";
    std::string shift;
    if (i < tb.size()) {
      auto old_rank = ra.rank_of(tb[i].asn);
      if (!old_rank) {
        shift = "new";
      } else {
        auto delta = static_cast<long>(*old_rank) - static_cast<long>(i + 1);
        shift = delta == 0 ? "0" : (delta > 0 ? "+" : "") + std::to_string(delta);
      }
    }
    table.add_row({std::to_string(i + 1), left, ls, right, rs, shift});
  }
  table.print(std::cout);
  (void)a;
  (void)b;
}

double foreign_share_of_top10(const bench::Context& ctx, const rank::Ranking& r) {
  geo::CountryCode ru = geo::CountryCode::of("RU");
  std::size_t foreign = 0, total = 0;
  for (const auto& e : r.top(10)) {
    ++total;
    auto it = ctx.world.as_registry.find(e.asn);
    if (it == ctx.world.as_registry.end() || it->second != ru) ++foreign;
  }
  return total ? static_cast<double>(foreign) / static_cast<double>(total) : 0;
}

}  // namespace

int main() {
  bench::print_banner("Table 10",
                      "Russia's top-10 cone/hegemony, April 2021 vs March 2023");

  bench::ContextOptions opt2021;
  opt2021.epoch = gen::Epoch::kApril2021;
  bench::ContextOptions opt2023;
  opt2023.epoch = gen::Epoch::kMarch2023;
  auto ctx2021 = bench::make_context(opt2021);
  auto ctx2023 = bench::make_context(opt2023);

  geo::CountryCode ru = geo::CountryCode::of("RU");
  core::CountryMetrics m2021 = ctx2021->pipeline->country(ru);
  core::CountryMetrics m2023 = ctx2023->pipeline->country(ru);

  print_epoch_pair(*ctx2021, *ctx2023, "cone (CCI)", m2021.cci, m2023.cci,
                   ctx2021->world);
  std::printf("\n");
  print_epoch_pair(*ctx2021, *ctx2023, "hegemony (AHI)", m2021.ahi, m2023.ahi,
                   ctx2021->world);

  std::printf("\nForeign ASes in the CCI top-10: 2021 %.0f%%, 2023 %.0f%%\n",
              foreign_share_of_top10(*ctx2021, m2021.cci) * 100.0,
              foreign_share_of_top10(*ctx2023, m2023.cci) * 100.0);
  std::printf("paper: \"Russia's dependence on foreign transit ISPs has not "
              "decreased since 2021.\"\n");
  return 0;
}
