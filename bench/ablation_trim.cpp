// Ablation (DESIGN.md §4): the two-sided 10% VP-score trim in AS
// Hegemony. The trim exists to suppress VP-proximity bias (§1.2); this
// harness sweeps the trim share and reports how the AU/US international
// rankings move relative to the paper's default.
#include <cstdio>
#include <iostream>

#include "common/bench_world.hpp"
#include "core/ndcg.hpp"
#include "core/views.hpp"
#include "rank/hegemony.hpp"

using namespace georank;

int main() {
  bench::print_banner("Ablation: hegemony trim share",
                      "Effect of the 10% two-sided per-VP score trim");

  auto ctx = bench::make_context();
  const auto& paths = ctx->pipeline->sanitized().paths;

  for (const char* cc : {"AU", "US"}) {
    core::CountryView view =
        core::ViewBuilder::international(paths, geo::CountryCode::of(cc));

    rank::Hegemony reference{rank::HegemonyOptions{0.10, false}};
    rank::Ranking ref_ranking = reference.compute(view.paths()).ranking();

    std::printf("-- %s international hegemony --\n", cc);
    util::Table table{{"trim", "top-1", "top-2", "top-3", "NDCG vs 10%"}};
    table.set_align(4, util::Align::kRight);
    for (double trim : {0.0, 0.05, 0.10, 0.20, 0.30}) {
      rank::Hegemony hegemony{rank::HegemonyOptions{trim, false}};
      rank::Ranking ranking = hegemony.compute(view.paths()).ranking();
      auto top = ranking.top(3);
      auto name = [&](std::size_t i) {
        return i < top.size() ? bench::as_label(ctx->world, top[i].asn) : "";
      };
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.3f", core::ndcg(ranking, ref_ranking));
      table.add_row({util::percent(trim), name(0), name(1), name(2), buf});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("expectation: small trims barely move the top ranks (the trim\n"
              "mostly removes VP-local ASes deep in the tail); very large\n"
              "trims start to erode genuinely dominant ASes.\n");
  return 0;
}
