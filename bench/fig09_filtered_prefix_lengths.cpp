// Figure 9: prefix lengths of FILTERED prefixes. The paper filtered 85%
// of them because they were covered by more specifics and 15% for lack
// of geolocation consensus, with characteristic length distributions
// (covered prefixes skew shorter).
#include <cstdio>
#include <iostream>
#include <map>

#include "common/bench_world.hpp"

using namespace georank;

int main() {
  bench::print_banner("Figure 9", "Lengths of filtered prefixes, by filter reason");

  auto ctx = bench::make_context();
  const geo::PrefixGeoResult& geo = ctx->pipeline->sanitized().prefix_geo;

  std::map<int, std::size_t> covered, no_consensus;
  for (const bgp::Prefix& p : geo.covered) covered[p.length()] += 1;
  for (const auto& rej : geo.no_consensus) no_consensus[rej.prefix.length()] += 1;

  std::size_t covered_total = geo.covered.size();
  std::size_t consensus_total = geo.no_consensus.size();
  std::size_t filtered_total = covered_total + consensus_total;

  util::Table table{{"prefix length", "covered", "no consensus", "total"}};
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::kRight);
  for (int len = 8; len <= 32; ++len) {
    std::size_t c = covered.contains(len) ? covered[len] : 0;
    std::size_t n = no_consensus.contains(len) ? no_consensus[len] : 0;
    if (c + n == 0) continue;
    table.add_row({"/" + std::to_string(len), std::to_string(c),
                   std::to_string(n), std::to_string(c + n)});
  }
  table.add_rule();
  table.add_row({"total", std::to_string(covered_total),
                 std::to_string(consensus_total), std::to_string(filtered_total)});
  table.print(std::cout);

  if (filtered_total) {
    std::printf("\ncovered-by-more-specifics share of filtered prefixes: %s "
                "(paper: 85%%)\n",
                util::percent(static_cast<double>(covered_total) /
                              static_cast<double>(filtered_total))
                    .c_str());
  }
  return 0;
}
