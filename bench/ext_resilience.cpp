// Extension (paper §7): resilience assessment. Public BGP data cannot
// reveal backup paths, so the paper stops at "hegemony approximates
// dependence". Our substrate is a simulator, so the counterfactual is
// computable: withdraw each top-ranked AS and measure how much of the
// country's address space becomes UNREACHABLE (hard dependence, no
// backup at all) vs merely rerouted. Comparing that against AHI shows
// where the paper's observable proxy over- or under-states real risk.
#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "common/bench_world.hpp"
#include "topo/failure_analysis.hpp"

using namespace georank;

int main() {
  bench::print_banner("Extension: failure resilience",
                      "Single-AS failure impact vs the AHI proxy");

  auto ctx = bench::make_context();

  for (const char* cc : {"AU", "RU"}) {
    geo::CountryCode country = geo::CountryCode::of(cc);
    core::CountryMetrics m = ctx->pipeline->country(country);

    // Targets: the country's accepted originations.
    std::vector<topo::PrefixOrigin> targets;
    std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
    for (const auto& sp : ctx->pipeline->sanitized().paths) {
      if (sp.prefix_country != country) continue;
      if (!seen.insert(sp.prefix).second) continue;
      targets.push_back(
          topo::PrefixOrigin{sp.prefix, sp.path.origin(), sp.weight});
    }
    // Observers: the tier-1 clique (the "rest of the world").
    topo::FailureAnalyzer analyzer{ctx->world.graph, targets, ctx->world.clique};

    // Candidates: the AHI top-8.
    std::vector<bgp::Asn> candidates;
    for (const auto& e : m.ahi.top(8)) candidates.push_back(e.asn);
    auto impacts = analyzer.rank_candidates(candidates);

    std::printf("=== %s (%zu prefixes assessed) ===\n", cc, targets.size());
    util::Table table{{"AS", "name", "AHI", "unreachable", "rerouted"}};
    for (std::size_t c = 2; c <= 4; ++c) table.set_align(c, util::Align::kRight);
    for (const auto& impact : impacts) {
      table.add_row({std::to_string(impact.failed),
                     ctx->world.name_of(impact.failed),
                     util::percent(m.ahi.score_of(impact.failed)),
                     util::percent(impact.unreachable_share(), 1),
                     util::percent(impact.rerouted_share(), 1)});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("reading: high AHI + low unreachable = dependence with backups\n"
              "(reroutable); high unreachable = a true single point of failure.\n");
  return 0;
}
