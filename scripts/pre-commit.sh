#!/usr/bin/env bash
# Fast pre-commit lint: run georank_lint over ONLY the files this commit
# touches (`--changed HEAD`), skipping the cross-TU graph rules — a
# partial file set cannot judge whole-repo properties, and the full
# engine runs in CI anyway. On a one-file diff this is well under a
# second, so it is cheap enough to run on every commit.
#
# Install:   ln -s ../../scripts/pre-commit.sh .git/hooks/pre-commit
# Bypass:    git commit --no-verify   (CI still runs the full engine)
#
# The hook builds the linter if it is missing but never rebuilds a stale
# one (that is the build system's job); a missing build tree degrades to
# a warning rather than blocking the commit.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

LINT=build/tools/georank_lint
if [[ ! -x "$LINT" ]]; then
  if [[ -d build ]]; then
    cmake --build build --target georank_lint -j "$(nproc)" > /dev/null 2>&1 \
      || { echo "pre-commit: could not build georank_lint; skipping lint" >&2; exit 0; }
  else
    echo "pre-commit: no build/ tree; skipping lint (CI will run it)" >&2
    exit 0
  fi
fi

"$LINT" --root . --baseline scripts/lint_baseline.txt --changed HEAD
