#!/usr/bin/env bash
# Tier-1 CI for georank: plain build + full ctest, an AddressSanitizer
# pass over the same suite, an UndefinedBehaviorSanitizer pass over the
# robustness-heavy filters, and an explicit run of the ingest-robustness
# tests (fault-injection corpus, strict/tolerant modes, parallel-vs-
# sequential bit-identity).
#
# Usage: scripts/ci.sh [--skip-asan] [--skip-ubsan]
#
# The sanitizer stages build into their own trees (build-asan,
# build-ubsan) so they never dirty the primary build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build"
cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc)"

echo "==> tier-1: full test suite"
ctest --test-dir build --output-on-failure

echo "==> ingest robustness (fault corpus, strict mode, bit-identity)"
ctest --test-dir build --output-on-failure -R "MrtStream|MrtText|UpdateText|AsPath"

echo "==> degraded-data robustness (health tiers, fault plans, fuzz)"
ctest --test-dir build --output-on-failure \
  -R "Confidence|DegradationPolicy|DataHealth|FaultPlan|Robustness|StructuredFaults"

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "==> AddressSanitizer build + test"
  cmake -B build-asan -S . -DGEORANK_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure
else
  echo "==> AddressSanitizer stage skipped (--skip-asan)"
fi

if [[ "$SKIP_UBSAN" -eq 0 ]]; then
  echo "==> UndefinedBehaviorSanitizer build + robustness filters"
  cmake -B build-ubsan -S . -DGEORANK_SANITIZE=undefined > /dev/null
  cmake --build build-ubsan -j "$(nproc)"
  # The robustness surfaces do the spiciest arithmetic (seed mixing,
  # NDCG float edge cases, fuzzed parsers); run them all under UBSan.
  ctest --test-dir build-ubsan --output-on-failure \
    -R "Confidence|DegradationPolicy|DataHealth|FaultPlan|Robustness|StructuredFaults|FuzzTest|Ndcg|Stability"
else
  echo "==> UndefinedBehaviorSanitizer stage skipped (--skip-ubsan)"
fi

echo "CI PASS"
