#!/usr/bin/env bash
# CI for georank, in tiers:
#
#   tier-1   plain build (warnings-as-errors, header self-containment
#            checks) + full ctest + georank_lint against the baseline
#   asan     AddressSanitizer build, full suite
#   ubsan    UndefinedBehaviorSanitizer build, robustness-heavy filters
#   tsan     ThreadSanitizer build, concurrency-heavy filters: the
#            parallel_for and Pipeline load-vs-query stress tests, the
#            chunked MrtStreamLoader, the RobustnessHarness, and the
#            serve-layer HTTP loopback reload-under-load test
#   serve    end-to-end query service check: build a snapshot with the
#            CLI, boot `georank serve` on an ephemeral port, curl every
#            endpoint and assert both the happy-path schema and the
#            negative status codes (404 unknown country, 400 bad ASN)
#   whatif   counterfactual end to end: run two canned scenarios (a
#            de-peering and a hijack) through `georank whatif --out`,
#            boot `georank serve --dir` (which attaches the what-if
#            engine), POST the same scenario texts to /v1/whatif and
#            byte-compare each response against the CLI's JSON; also
#            asserts the 400/405 contract on malformed input
#   scale    internet-preset smoke: generate a 10x world with the CLI
#            (`--preset internet`), build a snapshot from it under
#            /usr/bin/time -v, and assert the peak RSS stays under the
#            sharded pipeline's memory ceiling
#   live     incremental-pipeline equivalence: generate a world, replay
#            its update archive through `georank live`, and assert the
#            final GRSNAP01 file is byte-identical to a batch
#            `georank snapshot` of the same archive
#   recovery crash-safety end to end: feed half an update archive into a
#            journaled `georank live` through a fifo, `kill -9` it once
#            the journal holds the burst, restart with `--recover` on
#            the rest of the archive, and byte-compare the recovered
#            GRSNAP01 against an uninterrupted reference run
#   tidy     clang-tidy over src/ (opt-in: --clang-tidy; skips politely
#            when the tool is not installed)
#
# Usage: scripts/ci.sh [--skip-asan] [--skip-ubsan] [--skip-tsan]
#                      [--skip-serve] [--skip-whatif] [--skip-scale]
#                      [--skip-live] [--skip-recovery] [--skip-lint]
#                      [--skip-lint-graph] [--clang-tidy]
#
# --skip-lint-graph keeps the per-file lint rules but turns off the
# cross-TU graph rules (layering, lock-order) — the escape hatch for a
# deliberately-cyclic migration branch. The full run also writes the
# findings as a SARIF artifact to build/lint.sarif.
#
# Each sanitizer stage builds into its own tree (build-asan, build-ubsan,
# build-tsan) so it never dirties the primary build directory. The
# header self-containment OBJECT library is only compiled in the plain
# tier — self-containment is independent of instrumentation.
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_UBSAN=0
SKIP_TSAN=0
SKIP_SERVE=0
SKIP_WHATIF=0
SKIP_SCALE=0
SKIP_LIVE=0
SKIP_RECOVERY=0
SKIP_LINT=0
SKIP_LINT_GRAPH=0
RUN_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-serve) SKIP_SERVE=1 ;;
    --skip-whatif) SKIP_WHATIF=1 ;;
    --skip-scale) SKIP_SCALE=1 ;;
    --skip-live) SKIP_LIVE=1 ;;
    --skip-recovery) SKIP_RECOVERY=1 ;;
    --skip-lint) SKIP_LINT=1 ;;
    --skip-lint-graph) SKIP_LINT_GRAPH=1 ;;
    --clang-tidy) RUN_TIDY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build (WERROR + header checks)"
cmake -B build -S . -DGEORANK_WERROR=ON -DGEORANK_HEADER_CHECKS=ON > /dev/null
cmake --build build -j "$(nproc)"

if [[ "$SKIP_LINT" -eq 0 ]]; then
  LINT_ARGS=(--root . --baseline scripts/lint_baseline.txt --sarif build/lint.sarif)
  if [[ "$SKIP_LINT_GRAPH" -eq 1 ]]; then
    echo "==> tier-1: georank_lint, per-file rules only (--skip-lint-graph)"
    LINT_ARGS+=(--no-graph)
  else
    echo "==> tier-1: georank_lint (full engine incl. layering + lock-order; SARIF -> build/lint.sarif)"
  fi
  ./build/tools/georank_lint "${LINT_ARGS[@]}"
else
  echo "==> lint stage skipped (--skip-lint)"
fi

echo "==> tier-1: full test suite"
ctest --test-dir build --output-on-failure

echo "==> ingest robustness (fault corpus, strict mode, bit-identity)"
ctest --test-dir build --output-on-failure -R "MrtStream|MrtText|UpdateText|AsPath"

echo "==> degraded-data robustness (health tiers, fault plans, fuzz)"
ctest --test-dir build --output-on-failure \
  -R "Confidence|DegradationPolicy|DataHealth|FaultPlan|Robustness|StructuredFaults"

if [[ "$SKIP_SERVE" -eq 0 ]]; then
  echo "==> serve tier: snapshot build + live HTTP endpoints over loopback"
  SERVE_TMP="$(mktemp -d)"
  SERVE_PID=""
  serve_cleanup() {
    if [[ -n "$SERVE_PID" ]]; then
      kill "$SERVE_PID" 2> /dev/null || true
      wait "$SERVE_PID" 2> /dev/null || true
    fi
    rm -rf "$SERVE_TMP"
  }
  trap serve_cleanup EXIT

  ./build/tools/georank generate --out "$SERVE_TMP/world" --mini --seed 21 > /dev/null
  ./build/tools/georank snapshot --dir "$SERVE_TMP/world" \
    --out "$SERVE_TMP/world.grsnap" --id 7 --label ci > /dev/null
  ./build/tools/georank serve --snapshot "$SERVE_TMP/world.grsnap" --port 0 \
    > "$SERVE_TMP/serve.log" 2>&1 &
  SERVE_PID=$!

  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$SERVE_TMP/serve.log")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVE_PID" 2> /dev/null || { cat "$SERVE_TMP/serve.log"; echo "server died before listening"; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { cat "$SERVE_TMP/serve.log"; echo "server never reported a port"; exit 1; }
  BASE="http://127.0.0.1:$PORT"

  serve_grep() {  # serve_grep <target> <needle>: 200 + body contains needle
    local body
    body="$(curl -sf "$BASE$1")" || { echo "serve tier FAIL: GET $1 not 2xx"; exit 1; }
    grep -q "$2" <<< "$body" || { echo "serve tier FAIL: $1 body lacks $2"; echo "$body"; exit 1; }
  }
  serve_status() {  # serve_status <target> <code>
    local code
    code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE$1")"
    [[ "$code" == "$2" ]] || { echo "serve tier FAIL: $1 -> $code (want $2)"; exit 1; }
  }

  serve_grep "/v1/health" '"countries"'
  serve_grep "/v1/health" '"tiers"'
  serve_grep "/v1/rankings?country=AU&metric=cci&k=5" '"cci"'
  serve_grep "/v1/delta?country=AU" '"agreement"'
  serve_grep "/metrics" 'georank_requests_total'
  ASN="$(curl -sf "$BASE/v1/rankings?country=AU&k=1" \
    | sed -n 's/.*"asn":\([0-9]*\).*/\1/p')"
  [[ -n "$ASN" ]] || { echo "serve tier FAIL: no ASN in rankings body"; exit 1; }
  serve_grep "/v1/as/$ASN" '"countries"'
  serve_status "/v1/rankings?country=ZZ" 404   # well-formed but unknown
  serve_status "/v1/rankings?country=zzz" 400  # not a country code at all
  serve_status "/v1/as/notanumber" 400
  serve_status "/v1/nope" 404
  serve_cleanup
  SERVE_PID=""
  trap - EXIT
  echo "serve tier OK (port $PORT, ASN $ASN)"
else
  echo "==> serve stage skipped (--skip-serve)"
fi

if [[ "$SKIP_WHATIF" -eq 0 ]]; then
  echo "==> whatif tier: counterfactual CLI vs POST /v1/whatif (byte compare)"
  WHATIF_TMP="$(mktemp -d)"
  WHATIF_PID=""
  whatif_cleanup() {
    if [[ -n "$WHATIF_PID" ]]; then
      kill "$WHATIF_PID" 2> /dev/null || true
      wait "$WHATIF_PID" 2> /dev/null || true
    fi
    rm -rf "$WHATIF_TMP"
  }
  trap whatif_cleanup EXIT

  ./build/tools/georank generate --out "$WHATIF_TMP/world" --mini --seed 21 > /dev/null
  # Two canned scenarios over the mini world: a country-level de-peering
  # and a prefix hijack by the DE incumbent.
  printf 'name ci-depeer\nseed 3\ndepeer AU US\n' > "$WHATIF_TMP/depeer.txt"
  printf 'name ci-hijack\nseed 3\nhijack 16.0.0.0/16 by 3320\n' > "$WHATIF_TMP/hijack.txt"

  # CLI side. --id pins the snapshot identity so the JSON is
  # byte-comparable with what the server (booted with the same --id)
  # computes for the same scenario text.
  for SC in depeer hijack; do
    ./build/tools/georank whatif --dir "$WHATIF_TMP/world" \
      --scenario "$WHATIF_TMP/$SC.txt" --id 7 --top 5 \
      --out "$WHATIF_TMP/$SC.json" > "$WHATIF_TMP/$SC.report"
    grep -q '"snapshot_id":7' "$WHATIF_TMP/$SC.json" \
      || { echo "whatif tier FAIL: $SC.json lacks snapshot id"; exit 1; }
    grep -q '"shards_kept"' "$WHATIF_TMP/$SC.json" \
      || { echo "whatif tier FAIL: $SC.json lacks memo stats"; exit 1; }
  done

  # Server side: serving from the data directory attaches the engine.
  ./build/tools/georank serve --dir "$WHATIF_TMP/world" --port 0 --id 7 \
    > "$WHATIF_TMP/serve.log" 2>&1 &
  WHATIF_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WHATIF_TMP/serve.log")"
    [[ -n "$PORT" ]] && break
    kill -0 "$WHATIF_PID" 2> /dev/null || { cat "$WHATIF_TMP/serve.log"; echo "server died before listening"; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { cat "$WHATIF_TMP/serve.log"; echo "server never reported a port"; exit 1; }
  BASE="http://127.0.0.1:$PORT"

  for SC in depeer hijack; do
    curl -sf --data-binary @"$WHATIF_TMP/$SC.txt" "$BASE/v1/whatif?top=5" \
      -o "$WHATIF_TMP/$SC.http" \
      || { echo "whatif tier FAIL: POST /v1/whatif ($SC) not 2xx"; exit 1; }
    cmp "$WHATIF_TMP/$SC.json" "$WHATIF_TMP/$SC.http" \
      || { echo "whatif tier FAIL: $SC endpoint response differs from CLI JSON"; exit 1; }
  done

  # Contract: malformed scenarios are 400, GET on the POST route is 405.
  CODE="$(printf 'depeer AU AU\n' \
    | curl -s -o /dev/null -w '%{http_code}' --data-binary @- "$BASE/v1/whatif")"
  [[ "$CODE" == "400" ]] \
    || { echo "whatif tier FAIL: malformed scenario -> $CODE (want 400)"; exit 1; }
  CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/whatif")"
  [[ "$CODE" == "405" ]] \
    || { echo "whatif tier FAIL: GET /v1/whatif -> $CODE (want 405)"; exit 1; }
  whatif_cleanup
  WHATIF_PID=""
  trap - EXIT
  echo "whatif tier OK (port $PORT, 2 scenarios byte-identical CLI vs endpoint)"
else
  echo "==> whatif stage skipped (--skip-whatif)"
fi

if [[ "$SKIP_SCALE" -eq 0 ]]; then
  echo "==> scale tier: 10x internet-preset world + snapshot build under RSS ceiling"
  SCALE_TMP="$(mktemp -d)"
  trap 'rm -rf "$SCALE_TMP"' EXIT

  ./build/tools/georank generate --out "$SCALE_TMP/world" \
    --preset internet --scale 10 > /dev/null

  # Ceiling for the snapshot build over the ~850k-path 10x world. The
  # sharded pipeline peaks well under 2 GB here; a regression that
  # gathers global rows per country would blow straight through this.
  SCALE_RSS_CEILING_KB=$((4 * 1024 * 1024))
  PEAK_KB=""
  if [[ -x /usr/bin/time ]]; then
    /usr/bin/time -v -o "$SCALE_TMP/time.log" \
      ./build/tools/georank snapshot --dir "$SCALE_TMP/world" \
      --out "$SCALE_TMP/world.grsnap" --id 10 --label scale-smoke > /dev/null
    PEAK_KB="$(sed -n 's/.*Maximum resident set size (kbytes): //p' "$SCALE_TMP/time.log")"
  else
    # No GNU time in this environment: sample the child's VmHWM (it is
    # monotonic, so the last sample before exit is the peak).
    ./build/tools/georank snapshot --dir "$SCALE_TMP/world" \
      --out "$SCALE_TMP/world.grsnap" --id 10 --label scale-smoke > /dev/null &
    SCALE_PID=$!
    PEAK_KB=0
    while kill -0 "$SCALE_PID" 2> /dev/null; do
      KB="$(sed -n 's/^VmHWM:[[:space:]]*\([0-9]*\).*/\1/p' \
        "/proc/$SCALE_PID/status" 2> /dev/null || true)"
      [[ -n "$KB" && "$KB" -gt "$PEAK_KB" ]] && PEAK_KB="$KB"
      sleep 0.2
    done
    wait "$SCALE_PID" || { echo "scale tier FAIL: snapshot build failed"; exit 1; }
  fi
  [[ -s "$SCALE_TMP/world.grsnap" ]] \
    || { echo "scale tier FAIL: no snapshot produced"; exit 1; }
  [[ -n "$PEAK_KB" ]] || { echo "scale tier FAIL: could not read peak RSS"; exit 1; }
  if [[ "$PEAK_KB" -gt "$SCALE_RSS_CEILING_KB" ]]; then
    echo "scale tier FAIL: peak RSS ${PEAK_KB} kB exceeds ceiling ${SCALE_RSS_CEILING_KB} kB"
    exit 1
  fi
  rm -rf "$SCALE_TMP"
  trap - EXIT
  echo "scale tier OK (peak RSS ${PEAK_KB} kB, ceiling ${SCALE_RSS_CEILING_KB} kB)"
else
  echo "==> scale stage skipped (--skip-scale)"
fi

if [[ "$SKIP_LIVE" -eq 0 ]]; then
  echo "==> live tier: incremental update replay vs batch snapshot (byte compare)"
  LIVE_TMP="$(mktemp -d)"
  trap 'rm -rf "$LIVE_TMP"' EXIT

  ./build/tools/georank generate --out "$LIVE_TMP/world" --mini --seed 33 \
    --days 4 > /dev/null
  # Drop ribs.txt so BOTH sides consume updates.txt: identical entry
  # ordering into the sanitizer means float accumulation order matches,
  # which is what makes byte-compare (not just semantic compare) fair.
  rm "$LIVE_TMP/world/ribs.txt"

  ./build/tools/georank snapshot --dir "$LIVE_TMP/world" \
    --out "$LIVE_TMP/batch.grsnap" --id 11 --label live-ci --created 1617235200 \
    > /dev/null
  ./build/tools/georank live --dir "$LIVE_TMP/world" --batch 750 \
    --out "$LIVE_TMP/live.grsnap" --id 11 --label live-ci --created 1617235200 \
    > "$LIVE_TMP/live.log"
  grep -q "replay done" "$LIVE_TMP/live.log" \
    || { cat "$LIVE_TMP/live.log"; echo "live tier FAIL: replay did not finish"; exit 1; }
  FLUSHES="$(grep -c 'flush -> snapshot' "$LIVE_TMP/live.log" || true)"
  [[ "$FLUSHES" -gt 1 ]] \
    || { cat "$LIVE_TMP/live.log"; echo "live tier FAIL: expected multiple incremental flushes, got $FLUSHES"; exit 1; }
  cmp "$LIVE_TMP/batch.grsnap" "$LIVE_TMP/live.grsnap" \
    || { echo "live tier FAIL: incremental snapshot differs from batch recompute"; exit 1; }
  rm -rf "$LIVE_TMP"
  trap - EXIT
  echo "live tier OK ($FLUSHES incremental flushes, snapshots byte-identical)"
else
  echo "==> live stage skipped (--skip-live)"
fi

if [[ "$SKIP_RECOVERY" -eq 0 ]]; then
  echo "==> recovery tier: kill -9 a journaled live run, --recover, byte compare"
  REC_TMP="$(mktemp -d)"
  REC_PID=""
  rec_cleanup() {
    exec 9>&- 2> /dev/null || true
    if [[ -n "$REC_PID" ]]; then
      kill -9 "$REC_PID" 2> /dev/null || true
      wait "$REC_PID" 2> /dev/null || true
    fi
    rm -rf "$REC_TMP"
  }
  trap rec_cleanup EXIT

  ./build/tools/georank generate --out "$REC_TMP/world" --mini --seed 33 \
    --days 4 > /dev/null
  TOTAL="$(wc -l < "$REC_TMP/world/updates.txt")"
  HALF=$((TOTAL / 2))
  [[ "$HALF" -gt 1200 ]] \
    || { echo "recovery tier FAIL: archive too small ($TOTAL lines)"; exit 1; }

  # Uninterrupted reference with pinned snapshot identity: same binary,
  # same flags, nobody killed.
  ./build/tools/georank live --dir "$REC_TMP/world" --batch 750 \
    --out "$REC_TMP/reference.grsnap" --id 11 --label rec-ci \
    --created 1617235200 > /dev/null

  # Doomed run: a fifo feeds the first half, held open so the process
  # blocks on input instead of draining; every accepted update lands in
  # the journal (fsync each — a kill -9 test is about durability).
  mkfifo "$REC_TMP/feed"
  ./build/tools/georank live --dir "$REC_TMP/world" \
    --updates "$REC_TMP/feed" --batch 750 \
    --journal-dir "$REC_TMP/journal" --checkpoint-every 997 --fsync each \
    > "$REC_TMP/doomed.log" 2>&1 &
  REC_PID=$!
  exec 9> "$REC_TMP/feed"
  head -n "$HALF" "$REC_TMP/world/updates.txt" >&9

  # Poll the read-only journal scan until the burst is durably absorbed,
  # then kill without mercy. A kill landing between a journal append and
  # the buffer absorb is exactly the kAfterJournalAppend fault point the
  # recovery harness proves bit-identical.
  RECORDS=0
  for _ in $(seq 1 300); do
    RECORDS="$(./build/tools/georank journal --dir "$REC_TMP/journal" 2> /dev/null \
      | sed -n 's/^records \([0-9]*\) .*/\1/p' || true)"
    [[ "${RECORDS:-0}" -ge "$HALF" ]] && break
    kill -0 "$REC_PID" 2> /dev/null \
      || { cat "$REC_TMP/doomed.log"; echo "recovery tier FAIL: live run died before the burst"; exit 1; }
    sleep 0.1
  done
  [[ "${RECORDS:-0}" -ge "$HALF" ]] \
    || { cat "$REC_TMP/doomed.log"; echo "recovery tier FAIL: journal never reached $HALF records (got ${RECORDS:-0})"; exit 1; }
  kill -9 "$REC_PID"
  wait "$REC_PID" 2> /dev/null || true
  REC_PID=""
  exec 9>&-

  # Restart on the remaining half. recover() loads the checkpoint the
  # doomed run published and replays the journal suffix; the stream
  # resumes at the journal's next sequence number (= line HALF+1).
  tail -n +"$((HALF + 1))" "$REC_TMP/world/updates.txt" > "$REC_TMP/rest.txt"
  ./build/tools/georank live --dir "$REC_TMP/world" \
    --updates "$REC_TMP/rest.txt" --batch 750 \
    --journal-dir "$REC_TMP/journal" --recover --checkpoint-every 997 \
    --out "$REC_TMP/recovered.grsnap" --id 11 --label rec-ci \
    --created 1617235200 > "$REC_TMP/recover.log"
  grep -q "recovered: checkpoint" "$REC_TMP/recover.log" \
    || { cat "$REC_TMP/recover.log"; echo "recovery tier FAIL: no recovery line"; exit 1; }
  cmp "$REC_TMP/reference.grsnap" "$REC_TMP/recovered.grsnap" \
    || { echo "recovery tier FAIL: recovered snapshot differs from uninterrupted run"; exit 1; }
  RECLINE="$(grep '^recovered:' "$REC_TMP/recover.log")"
  rec_cleanup
  trap - EXIT
  echo "recovery tier OK ($RECLINE; snapshots byte-identical)"
else
  echo "==> recovery stage skipped (--skip-recovery)"
fi

if [[ "$RUN_TIDY" -eq 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "==> clang-tidy (profile: .clang-tidy) over src/"
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    find src -name '*.cpp' -print0 \
      | xargs -0 -n 8 clang-tidy -p build --quiet
  else
    echo "==> clang-tidy not installed; stage skipped"
  fi
fi

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "==> AddressSanitizer build + test"
  cmake -B build-asan -S . -DGEORANK_SANITIZE=address \
    -DGEORANK_HEADER_CHECKS=OFF > /dev/null
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure
else
  echo "==> AddressSanitizer stage skipped (--skip-asan)"
fi

if [[ "$SKIP_UBSAN" -eq 0 ]]; then
  echo "==> UndefinedBehaviorSanitizer build + robustness filters"
  cmake -B build-ubsan -S . -DGEORANK_SANITIZE=undefined \
    -DGEORANK_HEADER_CHECKS=OFF > /dev/null
  cmake --build build-ubsan -j "$(nproc)"
  # The robustness surfaces do the spiciest arithmetic (seed mixing,
  # NDCG float edge cases, fuzzed parsers); run them all under UBSan.
  ctest --test-dir build-ubsan --output-on-failure \
    -R "Confidence|DegradationPolicy|DataHealth|FaultPlan|Robustness|StructuredFaults|FuzzTest|Ndcg|Stability"
else
  echo "==> UndefinedBehaviorSanitizer stage skipped (--skip-ubsan)"
fi

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  echo "==> ThreadSanitizer build + concurrency filters"
  cmake -B build-tsan -S . -DGEORANK_SANITIZE=thread \
    -DGEORANK_HEADER_CHECKS=OFF > /dev/null
  cmake --build build-tsan -j "$(nproc)"
  # Everything that spawns or synchronizes threads: parallel_for and its
  # stress suite, Pipeline (all_countries fan-out, memo cache,
  # load-vs-query reload stress), the chunked MrtStreamLoader, the
  # RobustnessHarness trial fan-out, and the HTTP loopback suite
  # (client threads hammering while snapshots hot-swap).
  ctest --test-dir build-tsan --output-on-failure \
    -R "ParallelFor|PipelineStress|Pipeline\.|MrtStream|Robustness|HttpLoopback"
else
  echo "==> ThreadSanitizer stage skipped (--skip-tsan)"
fi

echo "CI PASS"
