#!/usr/bin/env bash
# Tier-1 CI for georank: plain build + full ctest, an AddressSanitizer
# pass over the same suite, and an explicit run of the ingest-robustness
# tests (fault-injection corpus, strict/tolerant modes, parallel-vs-
# sequential bit-identity).
#
# Usage: scripts/ci.sh [--skip-asan]
#
# The AddressSanitizer stage builds into its own tree (build-asan) so it
# never dirties the primary build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build"
cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc)"

echo "==> tier-1: full test suite"
ctest --test-dir build --output-on-failure

echo "==> ingest robustness (fault corpus, strict mode, bit-identity)"
ctest --test-dir build --output-on-failure -R "MrtStream|MrtText|UpdateText|AsPath"

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "==> AddressSanitizer build + test"
  cmake -B build-asan -S . -DGEORANK_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure
else
  echo "==> AddressSanitizer stage skipped (--skip-asan)"
fi

echo "CI PASS"
