#include "topo/as_graph.hpp"

#include <gtest/gtest.h>

namespace georank::topo {
namespace {

TEST(AsGraph, AddAsIsIdempotent) {
  AsGraph g;
  NodeId a = g.add_as(100);
  NodeId b = g.add_as(100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.contains(100));
  EXPECT_FALSE(g.contains(200));
}

TEST(AsGraph, RejectsAsZero) {
  AsGraph g;
  EXPECT_THROW(g.add_as(0), std::invalid_argument);
}

TEST(AsGraph, IdAsnRoundTrip) {
  AsGraph g;
  NodeId id = g.add_as(42);
  EXPECT_EQ(g.asn_of(id), 42u);
  EXPECT_EQ(g.id_of(42), id);
  EXPECT_THROW((void)g.id_of(999), std::out_of_range);
}

TEST(AsGraph, P2cRelationshipIsDirectional) {
  AsGraph g;
  g.add_p2c(1, 2);
  EXPECT_EQ(g.relationship(1, 2), Rel::kCustomer);  // 2 is 1's customer
  EXPECT_EQ(g.relationship(2, 1), Rel::kProvider);  // 1 is 2's provider
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, P2pIsSymmetric) {
  AsGraph g;
  g.add_p2p(1, 2);
  EXPECT_EQ(g.relationship(1, 2), Rel::kPeer);
  EXPECT_EQ(g.relationship(2, 1), Rel::kPeer);
}

TEST(AsGraph, RelationshipAbsent) {
  AsGraph g;
  g.add_as(1);
  g.add_as(2);
  EXPECT_FALSE(g.relationship(1, 2).has_value());
  EXPECT_FALSE(g.relationship(1, 99).has_value());
}

TEST(AsGraph, RejectsSelfAndDuplicateEdges) {
  AsGraph g;
  EXPECT_THROW(g.add_p2c(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_p2p(1, 1), std::invalid_argument);
  g.add_p2c(1, 2);
  EXPECT_THROW(g.add_p2c(1, 2), std::invalid_argument);
  EXPECT_THROW(g.add_p2c(2, 1), std::invalid_argument);
  EXPECT_THROW(g.add_p2p(1, 2), std::invalid_argument);
}

TEST(AsGraph, RemoveEdge) {
  AsGraph g;
  g.add_p2c(1, 2);
  g.add_p2p(1, 3);
  EXPECT_TRUE(g.remove_edge(1, 2));
  EXPECT_FALSE(g.relationship(1, 2).has_value());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.remove_edge(1, 2));  // already gone
  EXPECT_FALSE(g.remove_edge(1, 99));
  // Re-adding after removal is allowed (sanction/de-peering edits).
  g.add_p2p(1, 2);
  EXPECT_EQ(g.relationship(1, 2), Rel::kPeer);
}

TEST(AsGraph, NeighborListsByKind) {
  AsGraph g;
  g.add_p2c(10, 1);
  g.add_p2c(10, 2);
  g.add_p2c(20, 10);
  g.add_p2p(10, 30);
  EXPECT_EQ(g.customers_of(10), (std::vector<bgp::Asn>{1, 2}));
  EXPECT_EQ(g.providers_of(10), (std::vector<bgp::Asn>{20}));
  EXPECT_EQ(g.peers_of(10), (std::vector<bgp::Asn>{30}));
  EXPECT_TRUE(g.customers_of(1).empty());
  EXPECT_EQ(g.providers_of(1), (std::vector<bgp::Asn>{10}));
}

TEST(AsGraph, InverseRelation) {
  EXPECT_EQ(inverse(Rel::kCustomer), Rel::kProvider);
  EXPECT_EQ(inverse(Rel::kProvider), Rel::kCustomer);
  EXPECT_EQ(inverse(Rel::kPeer), Rel::kPeer);
}

}  // namespace
}  // namespace georank::topo
