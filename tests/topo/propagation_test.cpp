#include "topo/route_propagation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace georank::topo {
namespace {

using bgp::AsPath;

// The Figure 1 topology from the paper:
//   A, B, C are mutual peers. C<D, D<E, D<F, A<G, B<H ("X<Y": X provides Y).
AsGraph figure1_graph() {
  AsGraph g;
  g.add_p2p(101, 102);  // A-B
  g.add_p2p(101, 103);  // A-C
  g.add_p2p(102, 103);  // B-C
  g.add_p2c(103, 104);  // C<D
  g.add_p2c(104, 105);  // D<E
  g.add_p2c(104, 106);  // D<F
  g.add_p2c(101, 107);  // A<G
  g.add_p2c(102, 108);  // B<H
  return g;
}

TEST(RoutePropagation, OriginHasTrivialRoute) {
  AsGraph g = figure1_graph();
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(105);
  EXPECT_EQ(t.at(g.id_of(105)).kind, RouteKind::kOrigin);
  EXPECT_EQ(t.path_from(g.id_of(105)), (AsPath{105}));
}

TEST(RoutePropagation, CustomerRoutesClimbProviders) {
  AsGraph g = figure1_graph();
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(105);  // origin E
  // D and C learn customer routes.
  EXPECT_EQ(t.at(g.id_of(104)).kind, RouteKind::kCustomer);
  EXPECT_EQ(t.at(g.id_of(103)).kind, RouteKind::kCustomer);
  EXPECT_EQ(t.path_from(g.id_of(103)), (AsPath{103, 104, 105}));
}

TEST(RoutePropagation, PeerRoutesSingleHop) {
  AsGraph g = figure1_graph();
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(105);
  // A and B learn E via their peer C.
  EXPECT_EQ(t.at(g.id_of(101)).kind, RouteKind::kPeer);
  EXPECT_EQ(t.at(g.id_of(102)).kind, RouteKind::kPeer);
  EXPECT_EQ(t.path_from(g.id_of(101)), (AsPath{101, 103, 104, 105}));
}

TEST(RoutePropagation, ProviderRoutesDescendToStubs) {
  AsGraph g = figure1_graph();
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(105);
  // G (customer of A) learns via provider A.
  EXPECT_EQ(t.at(g.id_of(107)).kind, RouteKind::kProvider);
  EXPECT_EQ(t.path_from(g.id_of(107)), (AsPath{107, 101, 103, 104, 105}));
  EXPECT_EQ(t.path_from(g.id_of(108)), (AsPath{108, 102, 103, 104, 105}));
}

TEST(RoutePropagation, PrefersCustomerOverPeerRoute) {
  // X has a customer route AND a peer route to the origin; must pick the
  // customer route even when longer.
  AsGraph g;
  g.add_p2c(1, 2);   // X=1 provides 2
  g.add_p2c(2, 3);   // 2 provides 3
  g.add_p2c(3, 99);  // 3 provides origin: customer chain length 3
  g.add_p2p(1, 4);   // X peers 4
  g.add_p2c(4, 99);  // 4 provides origin: peer route length 2
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99);
  EXPECT_EQ(t.at(g.id_of(1)).kind, RouteKind::kCustomer);
  EXPECT_EQ(t.path_from(g.id_of(1)), (AsPath{1, 2, 3, 99}));
}

TEST(RoutePropagation, PrefersPeerOverProviderRoute) {
  AsGraph g;
  g.add_p2p(1, 2);   // 1 peers 2
  g.add_p2c(2, 99);  // peer route via 2
  g.add_p2c(3, 1);   // 3 provides 1
  g.add_p2c(3, 99);  // provider route via 3 (same length)
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99);
  EXPECT_EQ(t.at(g.id_of(1)).kind, RouteKind::kPeer);
  EXPECT_EQ(t.path_from(g.id_of(1)), (AsPath{1, 2, 99}));
}

TEST(RoutePropagation, ShorterPathWinsWithinClass) {
  AsGraph g;
  // Two provider chains to the origin: length 2 vs length 3.
  g.add_p2c(10, 1);
  g.add_p2c(11, 1);
  g.add_p2c(10, 99);           // 1 -> 10 -> 99
  g.add_p2c(12, 11);           // irrelevant longer path pieces
  g.add_p2c(12, 99);           // 1 -> 11 -> 12? no: 11 learns via provider 12
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99);
  EXPECT_EQ(t.at(g.id_of(1)).length, 2);
  EXPECT_EQ(t.path_from(g.id_of(1)), (AsPath{1, 10, 99}));
}

TEST(RoutePropagation, PeerRouteNotReExportedToPeers) {
  // origin-9 <peer> A <peer> B : B must NOT reach the origin through two
  // consecutive peer links.
  AsGraph g;
  g.add_p2p(9, 1);
  g.add_p2p(1, 2);
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(9);
  EXPECT_EQ(t.at(g.id_of(1)).kind, RouteKind::kPeer);
  EXPECT_EQ(t.at(g.id_of(2)).kind, RouteKind::kNone);
}

TEST(RoutePropagation, ProviderRouteNotExportedUpward) {
  // A provider must not re-export a provider-learned route to ITS provider.
  AsGraph g;
  g.add_p2c(2, 1);   // 2 provides 1
  g.add_p2c(3, 2);   // 3 provides 2
  g.add_p2c(2, 99);  // 2 provides origin
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99);
  // 1 learns from its provider 2. 3 learns from its CUSTOMER 2. Both ok.
  EXPECT_EQ(t.at(g.id_of(1)).kind, RouteKind::kProvider);
  EXPECT_EQ(t.at(g.id_of(3)).kind, RouteKind::kCustomer);
}

TEST(RoutePropagation, UnreachableWithoutValleyFreePath) {
  // 1 <- 2 (2 is customer of 1); origin is a SIBLING customer of 2's
  // customer: 2 -> 3, and origin 99 is provider of 3. Path 3..99 would
  // need customer->provider at the end: not exportable to 3's provider.
  AsGraph g;
  g.add_p2c(2, 3);
  g.add_p2c(99, 3);  // 99 provides 3
  g.add_p2c(1, 2);
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99);
  // 3 reaches 99 via provider; 2 must NOT hear about it from customer 3
  // (3 cannot export a provider route upward), so 2 and 1 are unreachable.
  EXPECT_EQ(t.at(g.id_of(3)).kind, RouteKind::kProvider);
  EXPECT_EQ(t.at(g.id_of(2)).kind, RouteKind::kNone);
  EXPECT_EQ(t.at(g.id_of(1)).kind, RouteKind::kNone);
}

TEST(RoutePropagation, DeterministicTiebreakWithoutSalt) {
  AsGraph g;
  g.add_p2c(10, 1);
  g.add_p2c(20, 1);
  g.add_p2c(10, 99);
  g.add_p2c(20, 99);
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(99, 0);
  // Lowest-ASN neighbor wins equal-cost ties with salt 0.
  EXPECT_EQ(t.path_from(g.id_of(1)), (AsPath{1, 10, 99}));
}

TEST(RoutePropagation, SaltVariesEqualCostChoice) {
  AsGraph g;
  g.add_p2c(10, 1);
  g.add_p2c(20, 1);
  g.add_p2c(10, 99);
  g.add_p2c(20, 99);
  RoutePropagator prop{g};
  bool saw10 = false, saw20 = false;
  for (std::uint64_t salt = 1; salt <= 32; ++salt) {
    RoutingTable t = prop.compute(99, salt);
    bgp::AsPath p = t.path_from(g.id_of(1));
    if (p[1] == 10) saw10 = true;
    if (p[1] == 20) saw20 = true;
  }
  EXPECT_TRUE(saw10);
  EXPECT_TRUE(saw20);
}

TEST(IsValleyFree, AcceptsAndRejects) {
  AsGraph g = figure1_graph();
  // Up, peer, down: valid.
  EXPECT_TRUE(is_valley_free(g, AsPath{107, 101, 103, 104, 105}));
  // Pure descent (from C down to E): valid.
  EXPECT_TRUE(is_valley_free(g, AsPath{103, 104, 105}));
  // Two peer links: invalid.
  EXPECT_FALSE(is_valley_free(g, AsPath{101, 102, 103, 104}));
  // Down then up (valley): invalid. G..A is up; craft A->G->? none; use
  // D: path C D (down) then D's provider C again would be a loop; instead
  // E -> D (up) fine, D -> C (up) fine, C -> A (peer), A -> B (peer) bad.
  EXPECT_FALSE(is_valley_free(g, AsPath{105, 104, 103, 101, 102}));
  // Unknown link: invalid.
  EXPECT_FALSE(is_valley_free(g, AsPath{105, 107}));
  // Trivial paths are valley-free.
  EXPECT_TRUE(is_valley_free(g, AsPath{105}));
}

// Property: every propagated path is valley-free and loop-free on random
// graphs.
class PropagationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropagationPropertyTest, AllPathsValleyFreeAndLoopFree) {
  util::Pcg32 rng{GetParam()};
  AsGraph g;
  constexpr int kTier1 = 3, kMid = 8, kStub = 20;
  // Clique.
  for (int i = 0; i < kTier1; ++i) {
    for (int j = i + 1; j < kTier1; ++j) g.add_p2p(100 + i, 100 + j);
  }
  // Mid tier: customers of 1-2 tier1s, some lateral peering.
  for (int m = 0; m < kMid; ++m) {
    bgp::Asn asn = 200 + m;
    g.add_p2c(100 + rng.below(kTier1), asn);
    if (rng.chance(0.5)) {
      bgp::Asn other = 100 + rng.below(kTier1);
      if (!g.relationship(other, asn)) g.add_p2c(other, asn);
    }
    for (int p = 0; p < m; ++p) {
      if (rng.chance(0.2) && !g.relationship(200 + p, asn)) {
        g.add_p2p(200 + p, asn);
      }
    }
  }
  // Stubs: customers of 1-2 mid tiers.
  for (int s = 0; s < kStub; ++s) {
    bgp::Asn asn = 300 + s;
    g.add_p2c(200 + rng.below(kMid), asn);
    if (rng.chance(0.4)) {
      bgp::Asn other = 200 + rng.below(kMid);
      if (!g.relationship(other, asn)) g.add_p2c(other, asn);
    }
  }

  RoutePropagator prop{g};
  for (bgp::Asn origin : {bgp::Asn{300}, bgp::Asn{305}, bgp::Asn{200},
                          bgp::Asn{100}}) {
    RoutingTable t = prop.compute(origin, GetParam());
    for (NodeId id = 0; id < g.size(); ++id) {
      if (!t.reachable(id)) continue;
      bgp::AsPath path = t.path_from(id);
      EXPECT_FALSE(path.has_nonadjacent_duplicate()) << path.to_string();
      EXPECT_TRUE(is_valley_free(g, path)) << path.to_string();
      EXPECT_EQ(path.origin(), origin);
      EXPECT_EQ(path.vp_as(), g.asn_of(id));
      EXPECT_EQ(path.size(), static_cast<std::size_t>(t.at(id).length) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace georank::topo
