// Partial-transit ("complex relationship") semantics: a customer that
// announces only a fraction of its prefixes through an edge, and the
// backup-path length penalty that keeps traffic off such edges whenever
// a fully-announced alternative exists.
#include <gtest/gtest.h>

#include "topo/route_propagation.hpp"

namespace georank::topo {
namespace {

using bgp::AsPath;

TEST(PartialTransit, FractionStoredAndQueried) {
  AsGraph g;
  g.add_p2c(1, 2, 0.25);
  g.add_p2c(1, 3);
  EXPECT_FLOAT_EQ(static_cast<float>(g.export_fraction(1, 2)), 0.25f);
  EXPECT_DOUBLE_EQ(g.export_fraction(2, 1), 0.25);  // symmetric storage
  EXPECT_DOUBLE_EQ(g.export_fraction(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.export_fraction(1, 99), 1.0);  // absent edge
}

TEST(PartialTransit, RejectsBadFraction) {
  AsGraph g;
  EXPECT_THROW(g.add_p2c(1, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_p2c(1, 2, -0.5), std::invalid_argument);
  EXPECT_THROW(g.add_p2c(1, 2, 1.5), std::invalid_argument);
}

TEST(PartialTransit, BlocksTheRightShareOfPrefixes) {
  // Origin 9 announces through a 30% edge to provider 1; count how many
  // prefix salts make it through.
  AsGraph g;
  g.add_p2c(1, 9, 0.3);
  RoutePropagator prop{g};
  int through = 0;
  constexpr int kTrials = 2000;
  for (std::uint64_t salt = 1; salt <= kTrials; ++salt) {
    RoutingTable t = prop.compute(9, salt);
    if (t.reachable(g.id_of(1))) ++through;
  }
  EXPECT_NEAR(static_cast<double>(through) / kTrials, 0.3, 0.05);
}

TEST(PartialTransit, SamePrefixConsistentAcrossRecomputation) {
  AsGraph g;
  g.add_p2c(1, 9, 0.5);
  RoutePropagator prop{g};
  for (std::uint64_t salt : {7ull, 8ull, 9ull}) {
    bool first = prop.compute(9, salt).reachable(g.id_of(1));
    bool second = prop.compute(9, salt).reachable(g.id_of(1));
    EXPECT_EQ(first, second);
  }
}

TEST(PartialTransit, FullEdgesNeverBlocked) {
  AsGraph g;
  g.add_p2c(1, 9);
  RoutePropagator prop{g};
  for (std::uint64_t salt = 1; salt <= 100; ++salt) {
    EXPECT_TRUE(prop.compute(9, salt).reachable(g.id_of(1)));
  }
}

TEST(PartialTransit, BackupPenaltyDivertsEqualClassTraffic) {
  // Origin 9 multihomes: full transit via chain 3->2 (two hops up) and a
  // PARTIAL direct edge to provider 5. Both providers peer with 6, whose
  // customer 7 is the observer. Without the penalty the direct partial
  // path (1 hop) would win; with it, the full-transit chain does.
  AsGraph g;
  g.add_p2c(2, 9);   // full: 9 -> 2
  g.add_p2c(3, 2);   //          -> 3
  g.add_p2c(5, 9, 0.9);  // partial direct (announced for most salts)
  g.add_p2p(3, 6);
  g.add_p2p(5, 6);
  g.add_p2c(6, 7);
  RoutePropagator prop{g};
  int via_partial = 0, reachable = 0;
  for (std::uint64_t salt = 1; salt <= 200; ++salt) {
    RoutingTable t = prop.compute(9, salt);
    if (!t.reachable(g.id_of(7))) continue;
    ++reachable;
    if (t.path_from(g.id_of(7)).contains(5)) ++via_partial;
  }
  EXPECT_GT(reachable, 150);
  // The penalized direct route (effective length 1+3=4 at AS 5) loses to
  // the 2-hop full chain at AS 6's comparison every time.
  EXPECT_EQ(via_partial, 0);
}

TEST(PartialTransit, PartialEdgeUsedWhenOnlyOption) {
  // When no alternative exists, announced prefixes still flow through
  // the partial edge despite the penalty.
  AsGraph g;
  g.add_p2c(5, 9, 0.5);
  g.add_p2c(6, 5);
  RoutePropagator prop{g};
  int reached = 0;
  for (std::uint64_t salt = 1; salt <= 400; ++salt) {
    if (prop.compute(9, salt).reachable(g.id_of(6))) ++reached;
  }
  EXPECT_NEAR(reached / 400.0, 0.5, 0.08);
}

TEST(PartialTransit, PathLengthReflectsRealHopsNotPenalty) {
  AsGraph g;
  g.add_p2c(5, 9, 0.9);
  RoutePropagator prop{g};
  for (std::uint64_t salt = 1; salt <= 50; ++salt) {
    RoutingTable t = prop.compute(9, salt);
    if (!t.reachable(g.id_of(5))) continue;
    // The PATH is still the true hop sequence even though the stored
    // effective length carries the penalty.
    EXPECT_EQ(t.path_from(g.id_of(5)), (AsPath{5, 9}));
    EXPECT_GT(t.at(g.id_of(5)).length, 1);  // penalty visible in length
    return;
  }
  FAIL() << "no salt admitted the 90% edge in 50 tries";
}

}  // namespace
}  // namespace georank::topo
