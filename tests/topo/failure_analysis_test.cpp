#include "topo/failure_analysis.hpp"

#include <gtest/gtest.h>

namespace georank::topo {
namespace {

using bgp::Prefix;

Prefix pfx(const char* text) { return *Prefix::parse(text); }

// Topology: observer 100 (tier) -- customers 1, 2; 1 and 2 both provide
// stub 10 (multihomed); 1 alone provides stub 11 (single-homed).
AsGraph diamond() {
  AsGraph g;
  g.add_p2c(100, 1);
  g.add_p2c(100, 2);
  g.add_p2c(1, 10);
  g.add_p2c(2, 10);
  g.add_p2c(1, 11);
  return g;
}

std::vector<PrefixOrigin> targets() {
  return {{pfx("10.0.0.0/24"), 10, 0}, {pfx("10.0.1.0/24"), 11, 0}};
}

TEST(FailureAnalysis, SingleHomedSpaceGoesDark) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, targets(), {100}};
  FailureImpact impact = analyzer.assess(1);
  EXPECT_EQ(impact.total, 512u);
  // Stub 11 is only reachable via AS 1: 256 addresses go dark.
  EXPECT_EQ(impact.unreachable, 256u);
  // Stub 10 survives via AS 2 (possibly rerouted).
  EXPECT_LE(impact.rerouted, 256u);
  EXPECT_NEAR(impact.unreachable_share(), 0.5, 1e-9);
}

TEST(FailureAnalysis, MultihomedSpaceSurvives) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, targets(), {100}};
  FailureImpact impact = analyzer.assess(2);
  // AS 2 only carries (part of) stub 10's multihomed traffic.
  EXPECT_EQ(impact.unreachable, 0u);
}

TEST(FailureAnalysis, FailingTheObserversOnlyProviderKillsEverything) {
  AsGraph g = diamond();
  // Observe from stub 11: everything it reaches goes through AS 1.
  FailureAnalyzer analyzer{g, {{pfx("10.0.0.0/24"), 10, 0}}, {11}};
  FailureImpact impact = analyzer.assess(1);
  EXPECT_EQ(impact.unreachable, 256u);
}

TEST(FailureAnalysis, FailingAnUninvolvedAsChangesNothing) {
  AsGraph g = diamond();
  g.add_as(999);
  FailureAnalyzer analyzer{g, targets(), {100}};
  FailureImpact impact = analyzer.assess(999);
  EXPECT_EQ(impact.unreachable, 0u);
  EXPECT_EQ(impact.rerouted, 0u);
  EXPECT_EQ(impact.total, 512u);
}

TEST(FailureAnalysis, FailedOriginIsFullyUnreachable) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, targets(), {100}};
  FailureImpact impact = analyzer.assess(10);
  EXPECT_EQ(impact.unreachable, 256u);  // stub 10's own space
}

TEST(FailureAnalysis, WeightsDefaultToPrefixSize) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, {{pfx("10.0.0.0/23"), 11, 0}}, {100}};
  FailureImpact impact = analyzer.assess(1);
  EXPECT_EQ(impact.total, 512u);
  EXPECT_EQ(impact.unreachable, 512u);
}

TEST(FailureAnalysis, ExplicitWeightsRespected) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, {{pfx("10.0.0.0/24"), 11, 1000}}, {100}};
  FailureImpact impact = analyzer.assess(1);
  EXPECT_EQ(impact.unreachable, 1000u);
}

TEST(FailureAnalysis, RankCandidatesOrdersByImpact) {
  AsGraph g = diamond();
  FailureAnalyzer analyzer{g, targets(), {100}};
  auto ranked = analyzer.rank_candidates(std::vector<bgp::Asn>{2, 1, 999});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].failed, 1u);  // kills single-homed space
  EXPECT_GT(ranked[0].unreachable, ranked[1].unreachable);
  EXPECT_EQ(ranked[2].unreachable, 0u);
}

TEST(FailureAnalysis, PermanentlyDarkTargetsExcluded) {
  AsGraph g = diamond();
  g.add_as(500);  // isolated origin: never reachable
  std::vector<PrefixOrigin> t = targets();
  t.push_back({pfx("10.0.2.0/24"), 500, 0});
  FailureAnalyzer analyzer{g, t, {100}};
  FailureImpact impact = analyzer.assess(1);
  EXPECT_EQ(impact.total, 512u);  // the dark /24 is not assessed
}

TEST(RoutePropagation, FailedNodeLearnsAndPropagatesNothing) {
  AsGraph g = diamond();
  RoutePropagator prop{g};
  RoutingTable t = prop.compute(11, 0, g.id_of(1));
  EXPECT_FALSE(t.reachable(g.id_of(1)));
  EXPECT_FALSE(t.reachable(g.id_of(100)));  // only path ran through 1
  EXPECT_TRUE(t.reachable(g.id_of(11)));    // the origin itself
}

}  // namespace
}  // namespace georank::topo
