#include <gtest/gtest.h>

#include "bgp/prefix_trie.hpp"
#include "util/rng.hpp"

namespace georank::bgp {
namespace {

Prefix pfx(const char* text) { return *Prefix::parse(text); }

TEST(Aggregate, EmptyAndSingle) {
  EXPECT_TRUE(aggregate_prefixes({}).empty());
  auto one = aggregate_prefixes({pfx("10.0.0.0/24")});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], pfx("10.0.0.0/24"));
}

TEST(Aggregate, DropsContained) {
  auto out = aggregate_prefixes({pfx("10.0.0.0/16"), pfx("10.0.1.0/24")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], pfx("10.0.0.0/16"));
}

TEST(Aggregate, MergesSiblings) {
  auto out = aggregate_prefixes({pfx("10.0.0.0/17"), pfx("10.0.128.0/17")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], pfx("10.0.0.0/16"));
}

TEST(Aggregate, MergesRecursively) {
  auto out = aggregate_prefixes({pfx("10.0.0.0/18"), pfx("10.0.64.0/18"),
                                 pfx("10.0.128.0/17")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], pfx("10.0.0.0/16"));
}

TEST(Aggregate, NonSiblingsNotMerged) {
  // Adjacent but crossing a parent boundary: /17s with different parents.
  auto out = aggregate_prefixes({pfx("10.0.128.0/17"), pfx("10.1.0.0/17")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate, DeduplicatesInput) {
  auto out = aggregate_prefixes(
      {pfx("10.0.0.0/24"), pfx("10.0.0.0/24"), pfx("10.0.0.0/24")});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Aggregate, MixedExample) {
  auto out = aggregate_prefixes({
      pfx("10.0.0.0/17"), pfx("10.0.128.0/17"),  // -> 10.0.0.0/16
      pfx("10.0.5.0/24"),                        // contained
      pfx("192.168.0.0/24"),                     // isolated
  });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], pfx("10.0.0.0/16"));
  EXPECT_EQ(out[1], pfx("192.168.0.0/24"));
}

class AggregatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregatePropertyTest, PreservesAddressUnionAndIsMinimal) {
  util::Pcg32 rng{GetParam()};
  std::vector<Prefix> input;
  const std::uint32_t base = 0x0A000000;
  // Blocks of /18../32 placed anywhere inside 10.0.0.0/14 (2^18 addrs).
  constexpr std::uint32_t kRegion = 1u << 18;
  for (int i = 0; i < 40; ++i) {
    auto len = static_cast<std::uint8_t>(18 + rng.below(15));
    std::uint32_t block = std::uint32_t{1} << (32 - len);
    std::uint32_t offset = rng.below(kRegion / block);
    input.emplace_back(base + offset * block, len);
  }
  auto out = aggregate_prefixes(input);

  // 1. Same address union.
  EXPECT_EQ(union_address_count(input), union_address_count(out));
  // 2. Output is disjoint (no overlap at all).
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_FALSE(out[i].overlaps(out[j]))
          << out[i].to_string() << " vs " << out[j].to_string();
    }
  }
  // 3. No further sibling merge possible (minimality).
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].length() == out[i + 1].length() && out[i].length() > 0) {
      EXPECT_FALSE(out[i].parent() == out[i + 1].parent() &&
                   out[i] != out[i + 1])
          << "mergeable siblings left: " << out[i].to_string();
    }
  }
  // 4. Idempotent.
  auto again = aggregate_prefixes(out);
  EXPECT_EQ(again, out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace georank::bgp
