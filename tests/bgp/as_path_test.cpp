#include "bgp/as_path.hpp"

#include <gtest/gtest.h>

namespace georank::bgp {
namespace {

TEST(AsPath, EndpointsFollowConvention) {
  AsPath p{701, 3356, 1299, 64512};
  EXPECT_EQ(p.vp_as(), 701u);
  EXPECT_EQ(p.origin(), 64512u);
  EXPECT_EQ(p.size(), 4u);
}

TEST(AsPath, Contains) {
  AsPath p{701, 3356, 1299};
  EXPECT_TRUE(p.contains(3356));
  EXPECT_FALSE(p.contains(174));
}

TEST(AsPath, CollapsesPrepending) {
  AsPath p{701, 701, 3356, 3356, 3356, 1299};
  EXPECT_EQ(p.without_adjacent_duplicates(), (AsPath{701, 3356, 1299}));
}

TEST(AsPath, CollapseIdempotentOnCleanPath) {
  AsPath p{701, 3356, 1299};
  EXPECT_EQ(p.without_adjacent_duplicates(), p);
}

TEST(AsPath, DetectsNonAdjacentDuplicate) {
  EXPECT_TRUE((AsPath{701, 3356, 701}).has_nonadjacent_duplicate());
  EXPECT_FALSE((AsPath{701, 701, 3356}).has_nonadjacent_duplicate());
  EXPECT_FALSE((AsPath{701, 3356, 1299}).has_nonadjacent_duplicate());
  // Prepending in the middle is not a loop.
  EXPECT_FALSE((AsPath{701, 3356, 3356, 1299}).has_nonadjacent_duplicate());
  // ... but "A B B A" is.
  EXPECT_TRUE((AsPath{701, 3356, 3356, 701}).has_nonadjacent_duplicate());
}

TEST(AsPath, RemovesRouteServers) {
  AsPath p{701, 6777, 3356, 1299};
  std::vector<Asn> rs{6777};
  EXPECT_EQ(p.without_ases(rs), (AsPath{701, 3356, 1299}));
}

TEST(AsPath, RemoveAbsentAsIsNoop) {
  AsPath p{701, 3356};
  std::vector<Asn> rs{9999};
  EXPECT_EQ(p.without_ases(rs), p);
}

TEST(AsPath, ToStringAndParse) {
  AsPath p{701, 3356, 1299};
  EXPECT_EQ(p.to_string(), "701 3356 1299");
  auto parsed = AsPath::parse("701 3356 1299");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(AsPath, ParseRejectsJunk) {
  EXPECT_FALSE(AsPath::parse("701 abc 1299").has_value());
  EXPECT_FALSE(AsPath::parse("701 -3 1299").has_value());
}

TEST(AsPath, ParseFlattensAsSet) {
  // bgpdump renders AS_SETs as {a,b}; the members are flattened in order
  // and the path is marked so the sanitizer can reject it downstream.
  auto p = AsPath::parse("701 {64512,64513} 1299");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->has_as_set());
  EXPECT_EQ(p->to_string(), "701 64512 64513 1299");
  // Equality sees the mark: same hops without it are a different path.
  EXPECT_FALSE(*p == (AsPath{701, 64512, 64513, 1299}));
}

TEST(AsPath, ParseSingletonAsSet) {
  auto p = AsPath::parse("{64512}");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->has_as_set());
  EXPECT_EQ(p->size(), 1u);
  EXPECT_EQ((*p)[0], 64512u);
}

TEST(AsPath, ParseRejectsMalformedAsSet) {
  EXPECT_FALSE(AsPath::parse("701 {").has_value());
  EXPECT_FALSE(AsPath::parse("701 {}").has_value());
  EXPECT_FALSE(AsPath::parse("701 {64512").has_value());
  EXPECT_FALSE(AsPath::parse("701 {64512,").has_value());
  EXPECT_FALSE(AsPath::parse("701 {64512,}").has_value());
  EXPECT_FALSE(AsPath::parse("701 {64512 64513}").has_value());
}

TEST(AsPath, AsSetMarkSurvivesCleaning) {
  auto p = AsPath::parse("701 701 {64512,64513} 1299");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->without_adjacent_duplicates().has_as_set());
  EXPECT_TRUE(p->without_ases(std::vector<Asn>{701}).has_as_set());
}

TEST(AsPath, FlattenedRoundTripLosesTheMark) {
  // to_string is lossy by design: the flattened text reparses as a plain
  // path. The mark only travels in-memory (and via MrtParseStats).
  auto p = AsPath::parse("{64512,64513}");
  ASSERT_TRUE(p.has_value());
  auto reparsed = AsPath::parse(p->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_FALSE(reparsed->has_as_set());
}

TEST(AsPath, ParseEmptyIsEmptyPath) {
  auto p = AsPath::parse("");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(AsPath, PushBack) {
  AsPath p;
  p.push_back(1);
  p.push_back(2);
  EXPECT_EQ(p, (AsPath{1, 2}));
}

}  // namespace
}  // namespace georank::bgp
