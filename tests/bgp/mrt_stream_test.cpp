#include "bgp/mrt_stream.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bgp/fault_inject.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::bgp {
namespace {

RibCollection generated_collection(std::uint64_t seed = 7, int days = 3) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(seed)}.generate();
  gen::NoiseSpec noise;
  return gen::RibGenerator{world, noise}.generate(days);
}

void expect_identical(const RibCollection& a, const RibCollection& b) {
  ASSERT_EQ(a.days.size(), b.days.size());
  for (std::size_t d = 0; d < a.days.size(); ++d) {
    EXPECT_EQ(a.days[d].day, b.days[d].day);
    EXPECT_EQ(a.days[d].entries, b.days[d].entries) << "day index " << d;
  }
}

void expect_invariant(const MrtParseStats& s) {
  EXPECT_EQ(s.parsed + s.malformed + s.skipped_comments, s.lines);
  EXPECT_EQ(s.malformed, s.bad_field_count + s.bad_record_type +
                             s.bad_timestamp + s.bad_ip + s.bad_asn +
                             s.bad_prefix + s.bad_path + s.empty_path +
                             s.day_out_of_range);
}

// ---- Tentpole acceptance: parallel chunked load == sequential reader. ----

TEST(MrtStream, BitIdenticalToSequentialReaderAcrossChunkSizes) {
  std::string text = to_mrt_text(generated_collection());
  std::istringstream is{text};
  MrtTextReader reader;
  RibCollection expected = reader.read_collection(is);

  for (std::size_t chunk_bytes : {std::size_t{64}, std::size_t{1024},
                                  std::size_t{1} << 20}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      MrtStreamOptions options;
      options.chunk_bytes = chunk_bytes;
      options.threads = threads;
      MrtStreamLoader loader{options};
      RibCollection got = loader.load_text(text);
      expect_identical(got, expected);
      EXPECT_EQ(loader.stats().parsed, reader.stats().parsed);
      EXPECT_EQ(loader.stats().lines, reader.stats().lines);
      EXPECT_EQ(loader.stats().bytes, text.size());
      expect_invariant(loader.stats());
    }
  }
}

TEST(MrtStream, IstreamAndTextLoadsAgree) {
  std::string text = to_mrt_text(generated_collection(11, 2));
  MrtStreamOptions options;
  options.chunk_bytes = 256;
  MrtStreamLoader text_loader{options};
  RibCollection from_text = text_loader.load_text(text);

  std::istringstream is{text};
  MrtStreamLoader stream_loader{options};
  RibCollection from_stream = stream_loader.load(is);

  expect_identical(from_stream, from_text);
  EXPECT_EQ(stream_loader.stats().lines, text_loader.stats().lines);
  EXPECT_EQ(stream_loader.stats().bytes, text_loader.stats().bytes);
}

TEST(MrtStream, InputWithoutTrailingNewlineParses) {
  std::string text =
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n"
      "TABLE_DUMP2|1617235201|B|1.2.3.4|701|10.1.0.0/16|701 174|IGP";
  MrtStreamOptions options;
  options.chunk_bytes = 16;
  MrtStreamLoader loader{options};
  RibCollection got = loader.load_text(text);
  EXPECT_EQ(got.total_entries(), 2u);
  EXPECT_EQ(loader.stats().lines, 2u);
}

// ---- Fault corpus: tolerant mode drops EXACTLY the corrupted lines. ----

TEST(MrtStream, TolerantModeCountsEveryInjectedFaultByReason) {
  std::string clean = make_clean_mrt_text(3000);
  FaultSpec spec;
  spec.seed = 99;
  spec.fraction = 0.08;
  FaultCorpus corpus = inject_faults(clean, spec);
  ASSERT_GT(corpus.faults.size(), 0u);

  MrtStreamOptions options;
  options.chunk_bytes = 512;  // many chunks, exercising the merge
  MrtStreamLoader loader{options};
  RibCollection got = loader.load_text(corpus.text);
  const MrtParseStats& s = loader.stats();

  expect_invariant(s);
  EXPECT_EQ(s.lines, corpus.lines);
  // Only corrupted lines were dropped: the malformed total and every
  // per-reason counter match the injection log exactly, so every clean
  // line survived into `parsed`.
  EXPECT_EQ(s.malformed, corpus.malformed_lines());
  EXPECT_EQ(s.parsed, corpus.lines - corpus.malformed_lines());
  EXPECT_EQ(got.total_entries(), s.parsed);
  for (ParseReason reason :
       {ParseReason::kBadFieldCount, ParseReason::kBadTimestamp,
        ParseReason::kBadIp, ParseReason::kBadAsn, ParseReason::kBadPrefix,
        ParseReason::kBadPath, ParseReason::kEmptyPath,
        ParseReason::kDayOutOfRange, ParseReason::kAsSet}) {
    EXPECT_EQ(s.reason_count(reason), corpus.expected_reason_count(reason))
        << "reason: " << to_string(reason);
  }
  EXPECT_FALSE(s.samples.empty());
  EXPECT_EQ(s.samples[0].line_number, corpus.first_malformed()->line_number);
}

TEST(MrtStream, AsSetLinesParseAndAreCountedInformationally) {
  std::string clean = make_clean_mrt_text(400);
  FaultSpec spec;
  spec.seed = 5;
  spec.fraction = 0.2;
  spec.kinds = {FaultKind::kAsSet};
  FaultCorpus corpus = inject_faults(clean, spec);
  ASSERT_GT(corpus.faults.size(), 0u);
  ASSERT_EQ(corpus.malformed_lines(), 0u);

  MrtStreamLoader loader;
  RibCollection got = loader.load_text(corpus.text);
  EXPECT_EQ(loader.stats().malformed, 0u);
  EXPECT_EQ(loader.stats().parsed, corpus.lines);
  EXPECT_EQ(loader.stats().as_set, corpus.faults.size());
  EXPECT_EQ(got.total_entries(), corpus.lines);
}

// ---- Strict mode: fail fast, deterministically, with line + reason. ----

TEST(MrtStream, StrictModeThrowsAtFirstFaultInInputOrder) {
  std::string clean = make_clean_mrt_text(2000);
  FaultSpec spec;
  spec.seed = 1234;
  spec.fraction = 0.02;
  FaultCorpus corpus = inject_faults(clean, spec);
  const InjectedFault* first = corpus.first_malformed();
  ASSERT_NE(first, nullptr);

  for (std::size_t chunk_bytes : {std::size_t{128}, std::size_t{1} << 20}) {
    MrtStreamOptions options;
    options.mode = ParseMode::kStrict;
    options.chunk_bytes = chunk_bytes;
    options.threads = 4;
    MrtStreamLoader loader{options};
    try {
      (void)loader.load_text(corpus.text);
      FAIL() << "strict load accepted a corrupted corpus";
    } catch (const MrtParseError& e) {
      EXPECT_EQ(e.line_number(), first->line_number);
      EXPECT_EQ(e.reason(), expected_reason(first->kind));
      EXPECT_NE(std::string(e.what()).find(
                    std::to_string(first->line_number)),
                std::string::npos);
    }
  }
}

TEST(MrtStream, StrictModeAcceptsCleanInput) {
  std::string clean = make_clean_mrt_text(500);
  MrtStreamOptions options;
  options.mode = ParseMode::kStrict;
  options.chunk_bytes = 256;
  MrtStreamLoader loader{options};
  RibCollection got;
  EXPECT_NO_THROW(got = loader.load_text(clean));
  EXPECT_EQ(got.total_entries(), loader.stats().parsed);
  EXPECT_EQ(loader.stats().malformed, 0u);
}

// ---- Satellite regression: early timestamps must not wrap the day. ----

TEST(MrtStream, EarlyTimestampIsRejectedNotWrapped) {
  // (ts - base) in uint64 for ts < base used to wrap to a huge value and
  // either crash day grouping or file the entry under a bogus day.
  constexpr std::uint64_t kBase = 1617235200;
  std::string text =
      "TABLE_DUMP2|" + std::to_string(kBase - 1) +
      "|B|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n"
      "TABLE_DUMP2|" + std::to_string(kBase) +
      "|B|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n";
  MrtStreamLoader loader;
  RibCollection got = loader.load_text(text);
  ASSERT_EQ(got.days.size(), 1u);
  EXPECT_EQ(got.days[0].day, 0);
  EXPECT_EQ(loader.stats().day_out_of_range, 1u);
  EXPECT_EQ(loader.stats().parsed, 1u);
}

TEST(MrtStream, DayHorizonBoundaries) {
  constexpr std::uint64_t kBase = 1617235200;
  MrtStreamOptions options;
  options.max_day = 5;
  auto line_at = [&](std::uint64_t ts) {
    return "TABLE_DUMP2|" + std::to_string(ts) +
           "|B|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n";
  };
  std::string text = line_at(kBase + 5 * 86400 - 1)  // last in-range second
                     + line_at(kBase + 5 * 86400);   // first out-of-range
  MrtStreamLoader loader{options};
  RibCollection got = loader.load_text(text);
  ASSERT_EQ(got.days.size(), 1u);
  EXPECT_EQ(got.days[0].day, 4);
  EXPECT_EQ(loader.stats().day_out_of_range, 1u);
}

// ---- Satellite: writer -> loader round trip, non-default base_time. ----

TEST(MrtStream, WriterLoaderRoundTripWithCustomBaseTime) {
  constexpr std::uint64_t kBase = 946684800;  // far from the default
  RibCollection original = generated_collection(21, 4);

  std::ostringstream os;
  MrtTextWriter writer{os, kBase};
  writer.write_collection(original);

  MrtStreamOptions options;
  options.base_time = kBase;
  options.chunk_bytes = 777;  // deliberately line-unaligned
  MrtStreamLoader loader{options};
  RibCollection got = loader.load_text(os.str());

  expect_identical(got, original);
  EXPECT_EQ(loader.stats().malformed, 0u);
  EXPECT_EQ(loader.stats().parsed, original.total_entries());
  // With the default base_time every line would fall before day 0 — the
  // wraparound regression this PR fixes used to turn these into garbage
  // days instead of clean rejections.
  MrtStreamLoader wrong_base;
  RibCollection rejected = wrong_base.load_text(os.str());
  EXPECT_EQ(rejected.total_entries(), 0u);
  EXPECT_EQ(wrong_base.stats().day_out_of_range, original.total_entries());
}

// ---- Fault corpus invariant under the full loader pipeline. ----

TEST(MrtStream, ThroughputAccountingIsFilled) {
  std::string clean = make_clean_mrt_text(1000);
  MrtStreamLoader loader;
  (void)loader.load_text(clean);
  EXPECT_EQ(loader.stats().bytes, clean.size());
  EXPECT_GT(loader.stats().elapsed_seconds, 0.0);
  EXPECT_GT(loader.stats().lines_per_second(), 0.0);
  EXPECT_GT(loader.stats().mbytes_per_second(), 0.0);
}

}  // namespace
}  // namespace georank::bgp
