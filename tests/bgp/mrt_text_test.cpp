#include "bgp/mrt_text.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace georank::bgp {
namespace {

RouteEntry sample_entry() {
  return RouteEntry{VpId{0xC0A80101, 701},
                    *Prefix::parse("10.0.0.0/16"),
                    AsPath{701, 3356, 1299}};
}

TEST(MrtText, WriterFormat) {
  std::ostringstream os;
  MrtTextWriter writer{os, 1000};
  writer.write_entry(sample_entry(), 2);
  EXPECT_EQ(os.str(),
            "TABLE_DUMP2|173800|B|192.168.1.1|701|10.0.0.0/16|701 3356 1299|IGP\n");
}

TEST(MrtText, LineRoundTrip) {
  std::ostringstream os;
  MrtTextWriter writer{os};
  writer.write_entry(sample_entry(), 3);

  MrtTextReader reader;
  RouteEntry entry;
  int day = -1;
  ASSERT_TRUE(reader.parse_line(os.str(), entry, day));
  EXPECT_EQ(entry, sample_entry());
  EXPECT_EQ(day, 3);
}

TEST(MrtText, CollectionRoundTrip) {
  RibCollection in;
  in.days.resize(2);
  in.days[0].day = 0;
  in.days[1].day = 1;
  for (int i = 0; i < 5; ++i) {
    RouteEntry e = sample_entry();
    e.prefix = Prefix{static_cast<std::uint32_t>(0x0A000000 + i * 0x10000), 16};
    in.days[0].entries.push_back(e);
    in.days[1].entries.push_back(e);
  }
  std::string text = to_mrt_text(in);
  MrtParseStats stats;
  RibCollection out = from_mrt_text(text, &stats);
  ASSERT_EQ(out.days.size(), 2u);
  EXPECT_EQ(out.days[0].entries, in.days[0].entries);
  EXPECT_EQ(out.days[1].entries, in.days[1].entries);
  EXPECT_EQ(stats.parsed, 10u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(MrtText, SkipsCommentsAndBlanks) {
  std::string text =
      "# a comment\n"
      "\n"
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n";
  MrtParseStats stats;
  RibCollection out = from_mrt_text(text, &stats);
  EXPECT_EQ(out.total_entries(), 1u);
  EXPECT_EQ(stats.skipped_comments, 2u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(MrtText, CountsMalformedLines) {
  std::string text =
      "TABLE_DUMP2|x|B|1.2.3.4|701|10.0.0.0/16|701|IGP\n"   // bad timestamp
      "TABLE_DUMP2|1|B|999.2.3.4|701|10.0.0.0/16|701|IGP\n"  // bad ip
      "TABLE_DUMP2|1|B|1.2.3.4|zzz|10.0.0.0/16|701|IGP\n"    // bad asn
      "TABLE_DUMP2|1|B|1.2.3.4|701|10.0.0.0/99|701|IGP\n"    // bad prefix
      "TABLE_DUMP2|1|B|1.2.3.4|701|10.0.0.0/16|70x|IGP\n"    // bad path
      "TABLE_DUMP2|1|B|1.2.3.4|701|10.0.0.0/16||IGP\n"       // empty path
      "TABLE_DUMP2|1|B|1.2.3.4|0|10.0.0.0/16|701|IGP\n"      // AS0 VP
      "BGP4MP|1|A|1.2.3.4|701|10.0.0.0/16|701|IGP\n"         // wrong type
      "TABLE_DUMP2|1|B|1.2.3.4|701|10.0.0.0/16|701\n";       // missing field
  MrtParseStats stats;
  RibCollection out = from_mrt_text(text, &stats);
  EXPECT_EQ(out.total_entries(), 0u);
  EXPECT_EQ(stats.malformed, 9u);
  // Each drop is attributed to a concrete reason.
  EXPECT_EQ(stats.bad_timestamp, 1u);
  EXPECT_EQ(stats.bad_ip, 1u);
  EXPECT_EQ(stats.bad_asn, 2u);  // zzz + AS0
  EXPECT_EQ(stats.bad_prefix, 1u);
  EXPECT_EQ(stats.bad_path, 1u);
  EXPECT_EQ(stats.empty_path, 1u);
  EXPECT_EQ(stats.bad_record_type, 1u);
  EXPECT_EQ(stats.bad_field_count, 1u);
  // ... and the first offenders are retained for auditing.
  ASSERT_EQ(stats.samples.size(), MrtParseStats::kMaxSamples);
  EXPECT_EQ(stats.samples[0].line_number, 1u);
  EXPECT_EQ(stats.samples[0].reason, ParseReason::kBadTimestamp);
}

TEST(MrtText, StrictModeThrowsWithLineAndReason) {
  MrtReaderOptions options;
  options.mode = ParseMode::kStrict;
  MrtTextReader reader{options};
  RouteEntry entry;
  int day = 0;
  EXPECT_TRUE(reader.parse_line(
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701|IGP", entry, day));
  try {
    (void)reader.parse_line(
        "TABLE_DUMP2|x|B|1.2.3.4|701|10.0.0.0/16|701|IGP", entry, day);
    FAIL() << "strict parse accepted a bad timestamp";
  } catch (const MrtParseError& e) {
    EXPECT_EQ(e.line_number(), 2u);
    EXPECT_EQ(e.reason(), ParseReason::kBadTimestamp);
  }
}

TEST(MrtText, RejectsTimestampBeforeBaseAsDayOutOfRange) {
  // Regression: (ts - base_time) is computed in uint64; an earlier
  // timestamp used to wrap to a huge bogus day instead of being dropped.
  MrtParseStats stats;
  RibCollection out = from_mrt_text(
      "TABLE_DUMP2|1617235199|B|1.2.3.4|701|10.0.0.0/16|701|IGP\n", &stats);
  EXPECT_EQ(out.total_entries(), 0u);
  EXPECT_EQ(stats.day_out_of_range, 1u);
}

TEST(MrtText, FlattensAsSetAndCountsIt) {
  MrtParseStats stats;
  RibCollection out = from_mrt_text(
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701 {64512,64513}|IGP\n",
      &stats);
  ASSERT_EQ(out.total_entries(), 1u);
  EXPECT_EQ(stats.as_set, 1u);
  EXPECT_EQ(stats.parsed, 1u);  // informational: the line still parses
  EXPECT_EQ(stats.malformed, 0u);
  const RouteEntry& e = out.days[0].entries[0];
  EXPECT_TRUE(e.path.has_as_set());
  EXPECT_EQ(e.path.to_string(), "701 64512 64513");
}

TEST(MrtText, GroupsByDay) {
  std::string text =
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701|IGP\n"
      "TABLE_DUMP2|1617321600|B|1.2.3.4|701|10.0.0.0/16|701|IGP\n"
      "TABLE_DUMP2|1617235200|B|1.2.3.5|702|10.1.0.0/16|702|IGP\n";
  RibCollection out = from_mrt_text(text);
  ASSERT_EQ(out.days.size(), 2u);
  EXPECT_EQ(out.days[0].day, 0);
  EXPECT_EQ(out.days[0].entries.size(), 2u);
  EXPECT_EQ(out.days[1].day, 1);
  EXPECT_EQ(out.days[1].entries.size(), 1u);
}

}  // namespace
}  // namespace georank::bgp
