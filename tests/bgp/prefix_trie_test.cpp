#include "bgp/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

namespace georank::bgp {
namespace {

Prefix pfx(const char* text) { return *Prefix::parse(text); }

TEST(PrefixTrie, InsertAndContains) {
  PrefixTrie trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8")));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8")));  // duplicate
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/16")));
  EXPECT_TRUE(trie.contains(pfx("10.0.0.0/8")));
  EXPECT_TRUE(trie.contains(pfx("10.0.0.0/16")));
  EXPECT_FALSE(trie.contains(pfx("10.0.0.0/12")));
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, MostSpecificMatch) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/8"));
  trie.insert(pfx("10.1.0.0/16"));
  trie.insert(pfx("10.1.2.0/24"));
  EXPECT_EQ(trie.most_specific_match(0x0A010203), pfx("10.1.2.0/24"));
  EXPECT_EQ(trie.most_specific_match(0x0A010300), pfx("10.1.0.0/16"));
  EXPECT_EQ(trie.most_specific_match(0x0A020000), pfx("10.0.0.0/8"));
  EXPECT_FALSE(trie.most_specific_match(0x0B000000).has_value());
}

TEST(PrefixTrie, CoveredByMoreSpecifics) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/16"));
  trie.insert(pfx("10.0.0.0/17"));
  EXPECT_EQ(trie.covered_by_more_specifics(pfx("10.0.0.0/16")), 32768u);
  EXPECT_FALSE(trie.fully_covered_by_more_specifics(pfx("10.0.0.0/16")));
  trie.insert(pfx("10.0.128.0/17"));
  EXPECT_TRUE(trie.fully_covered_by_more_specifics(pfx("10.0.0.0/16")));
  EXPECT_EQ(trie.effective_size(pfx("10.0.0.0/16")), 0u);
}

TEST(PrefixTrie, EffectiveSizeDiscountsOverlap) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/16"));
  trie.insert(pfx("10.0.1.0/24"));
  EXPECT_EQ(trie.effective_size(pfx("10.0.0.0/16")), 65536u - 256u);
  EXPECT_EQ(trie.effective_size(pfx("10.0.1.0/24")), 256u);
}

TEST(PrefixTrie, NestedSpecificsCountOnce) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/16"));
  trie.insert(pfx("10.0.0.0/24"));
  trie.insert(pfx("10.0.0.0/25"));  // inside the /24: must not double count
  EXPECT_EQ(trie.covered_by_more_specifics(pfx("10.0.0.0/16")), 256u);
}

TEST(PrefixTrie, UncoveredBlocks) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/16"));
  trie.insert(pfx("10.0.0.0/18"));
  auto blocks = trie.uncovered_blocks(pfx("10.0.0.0/16"));
  // The /16 minus its first /18 = one /17 + one /18.
  std::uint64_t total = 0;
  for (const Prefix& b : blocks) {
    total += b.size();
    EXPECT_TRUE(pfx("10.0.0.0/16").contains(b));
    EXPECT_FALSE(pfx("10.0.0.0/18").overlaps(b));
  }
  EXPECT_EQ(total, 65536u - 16384u);
}

TEST(PrefixTrie, UncoveredBlocksNoSpecifics) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/16"));
  auto blocks = trie.uncovered_blocks(pfx("10.0.0.0/16"));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], pfx("10.0.0.0/16"));
}

TEST(PrefixTrie, UncoveredBlocksSlash32) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.1/32"));
  auto blocks = trie.uncovered_blocks(pfx("10.0.0.1/32"));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], pfx("10.0.0.1/32"));
}

TEST(PrefixTrie, AllListsInsertionsInAddressOrder) {
  PrefixTrie trie;
  trie.insert(pfx("192.168.0.0/16"));
  trie.insert(pfx("10.0.0.0/8"));
  trie.insert(pfx("10.0.0.0/16"));
  auto all = trie.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], pfx("10.0.0.0/8"));
  EXPECT_EQ(all[1], pfx("10.0.0.0/16"));
  EXPECT_EQ(all[2], pfx("192.168.0.0/16"));
}

TEST(UnionAddressCount, MergesOverlaps) {
  EXPECT_EQ(union_address_count({}), 0u);
  EXPECT_EQ(union_address_count({pfx("10.0.0.0/24")}), 256u);
  EXPECT_EQ(union_address_count({pfx("10.0.0.0/24"), pfx("10.0.0.0/25")}), 256u);
  EXPECT_EQ(union_address_count({pfx("10.0.0.0/24"), pfx("10.0.1.0/24")}), 512u);
  // Adjacent but distinct blocks merge without double counting.
  EXPECT_EQ(union_address_count({pfx("10.0.0.0/25"), pfx("10.0.0.128/25")}), 256u);
}

// ---- Property tests: trie vs brute-force bitmap over a small universe ----

class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, MatchesBruteForceOnRandomSets) {
  util::Pcg32 rng{GetParam()};
  // Universe: 10.0.0.0/20 (4096 addresses) so brute force is cheap.
  const std::uint32_t base = 0x0A000000;
  const std::uint32_t universe = 4096;

  PrefixTrie trie;
  std::vector<Prefix> inserted;
  for (int i = 0; i < 24; ++i) {
    std::uint8_t len = static_cast<std::uint8_t>(20 + rng.below(13));  // /20../32
    std::uint32_t block = std::uint32_t{1} << (32 - len);
    std::uint32_t offset = rng.below(universe / block) * block;
    Prefix p{base + offset, len};
    trie.insert(p);
    inserted.push_back(p);
  }

  // Brute-force most-specific-match per address.
  for (int probe = 0; probe < 200; ++probe) {
    std::uint32_t ip = base + rng.below(universe);
    std::optional<Prefix> expect;
    for (const Prefix& p : inserted) {
      if (p.contains(ip) && (!expect || p.length() > expect->length())) expect = p;
    }
    auto got = trie.most_specific_match(ip);
    if (expect.has_value()) {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->length(), expect->length());
      EXPECT_TRUE(got->contains(ip));
    } else {
      EXPECT_FALSE(got.has_value());
    }
  }

  // Brute-force covered-by-more-specifics per inserted prefix.
  for (const Prefix& p : inserted) {
    std::uint64_t expect = 0;
    for (std::uint32_t ip = p.first(); ip <= p.last(); ++ip) {
      for (const Prefix& q : inserted) {
        if (q.length() > p.length() && q.contains(ip)) {
          ++expect;
          break;
        }
      }
      if (ip == p.last()) break;  // avoid overflow at 2^32-1 (not hit here)
    }
    EXPECT_EQ(trie.covered_by_more_specifics(p), expect) << p.to_string();
    // Uncovered blocks partition the uncovered space.
    std::uint64_t uncovered_total = 0;
    for (const Prefix& b : trie.uncovered_blocks(p)) uncovered_total += b.size();
    EXPECT_EQ(uncovered_total, p.size() - expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace georank::bgp
