#include "bgp/prefix.hpp"

#include <gtest/gtest.h>

namespace georank::bgp {
namespace {

TEST(Prefix, DefaultIsDefaultRoute) {
  Prefix p;
  EXPECT_EQ(p.address(), 0u);
  EXPECT_EQ(p.length(), 0);
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p{0x0a0a0aFF, 24};
  EXPECT_EQ(p.address(), 0x0a0a0a00u);
  EXPECT_EQ(p.to_string(), "10.10.10.0/24");
}

TEST(Prefix, SizeFirstLast) {
  Prefix p{0xC0A80000, 16};  // 192.168.0.0/16
  EXPECT_EQ(p.size(), 65536u);
  EXPECT_EQ(p.first(), 0xC0A80000u);
  EXPECT_EQ(p.last(), 0xC0A8FFFFu);
}

TEST(Prefix, SlashThirtyTwo) {
  Prefix p{0x01020304, 32};
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.first(), p.last());
}

TEST(Prefix, ContainsPrefix) {
  Prefix slash16{0x0A000000, 16};
  Prefix slash24{0x0A000100, 24};
  EXPECT_TRUE(slash16.contains(slash24));
  EXPECT_FALSE(slash24.contains(slash16));
  EXPECT_TRUE(slash16.contains(slash16));
  Prefix other{0x0B000000, 16};
  EXPECT_FALSE(slash16.contains(other));
}

TEST(Prefix, ContainsAddress) {
  Prefix p{0x0A000000, 8};
  EXPECT_TRUE(p.contains(0x0A123456u));
  EXPECT_FALSE(p.contains(0x0B000000u));
}

TEST(Prefix, Overlaps) {
  Prefix a{0x0A000000, 16};
  Prefix b{0x0A000000, 20};
  Prefix c{0x0A010000, 16};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Prefix, Children) {
  Prefix p{0x0A000000, 16};
  EXPECT_EQ(p.left_child().to_string(), "10.0.0.0/17");
  EXPECT_EQ(p.right_child().to_string(), "10.0.128.0/17");
  EXPECT_TRUE(p.contains(p.left_child()));
  EXPECT_TRUE(p.contains(p.right_child()));
  EXPECT_EQ(p.left_child().parent(), p);
  EXPECT_EQ(p.right_child().parent(), p);
}

TEST(Prefix, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24",
                           "255.255.255.255/32"}) {
    auto p = Prefix::parse(text);
    ASSERT_TRUE(p.has_value()) << text;
    EXPECT_EQ(p->to_string(), text);
  }
}

TEST(Prefix, ParseCanonicalizesNoisyHostBits) {
  auto p = Prefix::parse("10.1.2.3/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseRejectsMalformed) {
  for (const char* text : {"", "10.0.0.0", "10.0.0.0/33", "10.0.0/8",
                           "300.0.0.0/8", "10.0.0.0/x", "10.0.0.0/8x",
                           "a.b.c.d/8", "10.0.0.0/"}) {
    EXPECT_FALSE(Prefix::parse(text).has_value()) << text;
  }
}

TEST(Prefix, Ordering) {
  Prefix a{0x0A000000, 16};
  Prefix b{0x0A000000, 20};
  Prefix c{0x0B000000, 16};
  EXPECT_LT(a, b);  // same address, shorter first
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Prefix{0x0A00FFFF, 16}));  // canonicalized equal
}

TEST(FormatIpv4, Basics) {
  EXPECT_EQ(format_ipv4(0), "0.0.0.0");
  EXPECT_EQ(format_ipv4(0xFFFFFFFFu), "255.255.255.255");
  EXPECT_EQ(format_ipv4(0xC0A80101u), "192.168.1.1");
}

TEST(ParseIpv4, Basics) {
  EXPECT_EQ(parse_ipv4("192.168.1.1"), 0xC0A80101u);
  EXPECT_FALSE(parse_ipv4("192.168.1").has_value());
  EXPECT_FALSE(parse_ipv4("192.168.1.256").has_value());
  EXPECT_FALSE(parse_ipv4("192.168.1.1.1").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
}

TEST(PrefixHash, DistinguishesLengths) {
  PrefixHash h;
  EXPECT_NE(h(Prefix{0x0A000000, 16}), h(Prefix{0x0A000000, 17}));
}

}  // namespace
}  // namespace georank::bgp
