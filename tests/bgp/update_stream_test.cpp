#include "bgp/update_stream.hpp"

#include <gtest/gtest.h>

#include "bgp/fault_inject.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::bgp {
namespace {

Prefix pfx(const char* text) { return *Prefix::parse(text); }

UpdateMessage announce(std::uint64_t ts, std::uint32_t vp_ip, const char* prefix,
                       AsPath path) {
  return {UpdateMessage::Kind::kAnnounce, ts, VpId{vp_ip, path[0]}, pfx(prefix),
          std::move(path)};
}

UpdateMessage withdraw(std::uint64_t ts, std::uint32_t vp_ip, Asn vp_asn,
                       const char* prefix) {
  return {UpdateMessage::Kind::kWithdraw, ts, VpId{vp_ip, vp_asn}, pfx(prefix),
          AsPath{}};
}

TEST(UpdateText, AnnounceRoundTrip) {
  UpdateMessage u = announce(1000, 0x01020304, "10.0.0.0/16", AsPath{701, 1299});
  std::string text = to_update_text({u});
  EXPECT_EQ(text, "BGP4MP|1000|A|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n");
  auto parsed = from_update_text(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], u);
}

TEST(UpdateText, WithdrawRoundTrip) {
  UpdateMessage u = withdraw(2000, 0x01020304, 701, "10.0.0.0/16");
  std::string text = to_update_text({u});
  EXPECT_EQ(text, "BGP4MP|2000|W|1.2.3.4|701|10.0.0.0/16\n");
  auto parsed = from_update_text(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], u);
}

TEST(UpdateText, MalformedLinesCounted) {
  std::string text =
      "BGP4MP|x|A|1.2.3.4|701|10.0.0.0/16|701|IGP\n"  // bad ts
      "BGP4MP|1|Z|1.2.3.4|701|10.0.0.0/16\n"          // bad kind
      "BGP4MP|1|A|1.2.3.4|701|10.0.0.0/16\n"          // announce w/o path
      "BGP4MP|1|W|1.2.3.4|701|10.0.0.0/16|701|IGP\n"  // withdraw w/ path
      "TABLE_DUMP2|1|B|1.2.3.4|701|10.0.0.0/16|701|IGP\n"
      "# comment\n"
      "BGP4MP|1|W|1.2.3.4|701|10.0.0.0/16\n";
  MrtParseStats stats;
  auto parsed = from_update_text(text, &stats);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(stats.malformed, 5u);
  EXPECT_EQ(stats.skipped_comments, 1u);
  // Per-reason attribution: a withdraw carrying a path and an announce
  // missing one are both field-count errors, not generic "malformed".
  EXPECT_EQ(stats.bad_timestamp, 1u);
  EXPECT_EQ(stats.bad_record_type, 2u);  // kind Z + TABLE_DUMP2
  EXPECT_EQ(stats.bad_field_count, 2u);
  // The surviving line was the 6-field withdraw.
  EXPECT_EQ(parsed[0].kind, UpdateMessage::Kind::kWithdraw);
}

TEST(UpdateText, StrictModeThrowsAtFirstMalformedLine) {
  UpdateTextReader reader{ParseMode::kStrict};
  UpdateMessage u;
  EXPECT_TRUE(reader.parse_line("BGP4MP|1|W|1.2.3.4|701|10.0.0.0/16", u));
  try {
    (void)reader.parse_line("BGP4MP|1|W|1.2.3.4|701|10.0.0.0/16|701|IGP", u);
    FAIL() << "strict parse accepted a withdraw carrying a path";
  } catch (const MrtParseError& e) {
    EXPECT_EQ(e.line_number(), 2u);
    EXPECT_EQ(e.reason(), ParseReason::kBadFieldCount);
  }
}

TEST(UpdateText, AnnounceWithAsSetParsesAndIsCounted) {
  MrtParseStats stats;
  auto parsed = from_update_text(
      "BGP4MP|1|A|1.2.3.4|701|10.0.0.0/16|701 {64512,64513}|IGP\n", &stats);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].path.has_as_set());
  EXPECT_EQ(stats.as_set, 1u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(RibState, AnnounceWithdrawLifecycle) {
  RibState state;
  state.apply(announce(1, 1, "10.0.0.0/16", AsPath{701, 1299}));
  EXPECT_EQ(state.route_count(), 1u);
  // Re-announce replaces.
  state.apply(announce(2, 1, "10.0.0.0/16", AsPath{701, 3356, 1299}));
  EXPECT_EQ(state.route_count(), 1u);
  RibSnapshot snap = state.snapshot(0);
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].path, (AsPath{701, 3356, 1299}));
  // Withdraw clears.
  state.apply(withdraw(3, 1, 701, "10.0.0.0/16"));
  EXPECT_EQ(state.route_count(), 0u);
  // Spurious withdrawal is tolerated and counted.
  state.apply(withdraw(4, 1, 701, "10.0.0.0/16"));
  EXPECT_EQ(state.spurious_withdrawals(), 1u);
}

TEST(RibState, RoutesKeyedPerVp) {
  RibState state;
  state.apply(announce(1, 1, "10.0.0.0/16", AsPath{701, 1299}));
  state.apply(announce(1, 2, "10.0.0.0/16", AsPath{702, 1299}));
  EXPECT_EQ(state.route_count(), 2u);
  state.apply(withdraw(2, 1, 701, "10.0.0.0/16"));
  EXPECT_EQ(state.route_count(), 1u);
}

TEST(DiffSnapshots, EmitsMinimalUpdates) {
  RibSnapshot from;
  from.entries.push_back({VpId{1, 701}, pfx("10.0.0.0/16"), AsPath{701, 1299}});
  from.entries.push_back({VpId{1, 701}, pfx("10.1.0.0/16"), AsPath{701, 174}});
  from.entries.push_back({VpId{1, 701}, pfx("10.2.0.0/16"), AsPath{701, 3356}});

  RibSnapshot to;
  to.entries.push_back({VpId{1, 701}, pfx("10.0.0.0/16"), AsPath{701, 1299}});  // same
  to.entries.push_back({VpId{1, 701}, pfx("10.1.0.0/16"), AsPath{701, 6939}});  // changed
  to.entries.push_back({VpId{1, 701}, pfx("10.3.0.0/16"), AsPath{701, 2914}});  // new

  auto updates = diff_snapshots(from, to, 99);
  // 1 changed announce + 1 new announce + 1 withdraw; the unchanged route
  // emits nothing.
  ASSERT_EQ(updates.size(), 3u);
  std::size_t announces = 0, withdraws = 0;
  for (const auto& u : updates) {
    EXPECT_EQ(u.timestamp, 99u);
    if (u.kind == UpdateMessage::Kind::kAnnounce) ++announces;
    else ++withdraws;
  }
  EXPECT_EQ(announces, 2u);
  EXPECT_EQ(withdraws, 1u);
}

TEST(DiffSnapshots, ReplayReproducesTarget) {
  RibSnapshot from;
  from.entries.push_back({VpId{1, 701}, pfx("10.0.0.0/16"), AsPath{701, 1299}});
  RibSnapshot to;
  to.entries.push_back({VpId{1, 701}, pfx("10.1.0.0/16"), AsPath{701, 174}});
  to.entries.push_back({VpId{2, 702}, pfx("10.0.0.0/16"), AsPath{702, 1299}});

  RibState state;
  for (const RouteEntry& e : from.entries) {
    state.apply({UpdateMessage::Kind::kAnnounce, 0, e.vp, e.prefix, e.path});
  }
  state.apply_all(diff_snapshots(from, to, 1));
  RibSnapshot replayed = state.snapshot(to.day);
  EXPECT_EQ(replayed.entries, to.entries);
}

TEST(ReplayToCollection, InverseOfCollectionToUpdates) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(12)}.generate();
  gen::NoiseSpec noise;
  RibCollection original = gen::RibGenerator{world, noise, 5}.generate(3);

  RibCollection replayed =
      replay_to_collection(collection_to_updates(original));
  ASSERT_EQ(replayed.days.size(), original.days.size());
  for (std::size_t d = 0; d < original.days.size(); ++d) {
    RibSnapshot sorted = original.days[d];
    std::sort(sorted.entries.begin(), sorted.entries.end(),
              [](const RouteEntry& a, const RouteEntry& b) {
                if (a.vp != b.vp) return a.vp < b.vp;
                return a.prefix < b.prefix;
              });
    EXPECT_EQ(replayed.days[d].day, sorted.day);
    EXPECT_EQ(replayed.days[d].entries, sorted.entries) << "day " << d;
  }
}

TEST(ReplayToCollection, EmptyArchive) {
  EXPECT_TRUE(replay_to_collection({}).days.empty());
}

// Property: converting a generated multi-day collection to an update
// archive and replaying it reproduces every day exactly.
TEST(UpdateStream, CollectionReplayRoundTrip) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(9)}.generate();
  gen::NoiseSpec noise;  // default noise incl. flapping
  RibCollection collection = gen::RibGenerator{world, noise, 3}.generate(4);

  std::vector<UpdateMessage> archive = collection_to_updates(collection);
  // Serialize + parse the whole archive too: full-fidelity text cycle.
  MrtParseStats stats;
  std::vector<UpdateMessage> parsed = from_update_text(to_update_text(archive), &stats);
  ASSERT_EQ(stats.malformed, 0u);
  ASSERT_EQ(parsed.size(), archive.size());

  RibState state;
  std::size_t cursor = 0;
  for (const RibSnapshot& expected : collection.days) {
    std::uint64_t day_ts =
        1617235200 + static_cast<std::uint64_t>(expected.day) * 86400;
    while (cursor < parsed.size() && parsed[cursor].timestamp <= day_ts) {
      state.apply(parsed[cursor]);
      ++cursor;
    }
    RibSnapshot replayed = state.snapshot(expected.day);
    // Compare as sorted sets (generator order differs from state order).
    RibSnapshot sorted_expected = expected;
    std::sort(sorted_expected.entries.begin(), sorted_expected.entries.end(),
              [](const RouteEntry& a, const RouteEntry& b) {
                if (a.vp != b.vp) return a.vp < b.vp;
                return a.prefix < b.prefix;
              });
    ASSERT_EQ(replayed.entries.size(), sorted_expected.entries.size())
        << "day " << expected.day;
    EXPECT_EQ(replayed.entries, sorted_expected.entries) << "day " << expected.day;
  }
  EXPECT_EQ(state.spurious_withdrawals(), 0u);
}

// ---- Quiet days: every day in the span gets a snapshot. ----

constexpr std::uint64_t kBase = 1617235200;

TEST(ReplayToCollection, QuietDayStillEmitsSnapshot) {
  std::vector<UpdateMessage> archive = {
      announce(kBase + 100, 1, "10.0.0.0/16", AsPath{701, 1299}),
      // Day 1 is silent; the next update lands on day 2.
      announce(kBase + 2 * 86400 + 5, 1, "10.1.0.0/16", AsPath{701, 174}),
  };
  ReplayStats stats;
  RibCollection got = replay_to_collection(archive, ReplayOptions{}, &stats);
  ASSERT_EQ(got.days.size(), 3u);
  EXPECT_EQ(got.days[0].day, 0);
  EXPECT_EQ(got.days[1].day, 1);
  EXPECT_EQ(got.days[2].day, 2);
  // The quiet day carries day 0's final state forward unchanged.
  EXPECT_EQ(got.days[1].entries, got.days[0].entries);
  EXPECT_EQ(got.days[2].entries.size(), 2u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.days_emitted, 3u);
  EXPECT_EQ(stats.quiet_days, 1u);
}

// Property: splicing a no-change day into a generated collection round
// trips through the update archive — the quiet day is re-emitted, not
// dropped, and every other day is reproduced exactly.
TEST(ReplayToCollection, QuietDayRoundTripProperty) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(7)}.generate();
  gen::NoiseSpec noise;
  RibCollection original = gen::RibGenerator{world, noise, 11}.generate(2);
  ASSERT_EQ(original.days.size(), 2u);

  RibCollection with_quiet;
  with_quiet.days.push_back(original.days[0]);
  RibSnapshot quiet = original.days[0];
  quiet.day = 1;  // identical state: diffs to zero updates
  with_quiet.days.push_back(quiet);
  RibSnapshot last = original.days[1];
  last.day = 2;
  with_quiet.days.push_back(last);

  ReplayStats stats;
  RibCollection replayed = replay_to_collection(
      collection_to_updates(with_quiet), ReplayOptions{}, &stats);
  ASSERT_EQ(replayed.days.size(), 3u);
  EXPECT_EQ(stats.quiet_days, 1u);
  for (std::size_t d = 0; d < 3; ++d) {
    RibSnapshot sorted = with_quiet.days[d];
    std::sort(sorted.entries.begin(), sorted.entries.end(),
              [](const RouteEntry& a, const RouteEntry& b) {
                if (a.vp != b.vp) return a.vp < b.vp;
                return a.prefix < b.prefix;
              });
    EXPECT_EQ(replayed.days[d].day, sorted.day);
    EXPECT_EQ(replayed.days[d].entries, sorted.entries) << "day " << d;
  }
}

// ---- Ordering contract: typed errors in strict mode, counted skips in
// tolerant mode (pre-base_time clamping and silent reordering are gone).

TEST(ReplayToCollection, PreBaseTimeTolerantSkipsAndCounts) {
  std::vector<UpdateMessage> archive = {
      announce(kBase - 1, 1, "10.0.0.0/16", AsPath{701, 1299}),
      announce(kBase + 10, 1, "10.1.0.0/16", AsPath{701, 174}),
  };
  ReplayStats stats;
  RibCollection got = replay_to_collection(archive, ReplayOptions{}, &stats);
  ASSERT_EQ(got.days.size(), 1u);
  // The clock-skewed update is NOT folded into day 0 any more.
  EXPECT_EQ(got.days[0].entries.size(), 1u);
  EXPECT_EQ(got.days[0].entries[0].prefix, pfx("10.1.0.0/16"));
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.skipped_day_out_of_range, 1u);
  EXPECT_EQ(stats.skipped_out_of_order, 0u);
}

TEST(ReplayToCollection, PreBaseTimeStrictThrowsTypedError) {
  std::vector<UpdateMessage> archive = {
      announce(kBase + 10, 1, "10.0.0.0/16", AsPath{701, 1299}),
      announce(kBase - 7, 1, "10.1.0.0/16", AsPath{701, 174}),
  };
  ReplayOptions options;
  options.mode = ParseMode::kStrict;
  try {
    (void)replay_to_collection(archive, options);
    FAIL() << "strict replay accepted a pre-base_time timestamp";
  } catch (const UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), UpdateReplayError::Kind::kDayOutOfRange);
    EXPECT_EQ(e.index(), 1u);
    EXPECT_EQ(e.timestamp(), kBase - 7);
    EXPECT_NE(std::string(e.what()).find("index 1"), std::string::npos);
  }
}

TEST(ReplayToCollection, OutOfOrderTolerantSkipsAndCounts) {
  std::vector<UpdateMessage> archive = {
      announce(kBase + 100, 1, "10.0.0.0/16", AsPath{701, 1299}),
      // Rewound within the same day: silently accepted before the fix.
      withdraw(kBase + 50, 1, 701, "10.0.0.0/16"),
      announce(kBase + 100, 1, "10.1.0.0/16", AsPath{701, 174}),  // equal ts ok
  };
  ReplayStats stats;
  RibCollection got = replay_to_collection(archive, ReplayOptions{}, &stats);
  ASSERT_EQ(got.days.size(), 1u);
  // The skipped withdraw never reached the RIB: both routes survive.
  EXPECT_EQ(got.days[0].entries.size(), 2u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.skipped_out_of_order, 1u);
  EXPECT_EQ(stats.spurious_withdrawals, 0u);
}

TEST(ReplayToCollection, OutOfOrderStrictThrowsTypedError) {
  std::vector<UpdateMessage> archive = {
      announce(kBase + 100, 1, "10.0.0.0/16", AsPath{701, 1299}),
      announce(kBase + 99, 1, "10.1.0.0/16", AsPath{701, 174}),
  };
  ReplayOptions options;
  options.mode = ParseMode::kStrict;
  try {
    (void)replay_to_collection(archive, options);
    FAIL() << "strict replay accepted an out-of-order timestamp";
  } catch (const UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), UpdateReplayError::Kind::kOutOfOrder);
    EXPECT_EQ(e.index(), 1u);
    EXPECT_EQ(e.timestamp(), kBase + 99);
  }
}

// ---- Update fault corpus: exact per-reason classification across the
// parse layer (arity faults) AND the replay layer (ordering faults). ----

TEST(UpdateFaultCorpus, CleanCorpusReplaysWithZeroAnomalies) {
  std::string clean = make_clean_update_text(4000);
  MrtParseStats parse_stats;
  auto updates = from_update_text(clean, &parse_stats);
  ASSERT_EQ(parse_stats.malformed, 0u);
  ASSERT_EQ(updates.size(), 4000u);

  ReplayStats stats;
  RibCollection got = replay_to_collection(updates, ReplayOptions{}, &stats);
  EXPECT_EQ(stats.applied, 4000u);
  EXPECT_EQ(stats.skipped_out_of_order, 0u);
  EXPECT_EQ(stats.skipped_day_out_of_range, 0u);
  // Withdrawals only ever retract announced routes by construction.
  EXPECT_EQ(stats.spurious_withdrawals, 0u);
  // The clean text starts one day after base_time and spans three days.
  ASSERT_FALSE(got.days.empty());
  EXPECT_EQ(got.days.front().day, 1);
  EXPECT_EQ(got.days.back().day, 3);
}

TEST(UpdateFaultCorpus, TolerantParseAndReplayClassifyExactly) {
  std::string clean = make_clean_update_text(4000);
  UpdateFaultSpec spec;
  spec.seed = 7;
  spec.fraction = 0.06;
  UpdateFaultCorpus corpus = inject_update_faults(clean, spec);
  ASSERT_GT(corpus.count_of(UpdateFaultKind::kTruncatedWithdraw), 0u);
  ASSERT_GT(corpus.count_of(UpdateFaultKind::kPathlessAnnounce), 0u);
  ASSERT_GT(corpus.count_of(UpdateFaultKind::kNonMonotonicBurst), 0u);

  // Parse layer: arity faults are field-count errors, burst lines parse.
  MrtParseStats parse_stats;
  auto parsed = from_update_text(corpus.text, &parse_stats);
  EXPECT_EQ(parse_stats.lines, corpus.lines);
  EXPECT_EQ(parse_stats.malformed, corpus.malformed_lines());
  EXPECT_EQ(parse_stats.bad_field_count,
            corpus.expected_parse_reason_count(ParseReason::kBadFieldCount));
  EXPECT_EQ(parsed.size(), corpus.lines - corpus.malformed_lines());

  // Replay layer: every burst line — and nothing else — is skipped as
  // out-of-order (the first line is never corrupted, so the watermark is
  // always older than any rewound timestamp).
  ReplayStats stats;
  (void)replay_to_collection(parsed, ReplayOptions{}, &stats);
  EXPECT_EQ(stats.skipped_out_of_order, corpus.expected_out_of_order());
  EXPECT_EQ(stats.skipped_day_out_of_range, 0u);
  EXPECT_EQ(stats.applied, parsed.size() - corpus.expected_out_of_order());
}

TEST(UpdateFaultCorpus, StrictReplayThrowsAtFirstBurstInStreamOrder) {
  std::string clean = make_clean_update_text(2000);
  UpdateFaultSpec spec;
  spec.seed = 31;
  spec.fraction = 0.04;
  UpdateFaultCorpus corpus = inject_update_faults(clean, spec);

  // The burst's index within the PARSED stream: its line number minus the
  // malformed (dropped) fault lines before it.
  std::size_t expected_index = 0;
  bool found = false;
  std::size_t malformed_before = 0;
  for (const InjectedUpdateFault& f : corpus.faults) {
    if (f.kind == UpdateFaultKind::kNonMonotonicBurst) {
      expected_index = f.line_number - 1 - malformed_before;
      found = true;
      break;
    }
    ++malformed_before;
  }
  ASSERT_TRUE(found) << "corpus drew no non-monotonic burst";

  auto parsed = from_update_text(corpus.text);
  ReplayOptions options;
  options.mode = ParseMode::kStrict;
  try {
    (void)replay_to_collection(parsed, options);
    FAIL() << "strict replay accepted a rewound timestamp";
  } catch (const UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), UpdateReplayError::Kind::kOutOfOrder);
    EXPECT_EQ(e.index(), expected_index);
    EXPECT_EQ(e.timestamp(), spec.base_time);
  }
}

}  // namespace
}  // namespace georank::bgp
