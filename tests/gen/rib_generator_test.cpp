#include "gen/rib_generator.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "gen/internet_generator.hpp"
#include "gen/scenarios.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "topo/route_propagation.hpp"

namespace georank::gen {
namespace {

NoiseSpec no_noise() {
  NoiseSpec n;
  n.prefix_flap_rate = 0;
  n.loop_rate = 0;
  n.poison_rate = 0;
  n.unallocated_rate = 0;
  n.prepend_rate = 0;
  n.route_server_rate = 0;
  return n;
}

TEST(RibGenerator, Deterministic) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  bgp::RibCollection a = RibGenerator{w, no_noise(), 9}.generate(2);
  bgp::RibCollection b = RibGenerator{w, no_noise(), 9}.generate(2);
  ASSERT_EQ(a.days.size(), b.days.size());
  EXPECT_EQ(a.days[0].entries, b.days[0].entries);
}

TEST(RibGenerator, CleanWorldHasIdenticalDays) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  bgp::RibCollection ribs = RibGenerator{w, no_noise(), 9}.generate(3);
  ASSERT_EQ(ribs.days.size(), 3u);
  EXPECT_EQ(ribs.days[0].entries, ribs.days[1].entries);
  EXPECT_EQ(ribs.days[0].entries, ribs.days[2].entries);
}

TEST(RibGenerator, CleanPathsAreValleyFreeAndLoopFree) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  bgp::RibCollection ribs = RibGenerator{w, no_noise(), 9}.generate(1);
  ASSERT_FALSE(ribs.days[0].entries.empty());
  for (const bgp::RouteEntry& e : ribs.days[0].entries) {
    EXPECT_FALSE(e.path.has_nonadjacent_duplicate()) << e.path.to_string();
    EXPECT_TRUE(topo::is_valley_free(w.graph, e.path)) << e.path.to_string();
    EXPECT_EQ(e.path.vp_as(), e.vp.asn);
  }
}

TEST(RibGenerator, EveryVpContributes) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  bgp::RibCollection ribs = RibGenerator{w, no_noise(), 9}.generate(1);
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  for (const bgp::RouteEntry& e : ribs.days[0].entries) seen.insert(e.vp);
  EXPECT_EQ(seen.size(), w.vps.all_vps().size());
}

TEST(RibGenerator, FlappingCreatesUnstablePrefixes) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  NoiseSpec noise = no_noise();
  noise.prefix_flap_rate = 0.5;
  bgp::RibCollection ribs = RibGenerator{w, noise, 9}.generate(5);
  // Count prefixes missing from at least one day.
  std::unordered_map<bgp::Prefix, std::unordered_set<int>, bgp::PrefixHash> days;
  for (const auto& snap : ribs.days) {
    for (const auto& e : snap.entries) days[e.prefix].insert(snap.day);
  }
  std::size_t unstable = 0;
  for (const auto& [p, d] : days) {
    if (d.size() < 5) ++unstable;
  }
  EXPECT_GT(unstable, days.size() / 4);
  EXPECT_LT(unstable, days.size());
}

TEST(RibGenerator, LoopNoiseProducesLoops) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  NoiseSpec noise = no_noise();
  noise.loop_rate = 0.2;
  bgp::RibCollection ribs = RibGenerator{w, noise, 9}.generate(1);
  std::size_t loops = 0;
  for (const bgp::RouteEntry& e : ribs.days[0].entries) {
    if (e.path.has_nonadjacent_duplicate()) ++loops;
  }
  double rate = static_cast<double>(loops) /
                static_cast<double>(ribs.days[0].entries.size());
  EXPECT_NEAR(rate, 0.2, 0.08);
}

TEST(RibGenerator, PoisonNoiseCreatesCliqueSandwiches) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  NoiseSpec noise = no_noise();
  noise.poison_rate = 0.5;  // forced high so clique-adjacent paths qualify
  bgp::RibCollection ribs = RibGenerator{w, noise, 9}.generate(1);
  std::size_t poisoned = 0;
  for (const bgp::RouteEntry& e : ribs.days[0].entries) {
    if (sanitize::is_poisoned(e.path, w.clique)) ++poisoned;
  }
  // Injection requires two ADJACENT clique hops on the path, so only a
  // subset qualifies; there must be some.
  EXPECT_GT(poisoned, 0u);
}

TEST(RibGenerator, UnallocatedNoiseUsesBogusRange) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  NoiseSpec noise = no_noise();
  noise.unallocated_rate = 0.2;
  bgp::RibCollection ribs = RibGenerator{w, noise, 9}.generate(1);
  std::size_t bogus_paths = 0;
  for (const bgp::RouteEntry& e : ribs.days[0].entries) {
    for (bgp::Asn hop : e.path.hops()) {
      if (hop >= w.bogus_asn_first && hop <= w.bogus_asn_last) {
        ++bogus_paths;
        break;
      }
    }
  }
  EXPECT_GT(bogus_paths, 0u);
}

TEST(RibGenerator, PrependingCollapsesToOriginal) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  NoiseSpec noise = no_noise();
  noise.prepend_rate = 0.5;
  bgp::RibCollection noisy = RibGenerator{w, noise, 9}.generate(1);
  bgp::RibCollection clean = RibGenerator{w, no_noise(), 9}.generate(1);
  ASSERT_EQ(noisy.days[0].entries.size(), clean.days[0].entries.size());
  std::size_t prepended = 0;
  for (std::size_t i = 0; i < noisy.days[0].entries.size(); ++i) {
    const auto& n = noisy.days[0].entries[i];
    const auto& c = clean.days[0].entries[i];
    if (n.path.size() != c.path.size()) ++prepended;
    EXPECT_EQ(n.path.without_adjacent_duplicates(), c.path);
  }
  EXPECT_GT(prepended, 0u);
}

TEST(RibGenerator, RouteServerInjection) {
  World w = InternetGenerator{mini_world_spec(4)}.generate();
  ASSERT_FALSE(w.route_servers.empty());
  NoiseSpec noise = no_noise();
  noise.route_server_rate = 1.0;
  bgp::RibCollection ribs = RibGenerator{w, noise, 9}.generate(1);
  std::size_t with_rs = 0;
  for (const bgp::RouteEntry& e : ribs.days[0].entries) {
    for (bgp::Asn rs : w.route_servers) {
      if (e.path.contains(rs)) {
        ++with_rs;
        break;
      }
    }
  }
  // Route servers appear only where an in-country peer link exists, so
  // just require "some".
  EXPECT_GT(with_rs, 0u);
}

}  // namespace
}  // namespace georank::gen
