// Properties of the internet-scale preset (gen/internet.hpp): spec
// arithmetic, bit-exact determinism, structural invariants of the grown
// topology, valley-freeness of the synthesized RIBs, and an end-to-end
// load through the sharded pipeline. Run at small scale — the invariants
// under test are scale-free; BENCH_scale.json covers the big end.
#include "gen/internet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "topo/route_propagation.hpp"

namespace georank::gen {
namespace {

using geo::CountryCode;

TEST(InternetSpec, DerivedCountsScaleSublinearly) {
  InternetSpec one = internet_spec(1.0);
  EXPECT_EQ(one.as_count(), 750u);
  EXPECT_EQ(one.prefix_target(), 10000u);
  InternetSpec hundred = internet_spec(100.0);
  EXPECT_EQ(hundred.as_count(), 75000u);
  EXPECT_EQ(hundred.prefix_target(), 1000000u);
  // ASes grow 100x; the derived knobs must grow much slower.
  EXPECT_LT(hundred.country_count(), one.country_count() * 10);
  EXPECT_LT(hundred.vp_count(), one.vp_count() * 10);
  EXPECT_LE(hundred.clique_size(), 20u);
  EXPECT_GE(one.clique_size(), 4u);
  EXPECT_GT(hundred.country_count(), one.country_count());
  EXPECT_GT(hundred.vp_count(), one.vp_count());
}

TEST(InternetScaleGenerator, DeterministicAcrossInstances) {
  InternetSpec spec = internet_spec(0.5, 77);
  World a = InternetScaleGenerator{spec}.generate();
  World b = InternetScaleGenerator{spec}.generate();
  EXPECT_EQ(a.clique, b.clique);
  EXPECT_EQ(a.originations.size(), b.originations.size());
  for (std::size_t i = 0; i < a.originations.size(); ++i) {
    EXPECT_EQ(a.originations[i].prefix, b.originations[i].prefix);
    EXPECT_EQ(a.originations[i].origin, b.originations[i].origin);
  }
  EXPECT_EQ(a.graph.size(), b.graph.size());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.vps.vp_count(), b.vps.vp_count());

  bgp::RibCollection ra = InternetScaleGenerator{spec}.synthesize_ribs(a);
  bgp::RibCollection rb = InternetScaleGenerator{spec}.synthesize_ribs(b);
  ASSERT_EQ(ra.days.size(), rb.days.size());
  for (std::size_t d = 0; d < ra.days.size(); ++d) {
    EXPECT_EQ(ra.days[d].entries, rb.days[d].entries);
  }
}

TEST(InternetScaleGenerator, WorldHitsSpecTargets) {
  InternetSpec spec = internet_spec(1.0, 11);
  World world = InternetScaleGenerator{spec}.generate();
  EXPECT_EQ(world.as_info.size(), spec.as_count());
  EXPECT_EQ(world.clique.size(), spec.clique_size());
  EXPECT_EQ(world.vps.vp_count(), spec.vp_count());
  // Every AS gets at least one prefix, then extras up to the target.
  EXPECT_GE(world.originations.size(), spec.as_count());
  EXPECT_NEAR(static_cast<double>(world.originations.size()),
              static_cast<double>(spec.prefix_target()),
              0.01 * static_cast<double>(spec.prefix_target()));

  // The clique is a full p2p mesh of tier-1s.
  for (bgp::Asn a : world.clique) {
    ASSERT_NE(world.info(a), nullptr);
    EXPECT_EQ(world.info(a)->role, AsRole::kTier1);
    for (bgp::Asn b : world.clique) {
      if (a >= b) continue;
      auto rel = world.graph.relationship(a, b);
      ASSERT_TRUE(rel.has_value()) << a << " " << b;
    }
  }

  // Countries span the spec'd count and every origination geolocates to
  // its origin's home country.
  std::set<CountryCode> countries;
  for (const auto& [asn, info] : world.as_info) countries.insert(info.home);
  EXPECT_EQ(countries.size(), spec.country_count());
  for (std::size_t i = 0; i < world.originations.size(); i += 97) {
    const Origination& o = world.originations[i];
    CountryCode cc = world.geo_db.country_of(o.prefix.address());
    EXPECT_EQ(cc, world.info(o.origin)->home);
  }

  // Connectivity: every non-tier-1 AS has at least one provider, so no
  // AS is unreachable from the clique.
  std::size_t orphans = 0;
  for (const auto& [asn, info] : world.as_info) {
    if (info.role == AsRole::kTier1) continue;
    if (world.graph.providers_of(asn).empty()) ++orphans;
  }
  EXPECT_EQ(orphans, 0u);
}

TEST(InternetScaleGenerator, RibsAreValleyFreeVpFirstAndThinned) {
  InternetSpec spec = internet_spec(0.5, 5);
  World world = InternetScaleGenerator{spec}.generate();
  bgp::RibCollection ribs = InternetScaleGenerator{spec}.synthesize_ribs(world);
  ASSERT_EQ(ribs.days.size(), 1u);
  const auto& entries = ribs.days[0].entries;
  ASSERT_FALSE(entries.empty());

  std::unordered_set<std::uint32_t> covered_prefixes;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    covered_prefixes.insert(entries[i].prefix.address());
    if (i % 53 != 0) continue;  // sample the expensive checks
    const bgp::RouteEntry& e = entries[i];
    ASSERT_FALSE(e.path.empty());
    EXPECT_EQ(e.path[0], e.vp.asn);  // VP-first after reversal
    EXPECT_TRUE(topo::is_valley_free(world.graph, e.path))
        << "entry " << i;
  }
  // Every prefix keeps at least its anchor feed despite thinning, and
  // the average feed count stays near the spec (well under full mesh).
  EXPECT_EQ(covered_prefixes.size(), world.originations.size());
  const double avg_feeds = static_cast<double>(entries.size()) /
                           static_cast<double>(world.originations.size());
  EXPECT_GE(avg_feeds, 1.0);
  EXPECT_LE(avg_feeds, spec.feeds_per_prefix() * 3.0);
}

TEST(InternetScaleGenerator, PipelineLoadsWorldEndToEnd) {
  InternetSpec spec = internet_spec(0.25, 3);
  World world = InternetScaleGenerator{spec}.generate();
  bgp::RibCollection ribs = InternetScaleGenerator{spec}.synthesize_ribs(world);

  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);
  ASSERT_TRUE(pipeline.loaded());
  EXPECT_GT(pipeline.sanitized().stats.accepted, 0u);
  // Multihop collectors make some VPs unlocatable by design.
  EXPECT_GT(pipeline.sanitized().stats.vp_no_location, 0u);

  std::vector<core::CountryMetrics> census = pipeline.all_countries();
  EXPECT_GT(census.size(), spec.country_count() / 2);
  std::size_t with_rankings = 0;
  for (const core::CountryMetrics& m : census) {
    if (!m.cci.empty()) ++with_rankings;
  }
  EXPECT_GT(with_rankings, 0u);
}

}  // namespace
}  // namespace georank::gen
