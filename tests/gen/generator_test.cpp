#include "gen/internet_generator.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/scenarios.hpp"
#include "topo/route_propagation.hpp"

namespace georank::gen {
namespace {

using namespace asn;

World make_mini(std::uint64_t seed = 11) {
  return InternetGenerator{mini_world_spec(seed)}.generate();
}

TEST(Generator, DeterministicForSameSeed) {
  World a = make_mini(5);
  World b = make_mini(5);
  EXPECT_EQ(a.graph.size(), b.graph.size());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.originations.size(), b.originations.size());
  for (std::size_t i = 0; i < a.originations.size(); ++i) {
    EXPECT_EQ(a.originations[i].prefix, b.originations[i].prefix);
    EXPECT_EQ(a.originations[i].origin, b.originations[i].origin);
  }
}

TEST(Generator, DifferentSeedsDifferentWorlds) {
  World a = make_mini(5);
  World b = make_mini(6);
  // Same scaffolding ASes, but different random wiring.
  EXPECT_NE(a.graph.edge_count(), b.graph.edge_count());
}

TEST(Generator, CliqueIsFullyMeshed) {
  World w = make_mini();
  ASSERT_GE(w.clique.size(), 3u);
  for (std::size_t i = 0; i < w.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < w.clique.size(); ++j) {
      EXPECT_EQ(w.graph.relationship(w.clique[i], w.clique[j]),
                topo::Rel::kPeer);
    }
  }
}

TEST(Generator, SpecAsesExistWithRoles) {
  World w = make_mini();
  ASSERT_TRUE(w.info(kTelstra));
  EXPECT_EQ(w.info(kTelstra)->role, AsRole::kIncumbentDomestic);
  EXPECT_EQ(w.info(kTelstraIntl)->role, AsRole::kIncumbentInternational);
  EXPECT_EQ(w.info(kVocus)->role, AsRole::kChallenger);
  EXPECT_EQ(w.info(kAmazon)->role, AsRole::kHypergiant);
  EXPECT_EQ(w.info(kLumen)->role, AsRole::kTier1);
  EXPECT_EQ(w.info(kHurricane)->role, AsRole::kTier2);
  // The incumbent split: domestic buys from international.
  EXPECT_EQ(w.graph.relationship(kTelstraIntl, kTelstra), topo::Rel::kCustomer);
}

TEST(Generator, RegistrationCountryFollowsSpec) {
  World w = make_mini();
  EXPECT_EQ(w.as_registry.at(kAmazon), geo::CountryCode::of("US"));
  EXPECT_EQ(w.as_registry.at(kTelstra), geo::CountryCode::of("AU"));
  EXPECT_EQ(w.as_registry.at(kArelion), geo::CountryCode::of("SE"));
}

TEST(Generator, EveryNonRouteServerAsOriginatesOrIsReachable) {
  World w = make_mini();
  // Every stub/regional/incumbent/challenger AS must originate a prefix.
  std::unordered_set<bgp::Asn> origins;
  for (const Origination& o : w.originations) origins.insert(o.origin);
  for (const auto& [asn, info] : w.as_info) {
    if (info.role == AsRole::kRouteServer) {
      EXPECT_FALSE(origins.contains(asn)) << asn;
      continue;
    }
    if (info.role == AsRole::kTier2) continue;  // may originate elsewhere
    if (info.role == AsRole::kHypergiant || info.role == AsRole::kTier1) {
      continue;  // spot-checked below
    }
    EXPECT_TRUE(origins.contains(asn)) << "AS " << asn << " (" << info.name
                                       << ") has no prefix";
  }
  EXPECT_TRUE(origins.contains(kAmazon));
}

TEST(Generator, HypergiantOriginatesInMultipleCountries) {
  World w = make_mini();
  std::unordered_set<std::uint16_t> countries;
  for (const Origination& o : w.originations) {
    if (o.origin != kAmazon) continue;
    geo::CountryCode cc = w.geo_db.country_of(o.prefix.address());
    if (cc.valid()) countries.insert(cc.raw());
  }
  EXPECT_GE(countries.size(), 2u);  // US and AU per the mini spec
}

TEST(Generator, OriginationsAreDisjointPerAsAndCanonical) {
  World w = make_mini();
  for (const Origination& o : w.originations) {
    // Canonical prefixes only.
    EXPECT_EQ(o.prefix.address() & ~bgp::Prefix::mask_for(o.prefix.length()), 0u);
    EXPECT_GE(o.prefix.length(), 8);
    EXPECT_LE(o.prefix.length(), 32);
  }
}

TEST(Generator, GeoDbCoversAllOriginatedSpace) {
  World w = make_mini();
  for (const Origination& o : w.originations) {
    EXPECT_TRUE(w.geo_db.country_of(o.prefix.address()).valid())
        << o.prefix.to_string();
  }
}

TEST(Generator, VpsRegisteredWithCollectors) {
  World w = make_mini();
  // mini spec: AU 4 + US 6 + JP 3 + DE 4 located, plus 4 multihop.
  EXPECT_EQ(w.vps.located_vps().size(), 17u);
  EXPECT_EQ(w.vps.all_vps().size(), 21u);
  // Every VP's AS is a real AS in the graph.
  for (const bgp::VpId& vp : w.vps.all_vps()) {
    EXPECT_TRUE(w.graph.contains(vp.asn));
  }
}

TEST(Generator, VpCountriesMatchAsHomes) {
  World w = make_mini();
  for (const auto& [vp, cc] : w.vps.located_vps()) {
    const AsInfo* info = w.info(vp.asn);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->home, cc) << "AS " << vp.asn;
  }
}

TEST(Generator, RegistryAllocatesAllGraphAses) {
  World w = make_mini();
  for (bgp::Asn asn : w.graph.ases()) {
    EXPECT_TRUE(w.asn_registry.allocated(asn)) << asn;
  }
  // The bogus range is never allocated.
  EXPECT_FALSE(w.asn_registry.allocated(w.bogus_asn_first));
  EXPECT_FALSE(w.asn_registry.allocated(w.bogus_asn_last));
}

TEST(Generator, AllAsesReachTier1) {
  // Connectivity sanity: from every AS the origin Lumen is reachable.
  World w = make_mini();
  topo::RoutePropagator prop{w.graph};
  topo::RoutingTable t = prop.compute(kLumen);
  std::size_t unreachable = 0;
  for (bgp::Asn asn : w.graph.ases()) {
    if (!t.reachable(w.graph.id_of(asn))) ++unreachable;
  }
  // Route servers may be isolated from transit; nothing else may be.
  EXPECT_LE(unreachable, w.route_servers.size());
}

TEST(Generator, ContinentsRecorded) {
  World w = make_mini();
  EXPECT_EQ(w.continents.at(geo::CountryCode::of("AU")), "Oc");
  EXPECT_EQ(w.continents.at(geo::CountryCode::of("US")), "No.Am");
}

TEST(Generator, NameLookup) {
  World w = make_mini();
  EXPECT_EQ(w.name_of(kTelstra), "Telstra");
  EXPECT_EQ(w.name_of(999999), "AS999999");
}

}  // namespace
}  // namespace georank::gen
