#include "gen/scenarios.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/internet_generator.hpp"

namespace georank::gen {
namespace {

using namespace asn;

TEST(Scenarios, DefaultSpecHasAllCaseStudyCountries) {
  WorldSpec spec = default_world_spec();
  std::unordered_set<std::uint16_t> codes;
  for (const CountrySpec& c : spec.countries) codes.insert(c.code.raw());
  for (const char* cc : {"AU", "JP", "RU", "US", "TW", "NL", "GB", "DE", "BR",
                         "KZ", "KG", "TJ", "TM", "UA", "MU", "ZA"}) {
    EXPECT_TRUE(codes.contains(geo::CountryCode::of(cc).raw())) << cc;
  }
}

TEST(Scenarios, UniqueAsnsAcrossSpec) {
  WorldSpec spec = default_world_spec();
  std::unordered_set<bgp::Asn> seen;
  auto check = [&](bgp::Asn asn, const std::string& what) {
    EXPECT_TRUE(seen.insert(asn).second) << "duplicate ASN " << asn << " in "
                                         << what;
  };
  for (const auto& m : spec.multinationals) check(m.asn, m.name);
  for (const auto& h : spec.hypergiants) check(h.asn, h.name);
  for (const auto& c : spec.countries) {
    for (const auto& inc : c.incumbents) {
      check(inc.domestic_asn, inc.name);
      if (inc.international_asn) check(*inc.international_asn, inc.name);
    }
    for (const auto& ch : c.challengers) check(ch.asn, ch.name);
    if (c.route_server_asn) check(c.route_server_asn, "route server");
  }
}

TEST(Scenarios, PresenceAndUpstreamAsnsResolve) {
  WorldSpec spec = default_world_spec();
  std::unordered_set<bgp::Asn> known;
  for (const auto& m : spec.multinationals) known.insert(m.asn);
  for (const auto& h : spec.hypergiants) known.insert(h.asn);
  for (const auto& c : spec.countries) {
    for (const auto& inc : c.incumbents) {
      known.insert(inc.domestic_asn);
      if (inc.international_asn) known.insert(*inc.international_asn);
    }
    for (const auto& ch : c.challengers) known.insert(ch.asn);
  }
  for (const auto& c : spec.countries) {
    for (const auto& p : c.multinational_presence) {
      EXPECT_TRUE(known.contains(p.asn))
          << c.code.to_string() << " references unknown presence " << p.asn;
    }
    for (const auto& inc : c.incumbents) {
      for (bgp::Asn up : inc.upstreams) {
        EXPECT_TRUE(known.contains(up))
            << inc.name << " references unknown upstream " << up;
      }
    }
    for (const auto& ch : c.challengers) {
      for (bgp::Asn up : ch.upstreams) {
        EXPECT_TRUE(known.contains(up))
            << ch.name << " references unknown upstream " << up;
      }
    }
  }
}

TEST(Scenarios, EpochsDifferOnlyWhereDocumented) {
  WorldSpec a = default_world_spec(Epoch::kApril2021);
  WorldSpec b = default_world_spec(Epoch::kMarch2023);
  ASSERT_EQ(a.countries.size(), b.countries.size());
  for (std::size_t i = 0; i < a.countries.size(); ++i) {
    const CountrySpec& ca = a.countries[i];
    const CountrySpec& cb = b.countries[i];
    EXPECT_EQ(ca.code, cb.code);
    if (ca.code == geo::CountryCode::of("RU") ||
        ca.code == geo::CountryCode::of("TW")) {
      continue;  // the documented sanction / de-peering edits
    }
    EXPECT_EQ(ca.multinational_presence.size(), cb.multinational_presence.size())
        << ca.code.to_string();
  }
}

TEST(Scenarios, TaiwanDropsChinaTelecomIn2023) {
  auto has_ct_presence = [](const WorldSpec& spec) {
    for (const CountrySpec& c : spec.countries) {
      if (c.code != geo::CountryCode::of("TW")) continue;
      for (const auto& p : c.multinational_presence) {
        if (p.asn == kChinaTelecom) return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_ct_presence(default_world_spec(Epoch::kApril2021)));
  EXPECT_FALSE(has_ct_presence(default_world_spec(Epoch::kMarch2023)));
}

TEST(Scenarios, RussiaDropsLumenPresenceIn2023) {
  auto presence_weight = [](const WorldSpec& spec, bgp::Asn asn) {
    for (const CountrySpec& c : spec.countries) {
      if (c.code != geo::CountryCode::of("RU")) continue;
      for (const auto& p : c.multinational_presence) {
        if (p.asn == asn) return p.weight;
      }
    }
    return 0.0;
  };
  EXPECT_GT(presence_weight(default_world_spec(Epoch::kApril2021), kLumen), 0.0);
  EXPECT_EQ(presence_weight(default_world_spec(Epoch::kMarch2023), kLumen), 0.0);
}

TEST(Scenarios, DefaultWorldGenerates) {
  World w = InternetGenerator{default_world_spec()}.generate();
  EXPECT_GT(w.graph.size(), 500u);
  EXPECT_GT(w.originations.size(), 700u);
  EXPECT_GT(w.vps.located_vps().size(), 200u);
  EXPECT_GE(w.clique.size(), 10u);
  // Table 3's top-five VP countries, in order.
  auto vp_count = [&](const char* cc) {
    std::size_t n = 0;
    for (const auto& [vp, c] : w.vps.located_vps()) {
      if (c == geo::CountryCode::of(cc)) ++n;
    }
    return n;
  };
  EXPECT_GT(vp_count("NL"), vp_count("GB"));
  EXPECT_GT(vp_count("GB"), vp_count("DE"));
  EXPECT_GT(vp_count("DE"), vp_count("BR"));
}

TEST(Scenarios, MiniWorldIsSmall) {
  World w = InternetGenerator{mini_world_spec()}.generate();
  EXPECT_LT(w.graph.size(), 80u);
  EXPECT_GT(w.graph.size(), 40u);
}

}  // namespace
}  // namespace georank::gen
