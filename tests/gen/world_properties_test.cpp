// World-generator invariants that must hold for EVERY seed, not just the
// default one — the contract the benches and case studies rely on.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <unordered_set>

#include "core/views.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "topo/route_propagation.hpp"

namespace georank::gen {
namespace {

class WorldPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldPropertyTest, StructuralInvariants) {
  WorldSpec spec = mini_world_spec(GetParam());
  World w = InternetGenerator{spec}.generate();

  // 1. Every spec'd AS exists and carries its role.
  for (const CountrySpec& c : spec.countries) {
    for (const IncumbentSpec& inc : c.incumbents) {
      ASSERT_TRUE(w.graph.contains(inc.domestic_asn));
      EXPECT_EQ(w.info(inc.domestic_asn)->home, c.code);
    }
    for (const ChallengerSpec& ch : c.challengers) {
      ASSERT_TRUE(w.graph.contains(ch.asn));
    }
  }

  // 2. VP counts match the spec exactly.
  std::size_t located = 0, multihop_expected = 0, located_expected = 0;
  for (const CountrySpec& c : spec.countries) {
    located_expected += static_cast<std::size_t>(c.vp_count);
    multihop_expected += static_cast<std::size_t>(c.multihop_vp_count);
  }
  located = w.vps.located_vps().size();
  EXPECT_EQ(located, located_expected);
  EXPECT_EQ(w.vps.all_vps().size(), located_expected + multihop_expected);

  // 3. Every origination's address is geolocatable and inside a region
  //    labeled with SOME country (noise may relabel sub-blocks).
  for (const Origination& o : w.originations) {
    EXPECT_TRUE(w.geo_db.country_of(o.prefix.address()).valid())
        << o.prefix.to_string();
  }

  // 4. No AS 0, no duplicate originations of the same (prefix, origin).
  std::set<std::tuple<std::uint32_t, std::uint8_t, bgp::Asn>> seen;
  for (const Origination& o : w.originations) {
    EXPECT_NE(o.origin, 0u);
    EXPECT_TRUE(
        seen.insert({o.prefix.address(), o.prefix.length(), o.origin}).second)
        << o.prefix.to_string() << " AS" << o.origin;
  }

  // 5. The clique is a full mesh and every member is tier 1.
  for (std::size_t i = 0; i < w.clique.size(); ++i) {
    EXPECT_EQ(w.info(w.clique[i])->role, AsRole::kTier1);
    for (std::size_t j = i + 1; j < w.clique.size(); ++j) {
      EXPECT_EQ(w.graph.relationship(w.clique[i], w.clique[j]), topo::Rel::kPeer);
    }
  }

  // 6. Every non-route-server AS can reach the first tier-1.
  topo::RoutePropagator prop{w.graph};
  topo::RoutingTable t = prop.compute(w.clique.front());
  std::size_t unreachable = 0;
  for (bgp::Asn asn : w.graph.ases()) {
    if (!t.reachable(w.graph.id_of(asn))) ++unreachable;
  }
  EXPECT_LE(unreachable, w.route_servers.size());
}

TEST_P(WorldPropertyTest, RibAndSanitizerInvariants) {
  WorldSpec spec = mini_world_spec(GetParam());
  World w = InternetGenerator{spec}.generate();
  bgp::RibCollection ribs = RibGenerator{w, spec.noise, GetParam() * 13 + 1}.generate(5);

  ASSERT_EQ(ribs.days.size(), 5u);
  EXPECT_GT(ribs.total_entries(), 1000u);

  sanitize::SanitizerOptions options;
  options.clique = w.clique;
  options.route_server_asns = w.route_servers;
  sanitize::PathSanitizer sanitizer{w.geo_db, w.vps, w.asn_registry, options};
  sanitize::SanitizeResult result = sanitizer.run(ribs);

  // Accounting closes.
  EXPECT_EQ(result.stats.total, ribs.total_entries());
  EXPECT_EQ(result.stats.total, result.stats.accepted + result.stats.rejected());
  // Majority of entries survive for any seed.
  EXPECT_GT(result.stats.accepted * 2, result.stats.total);

  // Accepted paths are clean and fully geolocated.
  for (const auto& sp : result.paths) {
    EXPECT_FALSE(sp.path.has_nonadjacent_duplicate());
    EXPECT_TRUE(sp.vp_country.valid());
    EXPECT_TRUE(sp.prefix_country.valid());
    EXPECT_GT(sp.weight, 0u);
  }

  // Views partition the accepted paths of every country.
  for (const CountrySpec& c : spec.countries) {
    core::CountryView nat = core::ViewBuilder::national(result.paths, c.code);
    core::CountryView intl = core::ViewBuilder::international(result.paths, c.code);
    std::size_t toward = 0;
    for (const auto& sp : result.paths) {
      if (sp.prefix_country == c.code) ++toward;
    }
    EXPECT_EQ(nat.size() + intl.size(), toward) << c.code.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace georank::gen
