// Round-trip and fault-injection coverage for the binary snapshot
// format (io/snapshot_codec.hpp). The integrity contract under test:
// a decode either reproduces the encoded snapshot bit-for-bit or throws
// SnapshotDecodeError — there is no third outcome, even for a file with
// any single byte corrupted.
#include "io/snapshot_codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "serve/snapshot.hpp"

namespace georank::io {
namespace {

struct CodecFixture {
  gen::World world;
  core::Pipeline pipeline;
  serve::Snapshot snapshot;

  CodecFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()),
        pipeline(world.geo_db, world.vps, world.asn_registry, world.graph,
                 make_config(world)) {
    gen::NoiseSpec noise;
    pipeline.load(gen::RibGenerator{world, noise, 5}.generate(3));
    snapshot = serve::Snapshot::build(
        pipeline, serve::SnapshotMeta{42, 1617235200, "mini-21/fixture"});
  }

  static core::PipelineConfig make_config(const gen::World& w) {
    core::PipelineConfig config;
    config.sanitizer.clique = w.clique;
    config.sanitizer.route_server_asns = w.route_servers;
    return config;
  }
};

/// One shared fixture: the snapshot build (full census) is the slow
/// part, and every test here only reads it.
const serve::Snapshot& fixture() {
  static const CodecFixture shared;
  return shared.snapshot;
}

void expect_identical(const serve::Snapshot& a, const serve::Snapshot& b) {
  EXPECT_EQ(a.meta.id, b.meta.id);
  EXPECT_EQ(a.meta.created_unix, b.meta.created_unix);
  EXPECT_EQ(a.meta.label, b.meta.label);

  ASSERT_EQ(a.countries.size(), b.countries.size());
  for (std::size_t i = 0; i < a.countries.size(); ++i) {
    const core::CountryMetrics& x = a.countries[i];
    const core::CountryMetrics& y = b.countries[i];
    EXPECT_EQ(x.country.raw(), y.country.raw());
    EXPECT_EQ(x.confidence, y.confidence);
    EXPECT_EQ(x.national_vps, y.national_vps);
    EXPECT_EQ(x.international_vps, y.international_vps);
    EXPECT_EQ(x.national_addresses, y.national_addresses);
    EXPECT_EQ(x.international_addresses, y.international_addresses);
    // Bit-exact, not approximate: doubles travel as IEEE-754 patterns.
    EXPECT_EQ(x.geo_consensus, y.geo_consensus);
    for (auto [r1, r2] : {std::pair{&x.cci, &y.cci}, std::pair{&x.ccn, &y.ccn},
                          std::pair{&x.ahi, &y.ahi}, std::pair{&x.ahn, &y.ahn}}) {
      ASSERT_EQ(r1->size(), r2->size());
      for (std::size_t k = 0; k < r1->size(); ++k) {
        EXPECT_EQ(r1->entries()[k].asn, r2->entries()[k].asn);
        EXPECT_EQ(r1->entries()[k].score, r2->entries()[k].score);
      }
    }
  }

  EXPECT_EQ(a.health.policy.min_vps, b.health.policy.min_vps);
  EXPECT_EQ(a.health.policy.min_geo_consensus, b.health.policy.min_geo_consensus);
  EXPECT_EQ(a.health.ingest_drop_rate, b.health.ingest_drop_rate);
  EXPECT_EQ(a.health.sanitize_drop_rate, b.health.sanitize_drop_rate);
  ASSERT_EQ(a.health.countries.size(), b.health.countries.size());
  for (std::size_t i = 0; i < a.health.countries.size(); ++i) {
    const robust::CountryHealth& x = a.health.countries[i];
    const robust::CountryHealth& y = b.health.countries[i];
    EXPECT_EQ(x.country.raw(), y.country.raw());
    EXPECT_EQ(x.national_tier, y.national_tier);
    EXPECT_EQ(x.international_tier, y.international_tier);
    EXPECT_EQ(x.geo_tier, y.geo_tier);
    EXPECT_EQ(x.overall, y.overall);
    EXPECT_EQ(x.national_vps, y.national_vps);
    EXPECT_EQ(x.international_vps, y.international_vps);
    EXPECT_EQ(x.accepted_prefixes, y.accepted_prefixes);
    EXPECT_EQ(x.geolocated_addresses, y.geolocated_addresses);
    EXPECT_EQ(x.no_consensus_prefixes, y.no_consensus_prefixes);
    EXPECT_EQ(x.no_consensus_addresses, y.no_consensus_addresses);
  }
}

// Little-endian field access for the hand-surgery tests below.
std::uint32_t get_u32(const std::string& bytes, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::string& bytes, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof v);
  return v;
}
void put_u32(std::string& bytes, std::size_t at, std::uint32_t v) {
  std::memcpy(bytes.data() + at, &v, sizeof v);
}
void put_u64(std::string& bytes, std::size_t at, std::uint64_t v) {
  std::memcpy(bytes.data() + at, &v, sizeof v);
}

constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kEntrySize = 32;

TEST(SnapshotCodec, RoundTripIsBitExact) {
  const serve::Snapshot& original = fixture();
  ASSERT_FALSE(original.countries.empty());
  const std::string bytes = encode_snapshot(original);
  serve::Snapshot decoded = decode_snapshot(bytes);
  expect_identical(original, decoded);
  // And the codec is a fixed point: re-encoding the decode reproduces
  // the byte stream exactly.
  EXPECT_EQ(encode_snapshot(decoded), bytes);
}

TEST(SnapshotCodec, StreamRoundTrip) {
  std::stringstream stream;
  write_snapshot(stream, fixture());
  serve::Snapshot decoded = read_snapshot(stream);
  expect_identical(fixture(), decoded);
}

TEST(SnapshotCodec, RejectsEmptyAndTruncatedInput) {
  EXPECT_THROW((void)decode_snapshot(""), SnapshotDecodeError);
  const std::string bytes = encode_snapshot(fixture());
  for (std::size_t keep :
       {std::size_t{4}, std::size_t{12}, kHeaderSize, bytes.size() / 2,
        bytes.size() - 1}) {
    try {
      (void)decode_snapshot(std::string_view(bytes).substr(0, keep));
      FAIL() << "decode of " << keep << "-byte prefix must throw";
    } catch (const SnapshotDecodeError&) {
    }
  }
}

TEST(SnapshotCodec, EveryTruncationPrefixIsRejected) {
  // The torn-write guarantee behind checkpoint/journal recovery: NO
  // proper prefix of a valid file decodes — a crash mid-write can
  // produce any truncation length, and each one must surface as a
  // typed error, never as a silently shorter snapshot. A tiny
  // hand-built snapshot keeps the exhaustive every-length sweep cheap
  // (the big fixture above covers spot truncations).
  serve::Snapshot tiny;
  tiny.meta.id = 7;
  tiny.meta.created_unix = 1617235200;
  tiny.meta.label = "tiny";
  core::CountryMetrics m;
  m.country = geo::CountryCode::of("AU");
  m.cci = rank::Ranking::from_scores({{3356, 0.9}, {1299, 0.5}});
  m.ccn = rank::Ranking::from_scores({{3356, 0.45}});
  m.ahi = rank::Ranking::from_scores({{1299, 0.25}});
  m.ahn = rank::Ranking::from_scores({{174, 0.125}});
  m.national_vps = 4;
  m.international_vps = 9;
  m.national_addresses = 1000;
  m.international_addresses = 2000;
  m.confidence = robust::ConfidenceTier::kHigh;
  m.geo_consensus = 0.875;
  tiny.countries.push_back(m);
  robust::CountryHealth h;
  h.country = m.country;
  h.national_vps = m.national_vps;
  h.international_vps = m.international_vps;
  h.overall = m.confidence;
  tiny.health.countries.push_back(h);

  const std::string bytes = encode_snapshot(tiny);
  EXPECT_EQ(encode_snapshot(decode_snapshot(bytes)), bytes);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    try {
      (void)decode_snapshot(std::string_view(bytes).substr(0, keep));
      FAIL() << "decode of " << keep << "-byte prefix (of " << bytes.size()
             << ") must throw";
    } catch (const SnapshotDecodeError&) {
    }
  }
}

TEST(SnapshotCodec, RejectsBadMagicAndForeignFiles) {
  std::string bytes = encode_snapshot(fixture());
  bytes[0] = 'X';
  try {
    (void)decode_snapshot(bytes);
    FAIL() << "bad magic must throw";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kBadMagic);
  }
  try {
    (void)decode_snapshot("country,metric,rank,asn,score\nAU,CCI,1,3356,0.9\n");
    FAIL() << "a CSV is not a snapshot";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kBadMagic);
  }
}

TEST(SnapshotCodec, RejectsNewerMajorVersion) {
  std::string bytes = encode_snapshot(fixture());
  put_u32(bytes, 8, kSnapshotVersion + 1);
  try {
    (void)decode_snapshot(bytes);
    FAIL() << "newer version must throw";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kBadVersion);
  }
}

TEST(SnapshotCodec, RejectsHeaderTableTampering) {
  std::string bytes = encode_snapshot(fixture());
  // Flip one byte inside the first table entry's offset field; the
  // header checksum must catch it before any section is trusted.
  bytes[kHeaderSize + 8] = static_cast<char>(bytes[kHeaderSize + 8] ^ 0x01);
  try {
    (void)decode_snapshot(bytes);
    FAIL() << "table tampering must throw";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kHeaderChecksum);
  }
}

TEST(SnapshotCodec, RejectsPayloadCorruption) {
  std::string bytes = encode_snapshot(fixture());
  const std::size_t table_end =
      kHeaderSize + get_u32(bytes, 12) * kEntrySize;
  std::size_t target = table_end + (bytes.size() - table_end) / 2;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x80);
  try {
    (void)decode_snapshot(bytes);
    FAIL() << "payload corruption must throw";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kSectionChecksum);
  }
}

TEST(SnapshotCodec, EverySingleByteFlipIsRejected) {
  const std::string bytes = encode_snapshot(fixture());
  // The whole-file sweep is the real guarantee: every byte of the file
  // is covered by the magic, the version check, the header checksum or
  // a section checksum. Stride keeps the sweep fast while still
  // touching header, table and every section; the first 256 bytes are
  // swept exhaustively since all structural fields live there.
  const std::size_t stride = bytes.size() > 4096 ? 7 : 1;
  for (std::size_t i = 0; i < bytes.size();
       i += (i < 256 ? 1 : stride)) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x55);
    try {
      (void)decode_snapshot(corrupt);
      FAIL() << "flip at byte " << i << " decoded successfully";
    } catch (const SnapshotDecodeError&) {
    }
  }
}

TEST(SnapshotCodec, SkipsUnknownTrailingSection) {
  // Forward compatibility: append an unknown-tag section (with a valid
  // checksum) and register it in the table; the decoder must verify and
  // skip it. Growing the table shifts every payload by one entry size,
  // so existing offsets are rebased.
  std::string bytes = encode_snapshot(fixture());
  const std::uint32_t count = get_u32(bytes, 12);
  const std::size_t old_table_end = kHeaderSize + count * kEntrySize;

  const std::string extra_payload = "future-format-bytes";
  std::string grown;
  grown.append(bytes, 0, old_table_end);            // header + old table
  grown.append(kEntrySize, '\0');                   // room for the new entry
  grown.append(bytes, old_table_end, std::string::npos);  // payloads (+32)
  grown += extra_payload;

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry = kHeaderSize + i * kEntrySize;
    put_u64(grown, entry + 8, get_u64(grown, entry + 8) + kEntrySize);
  }
  const std::size_t new_entry = kHeaderSize + count * kEntrySize;
  std::uint32_t tag = 0;
  std::memcpy(&tag, "XTRA", 4);
  put_u32(grown, new_entry, tag);
  put_u32(grown, new_entry + 4, 0);
  put_u64(grown, new_entry + 8, grown.size() - extra_payload.size());
  put_u64(grown, new_entry + 16, extra_payload.size());
  put_u64(grown, new_entry + 24, snapshot_checksum(extra_payload));
  put_u32(grown, 12, count + 1);
  put_u64(grown, 16,
          snapshot_checksum(std::string_view(grown).substr(
              kHeaderSize, (count + 1) * kEntrySize)));

  serve::Snapshot decoded = decode_snapshot(grown);
  expect_identical(fixture(), decoded);

  // ...but a corrupted unknown section is still a corrupted file.
  grown.back() = static_cast<char>(grown.back() ^ 0x01);
  try {
    (void)decode_snapshot(grown);
    FAIL() << "corrupt unknown section must throw";
  } catch (const SnapshotDecodeError& e) {
    EXPECT_EQ(e.error(), SnapshotError::kSectionChecksum);
  }
}

TEST(SnapshotCodec, ErrorStringsAreDistinct) {
  EXPECT_NE(to_string(SnapshotError::kBadMagic),
            to_string(SnapshotError::kBadVersion));
  EXPECT_NE(to_string(SnapshotError::kHeaderChecksum),
            to_string(SnapshotError::kSectionChecksum));
  SnapshotDecodeError error{SnapshotError::kTruncated, "42 bytes"};
  EXPECT_NE(std::string(error.what()).find("42 bytes"), std::string::npos);
}

TEST(SnapshotCodec, ChecksumIsFnv1a64) {
  // Reference vectors pin the checksum so a future refactor cannot
  // silently change the on-disk format.
  EXPECT_EQ(snapshot_checksum(""), 14695981039346656037ull);
  EXPECT_EQ(snapshot_checksum("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(snapshot_checksum("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace georank::io
