// Parity between the service's delta/timeline path and the batch
// machinery it wraps: /v1/delta must report exactly what
// core::compare_rankings computes over the same two snapshots (the
// numbers the `georank compare` CLI prints), and timeline() must agree
// with a core::Timeline built from the same points. Snapshots here come
// from real pipelines over generated worlds, so the whole
// build -> publish -> query path is exercised, not just the rendering.
#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "core/rank_delta.hpp"
#include "core/timeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "serve/json.hpp"
#include "serve/ranking_service.hpp"

namespace georank::serve {
namespace {

using geo::CountryCode;

/// Two pipelines over the same world, loaded with different RIB spans
/// (3 vs 5 days of the same feed) — enough churn for a non-trivial
/// delta while every country stays present.
struct DeltaFixture {
  gen::World world;
  core::Pipeline pipeline_a;
  core::Pipeline pipeline_b;
  std::shared_ptr<const Snapshot> snap_a;
  std::shared_ptr<const Snapshot> snap_b;

  DeltaFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(23)}.generate()),
        pipeline_a(world.geo_db, world.vps, world.asn_registry, world.graph,
                   make_config(world)),
        pipeline_b(world.geo_db, world.vps, world.asn_registry, world.graph,
                   make_config(world)) {
    gen::NoiseSpec noise;
    pipeline_a.load(gen::RibGenerator{world, noise, 5}.generate(3));
    pipeline_b.load(gen::RibGenerator{world, noise, 5}.generate(5));
    snap_a = std::make_shared<Snapshot>(
        Snapshot::build(pipeline_a, SnapshotMeta{10, 100, "epoch-a"}));
    snap_b = std::make_shared<Snapshot>(
        Snapshot::build(pipeline_b, SnapshotMeta{11, 200, "epoch-b"}));
  }

  static core::PipelineConfig make_config(const gen::World& w) {
    core::PipelineConfig config;
    config.sanitizer.clique = w.clique;
    config.sanitizer.route_server_asns = w.route_servers;
    return config;
  }
};

const DeltaFixture& fixture() {
  static const DeltaFixture shared;
  return shared;
}

CountryCode shared_country() {
  // Any country present in both snapshots; mini worlds always rank AU.
  CountryCode au = CountryCode::of("AU");
  EXPECT_NE(fixture().snap_a->find(au), nullptr);
  EXPECT_NE(fixture().snap_b->find(au), nullptr);
  return au;
}

void expect_same_delta(const core::RankDelta& expected,
                       const core::RankDelta& actual) {
  ASSERT_EQ(expected.shifts.size(), actual.shifts.size());
  for (std::size_t i = 0; i < expected.shifts.size(); ++i) {
    const core::RankShift& e = expected.shifts[i];
    const core::RankShift& a = actual.shifts[i];
    EXPECT_EQ(e.asn, a.asn);
    EXPECT_EQ(e.before_rank, a.before_rank);
    EXPECT_EQ(e.after_rank, a.after_rank);
    EXPECT_EQ(e.before_score, a.before_score);  // bit-exact, same inputs
    EXPECT_EQ(e.after_score, a.after_score);
  }
  EXPECT_EQ(expected.entries(), actual.entries());
  EXPECT_EQ(expected.exits(), actual.exits());
  EXPECT_EQ(expected.max_movement(), actual.max_movement());
  EXPECT_EQ(expected.agreement(), actual.agreement());
}

TEST(ServiceDelta, MatchesBatchCompareRankingsForEveryMetric) {
  const DeltaFixture& f = fixture();
  RankingService service;
  service.publish(f.snap_a);
  service.publish(f.snap_b);
  CountryCode country = shared_country();

  for (Metric metric :
       {Metric::kCci, Metric::kCcn, Metric::kAhi, Metric::kAhn}) {
    auto result = service.delta(country, metric, 10);
    ASSERT_TRUE(result.has_value()) << to_string(metric);
    EXPECT_EQ(result->before_id, 10u);
    EXPECT_EQ(result->after_id, 11u);
    // The reference computation is exactly what `georank compare` runs
    // over two exported ranking files.
    core::RankDelta expected = core::compare_rankings(
        ranking_of(*f.snap_a->find(country), metric),
        ranking_of(*f.snap_b->find(country), metric), 10);
    expect_same_delta(expected, result->delta);
  }
}

TEST(ServiceDelta, SinglePublishComparesSnapshotToItself) {
  RankingService service;
  service.publish(fixture().snap_a);
  auto result = service.delta(shared_country(), Metric::kCci, 10);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->before_id, result->after_id);
  EXPECT_TRUE(result->delta.entries().empty());
  EXPECT_TRUE(result->delta.exits().empty());
  EXPECT_EQ(result->delta.max_movement(), 0);
  EXPECT_EQ(result->delta.agreement(), 1.0);
}

TEST(ServiceDelta, NoSnapshotOrUnknownCountryIsEmpty) {
  RankingService empty;
  EXPECT_FALSE(empty.delta(CountryCode::of("AU"), Metric::kCci, 10).has_value());
  RankingService service;
  service.publish(fixture().snap_a);
  EXPECT_FALSE(service.delta(CountryCode::of("ZZ"), Metric::kCci, 10).has_value());
  EXPECT_FALSE(service.timeline(CountryCode::of("ZZ")).has_value());
}

TEST(ServiceDelta, DeltaEndpointRendersTheSameNumbers) {
  const DeltaFixture& f = fixture();
  RankingService service;
  service.publish(f.snap_a);
  service.publish(f.snap_b);
  CountryCode country = shared_country();

  Response r = service.handle("/v1/delta?country=AU&metric=ahi&top=10");
  ASSERT_EQ(r.status, 200);
  core::RankDelta expected = core::compare_rankings(
      ranking_of(*f.snap_a->find(country), Metric::kAhi),
      ranking_of(*f.snap_b->find(country), Metric::kAhi), 10);
  // The JSON is rendered with the shared shortest-round-trip formatter,
  // so the expected values embed verbatim.
  EXPECT_NE(r.body.find("\"before_snapshot_id\":10"), std::string::npos);
  EXPECT_NE(r.body.find("\"after_snapshot_id\":11"), std::string::npos);
  EXPECT_NE(r.body.find("\"agreement\":" + json_double(expected.agreement())),
            std::string::npos);
  EXPECT_NE(r.body.find("\"max_movement\":" +
                        std::to_string(expected.max_movement())),
            std::string::npos);
  for (const core::RankShift& shift : expected.shifts) {
    EXPECT_NE(r.body.find("\"asn\":" + std::to_string(shift.asn)),
              std::string::npos);
  }
  EXPECT_EQ(service.handle("/v1/delta").status, 400);
  EXPECT_EQ(service.handle("/v1/delta?country=AU&metric=bogus").status, 400);
  EXPECT_EQ(service.handle("/v1/delta?country=ZZ").status, 404);
}

TEST(ServiceDelta, TimelineMatchesCoreTimeline) {
  const DeltaFixture& f = fixture();
  RankingService service;
  service.publish(f.snap_a);
  service.publish(f.snap_b);
  CountryCode country = shared_country();

  auto timeline = service.timeline(country);
  ASSERT_TRUE(timeline.has_value());
  ASSERT_EQ(timeline->points().size(), 2u);
  EXPECT_EQ(timeline->points()[0].label, "epoch-a");
  EXPECT_EQ(timeline->points()[1].label, "epoch-b");

  core::Timeline expected{{{"epoch-a", *f.snap_a->find(country)},
                           {"epoch-b", *f.snap_b->find(country)}}};
  for (core::TimelineMetric metric :
       {core::TimelineMetric::kCci, core::TimelineMetric::kAhn}) {
    auto expected_traj = expected.trajectories(metric, 10);
    auto actual_traj = timeline->trajectories(metric, 10);
    ASSERT_EQ(expected_traj.size(), actual_traj.size());
    for (std::size_t i = 0; i < expected_traj.size(); ++i) {
      EXPECT_EQ(expected_traj[i].asn, actual_traj[i].asn);
      EXPECT_EQ(expected_traj[i].ranks, actual_traj[i].ranks);
      EXPECT_EQ(expected_traj[i].scores, actual_traj[i].scores);
    }
    // And the pairwise timeline delta is the service delta.
    auto service_delta = service.delta(country, metric, 10);
    ASSERT_TRUE(service_delta.has_value());
    auto timeline_deltas = timeline->deltas(metric, 10);
    ASSERT_EQ(timeline_deltas.size(), 1u);
    EXPECT_EQ(timeline_deltas[0].agreement(), service_delta->delta.agreement());
    EXPECT_EQ(timeline_deltas[0].max_movement(),
              service_delta->delta.max_movement());
  }
}

TEST(ServiceDelta, HistoryIsBoundedAndOrdered) {
  RankingServiceOptions options;
  options.history_limit = 2;
  RankingService service{options};
  const DeltaFixture& f = fixture();
  auto relabel = [&](std::uint64_t id) {
    auto copy = std::make_shared<Snapshot>(*f.snap_a);
    copy->meta.id = id;
    copy->meta.label = "gen-" + std::to_string(id);
    return copy;
  };
  service.publish(relabel(1));
  service.publish(relabel(2));
  service.publish(relabel(3));
  auto result = service.delta(shared_country(), Metric::kCci, 5);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->before_id, 2u);  // snapshot 1 aged out
  EXPECT_EQ(result->after_id, 3u);
  auto timeline = service.timeline(shared_country());
  ASSERT_TRUE(timeline.has_value());
  ASSERT_EQ(timeline->points().size(), 2u);
  EXPECT_EQ(timeline->points()[0].label, "gen-2");
}

}  // namespace
}  // namespace georank::serve
