// /v1/whatif: the counterfactual endpoint end to end — POST over a real
// socket, byte-identity with the CLI render, LRU keying on (scenario
// hash, snapshot id), and the republish-eviction regression: a snapshot
// published between two identical queries MUST invalidate the cached
// counterfactual (a stale entry would keep reporting the old snapshot).
#include "serve/ranking_service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "scenario/engine.hpp"
#include "serve/http_client.hpp"
#include "serve/http_server.hpp"

namespace georank::serve {
namespace {

constexpr const char* kScenarioText = "name t\nseed 3\ndepeer AU US\n";

struct WhatIfServeFixture {
  gen::World world;
  bgp::RibCollection ribs;
  core::Pipeline pipeline;
  std::optional<scenario::WhatIfEngine> engine;
  RankingService service;

  WhatIfServeFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()),
        ribs(gen::RibGenerator{world, gen::NoiseSpec{}, 5}.generate(5)),
        pipeline(world.geo_db, world.vps, world.asn_registry, world.graph,
                 config()) {
    pipeline.load(ribs);
    engine.emplace(pipeline, world.graph, world.as_registry, ribs);
    service.set_whatif(&*engine);
    publish(1);
  }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }

  void publish(std::uint64_t id) {
    SnapshotMeta meta;
    meta.id = id;
    meta.created_unix = id;
    meta.label = "whatif-test";
    service.publish(
        std::make_shared<const Snapshot>(Snapshot::build(pipeline, meta)));
  }
};

TEST(WhatIfEndpoint, PostOverRealSocketMatchesCliRender) {
  WhatIfServeFixture f;
  HttpServer server{f.service, {}};
  server.start();
  ASSERT_NE(server.port(), 0);

  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  auto response = client.post("/v1/whatif?top=5", kScenarioText);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);

  // The body must be byte-identical to what `georank whatif --out`
  // writes for the same snapshot id — the CI tier cmp(1)s the two.
  scenario::Report report =
      f.engine->run(scenario::parse(kScenarioText), 5);
  EXPECT_EQ(response->body, render_whatif_json(report, 1));
  EXPECT_NE(response->body.find("\"snapshot_id\":1"), std::string::npos);
  server.stop();
}

TEST(WhatIfEndpoint, RepeatQueryIsServedFromTheCache) {
  WhatIfServeFixture f;
  const std::uint64_t misses_before = f.service.counters().cache_misses;
  Response first = f.service.handle("POST", "/v1/whatif?top=5", kScenarioText);
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(f.service.counters().cache_misses, misses_before + 1);

  const std::uint64_t hits_before = f.service.counters().cache_hits;
  Response second = f.service.handle("POST", "/v1/whatif?top=5",
                                     kScenarioText);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(f.service.counters().cache_hits, hits_before + 1);

  // A different top-k or a different scenario is a different key.
  Response other_k = f.service.handle("POST", "/v1/whatif?top=3",
                                      kScenarioText);
  ASSERT_EQ(other_k.status, 200);
  EXPECT_NE(other_k.body, first.body);
  Response other_scenario =
      f.service.handle("POST", "/v1/whatif?top=5", "seed 4\ndepeer AU US\n");
  ASSERT_EQ(other_scenario.status, 200);
  EXPECT_NE(other_scenario.body, first.body);
}

TEST(WhatIfEndpoint, RepublishEvictsCachedCounterfactuals) {
  WhatIfServeFixture f;
  HttpServer server{f.service, {}};
  server.start();
  ASSERT_NE(server.port(), 0);

  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  auto before = client.post("/v1/whatif?top=5", kScenarioText);
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->status, 200);
  EXPECT_NE(before->body.find("\"snapshot_id\":1"), std::string::npos);

  // Republish mid-session: the SAME keep-alive connection asks the SAME
  // question and must see the new world, not the cached old answer.
  f.publish(2);
  auto after = client.post("/v1/whatif?top=5", kScenarioText);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->status, 200);
  EXPECT_NE(after->body.find("\"snapshot_id\":2"), std::string::npos)
      << "republish served a stale cached counterfactual";
  server.stop();
}

TEST(WhatIfEndpoint, MethodAndRouteContract) {
  WhatIfServeFixture f;
  HttpServer server{f.service, {}};
  server.start();
  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // GET on the POST-only route, POST on a GET route: both 405.
  auto get = client.get("/v1/whatif");
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->status, 405);
  auto wrong_route = client.post("/v1/rankings?country=AU", kScenarioText);
  ASSERT_TRUE(wrong_route.has_value());
  EXPECT_EQ(wrong_route->status, 405);

  // A malformed scenario travels back as a 400 with the parse diagnosis.
  auto bad = client.post("/v1/whatif", "seed 1\ndepeer AU AU\n");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 400);
  EXPECT_NE(bad->body.find("countries must differ"), std::string::npos);

  // A scenario naming an AS outside the graph is a 400, not a crash.
  auto unknown = client.post("/v1/whatif", "seed 1\ndepeer-clique 4000000000\n");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->status, 400);
  server.stop();
}

TEST(WhatIfEndpoint, ServesFiveOhThreeWithoutAnEngine) {
  // `georank serve --snapshot FILE` has rankings but no RIBs to edit:
  // the endpoint must refuse, not crash.
  RankingService service;
  Response no_engine = service.handle("POST", "/v1/whatif", kScenarioText);
  EXPECT_EQ(no_engine.status, 503);

  // Engine attached but nothing published yet: still 503.
  WhatIfServeFixture f;
  RankingService fresh;
  fresh.set_whatif(&*f.engine);
  Response no_snapshot = fresh.handle("POST", "/v1/whatif", kScenarioText);
  EXPECT_EQ(no_snapshot.status, 503);
}

}  // namespace
}  // namespace georank::serve
