// Loopback integration tests: a real HttpServer on an ephemeral port,
// driven through real sockets by serve::HttpClient. The headline test
// hammers the server from several client threads while the main thread
// keeps publishing new snapshots; every response must byte-equal the
// canonical render of exactly one published snapshot — a torn response
// (bytes from two snapshots, or a half-updated cache entry) fails the
// EXPECT. Runs under ThreadSanitizer in CI (scripts/ci.sh tsan tier).
#include "serve/http_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/http_client.hpp"

namespace georank::serve {
namespace {

using geo::CountryCode;

core::CountryMetrics metrics_variant(std::uint64_t variant) {
  core::CountryMetrics m;
  m.country = CountryCode::of("AU");
  std::vector<rank::ScoredAs> scores;
  for (std::uint32_t asn = 1; asn <= 8; ++asn) {
    // Scores depend on the variant, so every snapshot renders a
    // distinct, easily distinguishable body.
    scores.push_back({asn * 100, 1.0 / static_cast<double>(asn + variant)});
  }
  m.cci = rank::Ranking::from_scores(scores);
  m.ccn = m.cci;
  m.ahi = m.cci;
  m.ahn = m.cci;
  m.national_vps = 3 + variant;
  m.international_vps = 7;
  m.confidence = robust::ConfidenceTier::kHigh;
  m.geo_consensus = 1.0;
  return m;
}

std::shared_ptr<const Snapshot> snapshot_variant(std::uint64_t id) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->meta.id = id;
  snapshot->meta.created_unix = id;
  snapshot->meta.label = "variant-" + std::to_string(id);
  snapshot->countries.push_back(metrics_variant(id));
  robust::CountryHealth h;
  h.country = CountryCode::of("AU");
  h.national_vps = 3 + id;
  snapshot->health.countries.push_back(h);
  return snapshot;
}

TEST(HttpLoopback, ServesRequestsOnEphemeralPort) {
  RankingService service;
  service.publish(snapshot_variant(1));
  HttpServerOptions options;
  options.threads = 2;
  HttpServer server{service, options};
  server.start();
  ASSERT_NE(server.port(), 0);

  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  auto response = client.get("/v1/rankings?country=AU&metric=cci&k=3");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  // The socket path returns exactly what the in-process API renders.
  EXPECT_EQ(response->body,
            service.handle("/v1/rankings?country=AU&metric=cci&k=3").body);

  // Keep-alive: a second request reuses the connection.
  auto again = client.get("/v1/health");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, 200);
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpLoopback, StatusCodesTravelTheSocket) {
  RankingService service;
  service.publish(snapshot_variant(1));
  HttpServer server{service, {}};
  server.start();
  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  for (auto [target, status] :
       std::vector<std::pair<const char*, int>>{{"/v1/rankings?country=ZZ", 404},
                                                {"/v1/rankings?country=zzz", 400},
                                                {"/v1/as/notanumber", 400},
                                                {"/v1/nope", 404},
                                                {"/metrics", 200}}) {
    auto response = client.get(target);
    ASSERT_TRUE(response.has_value()) << target;
    EXPECT_EQ(response->status, status) << target;
  }
  // /metrics carries both service- and transport-level counters.
  auto metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->body.find("georank_requests_total"), std::string::npos);
  EXPECT_NE(metrics->body.find("georank_http_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("georank_request_latency_seconds_bucket"),
            std::string::npos);

  // A target with an embedded space makes a malformed request line; the
  // server answers 400 and closes, and the client survives to reconnect.
  auto malformed = client.get("/bad target");
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->status, 400);
  EXPECT_EQ(malformed->connection, "close");
  auto recovered = client.get("/v1/health");
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->status, 200);
  EXPECT_GE(server.stats().parse_errors, 1u);
  server.stop();
}

TEST(HttpLoopback, NoTornResponsesAcrossConcurrentReloads) {
  // The TSan centerpiece. Canonical bodies are precomputed for every
  // snapshot the reloader will publish; clients assert set membership.
  constexpr std::uint64_t kVariants = 4;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 150;
  constexpr int kReloads = 60;
  const std::string target = "/v1/rankings?country=AU&metric=cci&k=8";

  std::set<std::string> canonical;
  for (std::uint64_t v = 1; v <= kVariants; ++v) {
    RankingService oracle;
    oracle.publish(snapshot_variant(v));
    canonical.insert(oracle.handle(target).body);
  }
  ASSERT_EQ(canonical.size(), kVariants) << "variants must render distinctly";

  RankingService service;
  service.publish(snapshot_variant(1));
  HttpServerOptions options;
  options.threads = 4;
  HttpServer server{service, options};
  server.start();

  std::atomic<int> torn{0};
  std::atomic<int> transport_failures{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.connect("127.0.0.1", server.port())) {
        transport_failures.fetch_add(1 + c * 0);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto response = client.get(target);
        if (!response || response->status != 200) {
          transport_failures.fetch_add(1);
          continue;
        }
        if (canonical.count(response->body) == 0) {
          torn.fetch_add(1);
        } else {
          ok.fetch_add(1);
        }
      }
    });
  }

  // Reload churn while the clients hammer: each publish is an RCU swap
  // plus a cache reset, exactly the path a live feed exercises.
  for (int r = 0; r < kReloads; ++r) {
    service.publish(snapshot_variant(1 + (static_cast<std::uint64_t>(r) %
                                          kVariants)));
    std::this_thread::yield();
  }
  for (std::thread& t : clients) t.join();
  server.stop();

  EXPECT_EQ(torn.load(), 0) << "response bytes mixed across snapshots";
  EXPECT_EQ(transport_failures.load(), 0);
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  EXPECT_GE(service.counters().reloads, static_cast<std::uint64_t>(kReloads));
}

TEST(HttpLoopback, StopUnblocksIdleKeepAliveConnections) {
  RankingService service;
  service.publish(snapshot_variant(1));
  HttpServerOptions options;
  options.threads = 2;
  options.read_timeout_ms = 30000;  // longer than the test — stop must win
  HttpServer server{service, options};
  server.start();

  // Park a worker in recv() on an idle keep-alive connection.
  HttpClient idle;
  ASSERT_TRUE(idle.connect("127.0.0.1", server.port()));
  auto response = idle.get("/v1/health");
  ASSERT_TRUE(response.has_value());

  // stop() must shut the idle connection down and join promptly rather
  // than waiting out the 30s read timeout (the test would time out).
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(idle.get("/v1/health").has_value());
}

TEST(HttpLoopback, LiveHealthTravelsTheSocketAndInvalidatesCache) {
  // The acceptance path for the staleness machine: a feeder publishing
  // HealthMonitor snapshots must change what real HTTP clients see on
  // /v1/health and /metrics — including re-rendering the health body
  // when only the live state (not the snapshot) changed.
  RankingService service;
  service.publish(snapshot_variant(1));
  HttpServer server{service, {}};
  server.start();
  HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // No feeder attached: no "live" block, attached gauge reads 0.
  auto detached = client.get("/v1/health");
  ASSERT_TRUE(detached.has_value());
  EXPECT_EQ(detached->status, 200);
  EXPECT_EQ(detached->body.find("\"live\""), std::string::npos);
  auto metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->body.find("georank_live_feeder_attached 0"),
            std::string::npos);

  LiveHealth health;
  health.valid = true;
  health.state = robust::ServingState::kStale;
  health.age_seconds = 420.0;
  health.stale_after_seconds = 300.0;
  health.degraded_after_seconds = 900.0;
  health.entered[static_cast<std::size_t>(robust::ServingState::kStale)] = 1;
  service.set_live_health(health);

  auto stale = client.get("/v1/health");
  ASSERT_TRUE(stale.has_value());
  EXPECT_NE(stale->body.find("\"state\":\"stale\""), std::string::npos);
  // Same snapshot id, yet the body changed: the live-health version is
  // part of the cache key, so no stale "fresh" body was served.
  EXPECT_NE(stale->body, detached->body);

  health.state = robust::ServingState::kDegraded;
  health.age_seconds = 1200.0;
  health.entered[static_cast<std::size_t>(robust::ServingState::kDegraded)] = 1;
  health.reopen_failures = 3;
  health.last_backoff_seconds = 2.5;
  service.set_live_health(health);

  auto degraded = client.get("/v1/health");
  ASSERT_TRUE(degraded.has_value());
  EXPECT_NE(degraded->body.find("\"state\":\"degraded\""), std::string::npos);
  EXPECT_NE(degraded->body.find("\"reopen_failures\":3"), std::string::npos);

  metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->body.find("georank_live_feeder_attached 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("georank_live_health_state 2"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "georank_live_health_transitions_total{state=\"degraded\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("georank_live_backoff_attempts_total 3"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace georank::serve
