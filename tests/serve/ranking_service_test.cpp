// Unit coverage for serve::RankingService: routing, parameter
// validation, snapshot lifecycle (503 before publish, RCU swap after),
// and the rendered-response LRU. Snapshots here are hand-built — the
// service only reads the struct, so tests stay fast and targeted.
#include "serve/ranking_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "serve/json.hpp"

namespace georank::serve {
namespace {

using geo::CountryCode;

core::CountryMetrics make_metrics(CountryCode country,
                                  std::vector<rank::ScoredAs> scores) {
  core::CountryMetrics m;
  m.country = country;
  m.cci = rank::Ranking::from_scores(scores);
  for (rank::ScoredAs& s : scores) s.score *= 0.5;
  m.ccn = rank::Ranking::from_scores(scores);
  for (rank::ScoredAs& s : scores) s.score *= 0.5;
  m.ahi = rank::Ranking::from_scores(scores);
  for (rank::ScoredAs& s : scores) s.score *= 0.5;
  m.ahn = rank::Ranking::from_scores(scores);
  m.national_vps = 4;
  m.international_vps = 9;
  m.national_addresses = 1000;
  m.international_addresses = 2000;
  m.confidence = robust::ConfidenceTier::kHigh;
  m.geo_consensus = 0.875;
  return m;
}

std::shared_ptr<const Snapshot> make_snapshot(
    std::uint64_t id, std::vector<core::CountryMetrics> countries,
    std::string label = {}) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->meta.id = id;
  snapshot->meta.created_unix = 1000 + id;
  snapshot->meta.label = std::move(label);
  std::sort(countries.begin(), countries.end(),
            [](const core::CountryMetrics& a, const core::CountryMetrics& b) {
              return a.country.raw() < b.country.raw();
            });
  snapshot->countries = std::move(countries);
  for (const core::CountryMetrics& m : snapshot->countries) {
    robust::CountryHealth h;
    h.country = m.country;
    h.national_vps = m.national_vps;
    h.international_vps = m.international_vps;
    h.overall = m.confidence;
    snapshot->health.countries.push_back(h);
  }
  return snapshot;
}

std::shared_ptr<const Snapshot> world_v1() {
  return make_snapshot(
      1,
      {make_metrics(CountryCode::of("AU"),
                    {{3356, 0.9}, {1299, 0.5}, {174, 0.3}}),
       make_metrics(CountryCode::of("JP"), {{2914, 0.8}, {4713, 0.6}})},
      "v1");
}

TEST(RankingService, Returns503BeforeFirstPublish) {
  RankingService service;
  EXPECT_EQ(service.current(), nullptr);
  Response r = service.handle("/v1/rankings?country=AU");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("no snapshot"), std::string::npos);
  // The index and metrics still answer (they are how you probe a
  // booting server).
  EXPECT_EQ(service.handle("/").status, 200);
  EXPECT_EQ(service.handle("/metrics").status, 200);
}

TEST(RankingService, ParseMetricAcceptsCaseInsensitiveNames) {
  EXPECT_EQ(parse_metric("cci"), Metric::kCci);
  EXPECT_EQ(parse_metric("CCN"), Metric::kCcn);
  EXPECT_EQ(parse_metric("Ahi"), Metric::kAhi);
  EXPECT_EQ(parse_metric("ahn"), Metric::kAhn);
  EXPECT_FALSE(parse_metric("cti").has_value());
  EXPECT_FALSE(parse_metric("").has_value());
}

TEST(RankingService, RankingsEndpointRendersTopK) {
  RankingService service;
  service.publish(world_v1());
  Response r = service.handle("/v1/rankings?country=AU&metric=cci&k=2");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_NE(r.body.find("\"snapshot_id\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"country\":\"AU\""), std::string::npos);
  EXPECT_NE(r.body.find("\"asn\":3356"), std::string::npos);
  EXPECT_NE(r.body.find("\"asn\":1299"), std::string::npos);
  // k=2 cuts the third entry, and the metric filter drops the others.
  EXPECT_EQ(r.body.find("\"asn\":174"), std::string::npos);
  EXPECT_EQ(r.body.find("\"ahn\""), std::string::npos);

  Response all = service.handle("/v1/rankings?country=AU");
  ASSERT_EQ(all.status, 200);
  for (const char* metric : {"\"cci\"", "\"ccn\"", "\"ahi\"", "\"ahn\""}) {
    EXPECT_NE(all.body.find(metric), std::string::npos) << metric;
  }
}

TEST(RankingService, RankingsValidation) {
  RankingService service;
  service.publish(world_v1());
  EXPECT_EQ(service.handle("/v1/rankings").status, 400);            // no country
  EXPECT_EQ(service.handle("/v1/rankings?country=zzz").status, 400);  // 3 letters
  EXPECT_EQ(service.handle("/v1/rankings?country=A1").status, 400);
  EXPECT_EQ(service.handle("/v1/rankings?country=ZZ").status, 404);  // absent
  EXPECT_EQ(service.handle("/v1/rankings?country=AU&metric=xxx").status, 400);
  EXPECT_EQ(service.handle("/v1/rankings?country=AU&k=0").status, 400);
  EXPECT_EQ(service.handle("/v1/rankings?country=AU&k=abc").status, 400);
}

TEST(RankingService, AsLookupScansAllCountries) {
  RankingService service;
  service.publish(world_v1());
  Response r = service.handle("/v1/as/3356");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"country\":\"AU\""), std::string::npos);
  EXPECT_EQ(r.body.find("\"country\":\"JP\""), std::string::npos);

  // Unknown AS: 200 with an empty countries array (the query ran).
  Response unknown = service.handle("/v1/as/65000");
  ASSERT_EQ(unknown.status, 200);
  EXPECT_NE(unknown.body.find("\"countries\":[]"), std::string::npos);

  EXPECT_EQ(service.handle("/v1/as/notanumber").status, 400);
  EXPECT_EQ(service.handle("/v1/as/12x").status, 400);
  // "/v1/as/" normalizes to "/v1/as", which is not a route at all.
  EXPECT_EQ(service.handle("/v1/as/").status, 404);
}

TEST(RankingService, UnknownRoutesAre404) {
  RankingService service;
  service.publish(world_v1());
  EXPECT_EQ(service.handle("/v1/nope").status, 404);
  EXPECT_EQ(service.handle("/v2/rankings?country=AU").status, 404);
  EXPECT_EQ(service.handle("/favicon.ico").status, 404);
  // Trailing slash normalizes onto the known route.
  EXPECT_EQ(service.handle("/v1/health/").status, 200);
}

TEST(RankingService, PublishSwapsSnapshotsRcuStyle) {
  RankingService service;
  service.publish(world_v1());
  std::shared_ptr<const Snapshot> held = service.current();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->meta.id, 1u);

  service.publish(make_snapshot(
      2, {make_metrics(CountryCode::of("AU"), {{174, 0.95}, {3356, 0.4}})},
      "v2"));
  // A reader that grabbed the old snapshot keeps a consistent world...
  EXPECT_EQ(held->meta.id, 1u);
  EXPECT_EQ(held->find(CountryCode::of("JP"))->country.to_string(), "JP");
  // ...while new requests see the new one (JP dropped out).
  EXPECT_EQ(service.current()->meta.id, 2u);
  EXPECT_EQ(service.handle("/v1/rankings?country=JP").status, 404);
  Response r = service.handle("/v1/rankings?country=AU&metric=cci&k=1");
  EXPECT_NE(r.body.find("\"asn\":174"), std::string::npos);
  EXPECT_EQ(service.counters().active_snapshot_id, 2u);
  EXPECT_EQ(service.counters().reloads, 2u);
}

TEST(RankingService, CacheHitsAndReloadInvalidation) {
  RankingService service;
  service.publish(world_v1());
  const std::string target = "/v1/rankings?country=AU";
  Response first = service.handle(target);
  Response second = service.handle(target);
  EXPECT_EQ(first.body, second.body);
  ServiceCounters c = service.counters();
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.cache_misses, 1u);

  // Error responses are never cached.
  (void)service.handle("/v1/rankings?country=ZZ");
  (void)service.handle("/v1/rankings?country=ZZ");
  EXPECT_EQ(service.counters().cache_hits, 1u);

  // A reload must invalidate: id 2 ranks AU differently.
  service.publish(make_snapshot(
      2, {make_metrics(CountryCode::of("AU"), {{174, 0.95}})}));
  Response after = service.handle(target);
  EXPECT_NE(after.body, first.body);
  EXPECT_NE(after.body.find("\"snapshot_id\":2"), std::string::npos);
}

TEST(RankingService, CacheCapacityZeroDisablesCaching) {
  RankingServiceOptions options;
  options.cache_capacity = 0;
  RankingService service{options};
  service.publish(world_v1());
  (void)service.handle("/v1/rankings?country=AU");
  (void)service.handle("/v1/rankings?country=AU");
  EXPECT_EQ(service.counters().cache_hits, 0u);
}

TEST(RankingService, LruEvictsLeastRecentlyUsed) {
  RankingServiceOptions options;
  options.cache_capacity = 2;
  RankingService service{options};
  service.publish(world_v1());
  (void)service.handle("/v1/rankings?country=AU");  // miss -> cached
  (void)service.handle("/v1/rankings?country=JP");  // miss -> cached
  (void)service.handle("/v1/rankings?country=AU");  // hit, AU now MRU
  (void)service.handle("/v1/health");               // miss -> evicts JP
  (void)service.handle("/v1/rankings?country=AU");  // still a hit
  (void)service.handle("/v1/rankings?country=JP");  // evicted -> miss
  ServiceCounters c = service.counters();
  EXPECT_EQ(c.cache_hits, 2u);
  EXPECT_EQ(c.cache_misses, 4u);
}

TEST(RankingService, CountersClassifyStatuses) {
  RankingService service;
  (void)service.handle("/v1/rankings?country=AU");  // 503
  service.publish(world_v1());
  (void)service.handle("/v1/rankings?country=AU");  // 200
  (void)service.handle("/v1/rankings?country=zz");  // 400 (lowercase)
  (void)service.handle("/v1/nope");                 // 404
  ServiceCounters c = service.counters();
  EXPECT_EQ(c.requests, 4u);
  EXPECT_EQ(c.status_2xx, 1u);
  EXPECT_EQ(c.status_4xx, 2u);
  EXPECT_EQ(c.status_5xx, 1u);

  std::string metrics = service.metrics_text();
  EXPECT_NE(metrics.find("georank_requests_total 4"), std::string::npos);
  EXPECT_NE(metrics.find("georank_responses_total{class=\"5xx\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("georank_snapshot_active_id 1"), std::string::npos);
}

TEST(RankingService, JsonRenderingIsDeterministic) {
  // The torn-response loopback test depends on renders being
  // byte-identical for the same (target, snapshot): verify with two
  // service instances over equal snapshots.
  RankingService a;
  RankingService b;
  a.publish(world_v1());
  b.publish(world_v1());
  for (const char* target :
       {"/v1/rankings?country=AU", "/v1/health", "/v1/as/3356",
        "/v1/delta?country=AU"}) {
    EXPECT_EQ(a.handle(target).body, b.handle(target).body) << target;
  }
}

TEST(JsonWriter, EscapesAndFormats) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\n\t\x01");
  w.key("d").value(0.5);
  w.key("n").null();
  w.key("t").value(true);
  w.key("neg").value(static_cast<std::int64_t>(-3));
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"d\":0.5,\"n\":null,"
            "\"t\":true,\"neg\":-3}");
  EXPECT_EQ(json_double(1.0), "1");
  EXPECT_EQ(json_double(0.875), "0.875");
  // Non-finite values are not representable in JSON numbers.
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace georank::serve
