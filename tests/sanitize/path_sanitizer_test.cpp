#include "sanitize/path_sanitizer.hpp"

#include <gtest/gtest.h>

namespace georank::sanitize {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using bgp::RibCollection;
using bgp::RouteEntry;
using bgp::VpId;

Prefix pfx(const char* text) { return *Prefix::parse(text); }

constexpr VpId kVpUs{0x0A000001, 500};
constexpr VpId kVpAu{0x14000001, 600};
constexpr VpId kVpMultihop{0x0A000002, 510};

struct Fixture {
  geo::GeoDatabase geo_db;
  geo::VpGeolocator vps;
  AsnRegistry registry;
  RibCollection ribs;

  Fixture() {
    geo_db.add_range(pfx("10.0.0.0/8").first(), pfx("10.0.0.0/8").last(),
                     geo::CountryCode::of("US"));
    geo_db.add_range(pfx("20.0.0.0/8").first(), pfx("20.0.0.0/8").last(),
                     geo::CountryCode::of("AU"));
    geo_db.finalize();

    vps.add_collector({"us", geo::CountryCode::of("US"), false});
    vps.add_collector({"au", geo::CountryCode::of("AU"), false});
    vps.add_collector({"mh", geo::CountryCode::of("US"), true});
    vps.register_vp(kVpUs, "us");
    vps.register_vp(kVpAu, "au");
    vps.register_vp(kVpMultihop, "mh");

    registry.allocate_range(1, 1000);
    registry.finalize();

    ribs.days.resize(5);
    for (int d = 0; d < 5; ++d) ribs.days[d].day = d;
  }

  void add(const VpId& vp, const char* prefix, AsPath path, int days = 5) {
    for (int d = 0; d < days; ++d) {
      ribs.days[d].entries.push_back(RouteEntry{vp, pfx(prefix), path});
    }
  }

  SanitizeResult run(SanitizerOptions options = {}) {
    if (options.clique.empty()) options.clique = {1, 2};
    PathSanitizer sanitizer{geo_db, vps, registry, options};
    return sanitizer.run(ribs);
  }
};

TEST(IsPoisoned, DetectsCliqueSandwich) {
  std::vector<bgp::Asn> clique{1, 2, 3};
  EXPECT_TRUE(is_poisoned(AsPath{1, 99, 2}, clique));
  EXPECT_TRUE(is_poisoned(AsPath{9, 1, 99, 98, 3, 8}, clique));
  EXPECT_FALSE(is_poisoned(AsPath{1, 2, 99}, clique));   // adjacent clique
  EXPECT_FALSE(is_poisoned(AsPath{99, 1, 98}, clique));  // single clique hop
  EXPECT_FALSE(is_poisoned(AsPath{1, 99, 98}, clique));
  EXPECT_FALSE(is_poisoned(AsPath{1, 99, 2}, {}));       // no clique known
}

TEST(PathSanitizer, AcceptsCleanPath) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100});
  SanitizeResult r = f.run();
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.stats.accepted, 5u);  // one entry per day
  EXPECT_EQ(r.stats.duplicates_merged, 4u);
  const SanitizedPath& sp = r.paths[0];
  EXPECT_EQ(sp.vp, kVpUs);
  EXPECT_EQ(sp.vp_country, geo::CountryCode::of("US"));
  EXPECT_EQ(sp.prefix_country, geo::CountryCode::of("US"));
  EXPECT_EQ(sp.weight, 65536u);
}

TEST(PathSanitizer, RejectsUnstablePrefix) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100}, /*days=*/3);
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.unstable, 3u);
  EXPECT_EQ(r.stats.accepted, 0u);
}

TEST(PathSanitizer, StabilityIsPerPrefixNotPerVp) {
  Fixture f;
  // The prefix is visible every day, but from different VPs.
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100}, /*days=*/3);
  for (int d = 3; d < 5; ++d) {
    f.ribs.days[d].entries.push_back(
        RouteEntry{kVpAu, pfx("10.1.0.0/16"), AsPath{600, 2, 1, 100}});
  }
  SanitizeResult r = f.run();
  EXPECT_EQ(r.stats.unstable, 0u);
  EXPECT_EQ(r.stats.accepted, 5u);
  EXPECT_EQ(r.paths.size(), 2u);  // two distinct (vp, path) combos
}

TEST(PathSanitizer, RejectsUnallocatedAsn) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 5000, 100});
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.unallocated, 5u);
}

TEST(PathSanitizer, RejectsAsSetPath) {
  Fixture f;
  // An otherwise clean path whose line carried AS_SET syntax: the parser
  // flattened it and marked the path; the drop decision happens here.
  AsPath flattened{500, 1, 100};
  flattened.mark_as_set();
  f.add(kVpUs, "10.1.0.0/16", flattened);
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.as_set, 5u);
  EXPECT_EQ(r.stats.total, r.stats.accepted + r.stats.rejected());
}

TEST(PathSanitizer, AsSetPrecedesLoopAndUnallocated) {
  Fixture f;
  // Flattened AS_SET members can masquerade as loops or unallocated
  // hops; the as-set category must claim such entries first.
  AsPath loopy{500, 1, 500, 100};
  loopy.mark_as_set();
  f.add(kVpUs, "10.1.0.0/16", loopy);
  AsPath unallocated{500, 5000, 100};
  unallocated.mark_as_set();
  f.add(kVpUs, "10.2.0.0/16", unallocated);
  SanitizeResult r = f.run();
  EXPECT_EQ(r.stats.as_set, 10u);
  EXPECT_EQ(r.stats.loop, 0u);
  EXPECT_EQ(r.stats.unallocated, 0u);
}

TEST(PathSanitizer, RejectsLoopedPath) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 500, 100});
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.loop, 5u);
}

TEST(PathSanitizer, RejectsPoisonedPath) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 99, 2, 100});
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.poisoned, 5u);
}

TEST(PathSanitizer, RejectsMultihopVp) {
  Fixture f;
  f.add(kVpMultihop, "10.1.0.0/16", AsPath{510, 1, 100});
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.vp_no_location, 5u);
}

TEST(PathSanitizer, RejectsCoveredPrefix) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100});
  f.add(kVpUs, "10.1.0.0/17", AsPath{500, 1, 100});
  f.add(kVpUs, "10.1.128.0/17", AsPath{500, 1, 100});
  SanitizeResult r = f.run();
  EXPECT_EQ(r.stats.covered_prefix, 5u);
  EXPECT_EQ(r.paths.size(), 2u);
}

TEST(PathSanitizer, RejectsUngeolocatablePrefix) {
  Fixture f;
  f.add(kVpUs, "30.1.0.0/16", AsPath{500, 1, 100});  // outside the geo DB
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.prefix_no_location, 5u);
}

TEST(PathSanitizer, StripsRouteServersAndPrepending) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 777, 1, 1, 100});
  SanitizerOptions options;
  options.route_server_asns = {777};
  SanitizeResult r = f.run(std::move(options));
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].path, (AsPath{500, 1, 100}));
}

TEST(PathSanitizer, AccountingSumsToTotal) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100});            // accepted
  f.add(kVpUs, "10.2.0.0/16", AsPath{500, 1, 101}, 2);         // unstable
  f.add(kVpUs, "10.3.0.0/16", AsPath{500, 5000, 102});         // unallocated
  f.add(kVpAu, "20.1.0.0/16", AsPath{600, 2, 600, 103});       // loop
  f.add(kVpMultihop, "10.4.0.0/16", AsPath{510, 1, 104});      // vp no loc
  f.add(kVpUs, "30.0.0.0/16", AsPath{500, 1, 105});            // pfx no loc
  SanitizeResult r = f.run();
  EXPECT_EQ(r.stats.total,
            r.stats.accepted + r.stats.rejected());
  EXPECT_EQ(r.stats.total, 5u * 5u + 2u);
}

TEST(PathSanitizer, InfersCliqueWhenNotGiven) {
  Fixture f;
  // Clique {1,2} visible through cross traffic.
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 2, 100});
  f.add(kVpAu, "10.1.0.0/16", AsPath{600, 2, 1, 100});
  f.add(kVpUs, "20.1.0.0/16", AsPath{500, 1, 2, 600});
  f.add(kVpAu, "20.2.0.0/16", AsPath{600, 2, 1, 500});
  SanitizerOptions options;  // no explicit clique
  PathSanitizer sanitizer{f.geo_db, f.vps, f.registry, options};
  SanitizeResult r = sanitizer.run(f.ribs);
  EXPECT_FALSE(r.clique.empty());
}

TEST(PathSanitizer, StabilityDaysOverride) {
  Fixture f;
  // Present on 3 of 5 days: unstable under the default rule...
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100}, /*days=*/3);
  SanitizeResult strict = f.run();
  EXPECT_EQ(strict.stats.unstable, 3u);
  // ...but acceptable when only 3 days of presence are required.
  SanitizerOptions options;
  options.stability_days = 3;
  SanitizeResult relaxed = f.run(std::move(options));
  EXPECT_EQ(relaxed.stats.unstable, 0u);
  EXPECT_EQ(relaxed.stats.accepted, 3u);
}

TEST(PathSanitizer, CapturesRejectedSamples) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 500, 100});      // loop x5 days
  f.add(kVpMultihop, "10.2.0.0/16", AsPath{510, 1, 104});     // vp no loc x5
  SanitizerOptions options;
  options.samples_per_category = 2;
  SanitizeResult r = f.run(std::move(options));
  std::size_t loops = 0, vp_no_loc = 0;
  for (const RejectedSample& s : r.samples) {
    if (s.reason == FilterReason::kLoop) ++loops;
    if (s.reason == FilterReason::kVpNoLocation) ++vp_no_loc;
  }
  // Capped at 2 per category despite 5 rejected entries each.
  EXPECT_EQ(loops, 2u);
  EXPECT_EQ(vp_no_loc, 2u);
  // The sample carries the offending entry.
  EXPECT_EQ(r.samples[0].entry.path, (AsPath{500, 1, 500, 100}));
}

TEST(PathSanitizer, NoSamplesByDefault) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 500, 100});
  SanitizeResult r = f.run();
  EXPECT_TRUE(r.samples.empty());
}

TEST(PathSanitizer, DeduplicatesAcrossDays) {
  Fixture f;
  f.add(kVpUs, "10.1.0.0/16", AsPath{500, 1, 100});
  f.add(kVpAu, "10.1.0.0/16", AsPath{600, 2, 100});
  SanitizeResult r = f.run();
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.stats.accepted, 10u);
  EXPECT_EQ(r.stats.duplicates_merged, 8u);
}

}  // namespace
}  // namespace georank::sanitize
