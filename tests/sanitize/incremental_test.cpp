// IncrementalSanitizer: the fast path must be indistinguishable from a
// batch PathSanitizer::run over the same collection — every row, every
// counter, every audit sample — and every precondition violation must
// fall back to the full run rather than silently diverge.
#include "sanitize/incremental_sanitizer.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "sanitize/path_sanitizer.hpp"

namespace georank::sanitize {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using bgp::RibCollection;
using bgp::RouteEntry;
using bgp::VpId;

Prefix pfx(const char* text) { return *Prefix::parse(text); }

constexpr VpId kVpUs{0x0A000001, 500};
constexpr VpId kVpAu{0x14000001, 600};

struct Fixture {
  geo::GeoDatabase geo_db;
  geo::VpGeolocator vps;
  AsnRegistry registry;
  RibCollection ribs;

  Fixture() {
    geo_db.add_range(pfx("10.0.0.0/8").first(), pfx("10.0.0.0/8").last(),
                     geo::CountryCode::of("US"));
    geo_db.add_range(pfx("20.0.0.0/8").first(), pfx("20.0.0.0/8").last(),
                     geo::CountryCode::of("AU"));
    geo_db.finalize();

    vps.add_collector({"us", geo::CountryCode::of("US"), false});
    vps.add_collector({"au", geo::CountryCode::of("AU"), false});
    vps.register_vp(kVpUs, "us");
    vps.register_vp(kVpAu, "au");

    registry.allocate_range(1, 1000);
    registry.finalize();

    ribs.days.resize(3);
    for (int d = 0; d < 3; ++d) ribs.days[d].day = d;
    add(kVpUs, "10.1.0.0/16", AsPath{1, 10});
    add(kVpAu, "10.1.0.0/16", AsPath{2, 11, 10});
    add(kVpUs, "20.1.0.0/16", AsPath{1, 2, 20});
    add(kVpAu, "20.1.0.0/16", AsPath{2, 20});
  }

  void add(const VpId& vp, const char* prefix, AsPath path, int days = 3) {
    for (int d = 0; d < days; ++d) {
      ribs.days[d].entries.push_back(RouteEntry{vp, pfx(prefix), path});
    }
  }

  void add_final_day(const VpId& vp, const char* prefix, AsPath path) {
    ribs.days.back().entries.push_back(RouteEntry{vp, pfx(prefix), path});
  }

  static SanitizerOptions options() {
    SanitizerOptions o;
    o.clique = {1, 2};
    o.samples_per_category = 2;
    return o;
  }

  [[nodiscard]] SanitizeResult batch() const {
    PathSanitizer sanitizer{geo_db, vps, registry, options()};
    return sanitizer.run(ribs);
  }
};

void expect_equal(const SanitizeResult& got, const SanitizeResult& want) {
  ASSERT_EQ(got.paths.size(), want.paths.size());
  for (std::size_t i = 0; i < got.paths.size(); ++i) {
    EXPECT_EQ(got.paths[i].vp, want.paths[i].vp) << "row " << i;
    EXPECT_EQ(got.paths[i].vp_country, want.paths[i].vp_country) << "row " << i;
    EXPECT_EQ(got.paths[i].prefix, want.paths[i].prefix) << "row " << i;
    EXPECT_EQ(got.paths[i].prefix_country, want.paths[i].prefix_country)
        << "row " << i;
    EXPECT_EQ(got.paths[i].weight, want.paths[i].weight) << "row " << i;
    EXPECT_EQ(got.paths[i].path, want.paths[i].path) << "row " << i;
  }
  EXPECT_EQ(got.stats.total, want.stats.total);
  EXPECT_EQ(got.stats.accepted, want.stats.accepted);
  EXPECT_EQ(got.stats.unstable, want.stats.unstable);
  EXPECT_EQ(got.stats.unallocated, want.stats.unallocated);
  EXPECT_EQ(got.stats.loop, want.stats.loop);
  EXPECT_EQ(got.stats.poisoned, want.stats.poisoned);
  EXPECT_EQ(got.stats.vp_no_location, want.stats.vp_no_location);
  EXPECT_EQ(got.stats.covered_prefix, want.stats.covered_prefix);
  EXPECT_EQ(got.stats.prefix_no_location, want.stats.prefix_no_location);
  EXPECT_EQ(got.stats.as_set, want.stats.as_set);
  EXPECT_EQ(got.stats.duplicates_merged, want.stats.duplicates_merged);
  EXPECT_EQ(got.clique, want.clique);
  ASSERT_EQ(got.samples.size(), want.samples.size());
  for (std::size_t i = 0; i < got.samples.size(); ++i) {
    EXPECT_EQ(got.samples[i].reason, want.samples[i].reason) << "sample " << i;
    EXPECT_EQ(got.samples[i].day, want.samples[i].day) << "sample " << i;
    EXPECT_TRUE(got.samples[i].entry == want.samples[i].entry) << "sample " << i;
  }
}

TEST(IncrementalSanitizer, FullRunMatchesBatchAndReportsOutcome) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_full(f.ribs, &outcome);
  expect_equal(result, f.batch());
  EXPECT_FALSE(outcome.fast_path);
  EXPECT_EQ(outcome.days_resanitized, 3u);
}

TEST(IncrementalSanitizer, FastPathMatchesBatchOnFinalDayGrowth) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult previous = inc.run_full(f.ribs);

  // New path for a stable prefix, a brand-new (hence unstable) prefix,
  // and an exact duplicate of a head entry.
  f.add_final_day(kVpUs, "10.1.0.0/16", AsPath{1, 3, 10});
  f.add_final_day(kVpAu, "10.9.0.0/16", AsPath{2, 12});
  f.add_final_day(kVpUs, "10.1.0.0/16", AsPath{1, 10});

  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_fast(f.ribs, std::move(previous), &outcome);
  expect_equal(result, f.batch());
  EXPECT_TRUE(outcome.fast_path);
  EXPECT_EQ(outcome.days_reused, 2u);
  EXPECT_EQ(outcome.days_resanitized, 1u);
}

TEST(IncrementalSanitizer, RepeatedFastPathsStayConsistent) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult result = inc.run_full(f.ribs);

  for (int round = 0; round < 3; ++round) {
    f.add_final_day(kVpAu, "20.1.0.0/16",
                    AsPath{2, static_cast<bgp::Asn>(30 + round), 20});
    ASSERT_TRUE(inc.can_fast_path(f.ribs)) << "round " << round;
    result = inc.run_fast(f.ribs, std::move(result));
    expect_equal(result, f.batch());
  }
}

TEST(IncrementalSanitizer, FastPathMatchesBatchOnFinalDayRewrite) {
  // NOT an append: an entry lands at the FRONT of the final day and one
  // final-day route is withdrawn. The stable set is intact (both
  // prefixes keep their three-day presence) so the fast path is still
  // taken — on the replace branch, which rewinds the dedup state to the
  // final-day boundary and re-filters the whole day.
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult previous = inc.run_full(f.ribs);
  const std::size_t head_rows = inc.memo_head_rows();

  auto& entries = f.ribs.days.back().entries;
  entries.insert(entries.begin(),
                 RouteEntry{kVpAu, pfx("10.1.0.0/16"), AsPath{2, 14, 10}});
  entries.pop_back();  // drop kVpAu's 20.1.0.0/16 (kVpUs still announces it)

  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_fast(f.ribs, std::move(previous), &outcome);
  expect_equal(result, f.batch());
  EXPECT_TRUE(outcome.fast_path);
  EXPECT_EQ(outcome.rows_reused, head_rows);
}

TEST(IncrementalSanitizer, AppendFastPathReusesEveryPreviousRow) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult previous = inc.run_full(f.ribs);
  const std::size_t previous_rows = previous.paths.size();

  // Strict extension: the memoized final day is a literal prefix of the
  // new one, so run_fast keeps the previous result wholesale and filters
  // only the appended tail (one fresh row, one merged duplicate).
  f.add_final_day(kVpAu, "10.1.0.0/16", AsPath{2, 15, 10});
  f.add_final_day(kVpAu, "10.1.0.0/16", AsPath{2, 15, 10});

  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_fast(f.ribs, std::move(previous), &outcome);
  expect_equal(result, f.batch());
  EXPECT_TRUE(outcome.fast_path);
  EXPECT_EQ(outcome.rows_reused, previous_rows);
  EXPECT_EQ(result.paths.size(), previous_rows + 1);
}

TEST(IncrementalSanitizer, AlternatingAppendAndRewriteStayConsistent) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult result = inc.run_full(f.ribs);

  // Append...
  f.add_final_day(kVpUs, "20.1.0.0/16", AsPath{1, 16, 20});
  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  result = inc.run_fast(f.ribs, std::move(result));
  expect_equal(result, f.batch());

  // ...then reorder the final day (same entries, different order: the
  // prefix fold no longer matches, forcing the replace branch)...
  auto& entries = f.ribs.days.back().entries;
  std::swap(entries.front(), entries.back());
  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  result = inc.run_fast(f.ribs, std::move(result));
  expect_equal(result, f.batch());

  // ...then append again on top of the rewritten day.
  f.add_final_day(kVpAu, "20.1.0.0/16", AsPath{2, 17, 20});
  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  result = inc.run_fast(f.ribs, std::move(result));
  expect_equal(result, f.batch());
}

TEST(IncrementalSanitizer, UnchangedCollectionFastPathsToIdenticalResult) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult previous = inc.run_full(f.ribs);
  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  SanitizeResult result = inc.run_fast(f.ribs, std::move(previous));
  expect_equal(result, f.batch());
}

TEST(IncrementalSanitizer, StablePrefixVanishingFallsBackAndMatches) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult ignored = inc.run_full(f.ribs);
  (void)ignored;

  // Withdraw every final-day route for 20.1.0.0/16: its day count drops
  // below the stability threshold, the stable set changes, and the
  // cached PrefixGeoResult is no longer valid.
  auto& entries = f.ribs.days.back().entries;
  std::erase_if(entries, [](const RouteEntry& e) {
    return e.prefix == pfx("20.1.0.0/16");
  });

  EXPECT_FALSE(inc.can_fast_path(f.ribs));
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_full(f.ribs, &outcome);
  expect_equal(result, f.batch());
  EXPECT_FALSE(outcome.fast_path);
}

TEST(IncrementalSanitizer, HeadDayChangeFallsBack) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult ignored = inc.run_full(f.ribs);
  (void)ignored;
  f.ribs.days[1].entries.push_back(
      RouteEntry{kVpUs, pfx("10.2.0.0/16"), AsPath{1, 13}});
  EXPECT_FALSE(inc.can_fast_path(f.ribs));
}

TEST(IncrementalSanitizer, DayCountChangeFallsBack) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult ignored = inc.run_full(f.ribs);
  (void)ignored;
  f.ribs.days.push_back(bgp::RibSnapshot{3, {}});
  EXPECT_FALSE(inc.can_fast_path(f.ribs));
  // The grown collection full-runs fine and re-arms the memo.
  SanitizeResult result = inc.run_full(f.ribs);
  expect_equal(result, f.batch());
  EXPECT_TRUE(inc.can_fast_path(f.ribs));
}

TEST(IncrementalSanitizer, InferredCliqueNeverFastPaths) {
  Fixture f;
  SanitizerOptions options = Fixture::options();
  options.clique.clear();
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, options};
  SanitizeResult ignored = inc.run_full(f.ribs);
  (void)ignored;
  EXPECT_FALSE(inc.can_fast_path(f.ribs));

  // The full run still matches the batch sanitizer with inference on.
  PathSanitizer batch{f.geo_db, f.vps, f.registry, options};
  expect_equal(inc.run_full(f.ribs), batch.run(f.ribs));
}

TEST(IncrementalSanitizer, RunFastWithoutStagedCheckFallsBackToFull) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  // No can_fast_path() call staged anything: run_fast must full-run.
  IncrementalSanitizer::Outcome outcome;
  SanitizeResult result = inc.run_fast(f.ribs, SanitizeResult{}, &outcome);
  expect_equal(result, f.batch());
  EXPECT_FALSE(outcome.fast_path);
}

TEST(IncrementalSanitizer, InvalidateForcesFullRun) {
  Fixture f;
  IncrementalSanitizer inc{f.geo_db, f.vps, f.registry, Fixture::options()};
  SanitizeResult ignored = inc.run_full(f.ribs);
  (void)ignored;
  ASSERT_TRUE(inc.can_fast_path(f.ribs));
  inc.invalidate();
  EXPECT_FALSE(inc.can_fast_path(f.ribs));
}

}  // namespace
}  // namespace georank::sanitize
