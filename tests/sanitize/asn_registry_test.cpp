#include "sanitize/asn_registry.hpp"

#include <gtest/gtest.h>

namespace georank::sanitize {
namespace {

TEST(AsnRegistry, AllocatedRanges) {
  AsnRegistry r;
  r.allocate_range(100, 200);
  r.allocate(500);
  r.finalize();
  EXPECT_TRUE(r.allocated(100));
  EXPECT_TRUE(r.allocated(150));
  EXPECT_TRUE(r.allocated(200));
  EXPECT_TRUE(r.allocated(500));
  EXPECT_FALSE(r.allocated(99));
  EXPECT_FALSE(r.allocated(201));
  EXPECT_FALSE(r.allocated(0));
}

TEST(AsnRegistry, MergesOverlappingRanges) {
  AsnRegistry r;
  r.allocate_range(100, 200);
  r.allocate_range(150, 300);
  r.allocate_range(301, 400);  // adjacent: merges too
  r.finalize();
  EXPECT_TRUE(r.allocated(250));
  EXPECT_TRUE(r.allocated(400));
  EXPECT_FALSE(r.allocated(401));
}

TEST(AsnRegistry, RejectsInvertedRange) {
  AsnRegistry r;
  EXPECT_THROW(r.allocate_range(10, 5), std::invalid_argument);
}

TEST(AsnRegistry, ZeroClampedOut) {
  AsnRegistry r;
  r.allocate_range(0, 10);
  r.finalize();
  EXPECT_FALSE(r.allocated(0));
  EXPECT_TRUE(r.allocated(1));
}

TEST(AsnRegistry, AllAllocatedPath) {
  AsnRegistry r;
  r.allocate_range(1, 1000);
  r.finalize();
  EXPECT_TRUE(r.all_allocated(bgp::AsPath{1, 2, 3}));
  EXPECT_FALSE(r.all_allocated(bgp::AsPath{1, 2000, 3}));
  EXPECT_TRUE(r.all_allocated(bgp::AsPath{}));
}

TEST(AsnRegistry, Permissive) {
  AsnRegistry r = AsnRegistry::permissive();
  EXPECT_TRUE(r.allocated(1));
  EXPECT_TRUE(r.allocated(4200000000u));
  EXPECT_FALSE(r.allocated(0));
}

}  // namespace
}  // namespace georank::sanitize
