#include "robust/confidence.hpp"

#include <gtest/gtest.h>

namespace georank::robust {
namespace {

TEST(ConfidenceTier, ToStringCoversAllTiers) {
  EXPECT_EQ(to_string(ConfidenceTier::kHigh), "high");
  EXPECT_EQ(to_string(ConfidenceTier::kDegraded), "degraded");
  EXPECT_EQ(to_string(ConfidenceTier::kInsufficient), "insufficient");
}

TEST(ConfidenceTier, WorstIsMax) {
  EXPECT_EQ(worst(ConfidenceTier::kHigh, ConfidenceTier::kHigh),
            ConfidenceTier::kHigh);
  EXPECT_EQ(worst(ConfidenceTier::kHigh, ConfidenceTier::kDegraded),
            ConfidenceTier::kDegraded);
  EXPECT_EQ(worst(ConfidenceTier::kInsufficient, ConfidenceTier::kDegraded),
            ConfidenceTier::kInsufficient);
  EXPECT_EQ(worst(ConfidenceTier::kDegraded, ConfidenceTier::kInsufficient),
            ConfidenceTier::kInsufficient);
}

TEST(DegradationPolicy, ViewTierThresholds) {
  DegradationPolicy policy;  // min_vps = 3
  EXPECT_EQ(policy.view_tier(0), ConfidenceTier::kInsufficient);
  EXPECT_EQ(policy.view_tier(1), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.view_tier(2), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.view_tier(3), ConfidenceTier::kHigh);
  EXPECT_EQ(policy.view_tier(100), ConfidenceTier::kHigh);
}

TEST(DegradationPolicy, ViewTierHonorsCustomMinimum) {
  DegradationPolicy policy;
  policy.min_vps = 5;
  EXPECT_EQ(policy.view_tier(4), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.view_tier(5), ConfidenceTier::kHigh);
}

TEST(DegradationPolicy, GeoTierThresholds) {
  DegradationPolicy policy;  // min_geo_consensus = 0.5
  EXPECT_EQ(policy.geo_tier(0, 0), ConfidenceTier::kInsufficient);
  EXPECT_EQ(policy.geo_tier(0, 100), ConfidenceTier::kInsufficient);
  // Exactly at the threshold counts as consensus (the paper's >= 50%).
  EXPECT_EQ(policy.geo_tier(100, 100), ConfidenceTier::kHigh);
  EXPECT_EQ(policy.geo_tier(99, 101), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.geo_tier(100, 0), ConfidenceTier::kHigh);
}

TEST(DegradationPolicy, GeoConsensusShare) {
  EXPECT_DOUBLE_EQ(DegradationPolicy::geo_consensus_share(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(DegradationPolicy::geo_consensus_share(3, 1), 0.75);
  EXPECT_DOUBLE_EQ(DegradationPolicy::geo_consensus_share(0, 5), 0.0);
}

TEST(DegradationPolicy, CountryTierGatesOnInternationalAndGeo) {
  DegradationPolicy policy;
  // Strong everything -> high.
  EXPECT_EQ(policy.country_tier(3, 5, 100, 0), ConfidenceTier::kHigh);
  // No international view -> insufficient no matter the rest.
  EXPECT_EQ(policy.country_tier(10, 0, 100, 0), ConfidenceTier::kInsufficient);
  // No geo evidence -> insufficient.
  EXPECT_EQ(policy.country_tier(3, 5, 0, 0), ConfidenceTier::kInsufficient);
  // Thin international view degrades.
  EXPECT_EQ(policy.country_tier(3, 2, 100, 0), ConfidenceTier::kDegraded);
  // Failed geo consensus degrades.
  EXPECT_EQ(policy.country_tier(3, 5, 10, 90), ConfidenceTier::kDegraded);
}

TEST(DegradationPolicy, WeakNationalViewOnlyDegrades) {
  DegradationPolicy policy;
  // Most countries host no VP (§3.2): a missing national view must cap
  // the tier at degraded, never push it to insufficient.
  EXPECT_EQ(policy.country_tier(0, 5, 100, 0), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.country_tier(1, 5, 100, 0), ConfidenceTier::kDegraded);
  // ...and it does not resurrect an already-degraded country.
  EXPECT_EQ(policy.country_tier(0, 2, 100, 0), ConfidenceTier::kDegraded);
  EXPECT_EQ(policy.country_tier(0, 0, 100, 0), ConfidenceTier::kInsufficient);
}

}  // namespace
}  // namespace georank::robust
