#include "robust/fault_plan.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "core/path_store.hpp"
#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "robust/data_health.hpp"

namespace georank::robust {
namespace {

using geo::CountryCode;

struct Fixture {
  gen::World world;
  bgp::RibCollection ribs;
  core::Pipeline pipeline;

  Fixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()),
        ribs(gen::RibGenerator{world, gen::NoiseSpec{}, 5}.generate(5)),
        pipeline(world.geo_db, world.vps, world.asn_registry, world.graph,
                 config(world)) {
    pipeline.load(ribs);
  }

  static core::PipelineConfig config(const gen::World& world) {
    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::span<const sanitize::SanitizedPath> clean_paths() {
  return fixture().pipeline.sanitized().paths;
}

TEST(Perturb, DeterministicForIdenticalSpecs) {
  PerturbationSpec spec;
  spec.seed = 7;
  spec.drop_vps = 2;
  spec.corrupt_geo_fraction = 0.1;
  spec.drop_path_fraction = 0.05;
  PerturbationResult a = perturb(clean_paths(), spec);
  PerturbationResult b = perturb(clean_paths(), spec);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  EXPECT_EQ(a.dropped_vps, b.dropped_vps);
  EXPECT_EQ(a.corrupted_prefixes, b.corrupted_prefixes);
  EXPECT_EQ(a.dropped_paths, b.dropped_paths);
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].vp, b.paths[i].vp);
    EXPECT_EQ(a.paths[i].prefix, b.paths[i].prefix);
  }
}

TEST(Perturb, DimensionsDrawFromIndependentStreams) {
  PerturbationSpec vp_only;
  vp_only.seed = 11;
  vp_only.drop_vps = 3;
  PerturbationSpec combined = vp_only;
  combined.corrupt_geo_fraction = 0.1;
  combined.drop_path_fraction = 0.1;
  // Enabling other dimensions must not change which VPs are dropped.
  EXPECT_EQ(perturb(clean_paths(), vp_only).dropped_vps,
            perturb(clean_paths(), combined).dropped_vps);
}

TEST(Perturb, TargetedVpDropStaysInTargetCountry) {
  std::unordered_map<bgp::VpId, CountryCode, bgp::VpIdHash> hosted;
  for (const sanitize::SanitizedPath& p : clean_paths()) {
    hosted.emplace(p.vp, p.vp_country);
  }
  PerturbationSpec spec;
  spec.drop_vps = 2;
  spec.vp_target = CountryCode::of("AU");
  PerturbationResult result = perturb(clean_paths(), spec);
  ASSERT_EQ(result.dropped_vps.size(), 2u);
  for (bgp::VpId vp : result.dropped_vps) {
    EXPECT_EQ(hosted.at(vp), CountryCode::of("AU"));
  }
  for (const sanitize::SanitizedPath& p : result.paths) {
    for (bgp::VpId vp : result.dropped_vps) EXPECT_NE(p.vp, vp);
  }
}

TEST(Perturb, DropCountClampsToCandidates) {
  PerturbationSpec spec;
  spec.drop_vps = 1u << 20;  // far more VPs than exist
  PerturbationResult result = perturb(clean_paths(), spec);
  EXPECT_TRUE(result.paths.empty());
  std::set<bgp::VpId> distinct;
  for (const sanitize::SanitizedPath& p : clean_paths()) distinct.insert(p.vp);
  EXPECT_EQ(result.dropped_vps.size(), distinct.size());
}

TEST(Perturb, FullTargetedGeoCorruptionRemovesCountry) {
  CountryCode au = CountryCode::of("AU");
  PerturbationSpec spec;
  spec.corrupt_geo_fraction = 1.0;
  spec.geo_target = au;
  PerturbationResult result = perturb(clean_paths(), spec);
  ASSERT_FALSE(result.corrupted_prefixes.empty());
  EXPECT_EQ(result.corrupted_addresses.size(), 1u);
  EXPECT_GT(result.corrupted_addresses.at(au), 0u);
  for (const sanitize::SanitizedPath& p : result.paths) {
    EXPECT_NE(p.prefix_country, au);
  }
}

TEST(Perturb, FractionsAreClampedAndZeroSpecIsIdentity) {
  PerturbationSpec zero;
  PerturbationResult same = perturb(clean_paths(), zero);
  EXPECT_EQ(same.paths.size(), clean_paths().size());
  EXPECT_TRUE(same.dropped_vps.empty());
  EXPECT_EQ(same.dropped_paths, 0u);

  PerturbationSpec wild;
  wild.corrupt_geo_fraction = 42.0;  // clamped to 1
  wild.drop_path_fraction = -3.0;    // clamped to 0
  PerturbationResult all = perturb(clean_paths(), wild);
  EXPECT_TRUE(all.paths.empty());
  EXPECT_EQ(all.dropped_paths, 0u);
}

// Acceptance property: dropping up to k VPs or corrupting up to 10% of
// geo blocks never crashes or throws from the query paths.
TEST(Perturb, QueryPathsSurviveBoundedFaultsWithoutThrowing) {
  const Fixture& f = fixture();
  std::vector<CountryCode> census = f.pipeline.store().countries();
  const core::CountryRankings& rankings = f.pipeline.rankings();
  for (std::size_t drop = 0; drop <= 4; ++drop) {
    for (double geo_fraction : {0.0, 0.05, 0.10}) {
      PerturbationSpec spec;
      spec.seed = 100 + drop;
      spec.drop_vps = drop;
      spec.corrupt_geo_fraction = geo_fraction;
      EXPECT_NO_THROW({
        PerturbationResult result = perturb(clean_paths(), spec);
        core::PathStore store{result.paths};
        for (CountryCode cc : census) {
          core::CountryMetrics m = rankings.compute(store, cc);
          (void)m;
        }
        HealthInputs inputs;
        inputs.paths = result.paths;
        inputs.extra_geo_rejections = &result.corrupted_addresses;
        HealthReport health = compute_health(inputs);
        for (CountryCode cc : census) (void)health.tier_of(cc);
      }) << "drop=" << drop << " geo=" << geo_fraction;
    }
  }
}

// Acceptance property: a targeted perturbation flags exactly the
// perturbed country, with every other country's tier unchanged.
TEST(Perturb, HealthFlagsExactlyThePerturbedCountry) {
  CountryCode au = CountryCode::of("AU");
  HealthInputs clean_inputs;
  clean_inputs.paths = clean_paths();
  HealthReport clean = compute_health(clean_inputs);
  ASSERT_NE(clean.find(au), nullptr);

  PerturbationSpec spec;
  spec.corrupt_geo_fraction = 1.0;
  spec.geo_target = au;
  PerturbationResult result = perturb(clean_paths(), spec);
  HealthInputs inputs;
  inputs.paths = result.paths;
  inputs.extra_geo_rejections = &result.corrupted_addresses;
  HealthReport perturbed = compute_health(inputs);

  std::vector<CountryCode> flagged;
  for (const CountryHealth& h : clean.countries) {
    if (perturbed.tier_of(h.country) != h.overall) flagged.push_back(h.country);
  }
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], au);
  // All AU evidence is gone; the corruption shows up as lost consensus.
  EXPECT_EQ(perturbed.tier_of(au), ConfidenceTier::kInsufficient);
  const CountryHealth* after = perturbed.find(au);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->geolocated_addresses, 0u);
  EXPECT_GT(after->no_consensus_addresses, 0u);
}

TEST(Perturb, TargetedVpDropFlagsOnlyCountriesWithoutMargin) {
  CountryCode au = CountryCode::of("AU");
  DegradationPolicy policy;
  HealthInputs clean_inputs;
  clean_inputs.paths = clean_paths();
  HealthReport clean = compute_health(clean_inputs, policy);

  PerturbationSpec spec;
  spec.drop_vps = 2;
  spec.vp_target = au;
  PerturbationResult result = perturb(clean_paths(), spec);
  HealthInputs inputs;
  inputs.paths = result.paths;
  HealthReport perturbed = compute_health(inputs, policy);

  for (const CountryHealth& h : clean.countries) {
    if (h.country == au) continue;
    // Other countries lose at most the dropped VPs from their
    // international view; with margin above the policy minimum their
    // tier must not move.
    if (h.international_vps >= policy.min_vps + result.dropped_vps.size() &&
        h.national_vps >= policy.min_vps) {
      EXPECT_EQ(perturbed.tier_of(h.country), h.overall)
          << h.country.to_string();
    }
  }
  // AU itself lost national VPs.
  const CountryHealth* before = clean.find(au);
  const CountryHealth* after = perturbed.find(au);
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->national_vps,
            before->national_vps - result.dropped_vps.size());
}

// ---------------------------------------------------------------- harness

void expect_identical(const RobustnessReport& a, const RobustnessReport& b) {
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t c = 0; c < a.curves.size(); ++c) {
    EXPECT_EQ(a.curves[c].country, b.curves[c].country);
    ASSERT_EQ(a.curves[c].points.size(), b.curves[c].points.size());
    for (std::size_t p = 0; p < a.curves[c].points.size(); ++p) {
      const RobustnessPoint& x = a.curves[c].points[p];
      const RobustnessPoint& y = b.curves[c].points[p];
      EXPECT_EQ(x.dimension, y.dimension);
      EXPECT_EQ(x.trials, y.trials);
      for (auto [u, v] : {std::pair{x.severity, y.severity},
                          std::pair{x.cci, y.cci}, std::pair{x.ccn, y.ccn},
                          std::pair{x.ahi, y.ahi}, std::pair{x.ahn, y.ahn},
                          std::pair{x.worst, y.worst}}) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(u),
                  std::bit_cast<std::uint64_t>(v));
      }
    }
  }
}

TEST(RobustnessHarness, ThrowsBeforeLoad) {
  const Fixture& f = fixture();
  core::Pipeline empty{f.world.geo_db, f.world.vps, f.world.asn_registry,
                       f.world.graph, Fixture::config(f.world)};
  RobustnessHarness harness{empty};
  EXPECT_THROW((void)harness.run(FaultPlan::defaults()), std::logic_error);
}

TEST(RobustnessHarness, CurvesCoverPlanAndStayInRange) {
  const Fixture& f = fixture();
  FaultPlan plan = FaultPlan::defaults();
  plan.trials = 2;
  RobustnessHarness harness{f.pipeline};
  RobustnessReport report = harness.run(plan);

  std::size_t steps = plan.vp_drop_steps.size() + plan.geo_corrupt_steps.size() +
                      plan.path_drop_steps.size();
  ASSERT_EQ(report.curves.size(), f.pipeline.store().countries().size());
  for (std::size_t c = 0; c < report.curves.size(); ++c) {
    const RobustnessCurve& curve = report.curves[c];
    EXPECT_EQ(curve.country, f.pipeline.store().countries()[c]);  // sorted
    ASSERT_EQ(curve.points.size(), steps);
    for (const RobustnessPoint& p : curve.points) {
      EXPECT_EQ(p.trials, plan.trials);
      for (double score : {p.cci, p.ccn, p.ahi, p.ahn, p.worst}) {
        EXPECT_GE(score, 0.0);
        EXPECT_LE(score, 1.0);
      }
      EXPECT_LE(p.worst, p.cci);
    }
    EXPECT_LE(curve.worst(), curve.points.front().worst);
  }
}

// Acceptance property: the robustness run is bit-identical across
// thread counts.
TEST(RobustnessHarness, BitIdenticalAcrossThreadCounts) {
  const Fixture& f = fixture();
  FaultPlan plan = FaultPlan::defaults();
  plan.trials = 2;
  RobustnessHarness harness{f.pipeline};

  ASSERT_EQ(setenv("GEORANK_THREADS", "1", 1), 0);
  RobustnessReport serial = harness.run(plan);
  ASSERT_EQ(setenv("GEORANK_THREADS", "7", 1), 0);
  RobustnessReport parallel = harness.run(plan);
  unsetenv("GEORANK_THREADS");
  expect_identical(serial, parallel);
}

TEST(RobustnessHarness, CountrySubsetRestrictsCurves) {
  const Fixture& f = fixture();
  FaultPlan plan;
  plan.vp_drop_steps = {1};
  plan.trials = 1;
  std::vector<CountryCode> subset{CountryCode::of("AU")};
  RobustnessReport report = RobustnessHarness{f.pipeline}.run(plan, subset);
  ASSERT_EQ(report.curves.size(), 1u);
  EXPECT_EQ(report.curves[0].country, CountryCode::of("AU"));
  ASSERT_EQ(report.curves[0].points.size(), 1u);
  EXPECT_EQ(report.curves[0].points[0].dimension, FaultDimension::kDropVps);
}

TEST(FaultPlanDefaults, MatchTheDocumentedSweep) {
  FaultPlan plan = FaultPlan::defaults();
  EXPECT_EQ(plan.vp_drop_steps, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_EQ(plan.geo_corrupt_steps, (std::vector<double>{0.05, 0.10}));
  EXPECT_EQ(plan.path_drop_steps, (std::vector<double>{0.05, 0.10}));
  EXPECT_EQ(plan.trials, 3u);
  EXPECT_EQ(plan.top_k, 10u);
}

TEST(FaultDimensionNames, AreStable) {
  EXPECT_EQ(to_string(FaultDimension::kDropVps), "drop-vps");
  EXPECT_EQ(to_string(FaultDimension::kCorruptGeo), "corrupt-geo");
  EXPECT_EQ(to_string(FaultDimension::kDropPaths), "drop-paths");
}

}  // namespace
}  // namespace georank::robust
