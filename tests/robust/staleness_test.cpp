// robust::StalenessPolicy — the age -> serving-state mapping underneath
// live::HealthMonitor. Pure functions, no clock, fully constexpr-able.
#include "robust/staleness.hpp"

#include <gtest/gtest.h>

namespace georank::robust {
namespace {

TEST(StalenessPolicy, ClassifiesByAgeWithInclusiveBoundaries) {
  StalenessPolicy policy;  // 300 / 900 defaults
  EXPECT_EQ(policy.classify(0.0), ServingState::kFresh);
  EXPECT_EQ(policy.classify(299.999), ServingState::kFresh);
  EXPECT_EQ(policy.classify(300.0), ServingState::kStale);  // >= threshold
  EXPECT_EQ(policy.classify(899.999), ServingState::kStale);
  EXPECT_EQ(policy.classify(900.0), ServingState::kDegraded);
  EXPECT_EQ(policy.classify(1e12), ServingState::kDegraded);
}

TEST(StalenessPolicy, NeverClassifiesIntoRecovering) {
  // kRecovering is an operational state entered explicitly by the
  // recovery path; no age can produce it.
  StalenessPolicy policy;
  for (double age = 0.0; age < 10000.0; age += 93.7) {
    EXPECT_NE(policy.classify(age), ServingState::kRecovering);
  }
}

TEST(ServingState, StalerIsMaxOverTheWorstFirstOrder) {
  EXPECT_EQ(staler(ServingState::kFresh, ServingState::kStale),
            ServingState::kStale);
  EXPECT_EQ(staler(ServingState::kDegraded, ServingState::kStale),
            ServingState::kDegraded);
  EXPECT_EQ(staler(ServingState::kFresh, ServingState::kFresh),
            ServingState::kFresh);
  EXPECT_EQ(staler(ServingState::kDegraded, ServingState::kRecovering),
            ServingState::kRecovering);
}

TEST(ServingState, NamesAreStableWireVocabulary) {
  // These strings appear verbatim in /v1/health and /metrics labels.
  EXPECT_EQ(to_string(ServingState::kFresh), "fresh");
  EXPECT_EQ(to_string(ServingState::kStale), "stale");
  EXPECT_EQ(to_string(ServingState::kDegraded), "degraded");
  EXPECT_EQ(to_string(ServingState::kRecovering), "recovering");
}

TEST(StalenessPolicy, CustomThresholdsAreHonored) {
  StalenessPolicy policy;
  policy.stale_after_seconds = 1.0;
  policy.degraded_after_seconds = 2.0;
  EXPECT_EQ(policy.classify(0.5), ServingState::kFresh);
  EXPECT_EQ(policy.classify(1.5), ServingState::kStale);
  EXPECT_EQ(policy.classify(2.5), ServingState::kDegraded);
}

}  // namespace
}  // namespace georank::robust
