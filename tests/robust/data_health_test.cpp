#include "robust/data_health.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/sharded_path_store.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::robust {
namespace {

using geo::CountryCode;

sanitize::SanitizedPath make_path(std::uint32_t vp_ip, const char* vp_cc,
                                  bgp::Prefix prefix, const char* prefix_cc,
                                  std::uint64_t weight) {
  sanitize::SanitizedPath p;
  p.vp = bgp::VpId{vp_ip, vp_ip};
  p.vp_country = CountryCode::of(vp_cc);
  p.prefix = prefix;
  p.prefix_country = CountryCode::of(prefix_cc);
  p.weight = weight;
  p.path = bgp::AsPath{vp_ip, 2, 3};
  return p;
}

TEST(DataHealth, ClassifiesVpsAndCountsPrefixWeightOnce) {
  bgp::Prefix pfx{0x0a000000, 24};
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "AU", pfx, "AU", 256),   // national VP
      make_path(2, "US", pfx, "AU", 256),   // international VP, same prefix
      make_path(3, "US", pfx, "AU", 256),   // another international VP
  };
  HealthInputs inputs;
  inputs.paths = paths;
  HealthReport report = compute_health(inputs);

  ASSERT_EQ(report.countries.size(), 1u);
  const CountryHealth& au = report.countries[0];
  EXPECT_EQ(au.country, CountryCode::of("AU"));
  EXPECT_EQ(au.national_vps, 1u);
  EXPECT_EQ(au.international_vps, 2u);
  EXPECT_EQ(au.accepted_prefixes, 1u);
  // Three paths over one prefix: the weight counts once.
  EXPECT_EQ(au.geolocated_addresses, 256u);
  EXPECT_DOUBLE_EQ(au.geo_consensus(), 1.0);
  EXPECT_EQ(au.national_tier, ConfidenceTier::kDegraded);
  EXPECT_EQ(au.international_tier, ConfidenceTier::kDegraded);
  EXPECT_EQ(au.overall, ConfidenceTier::kDegraded);
}

TEST(DataHealth, ReportIsSortedAndFindWorks) {
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "DE", bgp::Prefix{0x0a000000, 24}, "US", 256),
      make_path(2, "US", bgp::Prefix{0x0b000000, 24}, "AU", 256),
      make_path(3, "AU", bgp::Prefix{0x0c000000, 24}, "DE", 256),
  };
  HealthInputs inputs;
  inputs.paths = paths;
  HealthReport report = compute_health(inputs);

  ASSERT_EQ(report.countries.size(), 3u);
  EXPECT_EQ(report.countries[0].country, CountryCode::of("AU"));
  EXPECT_EQ(report.countries[1].country, CountryCode::of("DE"));
  EXPECT_EQ(report.countries[2].country, CountryCode::of("US"));
  EXPECT_NE(report.find(CountryCode::of("DE")), nullptr);
  EXPECT_EQ(report.find(CountryCode::of("JP")), nullptr);
  // Absent country == no usable evidence.
  EXPECT_EQ(report.tier_of(CountryCode::of("JP")), ConfidenceTier::kInsufficient);
}

TEST(DataHealth, NoConsensusRejectionsAttributedToPluralityCountry) {
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "US", bgp::Prefix{0x0a000000, 24}, "AU", 300),
  };
  geo::PrefixGeoResult geo_result;
  geo_result.no_consensus.push_back(geo::PrefixRejection{
      bgp::Prefix{0x0b000000, 24}, CountryCode::of("AU"), 700, 0.4});
  geo_result.no_consensus.push_back(geo::PrefixRejection{
      bgp::Prefix{0x0c000000, 24}, geo::kNoCountry, 512, 0.0});  // skipped

  HealthInputs inputs;
  inputs.paths = paths;
  inputs.prefix_geo = &geo_result;
  HealthReport report = compute_health(inputs);

  const CountryHealth* au = report.find(CountryCode::of("AU"));
  ASSERT_NE(au, nullptr);
  EXPECT_EQ(au->no_consensus_prefixes, 1u);
  EXPECT_EQ(au->no_consensus_addresses, 700u);
  EXPECT_DOUBLE_EQ(au->geo_consensus(), 0.3);
  EXPECT_EQ(au->geo_tier, ConfidenceTier::kDegraded);
  EXPECT_EQ(au->overall, ConfidenceTier::kDegraded);
}

TEST(DataHealth, ExtraGeoRejectionsFeedConsensus) {
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "US", bgp::Prefix{0x0a000000, 24}, "AU", 256),
  };
  std::unordered_map<CountryCode, std::uint64_t, geo::CountryCodeHash> extra{
      {CountryCode::of("AU"), 768}};
  HealthInputs inputs;
  inputs.paths = paths;
  inputs.extra_geo_rejections = &extra;
  HealthReport report = compute_health(inputs);

  const CountryHealth* au = report.find(CountryCode::of("AU"));
  ASSERT_NE(au, nullptr);
  EXPECT_DOUBLE_EQ(au->geo_consensus(), 0.25);
  EXPECT_EQ(au->geo_tier, ConfidenceTier::kDegraded);
}

TEST(DataHealth, DropRatesFromLayerStats) {
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "US", bgp::Prefix{0x0a000000, 24}, "AU", 256),
  };
  bgp::MrtParseStats ingest;
  ingest.lines = 200;
  ingest.parsed = 150;
  ingest.malformed = 50;
  sanitize::SanitizeStats stats;
  stats.total = 100;
  stats.accepted = 80;
  stats.unstable = 15;
  stats.loop = 5;

  HealthInputs inputs;
  inputs.paths = paths;
  inputs.ingest = &ingest;
  inputs.sanitize = &stats;
  HealthReport report = compute_health(inputs);
  EXPECT_DOUBLE_EQ(report.ingest_drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.sanitize_drop_rate, 0.20);
  EXPECT_DOUBLE_EQ(stats.drop_rate(), 0.20);
  EXPECT_EQ(stats.count(sanitize::FilterReason::kUnstable), 15u);
  EXPECT_EQ(stats.count(sanitize::FilterReason::kAccepted), 80u);
}

TEST(DataHealth, EmptyInputsYieldEmptyReport) {
  HealthInputs inputs;
  HealthReport report = compute_health(inputs);
  EXPECT_TRUE(report.countries.empty());
  EXPECT_EQ(report.count(ConfidenceTier::kHigh), 0u);
  EXPECT_DOUBLE_EQ(report.ingest_drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.sanitize_drop_rate, 0.0);
}

TEST(DataHealth, ShardedOverloadMatchesSpanOverloadFieldForField) {
  // A mix of national, international and cross-country rows, plus a
  // no-consensus rejection, scored both ways: straight over the span and
  // shard-parallel over a ShardedPathStore built from the same rows.
  std::vector<sanitize::SanitizedPath> paths{
      make_path(1, "AU", bgp::Prefix{0x0a000000, 24}, "AU", 256),
      make_path(2, "US", bgp::Prefix{0x0a000000, 24}, "AU", 256),
      make_path(2, "US", bgp::Prefix{0x0b000000, 24}, "US", 512),
      make_path(3, "DE", bgp::Prefix{0x0c000000, 23}, "DE", 128),
      make_path(4, "AU", bgp::Prefix{0x0b000000, 24}, "US", 512),
  };
  geo::PrefixGeoResult geo_result;
  geo_result.no_consensus.push_back(geo::PrefixRejection{
      bgp::Prefix{0x0d000000, 24}, CountryCode::of("US"), 700, 0.4});
  sanitize::SanitizeStats stats;
  stats.total = 10;
  stats.accepted = 5;
  stats.loop = 5;
  HealthInputs inputs;
  inputs.paths = paths;
  inputs.prefix_geo = &geo_result;
  inputs.sanitize = &stats;

  HealthReport flat = compute_health(inputs);
  core::ShardedPathStore store{paths};
  HealthReport sharded = compute_health(store, inputs);

  EXPECT_DOUBLE_EQ(sharded.ingest_drop_rate, flat.ingest_drop_rate);
  EXPECT_DOUBLE_EQ(sharded.sanitize_drop_rate, flat.sanitize_drop_rate);
  ASSERT_EQ(sharded.countries.size(), flat.countries.size());
  for (std::size_t i = 0; i < flat.countries.size(); ++i) {
    const CountryHealth& a = flat.countries[i];
    const CountryHealth& b = sharded.countries[i];
    EXPECT_EQ(a.country, b.country);
    EXPECT_EQ(a.national_vps, b.national_vps) << a.country.to_string();
    EXPECT_EQ(a.international_vps, b.international_vps) << a.country.to_string();
    EXPECT_EQ(a.accepted_prefixes, b.accepted_prefixes) << a.country.to_string();
    EXPECT_EQ(a.geolocated_addresses, b.geolocated_addresses)
        << a.country.to_string();
    EXPECT_EQ(a.no_consensus_prefixes, b.no_consensus_prefixes);
    EXPECT_EQ(a.no_consensus_addresses, b.no_consensus_addresses);
    EXPECT_EQ(a.national_tier, b.national_tier);
    EXPECT_EQ(a.international_tier, b.international_tier);
    EXPECT_EQ(a.geo_tier, b.geo_tier);
    EXPECT_EQ(a.overall, b.overall);
  }
}

// ---------------------------------------------------------------- pipeline

TEST(DataHealth, PipelineOverloadMatchesAnnotatedMetrics) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(21)}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, gen::NoiseSpec{}, 5}.generate(5);
  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  EXPECT_THROW((void)compute_health(pipeline), std::logic_error);
  pipeline.load(ribs);

  HealthReport report = compute_health(pipeline, config.degradation);
  ASSERT_FALSE(report.countries.empty());
  // The health report and the pipeline's confidence annotation are two
  // views of the same evidence: their tiers must agree per country.
  for (const CountryHealth& h : report.countries) {
    core::CountryMetrics m = pipeline.country(h.country);
    EXPECT_EQ(m.confidence, h.overall) << h.country.to_string();
    EXPECT_DOUBLE_EQ(m.geo_consensus, h.geo_consensus()) << h.country.to_string();
    EXPECT_EQ(m.national_vps, h.national_vps) << h.country.to_string();
    EXPECT_EQ(m.international_vps, h.international_vps) << h.country.to_string();
  }
}

TEST(DataHealth, PipelineMemoizedPathMatchesGenericAndStaysWarm) {
  gen::World world = gen::InternetGenerator{gen::mini_world_spec(23)}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, gen::NoiseSpec{}, 5}.generate(5);
  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.apply_updates(ribs);

  // Matching policy routes through the country_health memo; recomputing
  // through the generic shard-parallel path must agree field for field.
  HealthReport memoized = compute_health(pipeline, config.degradation);
  EXPECT_GE(pipeline.cache_stats().healths, pipeline.store().shards().size());
  HealthInputs inputs;
  inputs.prefix_geo = &pipeline.sanitized().prefix_geo;
  inputs.sanitize = &pipeline.sanitized().stats;
  inputs.ingest = &pipeline.parse_stats();
  HealthReport generic =
      compute_health(pipeline.store(), inputs, config.degradation);
  EXPECT_DOUBLE_EQ(memoized.ingest_drop_rate, generic.ingest_drop_rate);
  EXPECT_DOUBLE_EQ(memoized.sanitize_drop_rate, generic.sanitize_drop_rate);
  ASSERT_EQ(memoized.countries.size(), generic.countries.size());
  for (std::size_t i = 0; i < generic.countries.size(); ++i) {
    const CountryHealth& a = generic.countries[i];
    const CountryHealth& b = memoized.countries[i];
    EXPECT_EQ(a.country, b.country);
    EXPECT_EQ(a.national_vps, b.national_vps) << a.country.to_string();
    EXPECT_EQ(a.international_vps, b.international_vps) << a.country.to_string();
    EXPECT_EQ(a.accepted_prefixes, b.accepted_prefixes) << a.country.to_string();
    EXPECT_EQ(a.geolocated_addresses, b.geolocated_addresses)
        << a.country.to_string();
    EXPECT_EQ(a.no_consensus_prefixes, b.no_consensus_prefixes)
        << a.country.to_string();
    EXPECT_EQ(a.no_consensus_addresses, b.no_consensus_addresses)
        << a.country.to_string();
    EXPECT_EQ(a.national_tier, b.national_tier);
    EXPECT_EQ(a.international_tier, b.international_tier);
    EXPECT_EQ(a.geo_tier, b.geo_tier);
    EXPECT_EQ(a.overall, b.overall);
  }

  // A non-matching policy must bypass the memo (its entries were tiered
  // under the configured thresholds) yet still report the same raw
  // evidence.
  DegradationPolicy stricter = config.degradation;
  stricter.min_vps = config.degradation.min_vps + 10;
  HealthReport strict_report = compute_health(pipeline, stricter);
  ASSERT_EQ(strict_report.countries.size(), memoized.countries.size());
  for (std::size_t i = 0; i < strict_report.countries.size(); ++i) {
    EXPECT_EQ(strict_report.countries[i].geolocated_addresses,
              memoized.countries[i].geolocated_addresses);
  }

  // A no-change re-apply keeps shard-backed health memos warm.
  pipeline.apply_updates(ribs);
  EXPECT_GE(pipeline.cache_stats().healths, pipeline.store().shards().size());
}

}  // namespace
}  // namespace georank::robust
