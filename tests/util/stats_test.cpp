#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace georank::util {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stdev, Basics) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stdev(v), 2.138, 0.001);
  std::vector<double> single{3};
  EXPECT_DOUBLE_EQ(stdev(single), 0.0);
}

TEST(Median, OddAndEven) {
  std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0);
}

TEST(TrimmedMean, NoTrimEqualsMean) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.0), 3.0);
}

TEST(TrimmedMean, RemovesExtremes) {
  // 10 values; 10% trim removes 1 from each end.
  std::vector<double> v{100, 1, 2, 3, 4, 5, 6, 7, 8, -100};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.10), 4.5);
}

TEST(TrimmedMean, SmallSampleFallsBackToMean) {
  std::vector<double> v{1, 100};
  // floor(0.4 * 2) = 0 -> plain mean.
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.4), 50.5);
}

TEST(TrimmedMean, OverTrimFallsBackToMean) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.5), 2.0);
}

TEST(Gini, PerfectEqualityIsZero) {
  std::vector<double> v{5, 5, 5, 5};
  EXPECT_NEAR(gini(v), 0.0, 1e-9);
}

TEST(Gini, ConcentrationApproachesOne) {
  std::vector<double> v{0, 0, 0, 0, 0, 0, 0, 0, 0, 100};
  EXPECT_GT(gini(v), 0.85);
}

TEST(Gini, EmptyAndZeroTotals) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

TEST(DescendingRanks, SimpleOrdering) {
  std::vector<double> v{10, 30, 20};
  auto r = descending_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(DescendingRanks, TiesAveraged) {
  std::vector<double> v{5, 5, 1};
  auto r = descending_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 3.0);
}

TEST(Spearman, PerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);
}

TEST(Spearman, PerfectAnticorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, b), -1.0, 1e-9);
}

TEST(Spearman, DegenerateInputs) {
  std::vector<double> a{1};
  std::vector<double> b{2};
  EXPECT_DOUBLE_EQ(spearman(a, b), 0.0);
  std::vector<double> c{1, 1, 1};
  std::vector<double> d{1, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(c, d), 0.0);  // zero variance in ranks
}

}  // namespace
}  // namespace georank::util
