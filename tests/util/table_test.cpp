#include "util/table.hpp"

#include <gtest/gtest.h>

namespace georank::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t{{"asn", "name"}};
  t.add_row({"1221", "Telstra"});
  t.add_row({"4826", "Vocus"});
  std::string out = t.render();
  EXPECT_NE(out.find("asn"), std::string::npos);
  EXPECT_NE(out.find("Telstra"), std::string::npos);
  EXPECT_NE(out.find("4826"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsToWidestCell) {
  Table t{{"h"}};
  t.add_row({"wide-cell-content"});
  std::string out = t.render();
  // Every line should have the same length.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, RightAlignment) {
  Table t{{"num"}};
  t.set_align(0, Align::kRight);
  t.add_row({"7"});
  t.add_row({"12345"});
  std::string out = t.render();
  // "7" should be preceded by spaces up to width 5.
  EXPECT_NE(out.find("|     7 |"), std::string::npos);
}

TEST(Table, MissingAndExtraCells) {
  Table t{{"a", "b"}};
  t.add_row({"only-a"});
  t.add_row({"x", "y", "dropped"});
  std::string out = t.render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(Table, RuleSeparatesGroups) {
  Table t{{"a"}};
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::string out = t.render();
  // Header rule + top + bottom + group rule = 4 '+--' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

}  // namespace
}  // namespace georank::util
