// Race-provoking stress for util::parallel_for, written to run under
// ThreadSanitizer (the build-tsan CI tier). The contract under test:
// every index runs exactly once, all body writes happen-before the
// return, and concurrent parallel_for invocations from different
// threads do not interfere.
#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace georank::util {
namespace {

TEST(ParallelForStress, EveryIndexExactlyOnceAcrossThreadCounts) {
  constexpr std::size_t kN = 10000;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<std::uint8_t> hits(kN, 0);
    parallel_for(kN, [&](std::size_t i) { ++hits[i]; }, threads);
    // Disjoint-slot writes: if any index ran twice or a write were lost,
    // the sum would differ (and TSan would flag the double-run as a race).
    const std::size_t total =
        std::accumulate(hits.begin(), hits.end(), std::size_t{0});
    EXPECT_EQ(total, kN) << "threads=" << threads;
  }
}

TEST(ParallelForStress, WritesHappenBeforeReturn) {
  // The classic publication pattern: workers fill a plain (non-atomic)
  // vector; after the join the caller reads it without synchronization.
  // If parallel_for's join did not establish happens-before, TSan
  // reports every one of these reads.
  constexpr std::size_t kN = 4096;
  std::vector<std::uint64_t> out(kN, 0);
  parallel_for(kN, [&](std::size_t i) { out[i] = i * i; }, 4);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < kN; ++i) checksum += out[i] - i * i;
  EXPECT_EQ(checksum, 0u);
}

TEST(ParallelForStress, ConcurrentInvocationsDoNotInterfere) {
  // Several threads each run their own parallel_for (the shape
  // Pipeline::all_countries() produces when called from concurrent
  // request handlers). Each invocation owns a disjoint output vector.
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kN = 1500;
  std::vector<std::vector<std::uint32_t>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      results[c].assign(kN, 0);
      parallel_for(kN, [&](std::size_t i) {
        results[c][i] = static_cast<std::uint32_t>(c * kN + i);
      }, 3);
    });
  }
  for (std::thread& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(results[c][i], c * kN + i);
    }
  }
}

TEST(ParallelForStress, SharedAtomicAccumulationIsExact) {
  // Tiny bodies maximize contention on the internal index counter.
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kN = 500;
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(kN, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    }, 4);
    EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
  }
}

TEST(ParallelForCosted, EveryIndexExactlyOnceAcrossThreadCounts) {
  constexpr std::size_t kN = 4000;
  std::vector<std::uint64_t> costs(kN);
  for (std::size_t i = 0; i < kN; ++i) costs[i] = (i * 7919) % 1000;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<std::uint8_t> hits(kN, 0);
    parallel_for_costed(costs, [&](std::size_t i) { ++hits[i]; }, threads);
    const std::size_t total =
        std::accumulate(hits.begin(), hits.end(), std::size_t{0});
    EXPECT_EQ(total, kN) << "threads=" << threads;
  }
}

TEST(ParallelForCosted, DisjointSlotOutputIsThreadCountInvariant) {
  // The determinism contract: bodies writing out[i] = f(i) produce the
  // same vector no matter the schedule or worker count.
  constexpr std::size_t kN = 2048;
  std::vector<std::uint64_t> costs(kN);
  for (std::size_t i = 0; i < kN; ++i) costs[i] = kN - i;
  std::vector<std::uint64_t> reference(kN, 0);
  parallel_for_costed(costs, [&](std::size_t i) { reference[i] = i * 31; }, 1);
  for (std::size_t threads : {std::size_t{3}, std::size_t{7}}) {
    std::vector<std::uint64_t> out(kN, 0);
    parallel_for_costed(costs, [&](std::size_t i) { out[i] = i * 31; }, threads);
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

TEST(ParallelForCosted, SingleThreadRunsLargestFirst) {
  // With one worker the schedule is observable: strictly descending
  // cost, ties broken by ascending index.
  const std::vector<std::uint64_t> costs{5, 40, 5, 100, 40, 0};
  std::vector<std::size_t> order;
  parallel_for_costed(costs, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 4, 0, 2, 5}));
}

TEST(ParallelForCosted, EmptyCostSpanRunsNothing) {
  bool ran = false;
  parallel_for_costed({}, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(ParallelForStress, ZeroAndSingleElementRunInline) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; }, 8);
  EXPECT_FALSE(ran);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_for(1, [&](std::size_t) { body_thread = std::this_thread::get_id(); }, 8);
  EXPECT_EQ(body_thread, caller);
}

}  // namespace
}  // namespace georank::util
