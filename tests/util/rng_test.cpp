#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace georank::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  Pcg32 a{1, 0}, b{1, 1};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, BelowRespectsBound) {
  Pcg32 rng{7};
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Pcg32, BelowOneIsAlwaysZero) {
  Pcg32 rng{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Pcg32, BelowCoversAllValues) {
  Pcg32 rng{11};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, RangeInclusive) {
  Pcg32 rng{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, RangeHandlesWideSpans) {
  Pcg32 rng{21};
  // Span wider than 32 bits exercises the two-draw branch.
  for (int i = 0; i < 200; ++i) {
    auto v = rng.range(-5000000000LL, 5000000000LL);
    EXPECT_GE(v, -5000000000LL);
    EXPECT_LE(v, 5000000000LL);
  }
  // Degenerate single-value span.
  EXPECT_EQ(rng.range(7, 7), 7);
}

TEST(Pcg32, UniformInHalfOpenUnitInterval) {
  Pcg32 rng{5};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 rng{5};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Pcg32, ChanceApproximatesProbability) {
  Pcg32 rng{17};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Pcg32, LogUniformStaysInBounds) {
  Pcg32 rng{3};
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.log_uniform(256, 65536);
    EXPECT_GE(v, 256u);
    EXPECT_LE(v, 65536u);
  }
}

TEST(Pcg32, LogUniformDegenerateRange) {
  Pcg32 rng{3};
  EXPECT_EQ(rng.log_uniform(100, 100), 100u);
  EXPECT_EQ(rng.log_uniform(100, 50), 100u);
  EXPECT_GE(rng.log_uniform(0, 10), 1u);  // lo clamped to 1
}

TEST(Pcg32, SameSeedSameStreamIsBitIdentical) {
  // Stream selection is part of the reproducibility contract: the pair
  // (seed, stream) fully determines the sequence, independent of when
  // or where the generator is constructed.
  for (std::uint64_t stream : {0ull, 1ull, 54ull, 0xdeadbeefull}) {
    Pcg32 a{99, stream}, b{99, stream};
    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(a.next(), b.next()) << "stream=" << stream << " i=" << i;
    }
  }
}

TEST(Pcg32, DistinctStreamsAreUncorrelated) {
  // Pearson correlation between the uniform() outputs of adjacent
  // streams. PCG32 streams are designed to be independent; adjacent
  // stream IDs are the adversarial case (they differ by one bit in the
  // increment before mixing).
  constexpr int kN = 4096;
  for (std::uint64_t s : {0ull, 1ull, 1000ull}) {
    Pcg32 a{7, s}, b{7, s + 1};
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int i = 0; i < kN; ++i) {
      const double x = a.uniform(), y = b.uniform();
      sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
    }
    const double cov = sxy / kN - (sx / kN) * (sy / kN);
    const double vx = sxx / kN - (sx / kN) * (sx / kN);
    const double vy = syy / kN - (sy / kN) * (sy / kN);
    const double corr = cov / std::sqrt(vx * vy);
    EXPECT_LT(std::abs(corr), 0.05) << "streams " << s << "," << s + 1;
  }
}

TEST(Pcg32, DistinctStreamsShareNoLongRuns) {
  // A stronger independence check than per-draw equality: no 4-gram of
  // one stream's output appears in the other's first 4096 draws.
  constexpr int kN = 4096;
  Pcg32 a{13, 2}, b{13, 3};
  std::vector<std::uint32_t> xs(kN), ys(kN);
  for (int i = 0; i < kN; ++i) xs[static_cast<std::size_t>(i)] = a.next();
  for (int i = 0; i < kN; ++i) ys[static_cast<std::size_t>(i)] = b.next();
  std::set<std::uint64_t> grams;
  for (int i = 0; i + 1 < kN; ++i) {
    grams.insert((std::uint64_t{xs[static_cast<std::size_t>(i)]} << 32) |
                 xs[static_cast<std::size_t>(i) + 1]);
  }
  int shared = 0;
  for (int i = 0; i + 1 < kN; ++i) {
    if (grams.contains((std::uint64_t{ys[static_cast<std::size_t>(i)]} << 32) |
                       ys[static_cast<std::size_t>(i) + 1])) {
      ++shared;
    }
  }
  EXPECT_EQ(shared, 0);
}

TEST(Pcg32, ForkProducesIndependentStream) {
  Pcg32 a{42};
  Pcg32 forked = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == forked.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(SampleIndices, DistinctAndInRange) {
  Pcg32 rng{8};
  auto idx = sample_indices(20, 7, rng);
  ASSERT_EQ(idx.size(), 7u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 7u);
  for (std::size_t i : idx) EXPECT_LT(i, 20u);
}

TEST(SampleIndices, KLargerThanNClamps) {
  Pcg32 rng{8};
  auto idx = sample_indices(5, 50, rng);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(SampleIndices, FullSampleIsPermutation) {
  Pcg32 rng{8};
  auto idx = sample_indices(10, 10, rng);
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(idx[i], i);
}

TEST(Shuffle, IsPermutation) {
  Pcg32 rng{6};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  shuffle(std::span<int>(v), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  auto a = splitmix64(s);
  auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace georank::util
