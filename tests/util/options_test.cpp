#include "util/options.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string_view>
#include <vector>

namespace georank::util {
namespace {

std::optional<Options> parse(std::initializer_list<std::string_view> tokens) {
  std::vector<std::string_view> v{tokens};
  return Options::parse(v);
}

TEST(OptionsTest, ParsesCommandAndInlineValues) {
  auto opts = parse({"rank", "--dir=data", "--country=AU"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command(), "rank");
  EXPECT_EQ(opts->get("dir"), "data");
  EXPECT_EQ(opts->get("country"), "AU");
  EXPECT_EQ(opts->option_count(), 2u);
}

TEST(OptionsTest, SpaceSeparatedValueBindsToPrecedingKey) {
  auto opts = parse({"rank", "--dir", "data", "--top", "25"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->get("dir"), "data");
  EXPECT_EQ(opts->get("top"), "25");
}

TEST(OptionsTest, TrailingFlagAndFlagBeforeOptionAreBoolean) {
  auto opts = parse({"sanitize", "--strict", "--dir", "data", "--mini"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->has("strict"));
  EXPECT_EQ(opts->get("strict"), "1");
  EXPECT_EQ(opts->get("mini"), "1");
  EXPECT_EQ(opts->get("dir"), "data");
}

TEST(OptionsTest, PositionalTokenIsAParseError) {
  EXPECT_FALSE(parse({"rank", "data"}).has_value());
  EXPECT_FALSE(parse({"rank", "--dir", "data", "stray"}).has_value());
}

TEST(OptionsTest, EmptyInputIsAParseError) {
  EXPECT_FALSE(parse({}).has_value());
  std::array<const char*, 1> argv{"georank"};
  EXPECT_FALSE(Options::parse(1, argv.data()).has_value());
}

TEST(OptionsTest, ArgcArgvEntryPointSkipsArgv0) {
  std::array<const char*, 4> argv{"georank", "serve", "--port", "8080"};
  auto opts = Options::parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command(), "serve");
  EXPECT_EQ(opts->get("port"), "8080");
}

TEST(OptionsTest, GetFallsBackWhenMissing) {
  auto opts = parse({"health", "--dir=data"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->get("csv", "no"), "no");
  EXPECT_FALSE(opts->has("csv"));
}

TEST(OptionsTest, TypedAccessors) {
  auto opts = parse({"robustness", "--seed=42", "--trials", "3",
                     "--threshold=0.75", "--days=-2"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->u64_or("seed", 0), 42u);
  EXPECT_EQ(opts->size_or("trials", 0), 3u);
  EXPECT_DOUBLE_EQ(opts->double_or("threshold", 0.0), 0.75);
  EXPECT_EQ(opts->int_or("days", 0), -2);
  EXPECT_EQ(opts->u64_or("absent", 9), 9u);
  EXPECT_EQ(opts->size_or("absent", 9), 9u);
  EXPECT_DOUBLE_EQ(opts->double_or("absent", 0.5), 0.5);
  EXPECT_EQ(opts->int_or("absent", -1), -1);
}

TEST(OptionsTest, TypedAccessorThrowsOnJunkLikeStoi) {
  auto opts = parse({"rank", "--top=lots"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_THROW((void)opts->size_or("top", 1), std::invalid_argument);
  EXPECT_THROW((void)opts->double_or("top", 1.0), std::invalid_argument);
}

TEST(OptionsTest, ThreadCountOrParsesAndFallsBack) {
  auto opts = parse({"rank", "--threads=4", "--ingest-threads", "16"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->thread_count_or("threads", 0), 4u);
  EXPECT_EQ(opts->thread_count_or("ingest-threads", 0), 16u);
  EXPECT_EQ(opts->thread_count_or("absent", 8), 8u);
  EXPECT_EQ(opts->thread_count_or("absent", 0), 0u);
}

TEST(OptionsTest, ThreadCountOrRejectsNonPositiveAndJunk) {
  auto opts = parse({"rank", "--zero=0", "--neg=-1", "--junk=4x",
                     "--empty=", "--huge=99999999999"});
  ASSERT_TRUE(opts.has_value());
  for (const char* key : {"zero", "neg", "junk", "empty", "huge"}) {
    EXPECT_THROW((void)opts->thread_count_or(key, 1), OptionParseError) << key;
  }
}

TEST(OptionsTest, OptionParseErrorCarriesKeyAndValue) {
  auto opts = parse({"rank", "--threads=none"});
  ASSERT_TRUE(opts.has_value());
  try {
    (void)opts->thread_count_or("threads", 1);
    FAIL() << "expected OptionParseError";
  } catch (const OptionParseError& e) {
    EXPECT_EQ(e.key(), "threads");
    EXPECT_EQ(e.value(), "none");
    EXPECT_NE(std::string_view{e.what()}.find("threads"),
              std::string_view::npos);
  }
  // It is still a std::invalid_argument for callers that catch broadly.
  EXPECT_THROW((void)opts->thread_count_or("threads", 1),
               std::invalid_argument);
}

TEST(OptionsTest, LastValueWinsOnRepeatedKey) {
  auto opts = parse({"rank", "--dir=a", "--dir=b"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->get("dir"), "b");
  EXPECT_EQ(opts->option_count(), 1u);
}

TEST(OptionsTest, InlineValueMayContainEqualsAndDashes) {
  auto opts = parse({"serve", "--label=run=3--final"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->get("label"), "run=3--final");
}

}  // namespace
}  // namespace georank::util
