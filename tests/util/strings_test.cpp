#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace georank::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  auto parts = split("abc", '|');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWs, DropsRuns) {
  auto parts = split_ws("  1299   3356\t174  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1299");
  EXPECT_EQ(parts[2], "174");
}

TEST(SplitWs, EmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t ").empty());
}

TEST(Trim, Basics) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("ab"), "ab");
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(parse_int<int>("42"), 42);
  EXPECT_EQ(parse_int<int>("-7"), -7);
  EXPECT_FALSE(parse_int<int>("42x").has_value());
  EXPECT_FALSE(parse_int<int>("").has_value());
  EXPECT_FALSE(parse_int<int>(" 42").has_value());
  EXPECT_FALSE(parse_int<unsigned>("-1").has_value());
}

TEST(ParseInt, Overflow) {
  EXPECT_FALSE(parse_int<std::uint8_t>("300").has_value());
  EXPECT_EQ(parse_int<std::uint32_t>("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_int<std::uint32_t>("4294967296").has_value());
}

TEST(HumanCount, Scales) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(10543), "10.5 k");
  EXPECT_EQ(human_count(1234567), "1.2 m");
  EXPECT_EQ(human_count(2.5e9), "2.5 b");
}

TEST(Percent, Formats) {
  EXPECT_EQ(percent(0.4387), "44%");
  EXPECT_EQ(percent(0.4387, 1), "43.9%");
  EXPECT_EQ(percent(0.0), "0%");
  EXPECT_EQ(percent(1.0), "100%");
}

}  // namespace
}  // namespace georank::util
