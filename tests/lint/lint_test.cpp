// Positive and negative fixtures for every georank-lint rule, plus the
// suppression-tag and baseline mechanics. Fixtures are inline strings:
// each rule gets at least one snippet that MUST fire and one that MUST
// stay silent, so a scanner regression shows up as a specific rule's
// test going red, not as CI noise.
#include "georank_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = georank::lint;

namespace {

std::vector<std::string> rule_ids(const std::vector<lint::Finding>& findings) {
  std::vector<std::string> ids;
  ids.reserve(findings.size());
  for (const lint::Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

bool has_rule(const std::vector<lint::Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

TEST(LintRules, TableIsSortedAndComplete) {
  auto all = lint::rules();
  ASSERT_GE(all.size(), 13u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id) << "rule table must stay sorted";
  }
  for (const lint::RuleInfo& r : all) {
    EXPECT_FALSE(r.summary.empty()) << r.id;
  }
}

// ---------------------------------------------------------------------------
// GR001 determinism-rand
// ---------------------------------------------------------------------------

TEST(LintRules, Gr001FlagsRandAndSrand) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "#include <cstdlib>\n"
                           "int roll() { return std::rand() % 6; }\n"
                           "void seed() { srand(42); }\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR001", "GR001"}));
  EXPECT_EQ(f[0].line, 2u);
  EXPECT_EQ(f[1].line, 3u);
}

TEST(LintRules, Gr001IgnoresWordsContainingRand) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "int operand(int brand) { return brand; }\n"
                           "// rand() in a comment is fine\n"
                           "const char* s = \"rand() in a string is fine\";\n");
  EXPECT_FALSE(has_rule(f, "GR001"));
}

// ---------------------------------------------------------------------------
// GR002 determinism-wallclock
// ---------------------------------------------------------------------------

TEST(LintRules, Gr002FlagsWallClockReadsInLibraryCode) {
  auto f = lint::scan_file(
      "src/bgp/x.cpp",
      "auto t = std::chrono::system_clock::now();\n"
      "long u = time(nullptr);\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR002", "GR002"}));
}

TEST(LintRules, Gr002AllowsCliAndSteadyClock) {
  // tools/ is CLI code: stamping a report with the current date is fine.
  auto cli = lint::scan_file("tools/georank_cli.cpp",
                             "auto t = std::chrono::system_clock::now();\n");
  EXPECT_FALSE(has_rule(cli, "GR002"));
  // steady_clock is monotonic, not wall-clock: throughput timing is fine.
  auto steady = lint::scan_file("src/bgp/x.cpp",
                                "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_FALSE(has_rule(steady, "GR002"));
}

TEST(LintRules, Gr002SuppressedByWallclockTag) {
  auto f = lint::scan_file(
      "src/bgp/x.cpp",
      "auto t = std::chrono::system_clock::now();  // lint: wallclock(report stamp)\n");
  EXPECT_FALSE(has_rule(f, "GR002"));
}

// ---------------------------------------------------------------------------
// GR003 / GR004 determinism-randdev / std-rng
// ---------------------------------------------------------------------------

TEST(LintRules, Gr003FlagsRandomDevice) {
  auto f = lint::scan_file("src/gen/x.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(f, "GR003"));
}

TEST(LintRules, Gr004FlagsStdEnginesOutsideRngHome) {
  auto f = lint::scan_file("src/gen/x.cpp",
                           "std::mt19937 gen{42};\n"
                           "std::uniform_int_distribution<int> d{0, 6};\n"
                           "std::shuffle(v.begin(), v.end(), gen);\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR004", "GR004", "GR004"}));
}

TEST(LintRules, Gr004AllowsRngHome) {
  auto hpp = lint::scan_file("src/util/rng.hpp",
                             "#pragma once\n"
                             "std::mt19937 reference_stream{42};\n");
  EXPECT_FALSE(has_rule(hpp, "GR004"));
}

// ---------------------------------------------------------------------------
// GR010 ordering-unordered-iter
// ---------------------------------------------------------------------------

TEST(LintRules, Gr010FlagsUnorderedIterationInRankedScopes) {
  const char* body =
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, double> scores;\n"
      "  for (const auto& [k, v] : scores) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint::scan_file("src/rank/x.cpp", body), "GR010"));
  EXPECT_TRUE(has_rule(lint::scan_file("src/core/x.cpp", body), "GR010"));
  EXPECT_TRUE(has_rule(lint::scan_file("src/robust/x.cpp", body), "GR010"));
  // Outside the ranked scopes the rule stays quiet.
  EXPECT_FALSE(has_rule(lint::scan_file("src/bgp/x.cpp", body), "GR010"));
}

TEST(LintRules, Gr010TracksDeclarationsInPairedHeader) {
  const char* header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct R { std::unordered_map<int, int> cone; };\n";
  const char* source = "void f(R& r) {\n  for (auto& [k, v] : r.cone) {}\n}\n";
  auto f = lint::scan_file("src/rank/x.cpp", source, header);
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintRules, Gr010MatchesWrappedForHeaders) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "#include <unordered_map>\n"
                           "std::unordered_map<int, int> tallies;\n"
                           "void f() {\n"
                           "  for (const auto& [country, tally] :\n"
                           "       tallies) {\n"
                           "  }\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintRules, Gr010IgnoresVectorsAndSuppressedLines) {
  auto vec = lint::scan_file("src/rank/x.cpp",
                             "std::vector<int> scores;\n"
                             "void f() { for (int s : scores) {} }\n");
  EXPECT_FALSE(has_rule(vec, "GR010"));

  auto tagged = lint::scan_file(
      "src/rank/x.cpp",
      "std::unordered_map<int, double> scores;\n"
      "void f() {\n"
      "  // lint: ordered(feeds from_scores, which totally orders)\n"
      "  for (const auto& [k, v] : scores) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(tagged, "GR010"));
}

// ---------------------------------------------------------------------------
// GR011 ordering-shard-bypass
// ---------------------------------------------------------------------------

TEST(LintRules, Gr011FlagsGlobalRowAccessOutsideCore) {
  const char* body =
      "#include \"core/path_store.hpp\"\n"
      "void f(const georank::core::PathStore& store) {\n"
      "  for (const auto& rec : store.all()) {\n"
      "  }\n"
      "  store.over(georank::core::ViewKind::kNational);\n"
      "}\n";
  auto f = lint::scan_file("src/robust/x.cpp", body);
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR011", "GR011"}));
  EXPECT_EQ(f[0].line, 3u);
  EXPECT_EQ(f[1].line, 5u);
  // src/core owns the store: global-row iteration is its job.
  EXPECT_FALSE(has_rule(lint::scan_file("src/core/x.cpp", body), "GR011"));
  // tools/ and bench/ measure or dump the global path on purpose.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/x.cpp", body), "GR011"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/x.cpp", body), "GR011"));
}

TEST(LintRules, Gr011OnlyFiresWhenPathStoreIsInPlay) {
  // `.all()` on something unrelated (a prefix trie, say) stays quiet as
  // long as the file never touches a PathStore.
  auto trie = lint::scan_file("src/geo/x.cpp",
                              "void f(Trie& trie) {\n"
                              "  for (auto& e : trie.all()) {}\n"
                              "}\n");
  EXPECT_FALSE(has_rule(trie, "GR011"));
  // A comment-only mention does not put the file in scope either.
  auto comment = lint::scan_file("src/geo/x.cpp",
                                 "// mirrors PathStore's layout\n"
                                 "void f(Trie& trie) {\n"
                                 "  for (auto& e : trie.all()) {}\n"
                                 "}\n");
  EXPECT_FALSE(has_rule(comment, "GR011"));
}

TEST(LintRules, Gr011TracksPathStoreInPairedHeader) {
  const char* header =
      "#pragma once\n"
      "#include \"core/sharded_path_store.hpp\"\n"
      "georank::core::ShardedPathStore& store();\n";
  auto f = lint::scan_file("src/robust/x.cpp",
                           "void f() { for (auto& r : store().all()) {} }\n",
                           header);
  EXPECT_TRUE(has_rule(f, "GR011"));
}

TEST(LintRules, Gr011SuppressedByShardOkTag) {
  auto f = lint::scan_file(
      "src/robust/x.cpp",
      "void f(const georank::core::PathStore& store) {\n"
      "  // lint: shard-ok(health scan is O(rows) once per reload)\n"
      "  for (const auto& rec : store.all()) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR011"));
}

// ---------------------------------------------------------------------------
// GR020 / GR021 concurrency annotations
// ---------------------------------------------------------------------------

TEST(LintRules, Gr020FlagsGuardAnnotationNamingUnknownLock) {
  auto f = lint::scan_file(
      "src/core/x.hpp",
      "#pragma once\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  int cached GEORANK_GUARDED_BY(mutex);\n"
      "};\n");
  EXPECT_TRUE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr020AcceptsAnnotationNamingDeclaredLock) {
  auto f = lint::scan_file(
      "src/core/x.hpp",
      "#pragma once\n"
      "#include <mutex>\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  std::mutex mutex;\n"
      "  int cached GEORANK_GUARDED_BY(mutex);\n"
      "};\n");
  EXPECT_FALSE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr020RequiresTheAnnotationsHeader) {
  auto f = lint::scan_file("src/core/x.hpp",
                           "#pragma once\n"
                           "struct S {\n"
                           "  int m;\n"
                           "  int cached GEORANK_GUARDED_BY(m);\n"
                           "};\n");
  EXPECT_TRUE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr021FlagsUnannotatedMutable) {
  auto f = lint::scan_file("src/geo/x.hpp",
                           "#pragma once\n"
                           "struct S { mutable int hits = 0; };\n");
  EXPECT_TRUE(has_rule(f, "GR021"));
}

TEST(LintRules, Gr021AcceptsGuardedOrJustifiedMutable) {
  auto annotated = lint::scan_file(
      "src/geo/x.hpp",
      "#pragma once\n"
      "#include <mutex>\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  std::mutex m;\n"
      "  mutable int hits GEORANK_GUARDED_BY(m);\n"
      "};\n");
  EXPECT_FALSE(has_rule(annotated, "GR021"));

  auto justified = lint::scan_file(
      "src/geo/x.hpp",
      "#pragma once\n"
      "struct S {\n"
      "  mutable std::atomic<int> hits{0};  // lint: guarded(relaxed atomic)\n"
      "};\n");
  EXPECT_FALSE(has_rule(justified, "GR021"));
}

TEST(LintRules, Gr021IgnoresMutableLambdas) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "auto inc = [n = 0]() mutable { return ++n; };\n");
  EXPECT_FALSE(has_rule(f, "GR021"));
}

// ---------------------------------------------------------------------------
// GR022 / GR023 statics and const_cast
// ---------------------------------------------------------------------------

TEST(LintRules, Gr022FlagsMutableFunctionLocalStatic) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "int next_id() {\n"
                           "  static int counter = 0;\n"
                           "  return ++counter;\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR022"));
}

TEST(LintRules, Gr022AllowsConstStaticsAndTaggedMemoization) {
  auto konst = lint::scan_file("src/core/x.cpp",
                               "int f() {\n"
                               "  static const int kTableSize = 64;\n"
                               "  static constexpr double kPi = 3.14;\n"
                               "  return kTableSize;\n"
                               "}\n");
  EXPECT_FALSE(has_rule(konst, "GR022"));

  auto tagged = lint::scan_file(
      "bench/x.cpp",
      "const World& world() {\n"
      "  // lint: static-ok(single-threaded bench memoization)\n"
      "  static World w = make_world();\n"
      "  return w;\n"
      "}\n");
  EXPECT_FALSE(has_rule(tagged, "GR022"));
}

TEST(LintRules, Gr023FlagsConstCast) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "void f(const int* p) { *const_cast<int*>(p) = 1; }\n");
  EXPECT_TRUE(has_rule(f, "GR023"));
}

// ---------------------------------------------------------------------------
// GR024 syscall containment
// ---------------------------------------------------------------------------

TEST(LintRules, Gr024FlagsSocketCodeOutsideServe) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "#include <sys/socket.h>\n"
      "int open_feed() { return ::socket(2, 1, 0); }\n"
      "void push(int fd) { ::send(fd, \"x\", 1, 0); }\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR024", "GR024", "GR024"}));
  EXPECT_EQ(f[0].line, 1u);  // the include itself is the first finding
}

TEST(LintRules, Gr024AllowsServeToolsAndBench) {
  const char* body =
      "#include <netinet/in.h>\n"
      "#include <arpa/inet.h>\n"
      "int dial() { return ::connect(3, nullptr, 0); }\n";
  // src/serve IS the transport layer: sockets live there by design.
  EXPECT_FALSE(has_rule(lint::scan_file("src/serve/http_server.cpp", body),
                        "GR024"));
  // CLI binaries and benches may talk to the network directly.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/georank_cli.cpp", body),
                        "GR024"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/serve.cpp", body), "GR024"));
}

TEST(LintRules, Gr024IgnoresUnqualifiedNamesAndMembers) {
  // Member functions and library wrappers named like syscalls are fine;
  // only ::-qualified raw syscalls (and socket headers) count.
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "void f(Channel& c) { c.send(1); c.connect(); }\n"
      "int bind(int a) { return a; }\n"
      "auto b = std::bind(&g, 1);\n");
  EXPECT_FALSE(has_rule(f, "GR024"));
}

TEST(LintRules, Gr024SuppressedBySyscallOkTag) {
  auto f = lint::scan_file(
      "src/io/x.cpp",
      "int probe() { return ::socket(2, 1, 0); }  // lint: syscall-ok(feature probe)\n");
  EXPECT_FALSE(has_rule(f, "GR024"));
}

// ---------------------------------------------------------------------------
// GR025 durability containment
// ---------------------------------------------------------------------------

TEST(LintRules, Gr025FlagsDurabilitySyscallsOutsidePersistenceLayers) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "#include <fcntl.h>\n"
      "int keep(const char* p) { return ::open(p, 0); }\n"
      "void flush(int fd) { ::fsync(fd); }\n"
      "void publish() { std::rename(\"a.tmp\", \"a\"); }\n");
  EXPECT_EQ(rule_ids(f),
            (std::vector<std::string>{"GR025", "GR025", "GR025", "GR025"}));
  EXPECT_EQ(f[0].line, 1u);  // the fcntl.h include itself is a finding
}

TEST(LintRules, Gr025AllowsPersistenceLayersToolsAndBench) {
  const char* body =
      "#include <fcntl.h>\n"
      "int keep(const char* p) { return ::open(p, 0); }\n"
      "void flush(int fd) { ::fsync(fd); }\n";
  // src/io + src/live ARE the persistence layers: the journal, the
  // checkpoint writer and the snapshot codec own these calls by design.
  EXPECT_FALSE(has_rule(lint::scan_file("src/io/snapshot_codec.cpp", body),
                        "GR025"));
  EXPECT_FALSE(has_rule(lint::scan_file("src/live/journal.cpp", body),
                        "GR025"));
  // CLI binaries and benches manage their own files directly.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/georank_cli.cpp", body),
                        "GR025"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/recovery.cpp", body), "GR025"));
}

TEST(LintRules, Gr025IgnoresMembersAndUnqualifiedNames) {
  // Stream members named like the syscalls are fine; only ::-qualified
  // raw calls (plus std::rename and the fcntl.h include) count.
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "void f(std::ifstream& is) { is.open(\"x\"); }\n"
      "int open_count(int n) { return n + 1; }\n"
      "void g() { fs::rename(\"a\", \"b\"); }\n");
  EXPECT_FALSE(has_rule(f, "GR025"));
}

TEST(LintRules, Gr025SuppressedByDurableOkTag) {
  auto f = lint::scan_file(
      "src/robust/x.cpp",
      "void flush(int fd) { ::fsync(fd); }  // lint: durable-ok(fault drill)\n");
  EXPECT_FALSE(has_rule(f, "GR025"));
}

// ---------------------------------------------------------------------------
// GR030 include hygiene
// ---------------------------------------------------------------------------

TEST(LintRules, Gr030RequiresPragmaOnceInHeaders) {
  auto missing = lint::scan_file("src/core/x.hpp", "struct S {};\n");
  EXPECT_TRUE(has_rule(missing, "GR030"));

  auto present = lint::scan_file("src/core/x.hpp",
                                 "// A file comment first is fine.\n"
                                 "#pragma once\n"
                                 "struct S {};\n");
  EXPECT_FALSE(has_rule(present, "GR030"));

  auto source = lint::scan_file("src/core/x.cpp", "struct S {};\n");
  EXPECT_FALSE(has_rule(source, "GR030"));
}

// ---------------------------------------------------------------------------
// Suppression placement and baseline mechanics
// ---------------------------------------------------------------------------

TEST(LintSuppression, TagOnPrecedingCommentLineApplies) {
  auto f = lint::scan_file(
      "src/rank/x.cpp",
      "std::unordered_map<int, double> scores;\n"
      "void f() {\n"
      "  // lint: ordered(justification on its own line)\n"
      "  for (const auto& [k, v] : scores) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR010"));
}

TEST(LintSuppression, TagMustMatchTheRule) {
  // A 'guarded' tag does not silence the ordering rule.
  auto f = lint::scan_file("src/rank/x.cpp",
                           "std::unordered_map<int, double> scores;\n"
                           "void f() {\n"
                           "  for (const auto& [k, v] : scores) {}  // lint: guarded(wrong tag)\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintBaseline, ExactAndWholeFileEntriesMatch) {
  lint::Finding f{"GR010", "src/rank/x.cpp", 4, "", ""};

  auto exact = lint::Baseline::parse("GR010 src/rank/x.cpp:4\n");
  EXPECT_TRUE(exact.contains(f));

  auto whole_file = lint::Baseline::parse(
      "# burn-down list\nGR010 src/rank/x.cpp\n");
  EXPECT_TRUE(whole_file.contains(f));

  auto other = lint::Baseline::parse("GR010 src/rank/x.cpp:5\nGR021 src/rank/x.cpp:4\n");
  EXPECT_FALSE(other.contains(f));

  EXPECT_FALSE(lint::Baseline{}.contains(f));
}

TEST(LintBaseline, CommentsAndBlanksIgnored) {
  auto b = lint::Baseline::parse("# comment\n\n   \nGR001 src/a.cpp:1\n");
  EXPECT_EQ(b.size(), 1u);
}
