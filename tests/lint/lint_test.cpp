// Positive and negative fixtures for every georank-lint rule, plus the
// suppression-tag and baseline mechanics. Fixtures are inline strings:
// each rule gets at least one snippet that MUST fire and one that MUST
// stay silent, so a scanner regression shows up as a specific rule's
// test going red, not as CI noise.
#include "georank_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "georank_lint/layers.hpp"
#include "georank_lint/lockorder.hpp"
#include "georank_lint/model.hpp"
#include "georank_lint/sarif.hpp"

namespace lint = georank::lint;

namespace {

std::vector<std::string> rule_ids(const std::vector<lint::Finding>& findings) {
  std::vector<std::string> ids;
  ids.reserve(findings.size());
  for (const lint::Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

bool has_rule(const std::vector<lint::Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

TEST(LintRules, TableIsSortedAndComplete) {
  auto all = lint::rules();
  ASSERT_GE(all.size(), 19u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id) << "rule table must stay sorted";
  }
  for (const lint::RuleInfo& r : all) {
    EXPECT_FALSE(r.summary.empty()) << r.id;
    EXPECT_FALSE(r.detail.empty()) << r.id << " needs --explain text";
  }
}

// ---------------------------------------------------------------------------
// GR001 determinism-rand
// ---------------------------------------------------------------------------

TEST(LintRules, Gr001FlagsRandAndSrand) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "#include <cstdlib>\n"
                           "int roll() { return std::rand() % 6; }\n"
                           "void seed() { srand(42); }\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR001", "GR001"}));
  EXPECT_EQ(f[0].line, 2u);
  EXPECT_EQ(f[1].line, 3u);
}

TEST(LintRules, Gr001IgnoresWordsContainingRand) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "int operand(int brand) { return brand; }\n"
                           "// rand() in a comment is fine\n"
                           "const char* s = \"rand() in a string is fine\";\n");
  EXPECT_FALSE(has_rule(f, "GR001"));
}

// ---------------------------------------------------------------------------
// GR002 determinism-wallclock
// ---------------------------------------------------------------------------

TEST(LintRules, Gr002FlagsWallClockReadsInLibraryCode) {
  auto f = lint::scan_file(
      "src/bgp/x.cpp",
      "auto t = std::chrono::system_clock::now();\n"
      "long u = time(nullptr);\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR002", "GR002"}));
}

TEST(LintRules, Gr002AllowsCliAndSteadyClock) {
  // tools/ is CLI code: stamping a report with the current date is fine.
  auto cli = lint::scan_file("tools/georank_cli.cpp",
                             "auto t = std::chrono::system_clock::now();\n");
  EXPECT_FALSE(has_rule(cli, "GR002"));
  // steady_clock is monotonic, not wall-clock: throughput timing is fine.
  auto steady = lint::scan_file("src/bgp/x.cpp",
                                "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_FALSE(has_rule(steady, "GR002"));
}

TEST(LintRules, Gr002SuppressedByWallclockTag) {
  auto f = lint::scan_file(
      "src/bgp/x.cpp",
      "auto t = std::chrono::system_clock::now();  // lint: wallclock(report stamp)\n");
  EXPECT_FALSE(has_rule(f, "GR002"));
}

// ---------------------------------------------------------------------------
// GR003 / GR004 determinism-randdev / std-rng
// ---------------------------------------------------------------------------

TEST(LintRules, Gr003FlagsRandomDevice) {
  auto f = lint::scan_file("src/gen/x.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(f, "GR003"));
}

TEST(LintRules, Gr004FlagsStdEnginesOutsideRngHome) {
  auto f = lint::scan_file("src/gen/x.cpp",
                           "std::mt19937 gen{42};\n"
                           "std::uniform_int_distribution<int> d{0, 6};\n"
                           "std::shuffle(v.begin(), v.end(), gen);\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR004", "GR004", "GR004"}));
}

TEST(LintRules, Gr004AllowsRngHome) {
  auto hpp = lint::scan_file("src/util/rng.hpp",
                             "#pragma once\n"
                             "std::mt19937 reference_stream{42};\n");
  EXPECT_FALSE(has_rule(hpp, "GR004"));
}

// ---------------------------------------------------------------------------
// GR010 ordering-unordered-iter
// ---------------------------------------------------------------------------

TEST(LintRules, Gr010FlagsUnorderedIterationInRankedScopes) {
  const char* body =
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, double> scores;\n"
      "  for (const auto& [k, v] : scores) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint::scan_file("src/rank/x.cpp", body), "GR010"));
  EXPECT_TRUE(has_rule(lint::scan_file("src/core/x.cpp", body), "GR010"));
  EXPECT_TRUE(has_rule(lint::scan_file("src/robust/x.cpp", body), "GR010"));
  // Outside the ranked scopes the rule stays quiet.
  EXPECT_FALSE(has_rule(lint::scan_file("src/bgp/x.cpp", body), "GR010"));
}

TEST(LintRules, Gr010TracksDeclarationsInPairedHeader) {
  const char* header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct R { std::unordered_map<int, int> cone; };\n";
  const char* source = "void f(R& r) {\n  for (auto& [k, v] : r.cone) {}\n}\n";
  auto f = lint::scan_file("src/rank/x.cpp", source, header);
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintRules, Gr010MatchesWrappedForHeaders) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "#include <unordered_map>\n"
                           "std::unordered_map<int, int> tallies;\n"
                           "void f() {\n"
                           "  for (const auto& [country, tally] :\n"
                           "       tallies) {\n"
                           "  }\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintRules, Gr010IgnoresVectorsAndSuppressedLines) {
  auto vec = lint::scan_file("src/rank/x.cpp",
                             "std::vector<int> scores;\n"
                             "void f() { for (int s : scores) {} }\n");
  EXPECT_FALSE(has_rule(vec, "GR010"));

  auto tagged = lint::scan_file(
      "src/rank/x.cpp",
      "std::unordered_map<int, double> scores;\n"
      "void f() {\n"
      "  // lint: ordered(feeds from_scores, which totally orders)\n"
      "  for (const auto& [k, v] : scores) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(tagged, "GR010"));
}

// ---------------------------------------------------------------------------
// GR011 ordering-shard-bypass
// ---------------------------------------------------------------------------

TEST(LintRules, Gr011FlagsGlobalRowAccessOutsideCore) {
  const char* body =
      "#include \"core/path_store.hpp\"\n"
      "void f(const georank::core::PathStore& store) {\n"
      "  for (const auto& rec : store.all()) {\n"
      "  }\n"
      "  store.over(georank::core::ViewKind::kNational);\n"
      "}\n";
  auto f = lint::scan_file("src/robust/x.cpp", body);
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR011", "GR011"}));
  EXPECT_EQ(f[0].line, 3u);
  EXPECT_EQ(f[1].line, 5u);
  // src/core owns the store: global-row iteration is its job.
  EXPECT_FALSE(has_rule(lint::scan_file("src/core/x.cpp", body), "GR011"));
  // tools/ and bench/ measure or dump the global path on purpose.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/x.cpp", body), "GR011"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/x.cpp", body), "GR011"));
}

TEST(LintRules, Gr011OnlyFiresWhenPathStoreIsInPlay) {
  // `.all()` on something unrelated (a prefix trie, say) stays quiet as
  // long as the file never touches a PathStore.
  auto trie = lint::scan_file("src/geo/x.cpp",
                              "void f(Trie& trie) {\n"
                              "  for (auto& e : trie.all()) {}\n"
                              "}\n");
  EXPECT_FALSE(has_rule(trie, "GR011"));
  // A comment-only mention does not put the file in scope either.
  auto comment = lint::scan_file("src/geo/x.cpp",
                                 "// mirrors PathStore's layout\n"
                                 "void f(Trie& trie) {\n"
                                 "  for (auto& e : trie.all()) {}\n"
                                 "}\n");
  EXPECT_FALSE(has_rule(comment, "GR011"));
}

TEST(LintRules, Gr011TracksPathStoreInPairedHeader) {
  const char* header =
      "#pragma once\n"
      "#include \"core/sharded_path_store.hpp\"\n"
      "georank::core::ShardedPathStore& store();\n";
  auto f = lint::scan_file("src/robust/x.cpp",
                           "void f() { for (auto& r : store().all()) {} }\n",
                           header);
  EXPECT_TRUE(has_rule(f, "GR011"));
}

TEST(LintRules, Gr011SuppressedByShardOkTag) {
  auto f = lint::scan_file(
      "src/robust/x.cpp",
      "void f(const georank::core::PathStore& store) {\n"
      "  // lint: shard-ok(health scan is O(rows) once per reload)\n"
      "  for (const auto& rec : store.all()) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR011"));
}

// ---------------------------------------------------------------------------
// GR020 / GR021 concurrency annotations
// ---------------------------------------------------------------------------

TEST(LintRules, Gr020FlagsGuardAnnotationNamingUnknownLock) {
  auto f = lint::scan_file(
      "src/core/x.hpp",
      "#pragma once\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  int cached GEORANK_GUARDED_BY(mutex);\n"
      "};\n");
  EXPECT_TRUE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr020AcceptsAnnotationNamingDeclaredLock) {
  auto f = lint::scan_file(
      "src/core/x.hpp",
      "#pragma once\n"
      "#include <mutex>\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  std::mutex mutex;\n"
      "  int cached GEORANK_GUARDED_BY(mutex);\n"
      "};\n");
  EXPECT_FALSE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr020RequiresTheAnnotationsHeader) {
  auto f = lint::scan_file("src/core/x.hpp",
                           "#pragma once\n"
                           "struct S {\n"
                           "  int m;\n"
                           "  int cached GEORANK_GUARDED_BY(m);\n"
                           "};\n");
  EXPECT_TRUE(has_rule(f, "GR020"));
}

TEST(LintRules, Gr021FlagsUnannotatedMutable) {
  auto f = lint::scan_file("src/geo/x.hpp",
                           "#pragma once\n"
                           "struct S { mutable int hits = 0; };\n");
  EXPECT_TRUE(has_rule(f, "GR021"));
}

TEST(LintRules, Gr021AcceptsGuardedOrJustifiedMutable) {
  auto annotated = lint::scan_file(
      "src/geo/x.hpp",
      "#pragma once\n"
      "#include <mutex>\n"
      "#include \"util/thread_safety.hpp\"\n"
      "struct S {\n"
      "  std::mutex m;\n"
      "  mutable int hits GEORANK_GUARDED_BY(m);\n"
      "};\n");
  EXPECT_FALSE(has_rule(annotated, "GR021"));

  auto justified = lint::scan_file(
      "src/geo/x.hpp",
      "#pragma once\n"
      "struct S {\n"
      "  mutable std::atomic<int> hits{0};  // lint: guarded(relaxed atomic)\n"
      "};\n");
  EXPECT_FALSE(has_rule(justified, "GR021"));
}

TEST(LintRules, Gr021IgnoresMutableLambdas) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "auto inc = [n = 0]() mutable { return ++n; };\n");
  EXPECT_FALSE(has_rule(f, "GR021"));
}

// ---------------------------------------------------------------------------
// GR022 / GR023 statics and const_cast
// ---------------------------------------------------------------------------

TEST(LintRules, Gr022FlagsMutableFunctionLocalStatic) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "int next_id() {\n"
                           "  static int counter = 0;\n"
                           "  return ++counter;\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR022"));
}

TEST(LintRules, Gr022AllowsConstStaticsAndTaggedMemoization) {
  auto konst = lint::scan_file("src/core/x.cpp",
                               "int f() {\n"
                               "  static const int kTableSize = 64;\n"
                               "  static constexpr double kPi = 3.14;\n"
                               "  return kTableSize;\n"
                               "}\n");
  EXPECT_FALSE(has_rule(konst, "GR022"));

  auto tagged = lint::scan_file(
      "bench/x.cpp",
      "const World& world() {\n"
      "  // lint: static-ok(single-threaded bench memoization)\n"
      "  static World w = make_world();\n"
      "  return w;\n"
      "}\n");
  EXPECT_FALSE(has_rule(tagged, "GR022"));
}

TEST(LintRules, Gr023FlagsConstCast) {
  auto f = lint::scan_file("src/core/x.cpp",
                           "void f(const int* p) { *const_cast<int*>(p) = 1; }\n");
  EXPECT_TRUE(has_rule(f, "GR023"));
}

// ---------------------------------------------------------------------------
// GR024 syscall containment
// ---------------------------------------------------------------------------

TEST(LintRules, Gr024FlagsSocketCodeOutsideServe) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "#include <sys/socket.h>\n"
      "int open_feed() { return ::socket(2, 1, 0); }\n"
      "void push(int fd) { ::send(fd, \"x\", 1, 0); }\n");
  // Line 3 discards ::send's return, so GR061 fires alongside GR024.
  EXPECT_EQ(rule_ids(f),
            (std::vector<std::string>{"GR024", "GR024", "GR024", "GR061"}));
  EXPECT_EQ(f[0].line, 1u);  // the include itself is the first finding
}

TEST(LintRules, Gr024AllowsServeToolsAndBench) {
  const char* body =
      "#include <netinet/in.h>\n"
      "#include <arpa/inet.h>\n"
      "int dial() { return ::connect(3, nullptr, 0); }\n";
  // src/serve IS the transport layer: sockets live there by design.
  EXPECT_FALSE(has_rule(lint::scan_file("src/serve/http_server.cpp", body),
                        "GR024"));
  // CLI binaries and benches may talk to the network directly.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/georank_cli.cpp", body),
                        "GR024"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/serve.cpp", body), "GR024"));
}

TEST(LintRules, Gr024IgnoresUnqualifiedNamesAndMembers) {
  // Member functions and library wrappers named like syscalls are fine;
  // only ::-qualified raw syscalls (and socket headers) count.
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "void f(Channel& c) { c.send(1); c.connect(); }\n"
      "int bind(int a) { return a; }\n"
      "auto b = std::bind(&g, 1);\n");
  EXPECT_FALSE(has_rule(f, "GR024"));
}

TEST(LintRules, Gr024SuppressedBySyscallOkTag) {
  auto f = lint::scan_file(
      "src/io/x.cpp",
      "int probe() { return ::socket(2, 1, 0); }  // lint: syscall-ok(feature probe)\n");
  EXPECT_FALSE(has_rule(f, "GR024"));
}

// ---------------------------------------------------------------------------
// GR025 durability containment
// ---------------------------------------------------------------------------

TEST(LintRules, Gr025FlagsDurabilitySyscallsOutsidePersistenceLayers) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "#include <fcntl.h>\n"
      "int keep(const char* p) { return ::open(p, 0); }\n"
      "void flush(int fd) { ::fsync(fd); }\n"
      "void publish() { std::rename(\"a.tmp\", \"a\"); }\n");
  // Lines 3 and 4 also discard checked-syscall returns (GR061).
  EXPECT_EQ(rule_ids(f),
            (std::vector<std::string>{"GR025", "GR025", "GR025", "GR061",
                                      "GR025", "GR061"}));
  EXPECT_EQ(f[0].line, 1u);  // the fcntl.h include itself is a finding
}

TEST(LintRules, Gr025AllowsPersistenceLayersToolsAndBench) {
  const char* body =
      "#include <fcntl.h>\n"
      "int keep(const char* p) { return ::open(p, 0); }\n"
      "void flush(int fd) { ::fsync(fd); }\n";
  // src/io + src/live ARE the persistence layers: the journal, the
  // checkpoint writer and the snapshot codec own these calls by design.
  EXPECT_FALSE(has_rule(lint::scan_file("src/io/snapshot_codec.cpp", body),
                        "GR025"));
  EXPECT_FALSE(has_rule(lint::scan_file("src/live/journal.cpp", body),
                        "GR025"));
  // CLI binaries and benches manage their own files directly.
  EXPECT_FALSE(has_rule(lint::scan_file("tools/georank_cli.cpp", body),
                        "GR025"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/recovery.cpp", body), "GR025"));
}

TEST(LintRules, Gr025IgnoresMembersAndUnqualifiedNames) {
  // Stream members named like the syscalls are fine; only ::-qualified
  // raw calls (plus std::rename and the fcntl.h include) count.
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "void f(std::ifstream& is) { is.open(\"x\"); }\n"
      "int open_count(int n) { return n + 1; }\n"
      "void g() { fs::rename(\"a\", \"b\"); }\n");
  EXPECT_FALSE(has_rule(f, "GR025"));
}

TEST(LintRules, Gr025SuppressedByDurableOkTag) {
  auto f = lint::scan_file(
      "src/robust/x.cpp",
      "void flush(int fd) { ::fsync(fd); }  // lint: durable-ok(fault drill)\n");
  EXPECT_FALSE(has_rule(f, "GR025"));
}

// ---------------------------------------------------------------------------
// GR030 include hygiene
// ---------------------------------------------------------------------------

TEST(LintRules, Gr030RequiresPragmaOnceInHeaders) {
  auto missing = lint::scan_file("src/core/x.hpp", "struct S {};\n");
  EXPECT_TRUE(has_rule(missing, "GR030"));

  auto present = lint::scan_file("src/core/x.hpp",
                                 "// A file comment first is fine.\n"
                                 "#pragma once\n"
                                 "struct S {};\n");
  EXPECT_FALSE(has_rule(present, "GR030"));

  auto source = lint::scan_file("src/core/x.cpp", "struct S {};\n");
  EXPECT_FALSE(has_rule(source, "GR030"));
}

// ---------------------------------------------------------------------------
// Suppression placement and baseline mechanics
// ---------------------------------------------------------------------------

TEST(LintSuppression, TagOnPrecedingCommentLineApplies) {
  auto f = lint::scan_file(
      "src/rank/x.cpp",
      "std::unordered_map<int, double> scores;\n"
      "void f() {\n"
      "  // lint: ordered(justification on its own line)\n"
      "  for (const auto& [k, v] : scores) {}\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR010"));
}

TEST(LintSuppression, TagMustMatchTheRule) {
  // A 'guarded' tag does not silence the ordering rule.
  auto f = lint::scan_file("src/rank/x.cpp",
                           "std::unordered_map<int, double> scores;\n"
                           "void f() {\n"
                           "  for (const auto& [k, v] : scores) {}  // lint: guarded(wrong tag)\n"
                           "}\n");
  EXPECT_TRUE(has_rule(f, "GR010"));
}

TEST(LintBaseline, ExactAndWholeFileEntriesMatch) {
  lint::Finding f{"GR010", "src/rank/x.cpp", 4, "", ""};

  auto exact = lint::Baseline::parse("GR010 src/rank/x.cpp:4\n");
  EXPECT_TRUE(exact.contains(f));

  auto whole_file = lint::Baseline::parse(
      "# burn-down list\nGR010 src/rank/x.cpp\n");
  EXPECT_TRUE(whole_file.contains(f));

  auto other = lint::Baseline::parse("GR010 src/rank/x.cpp:5\nGR021 src/rank/x.cpp:4\n");
  EXPECT_FALSE(other.contains(f));

  EXPECT_FALSE(lint::Baseline{}.contains(f));
}

TEST(LintBaseline, CommentsAndBlanksIgnored) {
  auto b = lint::Baseline::parse("# comment\n\n   \nGR001 src/a.cpp:1\n");
  EXPECT_EQ(b.size(), 1u);
}

// ---------------------------------------------------------------------------
// GR040 / GR041 layering (cross-TU model + layers.def)
// ---------------------------------------------------------------------------

namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

std::vector<std::string> messages(const std::vector<lint::Finding>& findings) {
  std::vector<std::string> out;
  for (const lint::Finding& f : findings) out.push_back(f.message);
  return out;
}

bool any_message_contains(const std::vector<lint::Finding>& findings,
                          std::string_view needle) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) {
                       return f.message.find(needle) != std::string::npos;
                     });
}

}  // namespace

TEST(LintLayering, ParsesDefFileGrammar) {
  auto spec = lint::parse_layers(
      "# comment\n"
      "\n"
      "util:\n"
      "core:   util\n"
      "serve:  core util  # trailing words are deps\n");
  EXPECT_TRUE(spec.declares("util"));
  EXPECT_TRUE(spec.declares("serve"));
  EXPECT_FALSE(spec.declares("io"));
  EXPECT_TRUE(spec.permits("core", "util"));
  EXPECT_TRUE(spec.permits("core", "core"));  // self-edges always legal
  EXPECT_FALSE(spec.permits("util", "core"));
}

TEST(LintLayering, Gr040FlagsIllegalEdgeAndNamesIt) {
  auto model = lint::build_model(Sources{
      {"src/core/a.hpp", "#pragma once\n#include \"serve/h.hpp\"\n"},
      {"src/serve/h.hpp", "#pragma once\n"},
  });
  auto spec = lint::parse_layers("util:\ncore: util\nserve: core util\n");
  auto f = lint::check_layering(model, spec);
  ASSERT_TRUE(has_rule(f, "GR040"));
  EXPECT_TRUE(any_message_contains(f, "core -> serve"))
      << "violation must name the edge; got: " << messages(f).front();
  // The finding anchors at the include that created the edge.
  EXPECT_EQ(f.front().path, "src/core/a.hpp");
  EXPECT_EQ(f.front().line, 2u);
}

TEST(LintLayering, Gr040FlagsUndeclaredModule) {
  auto model = lint::build_model(Sources{
      {"src/mystery/a.hpp", "#pragma once\n"},
  });
  auto spec = lint::parse_layers("util:\n");
  auto f = lint::check_layering(model, spec);
  EXPECT_TRUE(has_rule(f, "GR040"));
  EXPECT_TRUE(any_message_contains(f, "mystery"));
}

TEST(LintLayering, Gr040SuppressedByLayerOkTag) {
  auto model = lint::build_model(Sources{
      {"src/core/a.hpp",
       "#pragma once\n"
       "// lint: layer-ok(migration shim, tracked in the roadmap)\n"
       "#include \"serve/h.hpp\"\n"},
      {"src/serve/h.hpp", "#pragma once\n"},
  });
  auto spec = lint::parse_layers("util:\ncore: util\nserve: core util\n");
  EXPECT_FALSE(has_rule(lint::check_layering(model, spec), "GR040"));
}

TEST(LintLayering, Gr040KeepsScenarioBelowServe) {
  // The what-if engine sits ABOVE core and BELOW serve: serve may pull
  // in scenario (the endpoint drives the engine), but a scenario header
  // reaching back into serve (say, for JsonWriter) inverts the layering
  // — JSON rendering belongs to serve::render_whatif_json, not here.
  auto model = lint::build_model(Sources{
      {"src/serve/w.hpp", "#pragma once\n#include \"scenario/e.hpp\"\n"},
      {"src/scenario/e.hpp", "#pragma once\n#include \"serve/j.hpp\"\n"},
      {"src/serve/j.hpp", "#pragma once\n"},
  });
  auto spec = lint::parse_layers(
      "util:\ncore: util\nscenario: core util\nserve: core scenario util\n");
  auto f = lint::check_layering(model, spec);
  ASSERT_TRUE(has_rule(f, "GR040"));
  EXPECT_TRUE(any_message_contains(f, "scenario -> serve"))
      << messages(f).front();
  // The GR040 finding anchors at the offending include, in scenario.
  bool anchored = false;
  for (const lint::Finding& finding : f) {
    if (finding.rule == "GR040" && finding.path == "src/scenario/e.hpp") {
      anchored = true;
      EXPECT_EQ(finding.line, 2u);
    }
  }
  EXPECT_TRUE(anchored);
}

TEST(LintLayering, Gr041FlagsModuleCycle) {
  auto model = lint::build_model(Sources{
      {"src/core/a.hpp", "#pragma once\n#include \"robust/b.hpp\"\n"},
      {"src/robust/b.hpp", "#pragma once\n#include \"core/a.hpp\"\n"},
  });
  // Both edges individually legal: the cycle is the only problem.
  auto spec = lint::parse_layers("core: robust\nrobust: core\n");
  auto f = lint::check_layering(model, spec);
  ASSERT_TRUE(has_rule(f, "GR041"));
  EXPECT_TRUE(any_message_contains(f, "core -> robust -> core"));
}

TEST(LintLayering, Gr041IgnoresSuppressionTags) {
  // A cycle has no build order: even an explicit layer-ok tag on the
  // closing include must not silence GR041.
  auto model = lint::build_model(Sources{
      {"src/core/a.hpp", "#pragma once\n#include \"robust/b.hpp\"\n"},
      {"src/robust/b.hpp",
       "#pragma once\n"
       "#include \"core/a.hpp\"  // lint: layer-ok(nice try)\n"},
  });
  auto spec = lint::parse_layers("core: robust\nrobust: core\n");
  EXPECT_TRUE(has_rule(lint::check_layering(model, spec), "GR041"));
}

TEST(LintLayering, ModuleOfMapsOnlySrcPaths) {
  EXPECT_EQ(lint::module_of("src/core/pipeline.hpp"), "core");
  EXPECT_EQ(lint::module_of("src/util/rng.hpp"), "util");
  EXPECT_EQ(lint::module_of("tools/georank_cli.cpp"), "");
  EXPECT_EQ(lint::module_of("bench/serve.cpp"), "");
}

// ---------------------------------------------------------------------------
// GR050 / GR051 lock-order (inter-procedural model)
// ---------------------------------------------------------------------------

namespace {

// Three mutexes acquired pairwise in a rotating order: a->b, b->c, c->a.
// Any two of the three functions running on different threads can
// deadlock; the acquisition-order graph has a 3-cycle.
const char* kLockCycleHeader =
    "#pragma once\n"
    "#include <mutex>\n"
    "inline std::mutex reload_a;\n"
    "inline std::mutex publish_b;\n"
    "inline std::mutex journal_c;\n";

const char* kLockCycleBody =
    "#include \"core/locks.hpp\"\n"
    "void f1() {\n"
    "  std::lock_guard<std::mutex> ga(reload_a);\n"
    "  std::lock_guard<std::mutex> gb(publish_b);\n"
    "}\n"
    "void f2() {\n"
    "  std::lock_guard<std::mutex> gb(publish_b);\n"
    "  std::lock_guard<std::mutex> gc(journal_c);\n"
    "}\n"
    "void f3() {\n"
    "  std::lock_guard<std::mutex> gc(journal_c);\n"
    "  std::lock_guard<std::mutex> ga(reload_a);\n"
    "}\n";

}  // namespace

TEST(LintLockOrder, ModelHarvestsAcquisitionEdges) {
  auto model = lint::build_model(Sources{
      {"src/core/locks.hpp", kLockCycleHeader},
      {"src/core/locks.cpp", kLockCycleBody},
  });
  ASSERT_EQ(model.mutexes.size(), 3u);
  auto edges = lint::build_lock_edges(model);
  // a->b, b->c, c->a: exactly three distinct ordered pairs.
  EXPECT_EQ(edges.size(), 3u);
}

TEST(LintLockOrder, Gr050FlagsThreeMutexCycle) {
  auto model = lint::build_model(Sources{
      {"src/core/locks.hpp", kLockCycleHeader},
      {"src/core/locks.cpp", kLockCycleBody},
  });
  auto f = lint::check_lock_order(model);
  ASSERT_TRUE(has_rule(f, "GR050"));
  EXPECT_TRUE(any_message_contains(f, "reload_a"));
  EXPECT_TRUE(any_message_contains(f, "publish_b"));
  EXPECT_TRUE(any_message_contains(f, "journal_c"));
}

TEST(LintLockOrder, Gr050SuppressedByLockOrderTagOnOneAcquisition) {
  // Tagging the cycle-closing acquisition removes its edges: the
  // remaining a->b, b->c chain is acyclic.
  std::string body(kLockCycleBody);
  const std::string needle = "  std::lock_guard<std::mutex> ga(reload_a);\n}";
  auto pos = body.rfind(needle);
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, needle.size(),
               "  // lint: lock-order(drain path, publisher is stopped)\n"
               "  std::lock_guard<std::mutex> ga(reload_a);\n}");
  auto model = lint::build_model(Sources{
      {"src/core/locks.hpp", kLockCycleHeader},
      {"src/core/locks.cpp", body},
  });
  EXPECT_FALSE(has_rule(lint::check_lock_order(model), "GR050"));
}

TEST(LintLockOrder, Gr051FlagsBlockingSyscallUnderLock) {
  auto model = lint::build_model(Sources{
      {"src/live/j.cpp",
       "#include <mutex>\n"
       "std::mutex journal_mu;\n"
       "void append(int fd) {\n"
       "  std::lock_guard<std::mutex> g(journal_mu);\n"
       "  ::fsync(fd);\n"
       "}\n"},
  });
  auto f = lint::check_lock_order(model);
  ASSERT_TRUE(has_rule(f, "GR051"));
  EXPECT_TRUE(any_message_contains(f, "fsync"));
  EXPECT_TRUE(any_message_contains(f, "journal_mu"));
}

TEST(LintLockOrder, Gr051SeesBlockingCallThroughCallees) {
  // The lock is taken in sync(); the ::write happens in flush(), one
  // call away. The inter-procedural entry-held closure must carry the
  // lock across the edge.
  auto model = lint::build_model(Sources{
      {"src/live/j.cpp",
       "#include <mutex>\n"
       "std::mutex journal_mu;\n"
       "void flush(int fd) {\n"
       "  ::write(fd, nullptr, 0);\n"
       "}\n"
       "void sync_all(int fd) {\n"
       "  std::lock_guard<std::mutex> g(journal_mu);\n"
       "  flush(fd);\n"
       "}\n"},
  });
  EXPECT_TRUE(has_rule(lint::check_lock_order(model), "GR051"));
}

TEST(LintLockOrder, Gr051SuppressedByBlockingOkTag) {
  auto model = lint::build_model(Sources{
      {"src/live/j.cpp",
       "#include <mutex>\n"
       "std::mutex journal_mu;\n"
       "void append(int fd) {\n"
       "  std::lock_guard<std::mutex> g(journal_mu);\n"
       "  // lint: blocking-ok(single-writer journal, sync IS the contract)\n"
       "  ::fsync(fd);\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(lint::check_lock_order(model), "GR051"));
}

TEST(LintLockOrder, NoFalseCycleFromConsistentOrder) {
  // Two functions taking a then b in the SAME order: one edge, no cycle.
  auto model = lint::build_model(Sources{
      {"src/core/locks.hpp", kLockCycleHeader},
      {"src/core/locks.cpp",
       "#include \"core/locks.hpp\"\n"
       "void f1() {\n"
       "  std::lock_guard<std::mutex> ga(reload_a);\n"
       "  std::lock_guard<std::mutex> gb(publish_b);\n"
       "}\n"
       "void f2() {\n"
       "  std::lock_guard<std::mutex> ga(reload_a);\n"
       "  std::lock_guard<std::mutex> gb(publish_b);\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(lint::check_lock_order(model), "GR050"));
}

// ---------------------------------------------------------------------------
// GR060 view-lifetime
// ---------------------------------------------------------------------------

TEST(LintRules, Gr060FlagsViewBoundToTemporary) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "#include <string_view>\n"
      "void f() {\n"
      "  std::string_view v = std::string(\"temp\");\n"
      "}\n");
  ASSERT_TRUE(has_rule(f, "GR060"));
}

TEST(LintRules, Gr060FlagsViewOfToStringAndConcatenation) {
  auto f = lint::scan_file(
      "src/serve/x.cpp",
      "void f(int n, const std::string& base) {\n"
      "  std::string_view a = std::to_string(n);\n"
      "  std::string_view b = base + \"/suffix\";\n"
      "}\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR060", "GR060"}));
}

TEST(LintRules, Gr060FlagsReturningLocalString) {
  auto f = lint::scan_file(
      "src/serve/x.cpp",
      "std::string_view name() {\n"
      "  std::string built = make();\n"
      "  return built;\n"
      "}\n");
  EXPECT_TRUE(has_rule(f, "GR060"));
}

TEST(LintRules, Gr060AllowsViewsOfStableStorage) {
  auto f = lint::scan_file(
      "src/serve/x.cpp",
      "void f(const std::string& owned) {\n"
      "  std::string_view v = owned;\n"
      "  std::string_view lit = \"static storage\";\n"
      "}\n"
      "std::string_view pick() { return \"literal\"; }\n");
  EXPECT_FALSE(has_rule(f, "GR060"));
}

TEST(LintRules, Gr060UsesModelProducers) {
  // encode() returns std::string by value per the header: binding a
  // view to its result dangles. Without the model the call is opaque.
  auto model = lint::build_model(Sources{
      {"src/io/codec.hpp",
       "#pragma once\n#include <string>\nstd::string encode(int v);\n"},
  });
  auto f = lint::scan_file("src/io/x.cpp",
                           "void f() {\n"
                           "  std::string_view v = encode(7);\n"
                           "}\n",
                           {}, &model);
  EXPECT_TRUE(has_rule(f, "GR060"));
}

TEST(LintRules, Gr060SuppressedByLifetimeOkTag) {
  auto f = lint::scan_file(
      "src/core/x.cpp",
      "void f(Pool& pool) {\n"
      "  // lint: lifetime-ok(interned: pool owns the bytes for the run)\n"
      "  std::string_view v = pool.intern() + \"\";\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR060"));
}

TEST(LintRules, Gr060StaysOutOfToolsAndBench) {
  const char* body =
      "void f() { std::string_view v = std::string(\"temp\"); }\n";
  EXPECT_FALSE(has_rule(lint::scan_file("tools/x.cpp", body), "GR060"));
  EXPECT_FALSE(has_rule(lint::scan_file("bench/x.cpp", body), "GR060"));
}

// ---------------------------------------------------------------------------
// GR061 swallowed-error
// ---------------------------------------------------------------------------

TEST(LintRules, Gr061FlagsDiscardedSyscallReturn) {
  // src/io is allowed to make durability syscalls (no GR025), but it
  // must still LOOK at what they return.
  auto f = lint::scan_file("src/io/x.cpp",
                           "void flush(int fd) {\n"
                           "  ::fsync(fd);\n"
                           "}\n");
  EXPECT_EQ(rule_ids(f), (std::vector<std::string>{"GR061"}));
  EXPECT_EQ(f[0].line, 2u);
}

TEST(LintRules, Gr061AllowsCheckedAndVoidCastCalls) {
  auto f = lint::scan_file(
      "src/io/x.cpp",
      "void flush(int fd) {\n"
      "  if (::fsync(fd) != 0) throw_errno(\"fsync\");\n"
      "  int rc = ::close(fd);\n"
      "  (void)::close(rc);  // teardown path, nothing to report\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR061"));
}

TEST(LintRules, Gr061FlagsDiscardedNodiscardFromModel) {
  auto model = lint::build_model(Sources{
      {"src/core/api.hpp",
       "#pragma once\n[[nodiscard]] bool try_publish(int epoch);\n"},
  });
  auto f = lint::scan_file("src/core/x.cpp",
                           "void f() {\n"
                           "  try_publish(3);\n"
                           "}\n",
                           {}, &model);
  EXPECT_TRUE(has_rule(f, "GR061"));
}

TEST(LintRules, Gr061IgnoresMemberCallsCollidingWithNodiscardNames) {
  // std::atomic::store / JsonWriter::key collide by NAME with
  // [[nodiscard]] accessors in our headers; receiver calls are exempt.
  auto model = lint::build_model(Sources{
      {"src/core/api.hpp",
       "#pragma once\n[[nodiscard]] const Store& store();\n"
       "[[nodiscard]] const std::string& key();\n"},
  });
  auto f = lint::scan_file("src/core/x.cpp",
                           "void f(Stats& stats, Writer& w) {\n"
                           "  stats.count.store(1);\n"
                           "  w.key(\"name\");\n"
                           "}\n",
                           {}, &model);
  EXPECT_FALSE(has_rule(f, "GR061"));
}

TEST(LintRules, Gr061SuppressedByCheckOkTag) {
  auto f = lint::scan_file(
      "src/io/x.cpp",
      "void flush(int fd) {\n"
      "  ::fsync(fd);  // lint: check-ok(best effort, error handled by reopen)\n"
      "}\n");
  EXPECT_FALSE(has_rule(f, "GR061"));
}

// ---------------------------------------------------------------------------
// Repo-wide model against the real tree
// ---------------------------------------------------------------------------

#ifdef GEORANK_REPO_ROOT

namespace {

Sources slurp_real_src() {
  namespace fs = std::filesystem;
  Sources sources;
  const fs::path src = fs::path(GEORANK_REPO_ROOT) / "src";
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    std::ifstream in{entry.path()};
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = fs::relative(entry.path(), fs::path(GEORANK_REPO_ROOT))
                          .generic_string();
    sources.emplace_back(std::move(rel), buf.str());
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

}  // namespace

TEST(LintRepoModel, HarvestsRealMutexesAndFunctions) {
  auto model = lint::build_model(slurp_real_src());
  // The pipeline, journal, health monitor and HTTP server each own at
  // least one modeled mutex; losing them means the lock analysis went
  // blind, not that the code got safer.
  EXPECT_GE(model.mutexes.size(), 4u)
      << "lock harvest regressed: GR050/GR051 are no longer looking at "
         "the real pipeline";
  EXPECT_GE(model.functions.size(), 100u);
  EXPECT_FALSE(model.nodiscard_functions.empty());
  EXPECT_FALSE(model.temporary_producers.empty());
}

TEST(LintRepoModel, RealLayeringIsCleanAndAcyclic) {
  namespace fs = std::filesystem;
  std::ifstream in{fs::path(GEORANK_REPO_ROOT) /
                   "tools/georank_lint/layers.def"};
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto spec = lint::parse_layers(buf.str());
  auto model = lint::build_model(slurp_real_src());
  auto f = lint::check_layering(model, spec);
  EXPECT_TRUE(f.empty()) << f.size() << " layering finding(s), first: "
                         << (f.empty() ? "" : f.front().message);
}

#endif  // GEORANK_REPO_ROOT

// ---------------------------------------------------------------------------
// SARIF serialization
// ---------------------------------------------------------------------------

TEST(LintSarif, MinimalDocumentShape) {
  std::vector<lint::Finding> findings{
      {"GR040", "src/core/a.hpp", 2,
       "illegal edge core -> serve (\"quoted\")", "#include \"serve/h.hpp\""},
  };
  const std::string doc = lint::to_sarif(lint::rules(), findings);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"georank-lint\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"GR040\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 2"), std::string::npos);
  // Quotes inside the message must be escaped, not emitted raw.
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos);
  // Every rule in the table is described in tool.driver.rules.
  for (const lint::RuleInfo& r : lint::rules()) {
    EXPECT_NE(doc.find('"' + std::string(r.id) + '"'), std::string::npos)
        << r.id;
  }
}

TEST(LintSarif, EmptyFindingsStillValidRun) {
  const std::string doc = lint::to_sarif(lint::rules(), {});
  EXPECT_NE(doc.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(doc.find("\"ruleId\""), std::string::npos) << "no results expected";
  EXPECT_EQ(doc.back(), '\n');
}
