#include "geo/vp_geolocator.hpp"

#include <gtest/gtest.h>

namespace georank::geo {
namespace {

CountryCode us = CountryCode::of("US");
CountryCode au = CountryCode::of("AU");

bgp::VpId vp(std::uint32_t ip, bgp::Asn asn) { return bgp::VpId{ip, asn}; }

TEST(VpGeolocator, LocatesViaCollector) {
  VpGeolocator g;
  g.add_collector({"route-views.sydney", au, false});
  g.register_vp(vp(1, 1221), "route-views.sydney");
  auto loc = g.locate(vp(1, 1221));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(*loc, au);
  EXPECT_EQ(g.stats().geolocated, 1u);
}

TEST(VpGeolocator, MultihopExcluded) {
  VpGeolocator g;
  g.add_collector({"route-views2", us, true});
  g.register_vp(vp(1, 701), "route-views2");
  EXPECT_FALSE(g.locate(vp(1, 701)).has_value());
  EXPECT_EQ(g.stats().multihop_excluded, 1u);
  EXPECT_EQ(g.stats().geolocated, 0u);
}

TEST(VpGeolocator, UnknownVp) {
  VpGeolocator g;
  g.add_collector({"c", us, false});
  EXPECT_FALSE(g.locate(vp(9, 9)).has_value());
  EXPECT_EQ(g.stats().unknown, 1u);
}

TEST(VpGeolocator, PeekDoesNotTouchStats) {
  VpGeolocator g;
  g.add_collector({"c", us, false});
  g.register_vp(vp(1, 1), "c");
  EXPECT_EQ(g.peek(vp(1, 1)), us);
  EXPECT_FALSE(g.peek(vp(2, 2)).has_value());
  EXPECT_EQ(g.stats().geolocated, 0u);
  EXPECT_EQ(g.stats().unknown, 0u);
}

TEST(VpGeolocator, RejectsDuplicateCollector) {
  VpGeolocator g;
  g.add_collector({"c", us, false});
  EXPECT_THROW(g.add_collector({"c", au, false}), std::invalid_argument);
  EXPECT_THROW(g.add_collector({"", au, false}), std::invalid_argument);
}

TEST(VpGeolocator, RejectsUnknownCollectorRegistration) {
  VpGeolocator g;
  EXPECT_THROW(g.register_vp(vp(1, 1), "nope"), std::invalid_argument);
}

TEST(VpGeolocator, LocatedVpsSkipsMultihop) {
  VpGeolocator g;
  g.add_collector({"au", au, false});
  g.add_collector({"mh", us, true});
  g.register_vp(vp(1, 10), "au");
  g.register_vp(vp(2, 20), "au");
  g.register_vp(vp(3, 30), "mh");
  auto located = g.located_vps();
  EXPECT_EQ(located.size(), 2u);
  for (const auto& [v, cc] : located) EXPECT_EQ(cc, au);
}

TEST(VpGeolocator, AllVpsIncludesMultihop) {
  VpGeolocator g;
  g.add_collector({"au", au, false});
  g.add_collector({"mh", us, true});
  g.register_vp(vp(1, 10), "au");
  g.register_vp(vp(3, 30), "mh");
  EXPECT_EQ(g.all_vps().size(), 2u);
  EXPECT_EQ(g.vp_count(), 2u);
  EXPECT_EQ(g.collector_count(), 2u);
}

TEST(VpGeolocator, ReRegistrationMovesVp) {
  VpGeolocator g;
  g.add_collector({"au", au, false});
  g.add_collector({"us", us, false});
  g.register_vp(vp(1, 10), "au");
  g.register_vp(vp(1, 10), "us");
  EXPECT_EQ(g.peek(vp(1, 10)), us);
  EXPECT_EQ(g.vp_count(), 1u);
}

}  // namespace
}  // namespace georank::geo
