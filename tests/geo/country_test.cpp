#include "geo/country.hpp"

#include <gtest/gtest.h>

namespace georank::geo {
namespace {

TEST(CountryCode, ParseValid) {
  auto jp = CountryCode::parse("JP");
  ASSERT_TRUE(jp.has_value());
  EXPECT_TRUE(jp->valid());
  EXPECT_EQ(jp->to_string(), "JP");
}

TEST(CountryCode, ParseCaseInsensitive) {
  EXPECT_EQ(CountryCode::parse("jp"), CountryCode::parse("JP"));
  EXPECT_EQ(CountryCode::parse("Jp")->to_string(), "JP");
}

TEST(CountryCode, ParseInvalid) {
  EXPECT_FALSE(CountryCode::parse("").has_value());
  EXPECT_FALSE(CountryCode::parse("J").has_value());
  EXPECT_FALSE(CountryCode::parse("JPN").has_value());
  EXPECT_FALSE(CountryCode::parse("J1").has_value());
  EXPECT_FALSE(CountryCode::parse("1P").has_value());
}

TEST(CountryCode, OfThrowsOnBadInput) {
  EXPECT_THROW((void)CountryCode::of("bad"), std::invalid_argument);
  EXPECT_NO_THROW((void)CountryCode::of("US"));
}

TEST(CountryCode, DefaultIsInvalid) {
  CountryCode cc;
  EXPECT_FALSE(cc.valid());
  EXPECT_EQ(cc.to_string(), "??");
  EXPECT_EQ(cc, kNoCountry);
}

TEST(CountryCode, Comparison) {
  EXPECT_LT(CountryCode::of("AU"), CountryCode::of("JP"));
  EXPECT_EQ(CountryCode::of("US"), CountryCode::of("us"));
  EXPECT_NE(CountryCode::of("US"), CountryCode::of("UA"));
}

TEST(CountryCode, HashDistinguishes) {
  CountryCodeHash h;
  EXPECT_NE(h(CountryCode::of("US")), h(CountryCode::of("AU")));
  EXPECT_EQ(h(CountryCode::of("US")), h(CountryCode::of("us")));
}

}  // namespace
}  // namespace georank::geo
