#include "geo/geo_db.hpp"

#include <gtest/gtest.h>

namespace georank::geo {
namespace {

CountryCode us = CountryCode::of("US");
CountryCode jp = CountryCode::of("JP");
CountryCode au = CountryCode::of("AU");

TEST(GeoDatabase, CountryOfBasics) {
  GeoDatabase db;
  db.add_range(100, 199, us);
  db.add_range(300, 399, jp);
  db.finalize();
  EXPECT_EQ(db.country_of(100), us);
  EXPECT_EQ(db.country_of(150), us);
  EXPECT_EQ(db.country_of(199), us);
  EXPECT_EQ(db.country_of(200), kNoCountry);
  EXPECT_EQ(db.country_of(300), jp);
  EXPECT_EQ(db.country_of(99), kNoCountry);
  EXPECT_EQ(db.country_of(0xFFFFFFFF), kNoCountry);
}

TEST(GeoDatabase, RequiresFinalize) {
  GeoDatabase db;
  db.add_range(0, 10, us);
  EXPECT_THROW((void)db.country_of(5), std::logic_error);
}

TEST(GeoDatabase, RejectsOverlaps) {
  GeoDatabase db;
  db.add_range(0, 100, us);
  db.add_range(100, 200, jp);
  EXPECT_THROW(db.finalize(), std::invalid_argument);
}

TEST(GeoDatabase, RejectsBadRange) {
  GeoDatabase db;
  EXPECT_THROW(db.add_range(10, 5, us), std::invalid_argument);
  EXPECT_THROW(db.add_range(0, 5, kNoCountry), std::invalid_argument);
}

TEST(GeoDatabase, MergesAdjacentSameCountry) {
  GeoDatabase db;
  db.add_range(0, 99, us);
  db.add_range(100, 199, us);
  db.add_range(200, 299, jp);
  db.finalize();
  EXPECT_EQ(db.range_count(), 2u);
  EXPECT_EQ(db.country_of(50), us);
  EXPECT_EQ(db.country_of(150), us);
}

TEST(GeoDatabase, CountByCountrySingleRange) {
  GeoDatabase db;
  db.add_range(100, 199, us);
  db.finalize();
  auto slices = db.count_by_country(100, 199);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].country, us);
  EXPECT_EQ(slices[0].addresses, 100u);
}

TEST(GeoDatabase, CountByCountryWithGaps) {
  GeoDatabase db;
  db.add_range(100, 149, us);
  db.add_range(160, 199, jp);
  db.finalize();
  auto slices = db.count_by_country(90, 209);
  // 10 unmapped + 50 US + 10 unmapped + 40 JP + 10 unmapped.
  std::uint64_t us_n = 0, jp_n = 0, none_n = 0;
  for (const auto& s : slices) {
    if (s.country == us) us_n = s.addresses;
    else if (s.country == jp) jp_n = s.addresses;
    else none_n += s.addresses;
  }
  EXPECT_EQ(us_n, 50u);
  EXPECT_EQ(jp_n, 40u);
  EXPECT_EQ(none_n, 30u);
}

TEST(GeoDatabase, CountByCountryPartialOverlap) {
  GeoDatabase db;
  db.add_range(0, 999, us);
  db.add_range(1000, 1999, au);
  db.finalize();
  auto slices = db.count_by_country(500, 1499);
  std::uint64_t total = 0;
  for (const auto& s : slices) total += s.addresses;
  EXPECT_EQ(total, 1000u);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].country, us);
  EXPECT_EQ(slices[0].addresses, 500u);
  EXPECT_EQ(slices[1].country, au);
  EXPECT_EQ(slices[1].addresses, 500u);
}

TEST(GeoDatabase, CountByCountryFullyUnmapped) {
  GeoDatabase db;
  db.add_range(0, 9, us);
  db.finalize();
  auto slices = db.count_by_country(100, 199);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].country, kNoCountry);
  EXPECT_EQ(slices[0].addresses, 100u);
}

TEST(GeoDatabase, CountByCountryRejectsBadQuery) {
  GeoDatabase db;
  db.finalize();
  EXPECT_THROW(db.count_by_country(10, 5), std::invalid_argument);
}

TEST(GeoDatabase, SliceTotalsAlwaysMatchQuerySpan) {
  GeoDatabase db;
  db.add_range(10, 20, us);
  db.add_range(30, 35, jp);
  db.add_range(36, 80, au);
  db.finalize();
  for (std::uint32_t first : {0u, 10u, 15u, 25u, 36u}) {
    for (std::uint32_t last : {15u, 29u, 50u, 100u}) {
      if (first > last) continue;
      std::uint64_t total = 0;
      for (const auto& s : db.count_by_country(first, last)) total += s.addresses;
      EXPECT_EQ(total, static_cast<std::uint64_t>(last) - first + 1);
    }
  }
}

}  // namespace
}  // namespace georank::geo
