#include "geo/prefix_geolocator.hpp"

#include <gtest/gtest.h>

namespace georank::geo {
namespace {

using bgp::Prefix;

CountryCode us = CountryCode::of("US");
CountryCode jp = CountryCode::of("JP");
CountryCode fr = CountryCode::of("FR");

Prefix pfx(const char* text) { return *Prefix::parse(text); }

GeoDatabase single_country_db() {
  GeoDatabase db;
  db.add_range(pfx("10.0.0.0/8").first(), pfx("10.0.0.0/8").last(), us);
  db.finalize();
  return db;
}

TEST(PrefixGeolocator, AssignsCleanPrefix) {
  GeoDatabase db = single_country_db();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].country, us);
  EXPECT_EQ(result.accepted[0].effective_addresses, 65536u);
  EXPECT_EQ(result.country_of(pfx("10.1.0.0/16")), us);
  EXPECT_EQ(result.weight_of(pfx("10.1.0.0/16")), 65536u);
  EXPECT_TRUE(result.covered.empty());
  EXPECT_TRUE(result.no_consensus.empty());
}

TEST(PrefixGeolocator, FiltersFullyCoveredPrefix) {
  GeoDatabase db = single_country_db();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16"), pfx("10.1.0.0/17"),
                                pfx("10.1.128.0/17")};
  PrefixGeoResult result = loc.run(announced);
  ASSERT_EQ(result.covered.size(), 1u);
  EXPECT_EQ(result.covered[0], pfx("10.1.0.0/16"));
  EXPECT_EQ(result.accepted.size(), 2u);
  EXPECT_EQ(result.country_of(pfx("10.1.0.0/16")), kNoCountry);
}

TEST(PrefixGeolocator, PartialCoverReducesWeight) {
  GeoDatabase db = single_country_db();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16"), pfx("10.1.0.0/17")};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_EQ(result.weight_of(pfx("10.1.0.0/16")), 32768u);
  EXPECT_EQ(result.weight_of(pfx("10.1.0.0/17")), 32768u);
}

GeoDatabase split_db(double us_share) {
  // 10.1.0.0/16 split between US and JP at the given share.
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/16");
  auto us_count = static_cast<std::uint32_t>(us_share * p.size());
  if (us_count > 0) db.add_range(p.first(), p.first() + us_count - 1, us);
  if (us_count < p.size()) db.add_range(p.first() + us_count, p.last(), jp);
  db.finalize();
  return db;
}

TEST(PrefixGeolocator, MajoritySplitPassesDefaultThreshold) {
  GeoDatabase db = split_db(0.75);
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].country, us);
}

TEST(PrefixGeolocator, EvenSplitRejectedAsMultipleCountries) {
  GeoDatabase db = split_db(0.5);
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  // 50/50 tie: "geolocated to multiple countries" (Table 1).
  EXPECT_TRUE(result.accepted.empty());
  ASSERT_EQ(result.no_consensus.size(), 1u);
  EXPECT_DOUBLE_EQ(result.no_consensus[0].top_share, 0.5);
}

TEST(PrefixGeolocator, MinorityComplementStillPassesThreshold) {
  // 45% US / 55% JP: JP holds a majority, so the prefix geolocates to JP.
  GeoDatabase db = split_db(0.45);
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].country, jp);
}

TEST(PrefixGeolocator, BelowThresholdRejected) {
  // Three-way split 45/35/20: no country reaches the 50% threshold.
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/16");
  std::uint32_t a = static_cast<std::uint32_t>(0.45 * p.size());
  std::uint32_t b = static_cast<std::uint32_t>(0.35 * p.size());
  db.add_range(p.first(), p.first() + a - 1, us);
  db.add_range(p.first() + a, p.first() + a + b - 1, jp);
  db.add_range(p.first() + a + b, p.last(), fr);
  db.finalize();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_TRUE(result.accepted.empty());
  ASSERT_EQ(result.no_consensus.size(), 1u);
  EXPECT_EQ(result.no_consensus[0].plurality, us);  // 45% is the plurality
  EXPECT_NEAR(result.no_consensus[0].top_share, 0.45, 0.01);
}

TEST(PrefixGeolocator, LowerThresholdAcceptsMore) {
  // Appendix B: with a 30% threshold a 45/55 split is acceptable.
  GeoDatabase db = split_db(0.45);
  PrefixGeolocator loc{db, 0.3};
  std::vector<Prefix> announced{pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].country, jp);
}

TEST(PrefixGeolocator, UnmappedAddressesDiluteConsensus) {
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/16");
  // Only 40% of the prefix is mapped (to US); 60% is dark.
  db.add_range(p.first(), p.first() + p.size() * 2 / 5 - 1, us);
  db.finalize();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_TRUE(result.accepted.empty());
  ASSERT_EQ(result.no_consensus.size(), 1u);
  EXPECT_EQ(result.no_consensus[0].plurality, us);
  EXPECT_NEAR(result.no_consensus[0].top_share, 0.4, 0.01);
}

TEST(PrefixGeolocator, EntirelyUnmappedPrefixRejected) {
  GeoDatabase db = single_country_db();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("192.168.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_TRUE(result.accepted.empty());
  ASSERT_EQ(result.no_consensus.size(), 1u);
  EXPECT_FALSE(result.no_consensus[0].plurality.valid());
}

TEST(PrefixGeolocator, ConsensusMeasuredOnUncoveredBlocksOnly) {
  // The /16's own (uncovered) half is pure US; its JP half is announced
  // as a more specific. The /16 must geolocate to US by its OWN blocks.
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/16");
  db.add_range(p.first(), p.first() + 32767, us);
  db.add_range(p.first() + 32768, p.last(), jp);
  db.finalize();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{p, pfx("10.1.128.0/17")};  // JP half covered
  PrefixGeoResult result = loc.run(announced);
  EXPECT_EQ(result.country_of(p), us);
  EXPECT_EQ(result.country_of(pfx("10.1.128.0/17")), jp);
}

TEST(PrefixGeolocator, AddressesByCountryAggregates) {
  GeoDatabase db;
  db.add_range(pfx("10.0.0.0/8").first(), pfx("10.0.0.0/8").last(), us);
  db.add_range(pfx("20.0.0.0/8").first(), pfx("20.0.0.0/8").last(), fr);
  db.finalize();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16"), pfx("10.2.0.0/16"),
                                pfx("20.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  auto by_country = result.addresses_by_country();
  EXPECT_EQ(by_country[us], 2u * 65536u);
  EXPECT_EQ(by_country[fr], 65536u);
}

TEST(PrefixGeolocator, Slash24SplitRecoversMixedPrefixAddresses) {
  // A /23 split 50/50 between two countries fails consensus as a whole,
  // but each /24 half geolocates cleanly (Appendix B's alternative).
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/23");
  db.add_range(p.first(), p.first() + 255, us);
  db.add_range(p.first() + 256, p.last(), jp);
  db.finalize();

  PrefixGeoOptions options;
  options.split_failed_into_slash24 = true;
  PrefixGeolocator loc{db, options};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);

  EXPECT_TRUE(result.accepted.empty());
  ASSERT_EQ(result.no_consensus.size(), 1u);
  ASSERT_EQ(result.recovered.size(), 2u);
  EXPECT_EQ(result.recovered[0].prefix, pfx("10.1.0.0/24"));
  EXPECT_EQ(result.recovered[0].country, us);
  EXPECT_EQ(result.recovered[1].prefix, pfx("10.1.1.0/24"));
  EXPECT_EQ(result.recovered[1].country, jp);
  EXPECT_EQ(result.recovered[0].effective_addresses, 256u);
}

TEST(PrefixGeolocator, Slash24SplitSkipsStillMixedBlocks) {
  // Each /24 is itself a 50/50 mix: nothing is recoverable.
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/24");
  db.add_range(p.first(), p.first() + 127, us);
  db.add_range(p.first() + 128, p.last(), jp);
  db.finalize();
  PrefixGeoOptions options;
  options.split_failed_into_slash24 = true;
  PrefixGeolocator loc{db, options};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_TRUE(result.recovered.empty());
  EXPECT_EQ(result.no_consensus.size(), 1u);
}

TEST(PrefixGeolocator, SplitDisabledByDefault) {
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/23");
  db.add_range(p.first(), p.first() + 255, us);
  db.add_range(p.first() + 256, p.last(), jp);
  db.finalize();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_TRUE(result.recovered.empty());
}

TEST(PrefixGeolocator, SplitHandlesLongerThanSlash24) {
  // A /26 that fails consensus is assessed as one block (no /24 split
  // possible below /24 granularity).
  GeoDatabase db;
  Prefix p = pfx("10.1.0.0/26");
  db.add_range(p.first(), p.first() + 20, us);  // ~33% US, rest unmapped
  db.finalize();
  PrefixGeoOptions options;
  options.split_failed_into_slash24 = true;
  PrefixGeolocator loc{db, options};
  std::vector<Prefix> announced{p};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_EQ(result.no_consensus.size(), 1u);
  EXPECT_TRUE(result.recovered.empty());  // block itself lacks consensus
}

TEST(PrefixGeolocator, RejectsBadThreshold) {
  GeoDatabase db = single_country_db();
  EXPECT_THROW(PrefixGeolocator(db, -0.1), std::invalid_argument);
  EXPECT_THROW(PrefixGeolocator(db, 1.5), std::invalid_argument);
}

TEST(PrefixGeolocator, DuplicateAnnouncementsAssessedOnce) {
  GeoDatabase db = single_country_db();
  PrefixGeolocator loc{db};
  std::vector<Prefix> announced{pfx("10.1.0.0/16"), pfx("10.1.0.0/16")};
  PrefixGeoResult result = loc.run(announced);
  EXPECT_EQ(result.accepted.size(), 1u);
}

}  // namespace
}  // namespace georank::geo
