#include "core/rank_delta.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using rank::Ranking;

TEST(RankDelta, IdenticalRankings) {
  Ranking r = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  RankDelta delta = compare_rankings(r, r);
  EXPECT_EQ(delta.shifts.size(), 3u);
  EXPECT_TRUE(delta.entries().empty());
  EXPECT_TRUE(delta.exits().empty());
  EXPECT_EQ(delta.max_movement(), 0);
  EXPECT_NEAR(delta.agreement(), 1.0, 1e-9);
  for (const RankShift& s : delta.shifts) {
    EXPECT_EQ(s.rank_change(), 0);
    EXPECT_DOUBLE_EQ(s.score_change(), 0.0);
  }
}

TEST(RankDelta, DetectsSwap) {
  Ranking before = Ranking::from_scores({{1, 0.9}, {2, 0.5}});
  Ranking after = Ranking::from_scores({{2, 0.9}, {1, 0.5}});
  RankDelta delta = compare_rankings(before, after);
  ASSERT_EQ(delta.shifts.size(), 2u);
  // Ordered by after-rank: AS 2 first.
  EXPECT_EQ(delta.shifts[0].asn, 2u);
  EXPECT_EQ(delta.shifts[0].rank_change(), 1);   // climbed 2 -> 1
  EXPECT_EQ(delta.shifts[1].rank_change(), -1);  // fell 1 -> 2
  EXPECT_EQ(delta.max_movement(), 1);
  EXPECT_DOUBLE_EQ(delta.shifts[0].score_change(), 0.4);
}

TEST(RankDelta, EntriesAndExits) {
  Ranking before = Ranking::from_scores({{1, 0.9}, {2, 0.5}});
  Ranking after = Ranking::from_scores({{1, 0.9}, {3, 0.5}});
  RankDelta delta = compare_rankings(before, after);
  EXPECT_EQ(delta.entries(), (std::vector<bgp::Asn>{3}));
  EXPECT_EQ(delta.exits(), (std::vector<bgp::Asn>{2}));
  for (const RankShift& s : delta.shifts) {
    if (s.asn == 3) {
      EXPECT_TRUE(s.entered());
      EXPECT_FALSE(s.left());
      EXPECT_EQ(s.rank_change(), 0);  // not comparable
    }
    if (s.asn == 2) {
      EXPECT_TRUE(s.left());
    }
  }
}

TEST(RankDelta, TopKWindowing) {
  // AS 3 is rank 3 in both, but with top_k = 2 it is outside the window.
  Ranking before = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  Ranking after = Ranking::from_scores({{3, 0.9}, {1, 0.5}, {2, 0.1}});
  RankDelta delta = compare_rankings(before, after, 2);
  // Union of top-2s: {1,2} before, {3,1} after -> {1,2,3}.
  EXPECT_EQ(delta.shifts.size(), 3u);
  EXPECT_EQ(delta.entries(), (std::vector<bgp::Asn>{3}));
  EXPECT_EQ(delta.exits(), (std::vector<bgp::Asn>{2}));
}

TEST(RankDelta, AgreementDropsWithShuffling) {
  Ranking before =
      Ranking::from_scores({{1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}});
  Ranking reversed =
      Ranking::from_scores({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
  RankDelta same = compare_rankings(before, before);
  RankDelta flipped = compare_rankings(before, reversed);
  EXPECT_GT(same.agreement(), flipped.agreement());
  EXPECT_NEAR(flipped.agreement(), -1.0, 1e-9);
}

TEST(RankDelta, EmptyRankings) {
  Ranking empty;
  RankDelta delta = compare_rankings(empty, empty);
  EXPECT_TRUE(delta.shifts.empty());
  EXPECT_DOUBLE_EQ(delta.agreement(), 0.0);
}

}  // namespace
}  // namespace georank::core
