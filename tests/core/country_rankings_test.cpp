#include "core/country_rankings.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");

SanitizedPath mk(std::uint32_t vp_ip, CountryCode vp_cc, AsPath path,
                 std::uint32_t pfx_index, CountryCode pfx_cc,
                 std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.vp_country = vp_cc;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = pfx_cc;
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

// A miniature two-country world exercising the national/international
// split: AS 4637 (international incumbent AS) carries inbound paths,
// AS 1221 (domestic AS) carries domestic ones.
struct TwoCountryFixture {
  topo::AsGraph graph;
  std::vector<SanitizedPath> paths;

  TwoCountryFixture() {
    graph.add_p2c(4637, 1221);   // intl provides domestic
    graph.add_p2c(3356, 4637);   // tier1 provides intl
    graph.add_p2c(1221, 9001);   // domestic stub 1
    graph.add_p2c(1221, 9002);   // domestic stub 2
    graph.add_p2c(3356, 8001);   // US stub

    // AU national paths (AU VPs 1 and 2, both in stub ASes).
    paths.push_back(mk(1, AU, AsPath{9001, 1221, 9002}, 2, AU));
    paths.push_back(mk(2, AU, AsPath{9002, 1221, 9001}, 1, AU));
    paths.push_back(mk(1, AU, AsPath{9001, 1221}, 3, AU));  // 1221's prefix
    // International paths toward AU (US VP 10).
    paths.push_back(mk(10, US, AsPath{8001, 3356, 4637, 1221, 9001}, 1, AU));
    paths.push_back(mk(10, US, AsPath{8001, 3356, 4637, 1221, 9002}, 2, AU));
    paths.push_back(mk(10, US, AsPath{8001, 3356, 4637, 1221}, 3, AU));
    // A US-destined path (ignored by AU metrics).
    paths.push_back(mk(1, AU, AsPath{9001, 1221, 4637, 3356, 8001}, 9, US));
  }
};

TEST(CountryRankings, ViewCountsReported) {
  TwoCountryFixture f;
  CountryRankings rankings{f.graph};
  CountryMetrics m = rankings.compute(f.paths, AU);
  EXPECT_EQ(m.country, AU);
  EXPECT_EQ(m.national_vps, 2u);
  EXPECT_EQ(m.international_vps, 1u);
  EXPECT_EQ(m.national_addresses, 3u * 256u);
  EXPECT_EQ(m.international_addresses, 3u * 256u);
}

TEST(CountryRankings, DomesticAsTopsNationalMetrics) {
  TwoCountryFixture f;
  CountryRankings rankings{f.graph};
  CountryMetrics m = rankings.compute(f.paths, AU);
  // 1221 transits every national path and covers all three prefixes.
  EXPECT_EQ(m.ccn.entries()[0].asn, 1221u);
  EXPECT_EQ(m.ahn.entries()[0].asn, 1221u);
  // The international AS never appears nationally.
  EXPECT_FALSE(m.ahn.rank_of(4637).has_value());
  EXPECT_DOUBLE_EQ(m.ccn.score_of(1221), 1.0);
}

TEST(CountryRankings, InternationalAsVisibleOnlyInternationally) {
  TwoCountryFixture f;
  CountryRankings rankings{f.graph};
  CountryMetrics m = rankings.compute(f.paths, AU);
  // 4637 is on every inbound path: top-tier AHI presence.
  EXPECT_DOUBLE_EQ(m.ahi.score_of(4637), 1.0);
  EXPECT_DOUBLE_EQ(m.ahi.score_of(1221), 1.0);
  // Cone-wise 4637's cone covers all AU space internationally.
  EXPECT_DOUBLE_EQ(m.cci.score_of(4637), 1.0);
  // The US stub's AS contributes hegemony mass as the VP AS but holds no
  // AU cone.
  EXPECT_DOUBLE_EQ(m.cci.score_of(8001), 0.0);
}

TEST(CountryRankings, CountryWithNoPathsYieldsEmptyRankings) {
  TwoCountryFixture f;
  CountryRankings rankings{f.graph};
  CountryMetrics m = rankings.compute(f.paths, CountryCode::of("JP"));
  EXPECT_TRUE(m.cci.empty());
  EXPECT_TRUE(m.ccn.empty());
  EXPECT_TRUE(m.ahi.empty());
  EXPECT_TRUE(m.ahn.empty());
}

TEST(CountryRankings, ConeVsHegemonyDivergeOnPeering) {
  // AS 6939 peers toward the destination: strong AHI, weak CCI.
  topo::AsGraph g;
  g.add_p2c(6939, 7001);  // one small customer keeps 6939 in the data
  g.add_p2p(6939, 1221);
  g.add_p2c(1221, 9001);
  std::vector<SanitizedPath> paths{
      mk(10, US, AsPath{7001, 6939, 1221, 9001}, 1, AU),
      mk(11, US, AsPath{7001, 6939, 1221, 9001}, 1, AU),
  };
  CountryRankings rankings{g};
  CountryMetrics m = rankings.compute(paths, AU);
  EXPECT_DOUBLE_EQ(m.ahi.score_of(6939), 1.0);
  EXPECT_DOUBLE_EQ(m.cci.score_of(6939), 0.0);  // peer link blocks the cone
  EXPECT_DOUBLE_EQ(m.cci.score_of(1221), 1.0);
}

}  // namespace
}  // namespace georank::core
