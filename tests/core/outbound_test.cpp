#include <gtest/gtest.h>

#include "core/country_rankings.hpp"
#include "core/views.hpp"

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");

SanitizedPath mk(std::uint32_t vp_ip, CountryCode vp_cc, AsPath path,
                 std::uint32_t pfx_index, CountryCode pfx_cc) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.vp_country = vp_cc;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = pfx_cc;
  sp.weight = 256;
  sp.path = std::move(path);
  return sp;
}

std::vector<SanitizedPath> sample() {
  return {
      mk(1, AU, AsPath{9001, 1221, 9002}, 1, AU),          // national
      mk(1, AU, AsPath{9001, 1221, 4637, 3356, 8001}, 2, US),  // outbound
      mk(2, US, AsPath{8001, 3356, 4637, 1221, 9001}, 1, AU),  // inbound
      mk(2, US, AsPath{8001, 3356, 8002}, 3, US),          // foreign-local
  };
}

TEST(OutboundView, SelectsInVpForeignPrefix) {
  auto paths = sample();
  CountryView v = ViewBuilder::outbound(paths, AU);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.kind, ViewKind::kOutbound);
  EXPECT_EQ(v[0].prefix_country, US);
  EXPECT_EQ(v[0].vp_country, AU);
}

TEST(OutboundView, DisjointFromNationalAndInternational) {
  auto paths = sample();
  CountryView nat = ViewBuilder::national(paths, AU);
  CountryView intl = ViewBuilder::international(paths, AU);
  CountryView out = ViewBuilder::outbound(paths, AU);
  // The three views partition an AU VP's and AU prefix's paths with no
  // overlap: check pairwise disjointness on (vp, prefix).
  auto key = [](const sanitize::PathRecord& sp) {
    return std::tuple{sp.vp.ip, sp.prefix.address()};
  };
  for (const auto& a : nat) {
    for (const auto& b : out) EXPECT_NE(key(a), key(b));
    for (const auto& b : intl) EXPECT_NE(key(a), key(b));
  }
  for (const auto& a : intl) {
    for (const auto& b : out) EXPECT_NE(key(a), key(b));
  }
}

TEST(OutboundMetrics, RanksEgressCarriers) {
  topo::AsGraph g;
  g.add_p2c(4637, 1221);
  g.add_p2c(3356, 4637);
  g.add_p2c(1221, 9001);
  g.add_p2c(3356, 8001);
  g.add_p2c(3356, 8002);
  CountryRankings rankings{g};
  auto paths = sample();
  OutboundMetrics m = rankings.compute_outbound(paths, AU);
  EXPECT_EQ(m.country, AU);
  EXPECT_EQ(m.vps, 1u);
  EXPECT_EQ(m.foreign_addresses, 256u);
  // Every outbound path crosses 4637 and 3356.
  EXPECT_DOUBLE_EQ(m.aho.score_of(4637), 1.0);
  EXPECT_DOUBLE_EQ(m.aho.score_of(3356), 1.0);
  // The cone ranking credits the foreign space to the p2c suffix holder.
  EXPECT_DOUBLE_EQ(m.cco.score_of(3356), 1.0);
}

TEST(OutboundMetrics, EmptyWhenNoInCountryVps) {
  topo::AsGraph g;
  g.add_as(1);
  CountryRankings rankings{g};
  std::vector<SanitizedPath> paths{mk(2, US, AsPath{8001, 3356, 8002}, 3, US)};
  OutboundMetrics m = rankings.compute_outbound(paths, AU);
  EXPECT_TRUE(m.aho.empty());
  EXPECT_EQ(m.vps, 0u);
}

}  // namespace
}  // namespace georank::core
