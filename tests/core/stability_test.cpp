#include "core/stability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.vp_country = AU;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = AU;
  sp.weight = 256;
  sp.path = std::move(path);
  return sp;
}

/// Every VP (all hosted in AS 100) sees the identical path set: any
/// sample reproduces the full ranking exactly.
CountryView homogeneous_view(std::size_t vp_count) {
  std::vector<SanitizedPath> paths;
  for (std::uint32_t vp = 1; vp <= vp_count; ++vp) {
    paths.push_back(mk(vp, AsPath{100, 50, 200}, 1));
    paths.push_back(mk(vp, AsPath{100, 50, 201}, 2));
    paths.push_back(mk(vp, AsPath{100, 60, 202}, 3));
  }
  return CountryView::from_paths(std::move(paths), AU, ViewKind::kNational);
}

topo::AsGraph homogeneous_graph(std::size_t /*vp_count*/) {
  topo::AsGraph g;
  g.add_p2c(50, 200);
  g.add_p2c(50, 201);
  g.add_p2c(60, 202);
  g.add_p2c(50, 100);
  g.add_p2c(60, 100);
  return g;
}

TEST(DefaultSampleGrid, DenseThenCoarse) {
  auto grid = default_sample_grid(100);
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 100u);
  // Dense through 16.
  for (std::size_t k = 1; k <= 16; ++k) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), k), grid.end());
  }
  // Coarse after: strictly increasing.
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(DefaultSampleGrid, SmallViews) {
  auto grid = default_sample_grid(3);
  EXPECT_EQ(grid, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_TRUE(default_sample_grid(0).empty());
}

TEST(Stability, HomogeneousViewIsPerfectlyStable) {
  auto graph = homogeneous_graph(8);
  CountryRankings rankings{graph};
  StabilityAnalyzer analyzer{rankings};
  CountryView view = homogeneous_view(8);

  for (MetricKind metric : {MetricKind::kHegemony, MetricKind::kCustomerCone}) {
    auto curve = analyzer.analyze(view, metric);
    ASSERT_FALSE(curve.empty());
    for (const StabilityPoint& p : curve) {
      EXPECT_NEAR(p.mean_ndcg, 1.0, 1e-9) << "k=" << p.vp_count;
    }
  }
}

TEST(Stability, FullSampleAlwaysScoresOne) {
  auto graph = homogeneous_graph(5);
  CountryRankings rankings{graph};
  StabilityAnalyzer analyzer{rankings};
  CountryView view = homogeneous_view(5);
  StabilityOptions options;
  options.sample_sizes = {5};
  auto curve = analyzer.analyze(view, MetricKind::kHegemony, options);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].trials, 1u);  // deterministic full sample
  EXPECT_DOUBLE_EQ(curve[0].mean_ndcg, 1.0);
}

TEST(Stability, HeterogeneousViewImprovesWithMoreVps) {
  // Each VP sees a single path through one of six transit ASes (two VPs
  // per transit AS): small samples miss most ASes, the full set sees all.
  topo::AsGraph g;
  std::vector<SanitizedPath> paths;
  constexpr std::uint32_t kVps = 12;
  for (std::uint32_t vp = 1; vp <= kVps; ++vp) {
    std::uint32_t mid = 50 + (vp % 6);
    if (!g.contains(mid) || !g.relationship(mid, 300 + (vp % 6))) {
      g.add_p2c(mid, 300 + (vp % 6));
    }
    g.add_p2c(mid, 100 + vp);
    paths.push_back(mk(vp, AsPath{100 + vp, mid, 300 + (vp % 6)}, vp % 6));
  }
  CountryView view =
      CountryView::from_paths(std::move(paths), AU, ViewKind::kNational);
  CountryRankings rankings{g};
  StabilityAnalyzer analyzer{rankings};
  StabilityOptions options;
  options.sample_sizes = {1, kVps};
  options.trials_per_size = 6;
  auto curve = analyzer.analyze(view, MetricKind::kHegemony, options);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_LT(curve[0].mean_ndcg, curve[1].mean_ndcg);
  EXPECT_DOUBLE_EQ(curve[1].mean_ndcg, 1.0);
}

TEST(Stability, SampleSizesBeyondVpCountSkipped) {
  auto graph = homogeneous_graph(3);
  CountryRankings rankings{graph};
  StabilityAnalyzer analyzer{rankings};
  CountryView view = homogeneous_view(3);
  StabilityOptions options;
  options.sample_sizes = {2, 3, 10, 0};
  auto curve = analyzer.analyze(view, MetricKind::kCustomerCone, options);
  EXPECT_EQ(curve.size(), 2u);  // 10 and 0 skipped
}

TEST(Stability, MinVpsForThreshold) {
  std::vector<StabilityPoint> curve{
      {2, 0.5, 0, 0, 4}, {4, 0.85, 0, 0, 4}, {6, 0.92, 0, 0, 4},
      {8, 0.97, 0, 0, 4}};
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.9), 6u);
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.8), 4u);
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.99), 0u);  // unreachable
}

TEST(Stability, MinVpsForEmptyCurveIsZero) {
  EXPECT_EQ(StabilityAnalyzer::min_vps_for({}, 0.9), 0u);
}

TEST(Stability, MinVpsForRequiresStableSuffix) {
  // A lucky small sample that passes the threshold but dips afterwards
  // must not count as stabilized: the answer is the start of the longest
  // suffix that STAYS above the threshold.
  std::vector<StabilityPoint> curve{
      {2, 0.95, 0, 0, 4},  // lucky early pass
      {4, 0.70, 0, 0, 4},  // ...then a dip
      {6, 0.92, 0, 0, 4},
      {8, 0.97, 0, 0, 4}};
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.9), 6u);
}

TEST(Stability, MinVpsForAcceptsUnsortedCurve) {
  std::vector<StabilityPoint> curve{
      {8, 0.97, 0, 0, 4}, {2, 0.5, 0, 0, 4}, {6, 0.92, 0, 0, 4},
      {4, 0.85, 0, 0, 4}};
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.9), 6u);
}

TEST(Stability, MinVpsForTreatsNonFiniteMeansAsFailing) {
  std::vector<StabilityPoint> curve{
      {2, 0.95, 0, 0, 4},
      {4, std::numeric_limits<double>::quiet_NaN(), 0, 0, 4},
      {6, 0.92, 0, 0, 4}};
  // The NaN at k=4 breaks any suffix through it; only k=6 qualifies.
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.9), 6u);
  // A NaN at the largest size means no suffix qualifies at all.
  std::vector<StabilityPoint> tail_nan{
      {2, 0.95, 0, 0, 4},
      {4, std::numeric_limits<double>::infinity(), 0, 0, 4}};
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(tail_nan, 0.9), 0u);
}

TEST(Stability, MinVpsForSinglePointCurve) {
  std::vector<StabilityPoint> curve{{5, 0.93, 0, 0, 4}};
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.9), 5u);
  EXPECT_EQ(StabilityAnalyzer::min_vps_for(curve, 0.95), 0u);
}

TEST(Stability, StdevZeroForDeterministicSamples) {
  auto graph = homogeneous_graph(5);
  CountryRankings rankings{graph};
  StabilityAnalyzer analyzer{rankings};
  CountryView view = homogeneous_view(5);
  StabilityOptions options;
  options.sample_sizes = {2, 5};
  auto curve = analyzer.analyze(view, MetricKind::kHegemony, options);
  ASSERT_EQ(curve.size(), 2u);
  // Homogeneous view: every sample scores identically -> stdev 0.
  EXPECT_DOUBLE_EQ(curve[0].stdev_ndcg, 0.0);
  // Full sample: single trial -> stdev 0 by definition.
  EXPECT_DOUBLE_EQ(curve[1].stdev_ndcg, 0.0);
}

TEST(Stability, DeterministicForFixedSeed) {
  auto graph = homogeneous_graph(6);
  CountryRankings rankings{graph};
  StabilityAnalyzer analyzer{rankings};
  CountryView view = homogeneous_view(6);
  StabilityOptions options;
  options.seed = 99;
  auto a = analyzer.analyze(view, MetricKind::kHegemony, options);
  auto b = analyzer.analyze(view, MetricKind::kHegemony, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_ndcg, b[i].mean_ndcg);
  }
}

}  // namespace
}  // namespace georank::core
