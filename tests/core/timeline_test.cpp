#include "core/timeline.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using rank::Ranking;

CountryMetrics metrics_with_cci(Ranking cci) {
  CountryMetrics m;
  m.country = geo::CountryCode::of("TW");
  m.cci = std::move(cci);
  return m;
}

Timeline three_epochs() {
  // China-Telecom-style decline: AS 4134 rank 2 -> 7 -> gone.
  std::vector<TimelinePoint> points;
  points.push_back({"2018", metrics_with_cci(Ranking::from_scores(
                                {{3462, 0.9}, {4134, 0.6}, {9680, 0.3}}))});
  points.push_back({"2021", metrics_with_cci(Ranking::from_scores(
                                {{3462, 0.9}, {9680, 0.5}, {4134, 0.2}}))});
  points.push_back({"2023", metrics_with_cci(Ranking::from_scores(
                                {{3462, 0.9}, {9680, 0.6}, {1659, 0.3}}))});
  return Timeline{std::move(points)};
}

TEST(Timeline, RejectsEmptyOrMixedCountries) {
  EXPECT_THROW(Timeline{std::vector<TimelinePoint>{}}, std::invalid_argument);
  std::vector<TimelinePoint> mixed;
  mixed.push_back({"a", metrics_with_cci({})});
  CountryMetrics other;
  other.country = geo::CountryCode::of("US");
  mixed.push_back({"b", other});
  EXPECT_THROW(Timeline{std::move(mixed)}, std::invalid_argument);
}

TEST(Timeline, TrajectoriesCoverUnionOfTopK) {
  Timeline t = three_epochs();
  auto trajectories = t.trajectories(TimelineMetric::kCci, 3);
  // Union: 3462, 4134, 9680, 1659.
  ASSERT_EQ(trajectories.size(), 4u);
  // Ordered by best rank: 3462 (always #1) first.
  EXPECT_EQ(trajectories[0].asn, 3462u);
  EXPECT_EQ(trajectories[0].best_rank(), 1u);
}

TEST(Timeline, DeclineVisibleInTrajectory) {
  Timeline t = three_epochs();
  auto trajectories = t.trajectories(TimelineMetric::kCci, 3);
  const AsTrajectory* ct = nullptr;
  for (const auto& tr : trajectories) {
    if (tr.asn == 4134) ct = &tr;
  }
  ASSERT_NE(ct, nullptr);
  ASSERT_EQ(ct->ranks.size(), 3u);
  EXPECT_EQ(ct->ranks[0], 2u);
  EXPECT_EQ(ct->ranks[1], 3u);
  EXPECT_FALSE(ct->ranks[2].has_value());  // gone by 2023
  EXPECT_LT(ct->score_trend(), 0.0);
}

TEST(Timeline, DroppedOutFindsTheDecliner) {
  Timeline t = three_epochs();
  EXPECT_EQ(t.dropped_out(TimelineMetric::kCci, 3),
            (std::vector<bgp::Asn>{4134}));
  // With top_k = 1 nothing drops (3462 holds #1 throughout).
  EXPECT_TRUE(t.dropped_out(TimelineMetric::kCci, 1).empty());
}

TEST(Timeline, DeltasAreConsecutivePairs) {
  Timeline t = three_epochs();
  auto deltas = t.deltas(TimelineMetric::kCci, 3);
  ASSERT_EQ(deltas.size(), 2u);
  // 2018->2021: no entry/exit within top-3 (same membership).
  EXPECT_TRUE(deltas[0].entries().empty());
  // 2021->2023: 1659 enters, 4134 leaves.
  EXPECT_EQ(deltas[1].entries(), (std::vector<bgp::Asn>{1659}));
  EXPECT_EQ(deltas[1].exits(), (std::vector<bgp::Asn>{4134}));
}

TEST(Timeline, SelectMetricPicksTheRightRanking) {
  CountryMetrics m;
  m.country = geo::CountryCode::of("AU");
  m.cci = Ranking::from_scores({{1, 1.0}});
  m.ahi = Ranking::from_scores({{2, 1.0}});
  m.ccn = Ranking::from_scores({{3, 1.0}});
  m.ahn = Ranking::from_scores({{4, 1.0}});
  EXPECT_EQ(select_metric(m, TimelineMetric::kCci).entries()[0].asn, 1u);
  EXPECT_EQ(select_metric(m, TimelineMetric::kAhi).entries()[0].asn, 2u);
  EXPECT_EQ(select_metric(m, TimelineMetric::kCcn).entries()[0].asn, 3u);
  EXPECT_EQ(select_metric(m, TimelineMetric::kAhn).entries()[0].asn, 4u);
}

TEST(Timeline, SinglePointTimeline) {
  std::vector<TimelinePoint> points;
  points.push_back({"only", metrics_with_cci(Ranking::from_scores({{1, 1.0}}))});
  Timeline t{std::move(points)};
  EXPECT_TRUE(t.deltas(TimelineMetric::kCci).empty());
  EXPECT_TRUE(t.dropped_out(TimelineMetric::kCci).empty());
  EXPECT_EQ(t.trajectories(TimelineMetric::kCci).size(), 1u);
}

}  // namespace
}  // namespace georank::core
