#include "core/views.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");
CountryCode JP = CountryCode::of("JP");

SanitizedPath mk(std::uint32_t vp_ip, CountryCode vp_cc, std::uint32_t pfx_index,
                 CountryCode pfx_cc, std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, vp_ip};
  sp.vp_country = vp_cc;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = pfx_cc;
  sp.weight = weight;
  sp.path = AsPath{vp_ip, 100, 200};
  return sp;
}

std::vector<SanitizedPath> sample_paths() {
  return {
      mk(1, AU, 1, AU),  // national AU
      mk(1, AU, 2, US),  // AU vp toward US prefix: neither AU view
      mk(2, US, 1, AU),  // international AU
      mk(3, US, 2, US),  // national US
      mk(4, JP, 1, AU),  // international AU
      mk(4, JP, 2, US),  // international US
  };
}

TEST(Views, NationalSelectsInCountryBothEnds) {
  auto paths = sample_paths();
  CountryView v = ViewBuilder::national(paths, AU);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].vp.ip, 1u);
  EXPECT_EQ(v.kind, ViewKind::kNational);
  EXPECT_EQ(v.country, AU);
}

TEST(Views, InternationalSelectsForeignVps) {
  auto paths = sample_paths();
  CountryView v = ViewBuilder::international(paths, AU);
  ASSERT_EQ(v.size(), 2u);
  for (const sanitize::PathRecord sp : v) {
    EXPECT_EQ(sp.prefix_country, AU);
    EXPECT_NE(sp.vp_country, AU);
  }
}

TEST(Views, NationalAndInternationalPartitionCountryPaths) {
  auto paths = sample_paths();
  CountryView nat = ViewBuilder::national(paths, AU);
  CountryView intl = ViewBuilder::international(paths, AU);
  std::size_t toward_au = 0;
  for (const auto& sp : paths) {
    if (sp.prefix_country == AU && sp.vp_country.valid()) ++toward_au;
  }
  EXPECT_EQ(nat.size() + intl.size(), toward_au);
}

TEST(Views, VpsDeduplicated) {
  std::vector<SanitizedPath> paths{
      mk(1, AU, 1, AU), mk(1, AU, 3, AU), mk(5, AU, 1, AU)};
  CountryView v = ViewBuilder::national(paths, AU);
  EXPECT_EQ(v.vp_count(), 2u);
  auto vps = v.vps();
  ASSERT_EQ(vps.size(), 2u);
  EXPECT_LT(vps[0], vps[1]);  // sorted
}

TEST(Views, AddressWeightCountsDistinctPrefixesOnce) {
  std::vector<SanitizedPath> paths{
      mk(1, AU, 1, AU, 100), mk(5, AU, 1, AU, 100), mk(1, AU, 3, AU, 50)};
  CountryView v = ViewBuilder::national(paths, AU);
  EXPECT_EQ(v.address_weight(), 150u);
}

TEST(Views, RestrictedToSubsetsVps) {
  std::vector<SanitizedPath> paths{
      mk(1, AU, 1, AU), mk(5, AU, 2, AU), mk(6, AU, 3, AU)};
  CountryView v = ViewBuilder::national(paths, AU);
  std::vector<bgp::VpId> keep{bgp::VpId{1, 1}, bgp::VpId{6, 6}};
  CountryView sub = v.restricted_to(keep);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.vp_count(), 2u);
  EXPECT_EQ(sub.country, AU);
  EXPECT_EQ(sub.kind, v.kind);
}

TEST(Views, CountriesListsPrefixCountries) {
  auto paths = sample_paths();
  auto countries = ViewBuilder::countries(paths);
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0], AU);
  EXPECT_EQ(countries[1], US);
}

TEST(Views, EmptyInput) {
  CountryView v = ViewBuilder::national({}, AU);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.vp_count(), 0u);
  EXPECT_EQ(v.address_weight(), 0u);
}

}  // namespace
}  // namespace georank::core
