#include "core/report.hpp"

#include <gtest/gtest.h>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new gen::World(
        gen::InternetGenerator{gen::mini_world_spec(31)}.generate());
    gen::NoiseSpec noise;
    bgp::RibCollection ribs = gen::RibGenerator{*world_, noise, 3}.generate(5);
    PipelineConfig cfg;
    cfg.sanitizer.clique = world_->clique;
    cfg.sanitizer.route_server_asns = world_->route_servers;
    pipeline_ = new Pipeline(world_->geo_db, world_->vps, world_->asn_registry,
                             world_->graph, cfg);
    pipeline_->load(ribs);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete world_;
    pipeline_ = nullptr;
    world_ = nullptr;
  }
  static gen::World* world_;
  static Pipeline* pipeline_;
};

gen::World* ReportTest::world_ = nullptr;
Pipeline* ReportTest::pipeline_ = nullptr;

TEST_F(ReportTest, BuildsAllSections) {
  CountryReport report = build_country_report(
      *pipeline_, world_->as_registry, geo::CountryCode::of("AU"));
  EXPECT_FALSE(report.empty());
  EXPECT_FALSE(report.metrics.cci.empty());
  EXPECT_FALSE(report.outbound.aho.empty());
  EXPECT_FALSE(report.ahc.empty());
  EXPECT_FALSE(report.cti.empty());
  EXPECT_EQ(report.sovereignty.country, geo::CountryCode::of("AU"));
}

TEST_F(ReportTest, OptionsDisableSections) {
  ReportOptions options;
  options.include_outbound = false;
  options.include_baselines = false;
  CountryReport report = build_country_report(
      *pipeline_, world_->as_registry, geo::CountryCode::of("AU"), options);
  EXPECT_TRUE(report.ahc.empty());
  EXPECT_TRUE(report.cti.empty());
  EXPECT_TRUE(report.outbound.aho.empty());
}

TEST_F(ReportTest, RenderContainsKeyActors) {
  CountryReport report = build_country_report(
      *pipeline_, world_->as_registry, geo::CountryCode::of("AU"));
  std::string text = render_country_report(
      report, [&](bgp::Asn asn) { return world_->name_of(asn); });
  EXPECT_NE(text.find("=== AU ==="), std::string::npos);
  EXPECT_NE(text.find("Telstra"), std::string::npos);
  EXPECT_NE(text.find("Vocus"), std::string::npos);
  EXPECT_NE(text.find("sovereignty"), std::string::npos);
  EXPECT_NE(text.find("AHO"), std::string::npos);
}

TEST_F(ReportTest, RenderWithoutResolverUsesAsnLabels) {
  CountryReport report = build_country_report(
      *pipeline_, world_->as_registry, geo::CountryCode::of("AU"));
  std::string text = render_country_report(report);
  EXPECT_NE(text.find("AS1221"), std::string::npos);
}

TEST_F(ReportTest, EmptyCountryReportsEmpty) {
  CountryReport report = build_country_report(
      *pipeline_, world_->as_registry, geo::CountryCode::of("ZZ"));
  EXPECT_TRUE(report.empty());
  // Rendering an empty report must not crash.
  std::string text = render_country_report(report);
  EXPECT_NE(text.find("=== ZZ ==="), std::string::npos);
}

}  // namespace
}  // namespace georank::core
