// Race-provoking stress for the Pipeline's reload path, written for the
// build-tsan CI tier. The locking contract under test (pipeline.hpp):
// load() holds the reload lock exclusively while swapping the world in;
// every value-returning query holds it shared for its whole body; the
// memo cache behind `mutex` may be hit from any number of query threads.
//
// These tests are about what ThreadSanitizer observes, not just about
// return values: a benign-looking unsynchronized read (loaded() before
// it took the shared lock, parse_stats_ written outside the reload
// lock) fails the TSan tier even when every assertion below passes.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::core {
namespace {

using geo::CountryCode;

struct StressFixture {
  gen::World world;
  bgp::RibCollection ribs_a;
  bgp::RibCollection ribs_b;

  StressFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(13)}.generate()) {
    gen::NoiseSpec noise;
    ribs_a = gen::RibGenerator{world, noise, 5}.generate(4);
    ribs_b = gen::RibGenerator{world, noise, 11}.generate(4);
  }

  PipelineConfig config() const {
    PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }
};

TEST(PipelineStress, QueriesRaceReloadWithoutTearing) {
  StressFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs_a);
  const std::vector<CountryMetrics> world_a = pipeline.all_countries();
  pipeline.load(f.ribs_b);
  const std::vector<CountryMetrics> world_b = pipeline.all_countries();
  ASSERT_FALSE(world_a.empty());
  ASSERT_FALSE(world_b.empty());
  const CountryCode target = world_a.front().country;

  // One writer flips between the two worlds; readers hammer the
  // query surface. Every observed result must match ONE world exactly —
  // a mixed result means a query saw a half-swapped state.
  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};
  std::thread writer([&] {
    for (int round = 0; round < 6; ++round) {
      pipeline.load(round % 2 == 0 ? f.ribs_b : f.ribs_a);
    }
    stop.store(true, std::memory_order_release);
  });

  auto matches = [&](const CountryMetrics& got, const std::vector<CountryMetrics>& w) {
    for (const CountryMetrics& m : w) {
      if (m.country == got.country) {
        return m.national_vps == got.national_vps &&
               m.international_vps == got.international_vps &&
               m.cci.size() == got.cci.size() &&
               m.ahi.size() == got.ahi.size();
      }
    }
    return false;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_TRUE(pipeline.loaded());
        const CountryMetrics got = pipeline.country(target);
        if (!matches(got, world_a) && !matches(got, world_b)) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
        (void)pipeline.geo_evidence(target);
        (void)pipeline.outbound(target);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mixed.load(), 0) << "a query returned a mix of two worlds";
}

TEST(PipelineStress, StreamReloadPublishesParseStatsSafely) {
  // load_text() must commit parse_stats_ under the same exclusive hold
  // as the world swap; readers query the pipeline while text reloads
  // run. (Reading the parse_stats() REFERENCE concurrently is excluded
  // by its documented contract; loaded()/country() are not.)
  StressFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  const std::string text_a = bgp::to_mrt_text(f.ribs_a);
  const std::string text_b = bgp::to_mrt_text(f.ribs_b);
  pipeline.load_text(text_a);
  const CountryCode target = pipeline.all_countries().front().country;

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 0; round < 4; ++round) {
      pipeline.load_text(round % 2 == 0 ? text_b : text_a);
      EXPECT_EQ(pipeline.parse_stats().malformed, 0u);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EXPECT_TRUE(pipeline.loaded());
        (void)pipeline.country(target);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
}

TEST(PipelineStress, ConcurrentCensusesAreBitIdentical) {
  // Multiple all_countries() calls racing each other (and the memo
  // cache) must each return the same census a quiet call returns.
  StressFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs_a);
  const std::vector<CountryMetrics> expected = pipeline.all_countries();
  pipeline.clear_caches();

  constexpr int kCallers = 4;
  std::vector<std::vector<CountryMetrics>> got(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] { got[c] = pipeline.all_countries(); });
  }
  for (std::thread& t : callers) t.join();

  for (int c = 0; c < kCallers; ++c) {
    ASSERT_EQ(got[c].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(got[c][i].country, expected[i].country);
      ASSERT_EQ(got[c][i].national_vps, expected[i].national_vps);
      ASSERT_EQ(got[c][i].cci.size(),
                expected[i].cci.size());
      for (std::size_t k = 0; k < expected[i].cci.size(); ++k) {
        ASSERT_EQ(got[c][i].cci.entries()[k].asn,
                  expected[i].cci.entries()[k].asn);
        ASSERT_EQ(got[c][i].cci.entries()[k].score,
                  expected[i].cci.entries()[k].score);
      }
    }
  }
}

}  // namespace
}  // namespace georank::core
