#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank::core {
namespace {

using geo::CountryCode;

struct PipelineFixture {
  gen::World world;
  bgp::RibCollection ribs;

  PipelineFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()) {
    gen::NoiseSpec noise;  // defaults: mild, realistic
    ribs = gen::RibGenerator{world, noise, 5}.generate(5);
  }

  PipelineConfig config() const {
    PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }
};

TEST(Pipeline, ThrowsBeforeLoad) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  EXPECT_FALSE(pipeline.loaded());
  EXPECT_THROW((void)pipeline.sanitized(), std::logic_error);
  EXPECT_THROW((void)pipeline.country(CountryCode::of("AU")), std::logic_error);
}

TEST(Pipeline, LoadStructRuns) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  ASSERT_TRUE(pipeline.loaded());
  EXPECT_GT(pipeline.sanitized().paths.size(), 100u);
  EXPECT_GT(pipeline.sanitized().stats.accepted, 0u);
}

TEST(Pipeline, TextRoundTripMatchesStructLoad) {
  PipelineFixture f;
  Pipeline direct{f.world.geo_db, f.world.vps, f.world.asn_registry,
                  f.world.graph, f.config()};
  direct.load(f.ribs);

  Pipeline via_text{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  via_text.load_text(bgp::to_mrt_text(f.ribs));
  EXPECT_EQ(via_text.parse_stats().malformed, 0u);
  EXPECT_EQ(via_text.parse_stats().parsed, f.ribs.total_entries());

  EXPECT_EQ(direct.sanitized().paths.size(), via_text.sanitized().paths.size());
  EXPECT_EQ(direct.sanitized().stats.accepted,
            via_text.sanitized().stats.accepted);
}

TEST(Pipeline, CountryMetricsComputed) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  CountryMetrics au = pipeline.country(CountryCode::of("AU"));
  EXPECT_FALSE(au.cci.empty());
  EXPECT_FALSE(au.ccn.empty());
  EXPECT_FALSE(au.ahi.empty());
  EXPECT_FALSE(au.ahn.empty());
  EXPECT_GT(au.national_vps, 0u);
  EXPECT_GT(au.international_vps, au.national_vps);
}

TEST(Pipeline, GlobalBaselinesComputed) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  EXPECT_FALSE(pipeline.global_cone_by_as_count().empty());
  EXPECT_FALSE(pipeline.global_cone_by_addresses().empty());
  EXPECT_FALSE(pipeline.global_hegemony().empty());
  EXPECT_FALSE(pipeline.ahc(f.world.as_registry, CountryCode::of("AU")).empty());
  EXPECT_FALSE(pipeline.cti(CountryCode::of("AU")).empty());
}

TEST(Pipeline, GlobalConeTopIsTier1) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  rank::Ranking ccg = pipeline.global_cone_by_as_count();
  // The largest cone in the mini world belongs to one of the tier-1s.
  bgp::Asn top = ccg.entries()[0].asn;
  EXPECT_TRUE(std::find(f.world.clique.begin(), f.world.clique.end(), top) !=
              f.world.clique.end())
      << "top AS " << top;
}

}  // namespace
}  // namespace georank::core
