#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <thread>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "geo/geo_db.hpp"
#include "geo/vp_geolocator.hpp"
#include "sanitize/asn_registry.hpp"
#include "topo/as_graph.hpp"

namespace georank::core {
namespace {

using geo::CountryCode;

struct PipelineFixture {
  gen::World world;
  bgp::RibCollection ribs;

  PipelineFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()) {
    gen::NoiseSpec noise;  // defaults: mild, realistic
    ribs = gen::RibGenerator{world, noise, 5}.generate(5);
  }

  PipelineConfig config() const {
    PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }
};

TEST(Pipeline, ThrowsBeforeLoad) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  EXPECT_FALSE(pipeline.loaded());
  EXPECT_THROW((void)pipeline.sanitized(), std::logic_error);
  EXPECT_THROW((void)pipeline.store(), std::logic_error);
  EXPECT_THROW((void)pipeline.outbound(CountryCode::of("AU")), std::logic_error);
  EXPECT_THROW((void)pipeline.all_countries(), std::logic_error);
  EXPECT_THROW((void)pipeline.cti(CountryCode::of("AU")), std::logic_error);
  EXPECT_THROW((void)pipeline.geo_evidence(CountryCode::of("AU")),
               std::logic_error);
  try {
    (void)pipeline.country(CountryCode::of("AU"));
    FAIL() << "country() before load() must throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "Pipeline::country(): no RIBs loaded");
  }
}

TEST(Pipeline, LoadStructRuns) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  ASSERT_TRUE(pipeline.loaded());
  EXPECT_GT(pipeline.sanitized().paths.size(), 100u);
  EXPECT_GT(pipeline.sanitized().stats.accepted, 0u);
}

TEST(Pipeline, TextRoundTripMatchesStructLoad) {
  PipelineFixture f;
  Pipeline direct{f.world.geo_db, f.world.vps, f.world.asn_registry,
                  f.world.graph, f.config()};
  direct.load(f.ribs);

  Pipeline via_text{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  via_text.load_text(bgp::to_mrt_text(f.ribs));
  EXPECT_EQ(via_text.parse_stats().malformed, 0u);
  EXPECT_EQ(via_text.parse_stats().parsed, f.ribs.total_entries());

  EXPECT_EQ(direct.sanitized().paths.size(), via_text.sanitized().paths.size());
  EXPECT_EQ(direct.sanitized().stats.accepted,
            via_text.sanitized().stats.accepted);
  // The streaming loader fills throughput accounting.
  EXPECT_GT(via_text.parse_stats().bytes, 0u);
  EXPECT_GT(via_text.parse_stats().elapsed_seconds, 0.0);
}

TEST(Pipeline, StrictIngestThrowsOnMalformedText) {
  PipelineFixture f;
  PipelineConfig cfg = f.config();
  cfg.ingest.mode = bgp::ParseMode::kStrict;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, cfg};
  std::string text = bgp::to_mrt_text(f.ribs) + "garbage line\n";
  EXPECT_THROW(pipeline.load_text(text), bgp::MrtParseError);
  EXPECT_FALSE(pipeline.loaded());  // nothing was sanitized

  // The same text loads fine under the tolerant default, with the drop
  // attributed per reason.
  Pipeline tolerant{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  tolerant.load_text(text);
  EXPECT_EQ(tolerant.parse_stats().malformed, 1u);
  EXPECT_EQ(tolerant.parse_stats().bad_field_count, 1u);
}

TEST(Pipeline, CountryMetricsComputed) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  CountryMetrics au = pipeline.country(CountryCode::of("AU"));
  EXPECT_FALSE(au.cci.empty());
  EXPECT_FALSE(au.ccn.empty());
  EXPECT_FALSE(au.ahi.empty());
  EXPECT_FALSE(au.ahn.empty());
  EXPECT_GT(au.national_vps, 0u);
  EXPECT_GT(au.international_vps, au.national_vps);
}

TEST(Pipeline, GlobalBaselinesComputed) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  EXPECT_FALSE(pipeline.global_cone_by_as_count().empty());
  EXPECT_FALSE(pipeline.global_cone_by_addresses().empty());
  EXPECT_FALSE(pipeline.global_hegemony().empty());
  EXPECT_FALSE(pipeline.ahc(f.world.as_registry, CountryCode::of("AU")).empty());
  EXPECT_FALSE(pipeline.cti(CountryCode::of("AU")).empty());
}

void expect_bitwise_equal(const rank::Ranking& a, const rank::Ranking& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].asn, b.entries()[i].asn);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.entries()[i].score),
              std::bit_cast<std::uint64_t>(b.entries()[i].score));
  }
}

void expect_bitwise_equal(const CountryMetrics& a, const CountryMetrics& b) {
  EXPECT_EQ(a.country, b.country);
  EXPECT_EQ(a.national_vps, b.national_vps);
  EXPECT_EQ(a.international_vps, b.international_vps);
  EXPECT_EQ(a.national_addresses, b.national_addresses);
  EXPECT_EQ(a.international_addresses, b.international_addresses);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.geo_consensus),
            std::bit_cast<std::uint64_t>(b.geo_consensus));
  expect_bitwise_equal(a.cci, b.cci);
  expect_bitwise_equal(a.ccn, b.ccn);
  expect_bitwise_equal(a.ahi, b.ahi);
  expect_bitwise_equal(a.ahn, b.ahn);
}

TEST(Pipeline, AllCountriesCoversCensusAndMatchesSingleQueries) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);

  std::vector<CountryMetrics> census = pipeline.all_countries();
  ASSERT_EQ(census.size(), pipeline.store().countries().size());
  for (std::size_t i = 0; i < census.size(); ++i) {
    EXPECT_EQ(census[i].country, pipeline.store().countries()[i]);  // sorted
    expect_bitwise_equal(census[i], pipeline.country(census[i].country));
  }
}

TEST(Pipeline, AllCountriesDeterministicAcrossThreadCounts) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);

  ASSERT_EQ(setenv("GEORANK_THREADS", "1", 1), 0);
  std::vector<CountryMetrics> serial = pipeline.all_countries();
  for (const char* threads : {"4", "16"}) {
    pipeline.clear_caches();
    ASSERT_EQ(setenv("GEORANK_THREADS", threads, 1), 0);
    std::vector<CountryMetrics> parallel = pipeline.all_countries();
    ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_bitwise_equal(serial[i], parallel[i]);
    }
  }
  unsetenv("GEORANK_THREADS");
}

TEST(Pipeline, MemoizedQueriesSurviveReload) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  CountryMetrics first = pipeline.country(CountryCode::of("AU"));
  expect_bitwise_equal(first, pipeline.country(CountryCode::of("AU")));

  // Reload invalidates the memo cache but reproduces identical inputs,
  // so the recomputed result must match too.
  pipeline.load(f.ribs);
  expect_bitwise_equal(first, pipeline.country(CountryCode::of("AU")));
}

// Hand-built two-country world whose AU and US paths are fully disjoint
// (distinct VPs, prefixes and ASNs), so a reload that changes one
// country's RIB entries must evict exactly that country's memo entries
// and keep the other's warm.
struct TwoCountryFixture {
  geo::GeoDatabase geo_db;
  geo::VpGeolocator vps;
  sanitize::AsnRegistry registry = sanitize::AsnRegistry::permissive();
  topo::AsGraph graph;
  CountryCode au = CountryCode::of("AU");
  CountryCode us = CountryCode::of("US");

  TwoCountryFixture() {
    geo_db.add_range(0x0A000000, 0x0A0000FF, au);
    geo_db.add_range(0x0B000000, 0x0B0000FF, us);
    geo_db.finalize();
    vps.add_collector({"au-col", au, false});
    vps.add_collector({"us-col", us, false});
    vps.register_vp(bgp::VpId{1, 100}, "au-col");
    vps.register_vp(bgp::VpId{2, 101}, "us-col");
    graph.add_p2c(100, 200);
    graph.add_p2c(101, 201);
    graph.add_p2c(101, 202);  // only announced by the "grown" US RIB
  }

  bgp::RibCollection ribs(bool extra_us_prefix) const {
    bgp::RibSnapshot day;
    day.day = 1;
    day.entries.push_back(
        {bgp::VpId{1, 100}, bgp::Prefix{0x0A000000, 24}, bgp::AsPath{100, 200}});
    day.entries.push_back(
        {bgp::VpId{2, 101}, bgp::Prefix{0x0B000000, 24}, bgp::AsPath{101, 201}});
    if (extra_us_prefix) {
      day.entries.push_back({bgp::VpId{2, 101}, bgp::Prefix{0x0B000080, 25},
                             bgp::AsPath{101, 202}});
    }
    return bgp::RibCollection{{std::move(day)}};
  }
};

TEST(Pipeline, ReloadEvictsOnlyChangedCountries) {
  TwoCountryFixture f;
  Pipeline pipeline{f.geo_db, f.vps, f.registry, f.graph, {}};
  pipeline.load(f.ribs(false));
  std::vector<CountryMetrics> census = pipeline.all_countries();
  ASSERT_EQ(census.size(), 2u);
  ASSERT_EQ(census[0].country, f.au);  // sorted by code
  (void)pipeline.outbound(f.au);
  (void)pipeline.outbound(f.us);
  EXPECT_EQ(pipeline.cache_stats().countries, 2u);
  EXPECT_EQ(pipeline.cache_stats().outbounds, 2u);

  // Reloading identical RIBs: every shard digest matches, nothing evicted.
  pipeline.load(f.ribs(false));
  EXPECT_EQ(pipeline.cache_stats().countries, 2u);
  EXPECT_EQ(pipeline.cache_stats().outbounds, 2u);

  // Growing the US RIB changes the US shard (and its geo evidence) but
  // leaves AU's bit-identical: only the US entries are dropped.
  pipeline.load(f.ribs(true));
  EXPECT_EQ(pipeline.cache_stats().countries, 1u);
  EXPECT_EQ(pipeline.cache_stats().outbounds, 1u);
  expect_bitwise_equal(census[0], pipeline.country(f.au));

  // The recomputed US result sees the extra origin AS behind the /25 in
  // its national ranking (the fixture has no international paths), and
  // the cache is full again after the query.
  CountryMetrics us_after = pipeline.country(f.us);
  EXPECT_GT(us_after.ccn.size(), census[1].ccn.size());
  EXPECT_EQ(pipeline.cache_stats().countries, 2u);

  // clear_caches() still empties everything unconditionally.
  pipeline.clear_caches();
  EXPECT_EQ(pipeline.cache_stats().countries, 0u);
  EXPECT_EQ(pipeline.cache_stats().outbounds, 0u);
}

TEST(Pipeline, CountryMetricsCarryConfidenceAnnotation) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  CountryMetrics au = pipeline.country(CountryCode::of("AU"));
  // The mini world gives every country several VPs per view and clean
  // geolocation, so the paper-default policy rates it high.
  EXPECT_EQ(au.confidence, robust::ConfidenceTier::kHigh);
  EXPECT_DOUBLE_EQ(au.geo_consensus, 1.0);
  Pipeline::GeoEvidence evidence = pipeline.geo_evidence(CountryCode::of("AU"));
  EXPECT_GT(evidence.accepted, 0u);

  // A stricter policy downgrades the same evidence.
  PipelineConfig strict = f.config();
  strict.degradation.min_vps = 1000;
  Pipeline demanding{f.world.geo_db, f.world.vps, f.world.asn_registry,
                     f.world.graph, strict};
  demanding.load(f.ribs);
  EXPECT_EQ(demanding.country(CountryCode::of("AU")).confidence,
            robust::ConfidenceTier::kDegraded);
}

TEST(Pipeline, ZeroGeolocatedCountryReturnsFlaggedEmptyResult) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  // FR exists as a country code but has no prefix in the mini world: the
  // query must not throw and must not fabricate a ranking — it returns
  // empty metrics flagged insufficient.
  CountryCode fr = CountryCode::of("FR");
  ASSERT_EQ(pipeline.geo_evidence(fr).accepted, 0u);
  CountryMetrics metrics = pipeline.country(fr);
  EXPECT_TRUE(metrics.cci.empty());
  EXPECT_TRUE(metrics.ahn.empty());
  EXPECT_EQ(metrics.national_vps, 0u);
  EXPECT_EQ(metrics.confidence, robust::ConfidenceTier::kInsufficient);
  EXPECT_DOUBLE_EQ(metrics.geo_consensus, 1.0);  // nothing rejected either
}

TEST(Pipeline, ConcurrentCountryQueriesRaceReloadSafely) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  const CountryMetrics baseline = pipeline.country(CountryCode::of("AU"));

  // Reloading the same RIBs reproduces an identical world, so every
  // result a racing reader observes — pre- or post-reload — must be
  // bitwise equal to the baseline. The shared reload lock guarantees no
  // reader ever sees a half-swapped world.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        CountryMetrics m = pipeline.country(CountryCode::of("AU"));
        if (m.cci.size() != baseline.cci.size() ||
            m.national_vps != baseline.national_vps ||
            m.confidence != baseline.confidence) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 5; ++i) pipeline.load(f.ribs);
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  expect_bitwise_equal(baseline, pipeline.country(CountryCode::of("AU")));
}

TEST(Pipeline, GlobalConeTopIsTier1) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  rank::Ranking ccg = pipeline.global_cone_by_as_count();
  // The largest cone in the mini world belongs to one of the tier-1s.
  bgp::Asn top = ccg.entries()[0].asn;
  EXPECT_TRUE(std::find(f.world.clique.begin(), f.world.clique.end(), top) !=
              f.world.clique.end())
      << "top AS " << top;
}

// ---- apply_updates: the incremental reload behind the live pipeline. ----

void expect_bitwise_metrics(const CountryMetrics& a, const CountryMetrics& b) {
  ASSERT_EQ(a.country, b.country);
  ASSERT_EQ(a.cci.size(), b.cci.size());
  for (std::size_t i = 0; i < a.cci.size(); ++i) {
    EXPECT_EQ(a.cci.entries()[i].asn, b.cci.entries()[i].asn);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cci.entries()[i].score),
              std::bit_cast<std::uint64_t>(b.cci.entries()[i].score));
  }
  ASSERT_EQ(a.ahn.size(), b.ahn.size());
  for (std::size_t i = 0; i < a.ahn.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.ahn.entries()[i].score),
              std::bit_cast<std::uint64_t>(b.ahn.entries()[i].score));
  }
  EXPECT_EQ(a.national_vps, b.national_vps);
  EXPECT_EQ(a.international_addresses, b.international_addresses);
}

TEST(Pipeline, ApplyUpdatesBitIdenticalToFreshLoad) {
  PipelineFixture f;

  // Incremental path: first apply is the initial load (everything is
  // new), second apply grows the collection by two more days.
  Pipeline incremental{f.world.geo_db, f.world.vps, f.world.asn_registry,
                       f.world.graph, f.config()};
  bgp::RibCollection first_days;
  first_days.days.assign(f.ribs.days.begin(), f.ribs.days.begin() + 3);
  Pipeline::ApplyResult r1 = incremental.apply_updates(first_days);
  ASSERT_TRUE(incremental.loaded());
  EXPECT_EQ(r1.shards_kept, 0u);
  EXPECT_EQ(r1.shards_rebuilt, incremental.store().shards().size());
  Pipeline::ApplyResult r2 = incremental.apply_updates(f.ribs);
  EXPECT_EQ(r2.shards_kept + r2.shards_rebuilt,
            incremental.store().shards().size());

  // Batch path: one fresh load of the final collection.
  Pipeline fresh{f.world.geo_db, f.world.vps, f.world.asn_registry,
                 f.world.graph, f.config()};
  fresh.load(f.ribs);

  std::vector<CountryMetrics> got = incremental.all_countries();
  std::vector<CountryMetrics> want = fresh.all_countries();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_bitwise_metrics(got[i], want[i]);
  }
}

TEST(Pipeline, ApplyUpdatesFinalDayChangeTakesSanitizeFastPath) {
  PipelineFixture f;
  Pipeline incremental{f.world.geo_db, f.world.vps, f.world.asn_registry,
                       f.world.graph, f.config()};
  Pipeline::ApplyResult r1 = incremental.apply_updates(f.ribs);
  EXPECT_FALSE(r1.sanitize_fast_path);
  EXPECT_EQ(r1.days_resanitized, f.ribs.days.size());

  // Duplicate one final-day entry: the stable-prefix set is untouched,
  // so only the final day needs re-filtering.
  bgp::RibCollection changed = f.ribs;
  changed.days.back().entries.push_back(changed.days.back().entries.front());
  Pipeline::ApplyResult r2 = incremental.apply_updates(changed);
  EXPECT_TRUE(r2.sanitize_fast_path);
  EXPECT_EQ(r2.days_resanitized, 1u);

  // And a head-day change must fall back to the full sanitizer.
  bgp::RibCollection head_changed = changed;
  head_changed.days.front().entries.pop_back();
  Pipeline::ApplyResult r3 = incremental.apply_updates(head_changed);
  EXPECT_FALSE(r3.sanitize_fast_path);
  EXPECT_EQ(r3.days_resanitized, head_changed.days.size());

  // The fast path's world must be bit-identical to a fresh batch load.
  Pipeline fresh{f.world.geo_db, f.world.vps, f.world.asn_registry,
                 f.world.graph, f.config()};
  fresh.load(changed);
  Pipeline replay{f.world.geo_db, f.world.vps, f.world.asn_registry,
                  f.world.graph, f.config()};
  replay.apply_updates(f.ribs);
  replay.apply_updates(changed);
  std::vector<CountryMetrics> got = replay.all_countries();
  std::vector<CountryMetrics> want = fresh.all_countries();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_bitwise_metrics(got[i], want[i]);
  }
}

TEST(Pipeline, ApplyUpdatesNoChangeKeepsShardsAndMemos) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.apply_updates(f.ribs);
  // Warm the memo cache for every country.
  const std::size_t census = pipeline.all_countries().size();
  ASSERT_GT(census, 0u);

  // Re-applying the identical collection must keep every shard and every
  // memoized result: the live pipeline's quiet-flush fast path.
  Pipeline::ApplyResult r = pipeline.apply_updates(f.ribs);
  EXPECT_EQ(r.shards_rebuilt, 0u);
  EXPECT_EQ(r.shards_kept, pipeline.store().shards().size());
  EXPECT_EQ(r.memos_evicted, 0u);
  EXPECT_GE(r.memos_kept, census);
  EXPECT_GE(pipeline.cache_stats().countries, census);
}

// ---- checkpoint/restore: the what-if engine's cheap re-arm. ----

TEST(Pipeline, CheckpointRestoreIsBitIdenticalWithoutResanitizing) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  std::vector<CountryMetrics> want = pipeline.all_countries();
  Pipeline::Checkpoint chk = pipeline.checkpoint();

  // Swap a genuinely different world in, then restore the checkpoint.
  bgp::RibCollection shrunk;
  shrunk.days.assign(f.ribs.days.begin(), f.ribs.days.end() - 1);
  (void)pipeline.apply_updates(shrunk);
  Pipeline::ApplyResult r = pipeline.restore(chk);
  EXPECT_EQ(r.shards_kept + r.shards_rebuilt, pipeline.store().shards().size());
  EXPECT_FALSE(r.sanitize_fast_path);
  EXPECT_EQ(r.days_resanitized, 0u);

  std::vector<CountryMetrics> got = pipeline.all_countries();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_bitwise_metrics(got[i], want[i]);
  }

  // The checkpoint carries the sanitizer's cross-load memo too: a
  // final-day-only change right after restore() must still fast-path.
  bgp::RibCollection changed = f.ribs;
  changed.days.back().entries.push_back(changed.days.back().entries.front());
  Pipeline::ApplyResult fast = pipeline.apply_updates(changed);
  EXPECT_TRUE(fast.sanitize_fast_path);
  EXPECT_EQ(fast.days_resanitized, 1u);
}

TEST(Pipeline, RestoreOfUnchangedWorldKeepsEveryShardAndMemo) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  pipeline.load(f.ribs);
  const std::size_t census = pipeline.all_countries().size();
  ASSERT_GT(census, 0u);

  Pipeline::ApplyResult r = pipeline.restore(pipeline.checkpoint());
  EXPECT_EQ(r.shards_rebuilt, 0u);
  EXPECT_EQ(r.shards_kept, pipeline.store().shards().size());
  EXPECT_EQ(r.country_memos_evicted, 0u);
  EXPECT_EQ(r.country_memos_kept, census);
}

TEST(Pipeline, CheckpointBeforeLoadAndEmptyRestoreThrow) {
  PipelineFixture f;
  Pipeline pipeline{f.world.geo_db, f.world.vps, f.world.asn_registry,
                    f.world.graph, f.config()};
  EXPECT_THROW((void)pipeline.checkpoint(), std::logic_error);
  pipeline.load(f.ribs);
  EXPECT_THROW((void)pipeline.restore(Pipeline::Checkpoint{}), std::logic_error);
}

}  // namespace
}  // namespace georank::core
