#include "core/path_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/views.hpp"

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");
CountryCode JP = CountryCode::of("JP");

SanitizedPath mk(std::uint32_t vp_ip, CountryCode vp_cc, AsPath path,
                 std::uint32_t pfx_index, CountryCode pfx_cc,
                 std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path.empty() ? 0 : path[0]};
  sp.vp_country = vp_cc;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = pfx_cc;
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

/// Mix of shared and unique paths across three countries, including an
/// un-geolocated VP (invalid country, must never be bucketed).
std::vector<SanitizedPath> sample_paths() {
  return {
      mk(1, AU, AsPath{100, 50, 200}, 1, AU),
      mk(2, US, AsPath{101, 50, 200}, 1, AU),
      mk(2, US, AsPath{101, 50, 200}, 2, US),   // same hops as previous
      mk(3, JP, AsPath{102, 60, 201}, 1, AU),
      mk(1, AU, AsPath{100, 50, 200}, 3, US),   // same hops again
      mk(4, CountryCode{}, AsPath{103, 60, 202}, 2, US),
      mk(3, JP, AsPath{102, 60}, 4, JP),
  };
}

TEST(PathStore, RoundTripsEveryField) {
  auto paths = sample_paths();
  PathStore store{paths};
  ASSERT_EQ(store.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(store.vp(i), paths[i].vp);
    EXPECT_EQ(store.vp_country(i), paths[i].vp_country);
    EXPECT_EQ(store.prefix(i), paths[i].prefix);
    EXPECT_EQ(store.prefix_country(i), paths[i].prefix_country);
    EXPECT_EQ(store.weight(i), paths[i].weight);
    EXPECT_EQ(store.hops(i).materialize(), paths[i].path);

    sanitize::PathRecord rec = store[i];
    EXPECT_EQ(rec.materialize().path, paths[i].path);
    EXPECT_EQ(rec.vp, paths[i].vp);
  }
}

TEST(PathStore, InterningCollapsesDuplicateHopSequences) {
  auto paths = sample_paths();
  PathStore store{paths};
  // 7 paths, but {100,50,200} appears 3x and {101,50,200} 2x... wait,
  // distinct sequences: {100,50,200}, {101,50,200}, {102,60,201},
  // {103,60,202}, {102,60} -> 5 unique.
  EXPECT_EQ(store.unique_path_count(), 5u);
  EXPECT_EQ(store.arena_hop_count(), 3u + 3u + 3u + 3u + 2u);
  EXPECT_LT(store.unique_path_count(), store.size());
  // Duplicate sequences share one handle -> identical spans.
  EXPECT_EQ(store.hops(0).hops().data(), store.hops(4).hops().data());
}

TEST(PathStore, BucketsMatchNaiveFilter) {
  auto paths = sample_paths();
  PathStore store{paths};
  for (CountryCode cc : {AU, US, JP}) {
    std::vector<std::uint32_t> expect_prefix, expect_vp;
    for (std::uint32_t i = 0; i < paths.size(); ++i) {
      if (paths[i].prefix_country == cc) expect_prefix.push_back(i);
      if (paths[i].vp_country == cc) expect_vp.push_back(i);
    }
    auto got_prefix = store.by_prefix_country(cc);
    auto got_vp = store.by_vp_country(cc);
    EXPECT_TRUE(std::equal(expect_prefix.begin(), expect_prefix.end(),
                           got_prefix.begin(), got_prefix.end()))
        << cc.to_string();
    EXPECT_TRUE(std::equal(expect_vp.begin(), expect_vp.end(), got_vp.begin(),
                           got_vp.end()))
        << cc.to_string();
  }
  // Unknown country -> empty; invalid codes never bucketed.
  EXPECT_TRUE(store.by_prefix_country(CountryCode::of("DE")).empty());
  EXPECT_TRUE(store.by_vp_country(CountryCode{}).empty());
}

TEST(PathStore, CountriesSortedAndComplete) {
  auto paths = sample_paths();
  PathStore store{paths};
  EXPECT_EQ(store.countries(), ViewBuilder::countries(paths));
  ASSERT_EQ(store.vp_countries().size(), 3u);
  EXPECT_TRUE(std::is_sorted(store.vp_countries().begin(),
                             store.vp_countries().end()));
}

/// Store-built views must select exactly the same (vp, prefix, weight,
/// hops) multiset, in the same order, as the span-based ViewBuilder.
void expect_same_selection(const CountryView& a, const CountryView& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    sanitize::PathRecord ra = a[i], rb = b[i];
    EXPECT_EQ(ra.vp, rb.vp);
    EXPECT_EQ(ra.prefix, rb.prefix);
    EXPECT_EQ(ra.weight, rb.weight);
    EXPECT_EQ(ra.path, rb.path);
  }
}

TEST(PathStore, ViewsMatchViewBuilder) {
  auto paths = sample_paths();
  PathStore store{paths};
  for (CountryCode cc : {AU, US, JP}) {
    expect_same_selection(store.national_view(cc),
                          ViewBuilder::national(paths, cc));
    expect_same_selection(store.international_view(cc),
                          ViewBuilder::international(paths, cc));
    expect_same_selection(store.outbound_view(cc),
                          ViewBuilder::outbound(paths, cc));
    EXPECT_EQ(store.view(cc, ViewKind::kOutbound).size(),
              store.outbound_view(cc).size());
  }
}

TEST(PathStore, RestrictedToMatchesSpanBasedViews) {
  auto paths = sample_paths();
  PathStore store{paths};
  std::vector<bgp::VpId> keep{bgp::VpId{2, 101}, bgp::VpId{3, 102}};

  CountryView via_store = store.international_view(AU).restricted_to(keep);
  CountryView via_spans =
      ViewBuilder::international(paths, AU).restricted_to(keep);
  expect_same_selection(via_store, via_spans);
  EXPECT_EQ(via_store.vp_count(), via_spans.vp_count());
  EXPECT_EQ(via_store.address_weight(), via_spans.address_weight());
}

TEST(PathStore, WithoutVpDropsExactlyThatVp) {
  auto paths = sample_paths();
  PathStore store{paths};
  CountryView view = store.international_view(AU);
  CountryView rest = view.without_vp(bgp::VpId{2, 101});
  EXPECT_EQ(rest.size(), view.size() - 1);
  for (const sanitize::PathRecord sp : rest) {
    EXPECT_NE(sp.vp, (bgp::VpId{2, 101}));
  }
}

TEST(PathStore, VpCountMatchesVpsSize) {
  auto paths = sample_paths();
  PathStore store{paths};
  for (CountryCode cc : {AU, US, JP}) {
    for (ViewKind kind :
         {ViewKind::kNational, ViewKind::kInternational, ViewKind::kOutbound}) {
      CountryView v = store.view(cc, kind);
      EXPECT_EQ(v.vp_count(), v.vps().size());
    }
  }
}

TEST(PathStore, StandaloneViewOwnsItsStore) {
  // from_paths views (and their derived subsets) must survive the source
  // vector's death: the view owns a private store.
  CountryView sub;
  {
    auto paths = sample_paths();
    CountryView v = CountryView::from_paths(
        std::vector<SanitizedPath>(paths.begin(), paths.end()), AU,
        ViewKind::kNational);
    sub = v.restricted_to(v.vps());
  }
  EXPECT_EQ(sub.size(), sample_paths().size());
  EXPECT_GT(sub.address_weight(), 0u);
}

TEST(PathStore, EmptyStore) {
  PathStore store{std::span<const SanitizedPath>{}};
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.unique_path_count(), 0u);
  EXPECT_TRUE(store.countries().empty());
  EXPECT_TRUE(store.national_view(AU).empty());
  EXPECT_EQ(store.all().size(), 0u);
}

}  // namespace
}  // namespace georank::core
