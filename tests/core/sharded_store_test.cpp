#include "core/sharded_path_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>

#include "core/country_rankings.hpp"
#include "core/path_store.hpp"
#include "core/views.hpp"
#include "topo/as_graph.hpp"

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");
CountryCode JP = CountryCode::of("JP");

SanitizedPath mk(std::uint32_t vp_ip, CountryCode vp_cc, AsPath path,
                 std::uint32_t pfx_index, CountryCode pfx_cc,
                 std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path.empty() ? 0 : path[0]};
  sp.vp_country = vp_cc;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = pfx_cc;
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

/// The PathStore fixture: shared and unique paths across three
/// countries, plus an un-geolocated VP (invalid country — its row must
/// land only in its PREFIX country's shard).
std::vector<SanitizedPath> sample_paths() {
  return {
      mk(1, AU, AsPath{100, 50, 200}, 1, AU),
      mk(2, US, AsPath{101, 50, 200}, 1, AU),
      mk(2, US, AsPath{101, 50, 200}, 2, US),
      mk(3, JP, AsPath{102, 60, 201}, 1, AU),
      mk(1, AU, AsPath{100, 50, 200}, 3, US),
      mk(4, CountryCode{}, AsPath{103, 60, 202}, 2, US),
      mk(3, JP, AsPath{102, 60}, 4, JP),
  };
}

/// Ground-truth-ish relationships over the fixture's ASNs, enough for
/// the cone/hegemony kernels to label every link.
topo::AsGraph sample_graph() {
  topo::AsGraph g;
  g.add_p2c(50, 200);
  g.add_p2c(100, 50);
  g.add_p2c(101, 50);
  g.add_p2c(60, 201);
  g.add_p2c(60, 202);
  g.add_p2c(102, 60);
  g.add_p2c(103, 60);
  g.add_p2p(50, 60);
  return g;
}

void expect_same_selection(const CountryView& a, const CountryView& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    sanitize::PathRecord ra = a[i], rb = b[i];
    EXPECT_EQ(ra.vp, rb.vp);
    EXPECT_EQ(ra.vp_country, rb.vp_country);
    EXPECT_EQ(ra.prefix, rb.prefix);
    EXPECT_EQ(ra.prefix_country, rb.prefix_country);
    EXPECT_EQ(ra.weight, rb.weight);
    EXPECT_EQ(ra.path, rb.path);
  }
}

TEST(ShardedPathStore, InterningMatchesMonolithicStore) {
  auto paths = sample_paths();
  PathStore mono{paths};
  ShardedPathStore sharded{paths};
  EXPECT_EQ(sharded.size(), mono.size());
  EXPECT_EQ(sharded.unique_path_count(), mono.unique_path_count());
  EXPECT_EQ(sharded.arena_hop_count(), mono.arena_hop_count());
}

TEST(ShardedPathStore, CensusDomainsMatchMonolithicStore) {
  auto paths = sample_paths();
  PathStore mono{paths};
  ShardedPathStore sharded{paths};
  EXPECT_EQ(sharded.countries(), mono.countries());
  EXPECT_EQ(sharded.vp_countries(), mono.vp_countries());
  EXPECT_TRUE(std::is_sorted(sharded.countries().begin(),
                             sharded.countries().end()));
}

TEST(ShardedPathStore, ViewsMatchMonolithicStore) {
  auto paths = sample_paths();
  PathStore mono{paths};
  ShardedPathStore sharded{paths};
  for (CountryCode cc : {AU, US, JP}) {
    expect_same_selection(sharded.national_view(cc), mono.national_view(cc));
    expect_same_selection(sharded.international_view(cc),
                          mono.international_view(cc));
    expect_same_selection(sharded.outbound_view(cc), mono.outbound_view(cc));
    for (ViewKind kind :
         {ViewKind::kNational, ViewKind::kInternational, ViewKind::kOutbound}) {
      expect_same_selection(sharded.view(cc, kind), mono.view(cc, kind));
    }
  }
}

TEST(ShardedPathStore, MetricsBitIdenticalToMonolithicStore) {
  auto paths = sample_paths();
  PathStore mono{paths};
  ShardedPathStore sharded{paths};
  topo::AsGraph graph = sample_graph();
  CountryRankings rankings{graph};
  auto expect_bitwise = [](const rank::Ranking& a, const rank::Ranking& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.entries()[i].asn, b.entries()[i].asn);
      // Float accumulation order must match exactly, not approximately.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.entries()[i].score),
                std::bit_cast<std::uint64_t>(b.entries()[i].score));
    }
  };
  for (CountryCode cc : {AU, US, JP}) {
    CountryMetrics m1 = rankings.compute(mono, cc);
    CountryMetrics m2 = rankings.compute(sharded, cc);
    expect_bitwise(m1.cci, m2.cci);
    expect_bitwise(m1.ccn, m2.ccn);
    expect_bitwise(m1.ahi, m2.ahi);
    expect_bitwise(m1.ahn, m2.ahn);
    EXPECT_EQ(m1.national_vps, m2.national_vps);
    EXPECT_EQ(m1.international_vps, m2.international_vps);
    EXPECT_EQ(m1.national_addresses, m2.national_addresses);
    EXPECT_EQ(m1.international_addresses, m2.international_addresses);

    OutboundMetrics o1 = rankings.compute_outbound(mono, cc);
    OutboundMetrics o2 = rankings.compute_outbound(sharded, cc);
    expect_bitwise(o1.cco, o2.cco);
    expect_bitwise(o1.aho, o2.aho);
    EXPECT_EQ(o1.vps, o2.vps);
    EXPECT_EQ(o1.foreign_addresses, o2.foreign_addresses);
  }
}

TEST(ShardedPathStore, BuildIsIdenticalAcrossThreadCounts) {
  auto paths = sample_paths();
  ShardedPathStore one{paths, 1};
  ShardedPathStore four{paths, 4};
  ShardedPathStore sixteen{paths, 16};
  ASSERT_EQ(one.shards().size(), four.shards().size());
  ASSERT_EQ(one.shards().size(), sixteen.shards().size());
  for (CountryCode cc : {AU, US, JP}) {
    EXPECT_NE(one.shard_digest(cc), 0u);
    EXPECT_EQ(one.shard_digest(cc), four.shard_digest(cc));
    EXPECT_EQ(one.shard_digest(cc), sixteen.shard_digest(cc));
  }
}

TEST(ShardedPathStore, RowLandsInPrefixAndVpShardsOnce) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  // Row 1 (VP in US, prefix in AU) must appear in both shards.
  const PathShard* au = store.shard(AU);
  const PathShard* us = store.shard(US);
  ASSERT_NE(au, nullptr);
  ASSERT_NE(us, nullptr);
  auto shard_has = [](const PathShard& s, const SanitizedPath& p) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s.vp(i) == p.vp && s.prefix(i) == p.prefix &&
          s.hops(i).materialize() == p.path) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(shard_has(*au, paths[1]));
  EXPECT_TRUE(shard_has(*us, paths[1]));
  // The un-geolocated VP's row (row 5) lives only in its prefix shard.
  EXPECT_TRUE(shard_has(*us, paths[5]));
  EXPECT_FALSE(shard_has(*au, paths[5]));
}

TEST(ShardedPathStore, InvalidAndUnknownCountriesNeverShard) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  EXPECT_EQ(store.shard(CountryCode{}), nullptr);
  EXPECT_EQ(store.shard(CountryCode::of("DE")), nullptr);
  EXPECT_EQ(store.shard_digest(CountryCode::of("DE")), 0u);
  EXPECT_TRUE(store.national_view(CountryCode::of("DE")).empty());
  EXPECT_TRUE(store.international_view(CountryCode{}).empty());
  EXPECT_TRUE(store.outbound_view(CountryCode::of("ZZ")).empty());
  for (const PathShard& shard : store.shards()) {
    EXPECT_TRUE(shard.country().valid());
  }
}

TEST(ShardedPathStore, SingleCountryWorld) {
  std::vector<SanitizedPath> paths{
      mk(1, AU, AsPath{100, 50, 200}, 1, AU),
      mk(5, AU, AsPath{100, 50}, 2, AU),
  };
  ShardedPathStore store{paths};
  ASSERT_EQ(store.shards().size(), 1u);
  EXPECT_EQ(store.countries(), std::vector<CountryCode>{AU});
  EXPECT_EQ(store.vp_countries(), std::vector<CountryCode>{AU});
  const PathShard* shard = store.shard(AU);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->size(), 2u);
  EXPECT_EQ(shard->national_rows().size(), 2u);
  EXPECT_TRUE(shard->international_rows().empty());
  EXPECT_TRUE(shard->outbound_rows().empty());
  EXPECT_TRUE(store.international_view(AU).empty());
}

TEST(ShardedPathStore, EmptyStore) {
  ShardedPathStore store{std::span<const SanitizedPath>{}};
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.unique_path_count(), 0u);
  EXPECT_TRUE(store.shards().empty());
  EXPECT_TRUE(store.countries().empty());
  EXPECT_TRUE(store.census_costs().empty());
  EXPECT_TRUE(store.national_view(AU).empty());
}

TEST(ShardedPathStore, CensusCostsTrackShardSize) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  const auto costs = store.census_costs();
  ASSERT_EQ(costs.size(), store.countries().size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const PathShard* shard = store.shard(store.countries()[i]);
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(costs[i], shard->cost());
    EXPECT_GE(shard->cost(), shard->size());
  }
}

TEST(ShardedPathStore, DigestReflectsContentNotIdentity) {
  auto paths = sample_paths();
  ShardedPathStore a{paths};
  ShardedPathStore b{paths};
  for (CountryCode cc : {AU, US, JP}) {
    EXPECT_EQ(a.shard_digest(cc), b.shard_digest(cc));
  }
  // Changing one row's weight must change exactly the shards that row
  // touches (AU prefix shard; the VP is in AU too).
  auto changed = sample_paths();
  changed[0].weight += 1;
  ShardedPathStore c{changed};
  EXPECT_NE(a.shard_digest(AU), c.shard_digest(AU));
  EXPECT_EQ(a.shard_digest(US), c.shard_digest(US));
  EXPECT_EQ(a.shard_digest(JP), c.shard_digest(JP));
}

// ---- Incremental rebuild: digest-verified shard reuse. ----

/// Queries after rebuild() must be indistinguishable from a fresh build
/// of the same rows — kept shards included.
void expect_equivalent_stores(const ShardedPathStore& rebuilt,
                              const ShardedPathStore& fresh) {
  EXPECT_EQ(rebuilt.size(), fresh.size());
  ASSERT_EQ(rebuilt.countries(), fresh.countries());
  EXPECT_EQ(rebuilt.vp_countries(), fresh.vp_countries());
  EXPECT_EQ(rebuilt.census_costs(), fresh.census_costs());
  topo::AsGraph graph = sample_graph();
  CountryRankings a{graph}, b{graph};
  for (CountryCode cc : fresh.countries()) {
    EXPECT_EQ(rebuilt.shard_digest(cc), fresh.shard_digest(cc));
    expect_same_selection(rebuilt.national_view(cc), fresh.national_view(cc));
    expect_same_selection(rebuilt.international_view(cc),
                          fresh.international_view(cc));
    expect_same_selection(rebuilt.outbound_view(cc), fresh.outbound_view(cc));
    CountryMetrics m1 = a.compute(rebuilt, cc);
    CountryMetrics m2 = b.compute(fresh, cc);
    ASSERT_EQ(m1.cci.size(), m2.cci.size());
    for (std::size_t i = 0; i < m1.cci.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(m1.cci.entries()[i].score),
                std::bit_cast<std::uint64_t>(m2.cci.entries()[i].score));
    }
  }
}

TEST(ShardedPathStore, RebuildKeepsUntouchedShards) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};

  // Touch only AU: bump the weight of the AU-VP/AU-prefix row.
  auto changed = sample_paths();
  changed[0].weight += 1;
  ShardedPathStore::RebuildStats stats = store.rebuild(changed);
  EXPECT_EQ(stats.shards_rebuilt, 1u);
  EXPECT_EQ(stats.shards_kept, 2u);

  ShardedPathStore fresh{changed};
  expect_equivalent_stores(store, fresh);
}

TEST(ShardedPathStore, RebuildNoChangeKeepsEveryShard) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  ShardedPathStore::RebuildStats stats = store.rebuild(paths);
  EXPECT_EQ(stats.shards_rebuilt, 0u);
  EXPECT_EQ(stats.shards_kept, 3u);
  expect_equivalent_stores(store, ShardedPathStore{paths});
}

TEST(ShardedPathStore, RebuildHandlesCountryAppearingAndVanishing) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};

  // Drop both rows touching JP (one as prefix country, one as VP
  // country) and add a DE row: JP's shard must vanish, DE's must
  // appear, and the surviving countries stay correct.
  auto changed = sample_paths();
  changed.pop_back();                       // the JP-prefix row
  changed.erase(changed.begin() + 3);       // the JP-VP row
  changed.push_back(mk(6, CountryCode::of("DE"), AsPath{104, 60, 202}, 5,
                       CountryCode::of("DE")));
  store.rebuild(changed);
  EXPECT_EQ(store.shard(JP), nullptr);
  ASSERT_NE(store.shard(CountryCode::of("DE")), nullptr);
  expect_equivalent_stores(store, ShardedPathStore{changed});
}

TEST(ShardedPathStore, RebuildIsIdenticalAcrossThreadCounts) {
  auto paths = sample_paths();
  auto changed = sample_paths();
  changed[2].weight += 7;
  ShardedPathStore one{paths, 1};
  ShardedPathStore sixteen{paths, 16};
  one.rebuild(changed, 1);
  sixteen.rebuild(changed, 16);
  for (CountryCode cc : {AU, US, JP}) {
    EXPECT_EQ(one.shard_digest(cc), sixteen.shard_digest(cc));
  }
}

TEST(ShardedPathStore, RepeatedRebuildsStayEquivalent) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  // Interning survives across rebuilds, so unique_path_count is
  // lifetime-cumulative — queries must stay equivalent regardless.
  for (std::uint64_t round = 1; round <= 4; ++round) {
    auto changed = sample_paths();
    changed[0].weight = 256 + round;
    store.rebuild(changed);
    expect_equivalent_stores(store, ShardedPathStore{changed});
  }
}

TEST(ShardedPathStore, RebuildToAndFromEmpty) {
  auto paths = sample_paths();
  ShardedPathStore store{paths};
  ShardedPathStore::RebuildStats stats =
      store.rebuild(std::span<const SanitizedPath>{});
  EXPECT_EQ(stats.shards_kept, 0u);
  EXPECT_EQ(stats.shards_rebuilt, 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.shards().empty());
  store.rebuild(paths);
  expect_equivalent_stores(store, ShardedPathStore{paths});
}

}  // namespace
}  // namespace georank::core
