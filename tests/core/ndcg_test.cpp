#include "core/ndcg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace georank::core {
namespace {

using rank::Ranking;

TEST(Ndcg, IdenticalRankingScoresOne) {
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  EXPECT_DOUBLE_EQ(ndcg(full, full), 1.0);
}

TEST(Ndcg, EmptyFullRankingIsOne) {
  Ranking full;
  Ranking sample = Ranking::from_scores({{1, 0.5}});
  EXPECT_DOUBLE_EQ(ndcg(sample, full), 1.0);
}

TEST(Ndcg, EmptySampleScoresZero) {
  Ranking full = Ranking::from_scores({{1, 0.9}});
  Ranking sample;
  EXPECT_DOUBLE_EQ(ndcg(sample, full), 0.0);
}

TEST(Ndcg, SwapOfTopTwoReducesScore) {
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  Ranking swapped = Ranking::from_scores({{2, 0.9}, {1, 0.5}, {3, 0.1}});
  double score = ndcg(swapped, full);
  EXPECT_LT(score, 1.0);
  EXPECT_GT(score, 0.8);  // mild perturbation, mild penalty
}

TEST(Ndcg, MissingTopAsHurtsMore) {
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  Ranking missing_top = Ranking::from_scores({{2, 0.5}, {3, 0.1}});
  Ranking missing_last = Ranking::from_scores({{1, 0.9}, {2, 0.5}});
  EXPECT_LT(ndcg(missing_top, full), ndcg(missing_last, full));
}

TEST(Ndcg, UsesFullRankingRelevances) {
  // The sample invents a huge score for AS 3, but relevance comes from
  // the full ranking, so it cannot inflate NDCG.
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.0}});
  Ranking sample = Ranking::from_scores({{3, 99.0}, {1, 0.1}, {2, 0.05}});
  double expected_dcg = 0.0 / std::log2(2) + 0.9 / std::log2(3) + 0.5 / std::log2(4);
  EXPECT_NEAR(dcg(sample, full), expected_dcg, 1e-12);
}

TEST(Ndcg, DcgFormulaMatchesPaper) {
  // DCG_p = sum rel_p / log2(p+1), p starting at 1.
  Ranking full = Ranking::from_scores({{1, 4.0}, {2, 2.0}, {3, 1.0}});
  double expected = 4.0 / std::log2(2.0) + 2.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(dcg(full, full, 10), expected, 1e-12);
}

TEST(Ndcg, TopKLimitsEvaluation) {
  Ranking full = Ranking::from_scores({{1, 1.0}, {2, 0.9}, {3, 0.8}});
  // With k=1 only the first position matters.
  Ranking sample = Ranking::from_scores({{1, 1.0}, {3, 0.9}, {2, 0.8}});
  EXPECT_DOUBLE_EQ(ndcg(sample, full, 1), 1.0);
  EXPECT_LT(ndcg(sample, full, 3), 1.0);
}

TEST(Ndcg, NeverExceedsOneOnPerturbedSamples) {
  Ranking full = Ranking::from_scores(
      {{1, 0.9}, {2, 0.7}, {3, 0.5}, {4, 0.3}, {5, 0.1}});
  // Any reordering of the same ASes cannot beat the full ordering.
  Ranking reordered = Ranking::from_scores(
      {{5, 5.0}, {4, 4.0}, {3, 3.0}, {2, 2.0}, {1, 1.0}});
  double score = ndcg(reordered, full);
  EXPECT_LE(score, 1.0);
  EXPECT_GE(score, 0.0);
}

// ------------------------------------------------------------- edge cases

TEST(Ndcg, BothEmptyScoresOne) {
  // Nothing to misrank: the degenerate comparison is the identity.
  EXPECT_DOUBLE_EQ(ndcg(Ranking{}, Ranking{}), 1.0);
}

TEST(Ndcg, SingleElementRankingScoresOneAgainstItself) {
  Ranking one = Ranking::from_scores({{7, 0.42}});
  EXPECT_DOUBLE_EQ(ndcg(one, one), 1.0);
  EXPECT_DOUBLE_EQ(ndcg(one, one, 1), 1.0);
}

TEST(Ndcg, AllTiedRankingScoresOneUnderAnyPermutation) {
  Ranking full = Ranking::from_scores({{1, 0.5}, {2, 0.5}, {3, 0.5}});
  Ranking reversed = Ranking::from_scores({{3, 9.0}, {2, 5.0}, {1, 1.0}});
  // Equal relevance at every position: order cannot matter.
  EXPECT_DOUBLE_EQ(ndcg(reversed, full), 1.0);
  EXPECT_DOUBLE_EQ(ndcg(full, full), 1.0);
}

TEST(Ndcg, AllZeroFullRankingScoresOne) {
  // FDCG == 0 means there is no signal to reproduce; treat as identity
  // rather than dividing by zero.
  Ranking full = Ranking::from_scores({{1, 0.0}, {2, 0.0}});
  Ranking sample = Ranking::from_scores({{2, 0.0}, {1, 0.0}});
  EXPECT_DOUBLE_EQ(ndcg(sample, full), 1.0);
}

TEST(Ndcg, KZeroScoresOne) {
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}});
  Ranking sample = Ranking::from_scores({{2, 0.9}, {1, 0.5}});
  EXPECT_DOUBLE_EQ(ndcg(sample, full, 0), 1.0);
}

TEST(Ndcg, NonFiniteRelevancesAreSkipped) {
  Ranking full = Ranking::from_scores(
      {{1, std::numeric_limits<double>::infinity()},
       {2, 0.5},
       {3, std::numeric_limits<double>::quiet_NaN()},
       {4, 0.1}});
  // The non-finite entries contribute nothing; finite ones still rank.
  double score = ndcg(full, full);
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST(Ndcg, ScoreIsAlwaysClampedToUnitInterval) {
  Ranking full = Ranking::from_scores({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  for (const Ranking& sample :
       {Ranking{}, Ranking::from_scores({{3, 1.0}}),
        Ranking::from_scores({{2, 1.0}, {3, 0.9}, {1, 0.8}})}) {
    double score = ndcg(sample, full);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

}  // namespace
}  // namespace georank::core
