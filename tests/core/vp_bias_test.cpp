#include "core/vp_bias.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

CountryCode AU = CountryCode::of("AU");

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.vp_country = AU;
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = AU;
  sp.weight = 256;
  sp.path = std::move(path);
  return sp;
}

topo::AsGraph chain_graph() {
  topo::AsGraph g;
  g.add_p2c(50, 100);  // VP AS 100 under 50
  g.add_p2c(50, 60);
  g.add_p2c(60, 70);
  g.add_p2c(70, 200);
  g.add_p2c(70, 201);
  return g;
}

/// One VP; every AS's hegemony equals its path presence, and distance
/// grows along the chain 100 -> 50 -> 60 -> 70 -> origins.
CountryView chain_view() {
  return CountryView::from_paths({mk(1, AsPath{100, 50, 60, 70, 200}, 1),
                                  mk(1, AsPath{100, 50, 60, 70, 201}, 2)},
                                 AU, ViewKind::kNational);
}

TEST(VpBias, ChainViewShowsNoProximityGradient) {
  // Every chain AS is on EVERY path: scores tie at 1.0, so score cannot
  // correlate with distance (Spearman needs score variance).
  auto g = chain_graph();
  CountryRankings rankings{g};
  VpBiasAnalyzer analyzer{rankings};
  ProximityBias bias =
      analyzer.proximity_bias(chain_view(), MetricKind::kHegemony, 4);
  EXPECT_EQ(bias.ases_considered, 4u);
  EXPECT_DOUBLE_EQ(bias.score_distance_correlation, 0.0);
  EXPECT_GT(bias.mean_distance, 0.0);
}

TEST(VpBias, SingleVpFanOutShowsNegativeCorrelation) {
  // One VP whose AS and provider sit on EVERY path while each origin is
  // on one of three: the textbook proximity gradient (the untrimmed,
  // single-VP situation §1.2 says hegemony's trim exists to counter).
  topo::AsGraph g;
  g.add_p2c(50, 100);
  g.add_p2c(50, 200);
  g.add_p2c(50, 201);
  g.add_p2c(50, 202);
  CountryRankings rankings{g};
  CountryView view = CountryView::from_paths(
      {mk(1, AsPath{100, 50, 200}, 1), mk(1, AsPath{100, 50, 201}, 2),
       mk(1, AsPath{100, 50, 202}, 3)},
      AU, ViewKind::kNational);
  VpBiasAnalyzer analyzer{rankings};
  ProximityBias bias = analyzer.proximity_bias(view, MetricKind::kHegemony, 10);
  EXPECT_EQ(bias.ases_considered, 5u);
  // Closer => strictly higher score: strong negative correlation.
  EXPECT_LT(bias.score_distance_correlation, -0.8);
}

TEST(VpBias, LeaveOneOutFindsInfluentialVp) {
  topo::AsGraph g;
  g.add_p2c(50, 100);
  g.add_p2c(50, 200);
  g.add_p2c(51, 101);
  g.add_p2c(51, 201);
  CountryRankings rankings{g};
  // VP 1 contributes a unique subtree (50/200); VPs 2 and 3 both see the
  // 51/201 side, making each of them individually redundant.
  CountryView view = CountryView::from_paths(
      {mk(1, AsPath{100, 50, 200}, 1), mk(2, AsPath{101, 51, 201}, 2),
       mk(3, AsPath{101, 51, 201}, 2)},
      AU, ViewKind::kNational);

  VpBiasAnalyzer analyzer{rankings};
  // Customer cone has no trim, so a VP with unique visibility shows up
  // directly (hegemony's trim deliberately suppresses single-VP effects).
  auto influence = analyzer.vp_influence(view, MetricKind::kCustomerCone);
  ASSERT_EQ(influence.size(), 3u);
  // Most influential (lowest leave-out NDCG) first: VP 1.
  EXPECT_EQ(influence[0].vp.ip, 1u);
  EXPECT_LT(influence[0].leave_out_ndcg, influence[1].leave_out_ndcg);
  // The redundant VPs barely matter.
  EXPECT_GT(influence[1].leave_out_ndcg, 0.9);
  EXPECT_GT(influence[2].leave_out_ndcg, 0.9);
  EXPECT_EQ(influence[0].paths, 1u);
}

TEST(VpBias, EmptyViewIsHarmless) {
  topo::AsGraph g;
  g.add_as(1);
  CountryRankings rankings{g};
  VpBiasAnalyzer analyzer{rankings};
  CountryView view = CountryView::from_paths({}, AU, ViewKind::kNational);
  ProximityBias bias = analyzer.proximity_bias(view, MetricKind::kHegemony);
  EXPECT_EQ(bias.ases_considered, 0u);
  EXPECT_TRUE(analyzer.vp_influence(view, MetricKind::kHegemony).empty());
}

}  // namespace
}  // namespace georank::core
