#include "core/diversity.hpp"

#include <gtest/gtest.h>

namespace georank::core {
namespace {

using geo::CountryCode;
using rank::Ranking;

CountryCode AU = CountryCode::of("AU");
CountryCode US = CountryCode::of("US");

rank::AsRegistry registry() {
  return {{1221, AU}, {4826, AU}, {3356, US}, {1299, CountryCode::of("SE")}};
}

TEST(Diversity, SingleAsIsMaximallyConcentrated) {
  Ranking r = Ranking::from_scores({{1221, 0.8}});
  DiversityReport report = analyze_diversity(r, registry(), AU);
  EXPECT_DOUBLE_EQ(report.hhi, 1.0);
  EXPECT_DOUBLE_EQ(report.foreign_share, 0.0);
  EXPECT_EQ(report.half_mass_count, 1u);
  EXPECT_EQ(report.domestic_ases, 1u);
}

TEST(Diversity, EvenSplitMinimizesHhi) {
  Ranking r = Ranking::from_scores(
      {{1221, 0.25}, {4826, 0.25}, {3356, 0.25}, {1299, 0.25}});
  DiversityReport report = analyze_diversity(r, registry(), AU);
  EXPECT_DOUBLE_EQ(report.hhi, 0.25);  // 4 * (1/4)^2
  EXPECT_DOUBLE_EQ(report.foreign_share, 0.5);
  EXPECT_EQ(report.half_mass_count, 2u);
  EXPECT_EQ(report.domestic_ases, 2u);
  EXPECT_EQ(report.foreign_ases, 2u);
}

TEST(Diversity, UnknownRegistrationCounted) {
  Ranking r = Ranking::from_scores({{1221, 0.5}, {999999, 0.5}});
  DiversityReport report = analyze_diversity(r, registry(), AU);
  EXPECT_EQ(report.unknown_ases, 1u);
  // Unknown ASes do not count toward foreign share.
  EXPECT_DOUBLE_EQ(report.foreign_share, 0.0);
  EXPECT_EQ(report.considered(), 2u);
}

TEST(Diversity, TopKWindow) {
  Ranking r = Ranking::from_scores({{1221, 0.9}, {3356, 0.5}, {1299, 0.4}});
  DiversityReport top1 = analyze_diversity(r, registry(), AU, 1);
  EXPECT_EQ(top1.considered(), 1u);
  EXPECT_DOUBLE_EQ(top1.foreign_share, 0.0);
  DiversityReport top3 = analyze_diversity(r, registry(), AU, 3);
  EXPECT_EQ(top3.considered(), 3u);
  EXPECT_NEAR(top3.foreign_share, 0.9 / 1.8, 1e-9);
}

TEST(Diversity, EmptyRanking) {
  Ranking r;
  DiversityReport report = analyze_diversity(r, registry(), AU);
  EXPECT_EQ(report.considered(), 0u);
  EXPECT_DOUBLE_EQ(report.hhi, 0.0);
}

TEST(Sovereignty, SummaryAggregatesAllFourMetrics) {
  CountryMetrics m;
  m.country = AU;
  m.cci = Ranking::from_scores({{3356, 0.9}, {1221, 0.1}});  // foreign-heavy
  m.ahi = Ranking::from_scores({{1299, 0.6}, {1221, 0.4}});
  m.ccn = Ranking::from_scores({{1221, 0.8}, {4826, 0.2}});  // domestic
  m.ahn = Ranking::from_scores({{1221, 0.7}, {4826, 0.3}});
  SovereigntySummary s = summarize_sovereignty(m, registry());
  EXPECT_EQ(s.country, AU);
  EXPECT_DOUBLE_EQ(s.national_foreign_share(), 0.0);
  EXPECT_NEAR(s.international_foreign_share(), 0.5 * (0.9 + 0.6), 1e-9);
  EXPECT_GT(s.international_foreign_share(), s.national_foreign_share());
}

}  // namespace
}  // namespace georank::core
