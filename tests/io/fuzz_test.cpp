// Mutation robustness for every text reader: randomly corrupted inputs
// must never crash, never throw, and always account for each input line
// as parsed, comment, or malformed. Real pipelines meet truncated and
// corrupted dumps routinely; tolerant-but-accounted is the contract.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt_text.hpp"
#include "bgp/update_stream.hpp"
#include "io/as_info_csv.hpp"
#include "io/as_rel.hpp"
#include "io/geo_csv.hpp"
#include "io/rankings_csv.hpp"
#include "util/rng.hpp"

namespace georank {
namespace {

/// Mutates a corpus: character flips, truncations, duplications, line
/// splices. Deterministic per seed.
std::string mutate(std::string text, util::Pcg32& rng) {
  const std::string alphabet = "0123456789abz|,.#-/ \t";
  int mutations = 1 + static_cast<int>(rng.below(40));
  for (int m = 0; m < mutations && !text.empty(); ++m) {
    std::uint32_t pos = rng.below(static_cast<std::uint32_t>(text.size()));
    switch (rng.below(4)) {
      case 0:  // flip a character
        text[pos] = alphabet[rng.below(static_cast<std::uint32_t>(alphabet.size()))];
        break;
      case 1:  // delete a character
        text.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        text.insert(pos, text.substr(pos, rng.below(16)));
        break;
      case 3:  // chop the tail (truncated download)
        if (rng.chance(0.2)) text.resize(pos);
        break;
    }
  }
  return text;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) ++lines;
  return lines;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, MrtTextReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam()};
  std::string corpus =
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701 3356 1299|IGP\n"
      "TABLE_DUMP2|1617321600|B|4.3.2.1|702|10.1.0.0/16|702 174|IGP\n"
      "# comment line\n"
      "TABLE_DUMP2|1617235200|B|9.9.9.9|65000|192.168.0.0/24|65000|IGP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    bgp::MrtParseStats stats;
    bgp::RibCollection out = bgp::from_mrt_text(text, &stats);
    EXPECT_EQ(stats.lines, count_lines(text));
    EXPECT_EQ(stats.parsed + stats.malformed + stats.skipped_comments, stats.lines);
    EXPECT_EQ(out.total_entries(), stats.parsed);
  }
}

TEST_P(FuzzTest, UpdateTextReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam() + 100};
  std::string corpus =
      "BGP4MP|1000|A|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n"
      "BGP4MP|1001|W|1.2.3.4|701|10.0.0.0/16\n"
      "BGP4MP|1002|A|4.3.2.1|702|10.1.0.0/16|702 174 2914|IGP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    bgp::MrtParseStats stats;
    auto out = bgp::from_update_text(text, &stats);
    EXPECT_EQ(stats.parsed + stats.malformed + stats.skipped_comments, stats.lines);
    EXPECT_EQ(out.size(), stats.parsed);
    // Whatever parsed must replay without crashing.
    bgp::RibState state;
    state.apply_all(out);
  }
}

TEST_P(FuzzTest, AsRelReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam() + 200};
  std::string corpus =
      "# as-rel\n"
      "3356|12389|-1|0.1200\n"
      "1299|4826|-1\n"
      "1299|174|0\n"
      "3356|1299|0\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    io::AsRelParseStats stats;
    topo::AsGraph g = io::from_as_rel(text, &stats);
    // Duplicate pairs are silently kept-first (not counted), so the three
    // counters bound but need not cover the line count.
    EXPECT_LE(stats.links + stats.malformed + stats.comments, stats.lines);
    EXPECT_EQ(g.edge_count(), stats.links);
  }
}

TEST_P(FuzzTest, GeoCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 300};
  std::string corpus =
      "# geo\n"
      "10.0.0.0,10.0.255.255,US\n"
      "10.1.0.0,10.1.255.255,AU\n"
      "10.2.0.0,10.2.255.255,JP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    io::CsvParseStats stats;
    try {
      geo::GeoDatabase db = io::from_geo_csv(text, &stats);
      EXPECT_EQ(stats.parsed + stats.malformed + stats.comments, stats.lines);
    } catch (const std::invalid_argument&) {
      // Mutations can produce OVERLAPPING ranges, which finalize()
      // correctly rejects: an explicit error, not a crash.
    }
  }
}

TEST_P(FuzzTest, RankingCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 400};
  std::string corpus =
      "# rank,asn,score\n"
      "1,1299,0.83\n"
      "2,4826,0.81\n"
      "3,1221,0.44\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    rank::Ranking r = io::from_ranking_csv(text);
    // Scores survive as finite doubles (stod may produce inf from huge
    // mutated numbers, which from_scores tolerates; just don't crash).
    EXPECT_LE(r.size(), count_lines(text));
  }
}

TEST_P(FuzzTest, AsInfoCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 500};
  std::string corpus =
      "1221,AU,Telstra\n"
      "3356,US,Lumen\n"
      "16509,US,Amazon\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    std::istringstream is{text};
    io::CsvParseStats stats;
    io::AsInfoMap info = io::read_as_info_csv(is, &stats);
    EXPECT_EQ(stats.parsed + stats.malformed + stats.comments, stats.lines);
    EXPECT_LE(info.size(), stats.parsed);  // duplicates overwrite
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace georank
