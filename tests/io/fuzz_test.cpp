// Mutation robustness for every text reader: randomly corrupted inputs
// must never crash, never throw, and always account for each input line
// as parsed, comment, or malformed. Real pipelines meet truncated and
// corrupted dumps routinely; tolerant-but-accounted is the contract.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt_text.hpp"
#include "bgp/prefix.hpp"
#include "bgp/update_stream.hpp"
#include "io/as_info_csv.hpp"
#include "io/as_rel.hpp"
#include "io/geo_csv.hpp"
#include "io/rankings_csv.hpp"
#include "util/rng.hpp"

namespace georank {
namespace {

/// Mutates a corpus: character flips, truncations, duplications, line
/// splices. Deterministic per seed.
std::string mutate(std::string text, util::Pcg32& rng) {
  const std::string alphabet = "0123456789abz|,.#-/ \t";
  int mutations = 1 + static_cast<int>(rng.below(40));
  for (int m = 0; m < mutations && !text.empty(); ++m) {
    std::uint32_t pos = rng.below(static_cast<std::uint32_t>(text.size()));
    switch (rng.below(4)) {
      case 0:  // flip a character
        text[pos] = alphabet[rng.below(static_cast<std::uint32_t>(alphabet.size()))];
        break;
      case 1:  // delete a character
        text.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        text.insert(pos, text.substr(pos, rng.below(16)));
        break;
      case 3:  // chop the tail (truncated download)
        if (rng.chance(0.2)) text.resize(pos);
        break;
    }
  }
  return text;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) ++lines;
  return lines;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, MrtTextReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam()};
  std::string corpus =
      "TABLE_DUMP2|1617235200|B|1.2.3.4|701|10.0.0.0/16|701 3356 1299|IGP\n"
      "TABLE_DUMP2|1617321600|B|4.3.2.1|702|10.1.0.0/16|702 174|IGP\n"
      "# comment line\n"
      "TABLE_DUMP2|1617235200|B|9.9.9.9|65000|192.168.0.0/24|65000|IGP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    bgp::MrtParseStats stats;
    bgp::RibCollection out = bgp::from_mrt_text(text, &stats);
    EXPECT_EQ(stats.lines, count_lines(text));
    EXPECT_EQ(stats.parsed + stats.malformed + stats.skipped_comments, stats.lines);
    EXPECT_EQ(out.total_entries(), stats.parsed);
  }
}

TEST_P(FuzzTest, UpdateTextReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam() + 100};
  std::string corpus =
      "BGP4MP|1000|A|1.2.3.4|701|10.0.0.0/16|701 1299|IGP\n"
      "BGP4MP|1001|W|1.2.3.4|701|10.0.0.0/16\n"
      "BGP4MP|1002|A|4.3.2.1|702|10.1.0.0/16|702 174 2914|IGP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    bgp::MrtParseStats stats;
    auto out = bgp::from_update_text(text, &stats);
    EXPECT_EQ(stats.parsed + stats.malformed + stats.skipped_comments, stats.lines);
    EXPECT_EQ(out.size(), stats.parsed);
    // Whatever parsed must replay without crashing.
    bgp::RibState state;
    state.apply_all(out);
  }
}

TEST_P(FuzzTest, AsRelReaderNeverCrashesAndAccounts) {
  util::Pcg32 rng{GetParam() + 200};
  std::string corpus =
      "# as-rel\n"
      "3356|12389|-1|0.1200\n"
      "1299|4826|-1\n"
      "1299|174|0\n"
      "3356|1299|0\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    io::AsRelParseStats stats;
    topo::AsGraph g = io::from_as_rel(text, &stats);
    // Duplicate pairs are silently kept-first (not counted), so the three
    // counters bound but need not cover the line count.
    EXPECT_LE(stats.links + stats.malformed + stats.comments, stats.lines);
    EXPECT_EQ(g.edge_count(), stats.links);
  }
}

TEST_P(FuzzTest, GeoCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 300};
  std::string corpus =
      "# geo\n"
      "10.0.0.0,10.0.255.255,US\n"
      "10.1.0.0,10.1.255.255,AU\n"
      "10.2.0.0,10.2.255.255,JP\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    io::CsvParseStats stats;
    try {
      geo::GeoDatabase db = io::from_geo_csv(text, &stats);
      EXPECT_EQ(stats.parsed + stats.malformed + stats.comments, stats.lines);
    } catch (const std::invalid_argument&) {
      // Mutations can produce OVERLAPPING ranges, which finalize()
      // correctly rejects: an explicit error, not a crash.
    }
  }
}

TEST_P(FuzzTest, RankingCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 400};
  std::string corpus =
      "# rank,asn,score\n"
      "1,1299,0.83\n"
      "2,4826,0.81\n"
      "3,1221,0.44\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    rank::Ranking r = io::from_ranking_csv(text);
    // Scores survive as finite doubles (stod may produce inf from huge
    // mutated numbers, which from_scores tolerates; just don't crash).
    EXPECT_LE(r.size(), count_lines(text));
  }
}

TEST_P(FuzzTest, AsInfoCsvReaderNeverCrashes) {
  util::Pcg32 rng{GetParam() + 500};
  std::string corpus =
      "1221,AU,Telstra\n"
      "3356,US,Lumen\n"
      "16509,US,Amazon\n";
  for (int round = 0; round < 50; ++round) {
    std::string text = mutate(corpus, rng);
    std::istringstream is{text};
    io::CsvParseStats stats;
    io::AsInfoMap info = io::read_as_info_csv(is, &stats);
    EXPECT_EQ(stats.parsed + stats.malformed + stats.comments, stats.lines);
    EXPECT_LE(info.size(), stats.parsed);  // duplicates overwrite
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------- structured faults
//
// bgp::fault_inject-style corpora for the geo and as-rel readers: unlike
// the random mutations above, every injected fault has a KNOWN expected
// classification, so the reader's counters are checked against the
// injection log exactly — not just "some lines were dropped".

enum class GeoFault {
  kTruncateFields,  // drop the country field       -> malformed
  kExtraField,      // append a fourth field        -> malformed
  kBadIp,           // octet > 255 in first_ip      -> malformed
  kBadCountry,      // three-letter country code    -> malformed
  kInvertedRange,   // swap first/last (first>last) -> malformed
};
inline constexpr std::size_t kGeoFaultCount = 5;

struct GeoCorpus {
  std::string text;
  std::size_t clean = 0;      // lines that must parse
  std::size_t malformed = 0;  // injected faults, all classified malformed
};

/// Disjoint /16 blocks cycling through four countries; ~fraction of the
/// lines carry one uniformly drawn fault each. Deterministic per seed.
GeoCorpus make_geo_corpus(std::uint64_t seed, std::size_t lines,
                          double fraction) {
  static const char* const kCountries[] = {"US", "AU", "JP", "DE"};
  util::Pcg32 rng{seed};
  GeoCorpus corpus;
  corpus.text = "# first_ip,last_ip,country\n";
  for (std::size_t i = 0; i < lines; ++i) {
    std::uint32_t base = static_cast<std::uint32_t>((i + 1) << 16);
    std::string first = bgp::format_ipv4(base);
    std::string last = bgp::format_ipv4(base + 0xFFFF);
    std::string country = kCountries[i % 4];
    if (rng.chance(fraction)) {
      ++corpus.malformed;
      switch (static_cast<GeoFault>(rng.below(kGeoFaultCount))) {
        case GeoFault::kTruncateFields:
          corpus.text += first + "," + last + "\n";
          break;
        case GeoFault::kExtraField:
          corpus.text += first + "," + last + "," + country + ",extra\n";
          break;
        case GeoFault::kBadIp:
          corpus.text += "999.0.0." + std::to_string(rng.below(256)) + "," +
                         last + "," + country + "\n";
          break;
        case GeoFault::kBadCountry:
          corpus.text += first + "," + last + ",AUS\n";
          break;
        case GeoFault::kInvertedRange:
          corpus.text += last + "," + first + "," + country + "\n";
          break;
      }
    } else {
      ++corpus.clean;
      corpus.text += first + "," + last + "," + country + "\n";
    }
  }
  return corpus;
}

TEST_P(FuzzTest, GeoCsvClassifiesInjectedFaultsExactly) {
  GeoCorpus corpus = make_geo_corpus(GetParam() + 600, 40, 0.3);
  io::CsvParseStats stats;
  geo::GeoDatabase db = io::from_geo_csv(corpus.text, &stats);
  EXPECT_EQ(stats.lines, corpus.clean + corpus.malformed + 1);
  EXPECT_EQ(stats.comments, 1u);
  EXPECT_EQ(stats.parsed, corpus.clean);
  EXPECT_EQ(stats.malformed, corpus.malformed);
  // Malformed lines contribute no ranges (merging may shrink the count,
  // so bound rather than match).
  EXPECT_LE(db.ranges().size(), corpus.clean);
}

TEST(StructuredFaults, GeoCsvOverlappingBlocksAreAnExplicitError) {
  // Overlap is not a per-line fault: both lines parse, but finalize()
  // must reject the database as a whole rather than silently pick one.
  std::string corpus =
      "10.0.0.0,10.0.255.255,US\n"
      "10.0.128.0,10.1.0.0,AU\n";
  EXPECT_THROW((void)io::from_geo_csv(corpus), std::invalid_argument);
  // Identical duplicate ranges overlap too.
  std::string dup =
      "10.0.0.0,10.0.255.255,US\n"
      "10.0.0.0,10.0.255.255,US\n";
  EXPECT_THROW((void)io::from_geo_csv(dup), std::invalid_argument);
}

enum class RelFault {
  kTruncateFields,      // "a|b"                 -> malformed
  kFiveFields,          // extra trailing fields -> malformed
  kBadAsn,              // non-numeric ASN       -> malformed
  kZeroAsn,             // ASN 0 is reserved     -> malformed
  kSelfLoop,            // a == b                -> malformed
  kBadRel,              // rel 2 (not -1/0)      -> malformed
  kBadFraction,         // non-numeric fraction  -> malformed
  kFractionOutOfRange,  // fraction > 1          -> malformed
};
inline constexpr std::size_t kRelFaultCount = 8;

struct RelCorpus {
  std::string text;
  std::size_t clean = 0;
  std::size_t malformed = 0;
};

/// Unique (provider, customer) pairs, alternating p2c and p2p, some with
/// export fractions; ~fraction of the lines carry one fault each.
RelCorpus make_as_rel_corpus(std::uint64_t seed, std::size_t lines,
                             double fraction) {
  util::Pcg32 rng{seed};
  RelCorpus corpus;
  corpus.text = "# as-rel\n";
  for (std::size_t i = 0; i < lines; ++i) {
    std::string a = std::to_string(10 + i);
    std::string b = std::to_string(1000 + i);
    std::string rel = (i % 2 == 0) ? "-1" : "0";
    std::string clean_line = a + "|" + b + "|" + rel;
    if (i % 2 == 0 && i % 3 == 0) clean_line += "|0.5000";
    if (rng.chance(fraction)) {
      ++corpus.malformed;
      switch (static_cast<RelFault>(rng.below(kRelFaultCount))) {
        case RelFault::kTruncateFields:
          corpus.text += a + "|" + b + "\n";
          break;
        case RelFault::kFiveFields:
          corpus.text += clean_line + (i % 2 == 0 ? "|x\n" : "|1|x\n");
          break;
        case RelFault::kBadAsn:
          corpus.text += a + "x|" + b + "|" + rel + "\n";
          break;
        case RelFault::kZeroAsn:
          corpus.text += "0|" + b + "|" + rel + "\n";
          break;
        case RelFault::kSelfLoop:
          corpus.text += a + "|" + a + "|" + rel + "\n";
          break;
        case RelFault::kBadRel:
          corpus.text += a + "|" + b + "|2\n";
          break;
        case RelFault::kBadFraction:
          corpus.text += a + "|" + b + "|-1|abc\n";
          break;
        case RelFault::kFractionOutOfRange:
          corpus.text += a + "|" + b + "|-1|1.5000\n";
          break;
      }
    } else {
      ++corpus.clean;
      corpus.text += clean_line + "\n";
    }
  }
  return corpus;
}

TEST_P(FuzzTest, AsRelClassifiesInjectedFaultsExactly) {
  RelCorpus corpus = make_as_rel_corpus(GetParam() + 700, 60, 0.3);
  io::AsRelParseStats stats;
  topo::AsGraph g = io::from_as_rel(corpus.text, &stats);
  EXPECT_EQ(stats.lines, corpus.clean + corpus.malformed + 1);
  EXPECT_EQ(stats.comments, 1u);
  EXPECT_EQ(stats.links, corpus.clean);
  EXPECT_EQ(stats.malformed, corpus.malformed);
  // Every clean pair is unique, so each becomes exactly one edge.
  EXPECT_EQ(g.edge_count(), corpus.clean);
}

TEST(StructuredFaults, AsRelDuplicatePairsKeepFirstWithoutCounting) {
  std::string corpus =
      "10|20|-1|0.2500\n"
      "10|20|0\n"    // duplicate pair: kept-first, not a link, not malformed
      "20|10|-1\n";  // reversed duplicate of the same relationship
  io::AsRelParseStats stats;
  topo::AsGraph g = io::from_as_rel(corpus, &stats);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.links, 1u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(g.edge_count(), 1u);
  // The first line's p2c relationship won.
  auto rel = g.relationship(10, 20);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, topo::Rel::kCustomer);
}

}  // namespace
}  // namespace georank
