#include "io/as_rel.hpp"

#include <gtest/gtest.h>

namespace georank::io {
namespace {

topo::AsGraph sample_graph() {
  topo::AsGraph g;
  g.add_p2c(3356, 12389, 0.12);  // partial transit
  g.add_p2c(1299, 4826);
  g.add_p2p(3356, 1299);
  g.add_p2p(1299, 174);
  return g;
}

TEST(AsRel, WriteFormat) {
  std::string text = to_as_rel(sample_graph());
  EXPECT_NE(text.find("3356|12389|-1|0.1200"), std::string::npos);
  EXPECT_NE(text.find("1299|4826|-1"), std::string::npos);
  EXPECT_NE(text.find("1299|3356|0"), std::string::npos);  // lower ASN first
  EXPECT_NE(text.find("174|1299|0"), std::string::npos);
  EXPECT_EQ(text.find("4826|1299"), std::string::npos);  // no reverse dupes
}

TEST(AsRel, RoundTrip) {
  topo::AsGraph original = sample_graph();
  AsRelParseStats stats;
  topo::AsGraph parsed = from_as_rel(to_as_rel(original), &stats);

  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(parsed.edge_count(), original.edge_count());
  EXPECT_EQ(parsed.relationship(3356, 12389), topo::Rel::kCustomer);
  EXPECT_EQ(parsed.relationship(1299, 4826), topo::Rel::kCustomer);
  EXPECT_EQ(parsed.relationship(3356, 1299), topo::Rel::kPeer);
  EXPECT_NEAR(parsed.export_fraction(3356, 12389), 0.12, 1e-4);
  EXPECT_DOUBLE_EQ(parsed.export_fraction(1299, 4826), 1.0);
}

TEST(AsRel, ToleratesJunk) {
  std::string text =
      "# comment\n"
      "\n"
      "1|2|-1\n"
      "3|4|7\n"        // bad rel code
      "x|4|0\n"        // bad asn
      "5|5|0\n"        // self loop
      "6|7|-1|1.5\n"   // bad fraction
      "6|7|-1|abc\n"   // unparsable fraction
      "8|9\n"          // too few fields
      "1|2|0\n";       // duplicate pair: first wins
  AsRelParseStats stats;
  topo::AsGraph g = from_as_rel(text, &stats);
  EXPECT_EQ(stats.links, 1u);
  EXPECT_EQ(stats.malformed, 6u);
  EXPECT_EQ(stats.comments, 2u);
  EXPECT_EQ(g.relationship(1, 2), topo::Rel::kCustomer);  // kept p2c
}

TEST(AsRel, EmptyGraph) {
  topo::AsGraph g;
  topo::AsGraph parsed = from_as_rel(to_as_rel(g));
  EXPECT_EQ(parsed.edge_count(), 0u);
}

}  // namespace
}  // namespace georank::io
