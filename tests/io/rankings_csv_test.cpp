#include "io/rankings_csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace georank::io {
namespace {

TEST(RankingCsv, RoundTrip) {
  rank::Ranking original =
      rank::Ranking::from_scores({{1221, 0.44}, {4826, 0.81}, {1299, 0.83}});
  rank::Ranking parsed = from_ranking_csv(to_ranking_csv(original));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.entries()[0].asn, 1299u);
  EXPECT_DOUBLE_EQ(parsed.score_of(4826), 0.81);
  EXPECT_EQ(parsed.rank_of(1221), 3u);
}

TEST(RankingCsv, NameColumn) {
  rank::Ranking r = rank::Ranking::from_scores({{1221, 0.5}});
  std::string text = to_ranking_csv(
      r, [](bgp::Asn asn) { return asn == 1221 ? "Telstra" : "?"; });
  EXPECT_NE(text.find("1,1221,0.5,Telstra"), std::string::npos);
  // Names don't break re-parsing.
  rank::Ranking parsed = from_ranking_csv(text);
  EXPECT_DOUBLE_EQ(parsed.score_of(1221), 0.5);
}

TEST(RankingCsv, SkipsJunkLines) {
  std::string text =
      "# rank,asn,score\n"
      "1,1299,0.83\n"
      "junk\n"
      "2,zero,0.5\n"
      "3,0,0.5\n"
      "4,4826,not-a-number\n";
  rank::Ranking parsed = from_ranking_csv(text);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.score_of(1299), 0.83);
}

TEST(RankingCsv, ReadMetricFromCountryCsv) {
  core::CountryMetrics m;
  m.country = geo::CountryCode::of("AU");
  m.cci = rank::Ranking::from_scores({{1299, 0.83}, {4826, 0.81}});
  m.ahn = rank::Ranking::from_scores({{1221, 0.23}});
  std::ostringstream os;
  write_country_metrics_csv(os, m);

  std::istringstream cci_is{os.str()};
  rank::Ranking cci = read_metric_from_country_csv(cci_is, "CCI");
  ASSERT_EQ(cci.size(), 2u);
  EXPECT_DOUBLE_EQ(cci.score_of(1299), 0.83);
  EXPECT_FALSE(cci.rank_of(1221).has_value());  // AHN row not included

  std::istringstream ahn_is{os.str()};
  rank::Ranking ahn = read_metric_from_country_csv(ahn_is, "AHN");
  EXPECT_EQ(ahn.size(), 1u);

  std::istringstream none_is{os.str()};
  EXPECT_TRUE(read_metric_from_country_csv(none_is, "CTI").empty());
}

TEST(RankingCsv, CountryMetricsLongForm) {
  core::CountryMetrics m;
  m.country = geo::CountryCode::of("AU");
  m.cci = rank::Ranking::from_scores({{1299, 0.83}});
  m.ahn = rank::Ranking::from_scores({{1221, 0.23}});
  std::ostringstream os;
  write_country_metrics_csv(os, m);
  std::string text = os.str();
  EXPECT_NE(text.find("AU,CCI,1,1299,0.83"), std::string::npos);
  EXPECT_NE(text.find("AU,AHN,1,1221,0.23"), std::string::npos);
  EXPECT_EQ(text.find("AU,CCN"), std::string::npos);  // empty metric: no rows
}

}  // namespace
}  // namespace georank::io
