#include "io/geo_csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace georank::io {
namespace {

geo::CountryCode us = geo::CountryCode::of("US");
geo::CountryCode au = geo::CountryCode::of("AU");

TEST(GeoCsv, RoundTrip) {
  geo::GeoDatabase db;
  db.add_range(0x0A000000, 0x0AFFFFFF, us);
  db.add_range(0x14000000, 0x140000FF, au);
  db.finalize();

  CsvParseStats stats;
  geo::GeoDatabase parsed = from_geo_csv(to_geo_csv(db), &stats);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_TRUE(parsed.finalized());
  EXPECT_EQ(parsed.country_of(0x0A123456), us);
  EXPECT_EQ(parsed.country_of(0x14000080), au);
  EXPECT_EQ(parsed.country_of(0x15000000), geo::kNoCountry);
}

TEST(GeoCsv, ToleratesJunk) {
  std::string text =
      "# header\n"
      "10.0.0.0,10.0.0.255,US\n"
      "bad-line\n"
      "10.1.0.0,10.1.0.255,USA\n"   // bad country
      "10.2.0.255,10.2.0.0,US\n"    // inverted range
      "10.3.0.0,10.3.0.255\n";      // missing field
  CsvParseStats stats;
  geo::GeoDatabase db = from_geo_csv(text, &stats);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.malformed, 4u);
  EXPECT_EQ(db.country_of(0x0A000010), us);
}

TEST(VpCsv, RoundTrip) {
  geo::VpGeolocator original;
  original.add_collector({"collector-au", au, false});
  original.add_collector({"multihop-global", us, true});
  original.register_vp(bgp::VpId{0x01020304, 1221}, "collector-au");
  original.register_vp(bgp::VpId{0x01020305, 701}, "multihop-global");

  std::ostringstream collectors_os, vps_os;
  write_collectors_csv(collectors_os, original);
  write_vps_csv(vps_os, original);

  std::istringstream collectors_is{collectors_os.str()};
  std::istringstream vps_is{vps_os.str()};
  CsvParseStats stats;
  geo::VpGeolocator parsed = read_vp_geolocator(collectors_is, vps_is, &stats);

  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(parsed.collector_count(), 2u);
  EXPECT_EQ(parsed.vp_count(), 2u);
  EXPECT_EQ(parsed.peek(bgp::VpId{0x01020304, 1221}), au);
  EXPECT_FALSE(parsed.peek(bgp::VpId{0x01020305, 701}).has_value());  // multihop
}

TEST(VpCsv, UnknownCollectorCountsAsMalformed) {
  std::istringstream collectors{"c1,AU,0\n"};
  std::istringstream vps{
      "1.2.3.4,100,c1\n"
      "1.2.3.5,200,nope\n"};
  CsvParseStats stats;
  geo::VpGeolocator parsed = read_vp_geolocator(collectors, vps, &stats);
  EXPECT_EQ(parsed.vp_count(), 1u);
  EXPECT_EQ(stats.malformed, 1u);
}

TEST(VpCsv, DuplicateCollectorCountsAsMalformed) {
  std::istringstream collectors{
      "c1,AU,0\n"
      "c1,US,1\n"};
  std::istringstream vps{""};
  CsvParseStats stats;
  geo::VpGeolocator parsed = read_vp_geolocator(collectors, vps, &stats);
  EXPECT_EQ(parsed.collector_count(), 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(parsed.collectors()[0].country, au);  // first wins
}

}  // namespace
}  // namespace georank::io
