#include "io/as_info_csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace georank::io {
namespace {

TEST(AsInfoCsv, RoundTrip) {
  AsInfoMap original{
      {1221, {geo::CountryCode::of("AU"), "Telstra"}},
      {3356, {geo::CountryCode::of("US"), "Lumen"}},
      {99999, {geo::CountryCode::of("JP"), ""}},
  };
  std::ostringstream os;
  write_as_info_csv(os, original);

  std::istringstream is{os.str()};
  CsvParseStats stats;
  AsInfoMap parsed = read_as_info_csv(is, &stats);
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.at(1221).name, "Telstra");
  EXPECT_EQ(parsed.at(1221).registered, geo::CountryCode::of("AU"));
  EXPECT_EQ(parsed.at(99999).registered, geo::CountryCode::of("JP"));
}

TEST(AsInfoCsv, SortedOutput) {
  AsInfoMap info{{300, {geo::CountryCode::of("US"), "c"}},
                 {100, {geo::CountryCode::of("US"), "a"}},
                 {200, {geo::CountryCode::of("US"), "b"}}};
  std::ostringstream os;
  write_as_info_csv(os, info);
  std::string text = os.str();
  EXPECT_LT(text.find("100,"), text.find("200,"));
  EXPECT_LT(text.find("200,"), text.find("300,"));
}

TEST(AsInfoCsv, ToleratesJunk) {
  std::istringstream is{
      "# header\n"
      "1221,AU,Telstra\n"
      "bad\n"
      "0,US,zero-asn\n"
      "9,XYZ,bad-country\n"
      "10,US\n"};  // missing name: allowed
  CsvParseStats stats;
  AsInfoMap parsed = read_as_info_csv(is, &stats);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(stats.malformed, 3u);
  EXPECT_TRUE(parsed.at(10).name.empty());
}

TEST(AsInfoCsv, ToRegistry) {
  AsInfoMap info{{1221, {geo::CountryCode::of("AU"), "Telstra"}},
                 {3356, {geo::CountryCode::of("US"), "Lumen"}}};
  rank::AsRegistry registry = to_registry(info);
  EXPECT_EQ(registry.at(1221), geo::CountryCode::of("AU"));
  EXPECT_EQ(registry.at(3356), geo::CountryCode::of("US"));
}

}  // namespace
}  // namespace georank::io
