#include "scenario/apply.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "scenario/scenario.hpp"

namespace georank::scenario {
namespace {

using geo::CountryCode;

std::optional<CountryCode> country(const rank::AsRegistry& registry, Asn asn) {
  auto it = registry.find(asn);
  if (it == registry.end()) return std::nullopt;
  return it->second;
}

bool ribs_equal(const bgp::RibCollection& a, const bgp::RibCollection& b) {
  if (a.days.size() != b.days.size()) return false;
  for (std::size_t d = 0; d < a.days.size(); ++d) {
    if (a.days[d].day != b.days[d].day) return false;
    if (a.days[d].entries != b.days[d].entries) return false;
  }
  return true;
}

struct ApplyFixture {
  gen::World world;
  bgp::RibCollection ribs;

  ApplyFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()) {
    gen::NoiseSpec noise;
    ribs = gen::RibGenerator{world, noise, 5}.generate(5);
  }
};

TEST(ScenarioApply, ConservesEveryEntryExactlyOnce) {
  ApplyFixture f;
  Scenario s = parse("seed 3\ndepeer AU US\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_EQ(result.stats.entries_kept + result.stats.entries_rerouted +
                result.stats.entries_withdrawn,
            f.ribs.total_entries());
  EXPECT_EQ(result.ribs.days.size(), f.ribs.days.size());
}

TEST(ScenarioApply, DepeerSeversEveryCrossCountryLink) {
  ApplyFixture f;
  Scenario s = parse("seed 3\ndepeer AU US\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_GT(result.stats.edges_removed, 0u);
  const CountryCode au = CountryCode::of("AU");
  const CountryCode us = CountryCode::of("US");
  for (Asn asn : result.graph.ases()) {
    if (country(f.world.as_registry, asn) != au) continue;
    for (const topo::Neighbor& n :
         result.graph.neighbors(result.graph.id_of(asn))) {
      EXPECT_NE(country(f.world.as_registry, result.graph.asn_of(n.id)), us)
          << "AS" << asn << " still adjacent to a US AS";
    }
  }
}

TEST(ScenarioApply, HijackOnlyTouchesTheVictimPrefix) {
  ApplyFixture f;
  const bgp::Prefix victim = f.ribs.days[0].entries[0].prefix;
  const Asn hijacker = 3320;  // DE incumbent, present in the mini world
  Scenario s =
      parse("seed 3\nhijack " + victim.to_string() + " by 3320\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_EQ(result.stats.edges_removed, 0u);
  EXPECT_EQ(result.stats.prefixes_hijacked, 1u);
  EXPECT_GT(result.stats.entries_rerouted, 0u);

  for (std::size_t d = 0; d < f.ribs.days.size(); ++d) {
    // Entries for other prefixes survive byte-identical and in order —
    // the property the Pipeline's shard digests depend on.
    std::vector<bgp::RouteEntry> before, after;
    for (const bgp::RouteEntry& e : f.ribs.days[d].entries) {
      if (!(e.prefix == victim)) before.push_back(e);
    }
    for (const bgp::RouteEntry& e : result.ribs.days[d].entries) {
      if (e.prefix == victim) {
        EXPECT_EQ(e.path.origin(), hijacker);
      } else {
        after.push_back(e);
      }
    }
    EXPECT_EQ(before, after) << "day " << d;
  }
}

TEST(ScenarioApply, DepeerCliqueConvertsPeeringsToBoughtTransit) {
  ApplyFixture f;
  const Asn target = f.world.clique.front();
  std::vector<Asn> former_peers;
  for (Asn peer : f.world.graph.peers_of(target)) {
    if (f.world.graph.providers_of(peer).empty()) former_peers.push_back(peer);
  }
  ASSERT_FALSE(former_peers.empty()) << "clique member has no tier-1 peers";

  Scenario s = parse("seed 3\ndepeer-clique " + std::to_string(target) + "\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_EQ(result.stats.edges_removed, former_peers.size());
  EXPECT_EQ(result.stats.edges_added, former_peers.size());

  std::vector<Asn> providers = result.graph.providers_of(target);
  std::sort(providers.begin(), providers.end());
  for (Asn peer : former_peers) {
    EXPECT_TRUE(std::binary_search(providers.begin(), providers.end(), peer))
        << "AS" << peer << " should now provide transit to AS" << target;
  }
}

TEST(ScenarioApply, CableCutFullFractionSeversTheWholeBorder) {
  ApplyFixture f;
  Scenario s = parse("seed 9\ncablecut AU 1\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_GT(result.stats.edges_removed, 0u);
  const CountryCode au = CountryCode::of("AU");
  for (Asn asn : result.graph.ases()) {
    if (country(f.world.as_registry, asn) != au) continue;
    for (const topo::Neighbor& n :
         result.graph.neighbors(result.graph.id_of(asn))) {
      EXPECT_EQ(country(f.world.as_registry, result.graph.asn_of(n.id)), au)
          << "AS" << asn << " kept a cross-border link at fraction 1";
    }
  }
}

TEST(ScenarioApply, CableCutIsSeedDeterministicAndSeedSensitive) {
  ApplyFixture f;
  Scenario s = parse("seed 5\ncablecut AU 0.5\n");
  ApplyResult a = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  ApplyResult b = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_TRUE(ribs_equal(a.ribs, b.ribs));

  Scenario other = parse("seed 6\ncablecut AU 0.5\n");
  ApplyResult c = apply(other, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_FALSE(a.stats == c.stats && ribs_equal(a.ribs, c.ribs))
      << "different seeds picked the identical edge subset";
}

TEST(ScenarioApply, ConsolidateLeavesOnlyTheGatewayFacingAbroad) {
  ApplyFixture f;
  const Asn gateway = 1221;  // Telstra, the mini world's AU incumbent
  Scenario s = parse("seed 3\nconsolidate AU onto 1221\n");
  ApplyResult result = apply(s, f.world.graph, f.world.as_registry, f.ribs);
  EXPECT_GT(result.stats.edges_removed, 0u);
  const CountryCode au = CountryCode::of("AU");
  for (Asn asn : result.graph.ases()) {
    if (asn == gateway || country(f.world.as_registry, asn) != au) continue;
    bool had_foreign = false;
    for (const topo::Neighbor& n :
         f.world.graph.neighbors(f.world.graph.id_of(asn))) {
      const Asn other = f.world.graph.asn_of(n.id);
      if (other != gateway && country(f.world.as_registry, other) != au) {
        had_foreign = true;
      }
    }
    for (const topo::Neighbor& n :
         result.graph.neighbors(result.graph.id_of(asn))) {
      const Asn other = result.graph.asn_of(n.id);
      EXPECT_TRUE(other == gateway ||
                  country(f.world.as_registry, other) == au)
          << "AS" << asn << " kept a foreign link past consolidation";
    }
    if (had_foreign) {
      EXPECT_TRUE(result.graph.relationship(gateway, asn).has_value())
          << "orphaned AS" << asn << " was not reconnected to the gateway";
    }
  }
}

TEST(ScenarioApply, ThrowsWhenAnEventNamesAnUnknownAsn) {
  ApplyFixture f;
  for (const char* text :
       {"depeer-clique 4000000000\n", "hijack 16.0.0.0/16 by 4000000000\n",
        "consolidate AU onto 4000000000\n"}) {
    Scenario s = parse(std::string("seed 1\n") + text);
    EXPECT_THROW((void)apply(s, f.world.graph, f.world.as_registry, f.ribs),
                 ApplyError)
        << text;
  }
}

TEST(ScenarioApply, BitIdenticalAcrossThreadCounts) {
  ApplyFixture f;
  const bgp::Prefix victim = f.ribs.days[0].entries[0].prefix;
  Scenario s = parse("seed 3\ndepeer AU US\nhijack " + victim.to_string() +
                     " by 3320\ncablecut DE 0.4\n");

  std::vector<ApplyResult> results;
  for (std::size_t threads : {1u, 4u, 16u}) {
    ApplyOptions options;
    options.threads = threads;
    results.push_back(
        apply(s, f.world.graph, f.world.as_registry, f.ribs, options));
  }
  // And via the environment knob, the way production configures it.
  ::setenv("GEORANK_THREADS", "16", 1);
  results.push_back(apply(s, f.world.graph, f.world.as_registry, f.ribs));
  ::unsetenv("GEORANK_THREADS");

  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats, results[0].stats) << "variant " << i;
    EXPECT_TRUE(ribs_equal(results[i].ribs, results[0].ribs))
        << "variant " << i << " produced different RIBs";
  }
}

}  // namespace
}  // namespace georank::scenario
