#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace georank::scenario {
namespace {

using geo::CountryCode;

Scenario full_scenario() {
  Scenario s;
  s.name = "full.example-1";
  s.seed = 42;
  Event depeer;
  depeer.kind = EventKind::kDepeerCountries;
  depeer.country_a = CountryCode::of("RU");
  depeer.country_b = CountryCode::of("UA");
  Event clique;
  clique.kind = EventKind::kDepeerClique;
  clique.asn = 3356;
  Event hijack;
  hijack.kind = EventKind::kHijack;
  hijack.prefix = *bgp::Prefix::parse("10.1.0.0/16");
  hijack.asn = 64500;
  Event cut;
  cut.kind = EventKind::kCableCut;
  cut.country_a = CountryCode::of("AU");
  cut.fraction = 0.5;
  Event consolidate;
  consolidate.kind = EventKind::kConsolidate;
  consolidate.country_a = CountryCode::of("IR");
  consolidate.asn = 12880;
  s.events = {depeer, clique, hijack, cut, consolidate};
  return s;
}

TEST(ScenarioDsl, ParsesEveryEventFamily) {
  Scenario s = parse(
      "# sanctions counterfactual\n"
      "name full.example-1\n"
      "seed 42\n"
      "depeer RU UA\n"
      "depeer-clique 3356\n"
      "hijack 10.1.0.0/16 by 64500\n"
      "cablecut AU 0.5\n"
      "consolidate IR onto 12880\n");
  EXPECT_EQ(s, full_scenario());
}

TEST(ScenarioDsl, RoundTripsThroughCanonicalText) {
  Scenario s = full_scenario();
  EXPECT_EQ(parse(to_text(s)), s);

  // Without a name, and with the default seed, still canonical.
  Scenario bare;
  Event e;
  e.kind = EventKind::kDepeerClique;
  e.asn = 174;
  bare.events = {e};
  EXPECT_EQ(parse(to_text(bare)), bare);
}

TEST(ScenarioDsl, CanonicalTextNormalizesNoise) {
  // Comments, blank lines and repeated whitespace all collapse to the
  // same canonical text (and therefore the same content hash).
  Scenario noisy = parse(
      "\n"
      "  # leading comment\n"
      "seed 7\n"
      "\tdepeer   AU    US   # trailing comment\n"
      "\n");
  Scenario clean = parse("seed 7\ndepeer AU US\n");
  EXPECT_EQ(to_text(noisy), to_text(clean));
  EXPECT_EQ(content_hash(noisy), content_hash(clean));
}

TEST(ScenarioDsl, ContentHashSeparatesScenarios) {
  Scenario a = parse("seed 7\ndepeer AU US\n");
  Scenario b = parse("seed 8\ndepeer AU US\n");
  Scenario c = parse("seed 7\ndepeer AU JP\n");
  EXPECT_NE(content_hash(a), content_hash(b));
  EXPECT_NE(content_hash(a), content_hash(c));
  EXPECT_EQ(content_hash(a), content_hash(parse(to_text(a))));
}

TEST(ScenarioDsl, FractionRoundTripsExactly) {
  for (const char* text : {"0.1", "0.25", "0.333333333333333", "1"}) {
    Scenario s = parse(std::string("cablecut AU ") + text + "\n");
    EXPECT_EQ(parse(to_text(s)), s) << text;
  }
}

// Every-field-mutation table, mirroring the GRSNAP01 flip tests: each
// malformed input names the exact reason and line it must be rejected
// with.
struct MalformedCase {
  const char* label;
  const char* text;
  ScenarioParseReason reason;
  std::size_t line;
};

TEST(ScenarioDsl, EveryMalformedFieldIsDiagnosed) {
  const std::vector<MalformedCase> cases = {
      {"empty input", "", ScenarioParseReason::kEmpty, 0},
      {"comments only", "# nothing\n\n", ScenarioParseReason::kEmpty, 0},
      {"name+seed but no events", "name x\nseed 3\n",
       ScenarioParseReason::kEmpty, 0},
      {"unknown directive", "seed 1\nfrobnicate AU\n",
       ScenarioParseReason::kUnknownDirective, 2},
      {"case-sensitive directive", "Depeer AU US\n",
       ScenarioParseReason::kUnknownDirective, 1},

      {"name missing value", "name\n", ScenarioParseReason::kBadFieldCount, 1},
      {"name extra token", "name a b\n", ScenarioParseReason::kBadFieldCount,
       1},
      {"name bad charset", "name wi*th\n", ScenarioParseReason::kBadName, 1},
      {"name twice", "name a\nname b\ndepeer AU US\n",
       ScenarioParseReason::kDuplicateDirective, 2},

      {"seed missing value", "seed\n", ScenarioParseReason::kBadFieldCount, 1},
      {"seed not a number", "seed abc\n", ScenarioParseReason::kBadSeed, 1},
      {"seed negative", "seed -1\n", ScenarioParseReason::kBadSeed, 1},
      {"seed overflow", "seed 99999999999999999999999\n",
       ScenarioParseReason::kBadSeed, 1},
      {"seed twice", "seed 1\nseed 2\ndepeer AU US\n",
       ScenarioParseReason::kDuplicateDirective, 2},

      {"depeer one country", "depeer AU\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"depeer three countries", "depeer AU US JP\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"depeer bad lhs", "depeer A1 US\n", ScenarioParseReason::kBadCountry,
       1},
      {"depeer bad rhs", "depeer AU usa\n", ScenarioParseReason::kBadCountry,
       1},
      {"depeer same country", "depeer AU AU\n",
       ScenarioParseReason::kSameCountry, 1},

      {"depeer-clique no asn", "depeer-clique\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"depeer-clique bad asn", "depeer-clique lumen\n",
       ScenarioParseReason::kBadAsn, 1},
      {"depeer-clique asn zero", "depeer-clique 0\n",
       ScenarioParseReason::kBadAsn, 1},
      {"depeer-clique asn overflow", "depeer-clique 4294967296\n",
       ScenarioParseReason::kBadAsn, 1},

      {"hijack too few", "hijack 10.0.0.0/8\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"hijack bad prefix", "hijack 10.0.0/8 by 64500\n",
       ScenarioParseReason::kBadPrefix, 1},
      {"hijack bad length", "hijack 10.0.0.0/33 by 64500\n",
       ScenarioParseReason::kBadPrefix, 1},
      {"hijack missing by", "hijack 10.0.0.0/8 at 64500\n",
       ScenarioParseReason::kMissingKeyword, 1},
      {"hijack bad asn", "hijack 10.0.0.0/8 by x\n",
       ScenarioParseReason::kBadAsn, 1},

      {"cablecut too few", "cablecut AU\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"cablecut bad country", "cablecut AUS 0.5\n",
       ScenarioParseReason::kBadCountry, 1},
      {"cablecut bad fraction", "cablecut AU half\n",
       ScenarioParseReason::kBadFraction, 1},
      {"cablecut fraction zero", "cablecut AU 0\n",
       ScenarioParseReason::kBadFraction, 1},
      {"cablecut fraction above one", "cablecut AU 1.5\n",
       ScenarioParseReason::kBadFraction, 1},
      {"cablecut fraction trailing junk", "cablecut AU 0.5x\n",
       ScenarioParseReason::kBadFraction, 1},

      {"consolidate too few", "consolidate IR 12880\n",
       ScenarioParseReason::kBadFieldCount, 1},
      {"consolidate bad country", "consolidate I 12880 onto\n",
       ScenarioParseReason::kBadCountry, 1},
      {"consolidate missing onto", "consolidate IR via 12880\n",
       ScenarioParseReason::kMissingKeyword, 1},
      {"consolidate bad asn", "consolidate IR onto twelve\n",
       ScenarioParseReason::kBadAsn, 1},
  };

  for (const MalformedCase& c : cases) {
    try {
      (void)parse(c.text);
      FAIL() << c.label << ": accepted malformed input";
    } catch (const ScenarioParseError& e) {
      EXPECT_EQ(e.reason(), c.reason) << c.label << ": " << e.what();
      EXPECT_EQ(e.line_number(), c.line) << c.label << ": " << e.what();
      EXPECT_STRNE(e.what(), "") << c.label;
    }
  }
}

TEST(ScenarioDsl, ErrorMessagesNameLineAndReason) {
  try {
    (void)parse("seed 1\ndepeer AU AU\n");
    FAIL() << "accepted depeer AU AU";
  } catch (const ScenarioParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find(std::string(to_string(e.reason()))),
              std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace georank::scenario
