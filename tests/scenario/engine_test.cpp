#include "scenario/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "gen/internet.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "serve/ranking_service.hpp"

namespace georank::scenario {
namespace {

using geo::CountryCode;

core::PipelineConfig config_for(const gen::World& world) {
  core::PipelineConfig cfg;
  cfg.sanitizer.clique = world.clique;
  cfg.sanitizer.route_server_asns = world.route_servers;
  return cfg;
}

struct EngineFixture {
  gen::World world;
  bgp::RibCollection ribs;
  core::Pipeline pipeline;

  EngineFixture()
      : world(gen::InternetGenerator{gen::mini_world_spec(21)}.generate()),
        ribs(gen::RibGenerator{world, gen::NoiseSpec{}, 5}.generate(5)),
        pipeline(world.geo_db, world.vps, world.asn_registry, world.graph,
                 config_for(world)) {
    pipeline.load(ribs);
  }
};

TEST(WhatIfEngine, ReportShapeAndRepeatDeterminism) {
  EngineFixture f;
  WhatIfEngine engine{f.pipeline, f.world.graph, f.world.as_registry, f.ribs};
  const std::size_t countries = engine.baseline().size();
  ASSERT_GT(countries, 0u);

  Scenario s = parse("name t\nseed 3\ndepeer AU US\n");
  Report first = engine.run(s, 5);
  EXPECT_EQ(first.scenario, s);
  EXPECT_EQ(first.scenario_hash, content_hash(s));
  EXPECT_EQ(first.top_k, 5u);
  EXPECT_EQ(first.countries_total, countries);
  EXPECT_EQ(first.memo.shards_kept + first.memo.shards_rebuilt, countries);
  EXPECT_FALSE(first.shifts.empty());

  // Same query again: the engine re-armed the baseline in between, so
  // the counterfactual must come out bit-identical (JSON round-trips
  // every double, so string equality is bit equality).
  Report second = engine.run(s, 5);
  EXPECT_EQ(serve::render_whatif_json(first, 1),
            serve::render_whatif_json(second, 1));
  EXPECT_EQ(render_csv(first), render_csv(second));
  EXPECT_EQ(render_text(first), render_text(second));
}

TEST(WhatIfEngine, NoOpScenarioKeepsEveryShardAndMemo) {
  EngineFixture f;
  WhatIfEngine engine{f.pipeline, f.world.graph, f.world.as_registry, f.ribs};
  const std::size_t countries = engine.baseline().size();

  // ZU/ZV register no ASes, so the de-peering selects the empty edge
  // set: every entry is kept byte-identical, every shard digest
  // matches, and every memoized ranking survives untouched.
  Report report = engine.run(parse("seed 3\ndepeer ZU ZV\n"), 5);
  EXPECT_EQ(report.apply.edges_removed, 0u);
  EXPECT_EQ(report.apply.entries_rerouted, 0u);
  EXPECT_EQ(report.apply.entries_kept, f.ribs.total_entries());
  EXPECT_EQ(report.memo.shards_kept, countries);
  EXPECT_EQ(report.memo.shards_rebuilt, 0u);
  // Every country's census memo survives untouched.
  EXPECT_EQ(report.memo.memos_kept, countries);
  EXPECT_EQ(report.memo.memos_evicted, 0u);
  EXPECT_TRUE(report.shifts.empty());
}

TEST(WhatIfEngine, SingleDepeerReusesUntouchedCountryMemos) {
  // The memo-reuse acceptance check: on a world with many countries,
  // severing ONE cross-border link must leave most countries' shard
  // digests untouched, and the report must prove their rankings were
  // reused, not recomputed.
  gen::InternetScaleGenerator generator{gen::internet_spec(1.0, 5)};
  gen::World world = generator.generate();
  bgp::RibCollection ribs = generator.synthesize_ribs(world);
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config_for(world)};
  pipeline.load(ribs);
  WhatIfEngine engine{pipeline, world.graph, world.as_registry, ribs};

  // Deterministically pick the least-linked cross-country pair.
  std::map<std::pair<CountryCode, CountryCode>, std::size_t> border_links;
  for (bgp::Asn asn : world.graph.ases()) {
    auto a = world.as_registry.find(asn);
    if (a == world.as_registry.end()) continue;
    for (const topo::Neighbor& n :
         world.graph.neighbors(world.graph.id_of(asn))) {
      auto b = world.as_registry.find(world.graph.asn_of(n.id));
      if (b == world.as_registry.end() || a->second == b->second) continue;
      if (a->second.raw() < b->second.raw()) {
        ++border_links[{a->second, b->second}];
      }
    }
  }
  ASSERT_FALSE(border_links.empty());
  auto thinnest = border_links.begin();
  for (auto it = border_links.begin(); it != border_links.end(); ++it) {
    if (it->second < thinnest->second) thinnest = it;
  }

  Report report = engine.run(
      parse("seed 3\ndepeer " + thinnest->first.first.to_string() + " " +
            thinnest->first.second.to_string() + "\n"),
      5);
  EXPECT_GT(report.apply.edges_removed, 0u);
  EXPECT_GT(report.memo.shards_kept, 0u)
      << "a single de-peering rebuilt every country's shard";
  EXPECT_GT(report.memo.memos_kept, 0u);
  EXPECT_EQ(report.memo.shards_kept + report.memo.shards_rebuilt,
            report.countries_total);
  EXPECT_LT(report.shifts.size(), report.countries_total);
}

TEST(WhatIfEngine, CounterfactualBitIdenticalAcrossThreadCounts) {
  std::string reference;
  for (const char* threads : {"1", "4", "16"}) {
    ::setenv("GEORANK_THREADS", threads, 1);
    EngineFixture f;
    WhatIfEngine engine{f.pipeline, f.world.graph, f.world.as_registry,
                        f.ribs};
    Report report = engine.run(
        parse("seed 3\ndepeer AU US\ncablecut DE 0.4\n"), 5);
    const std::string json = serve::render_whatif_json(report, 7);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "GEORANK_THREADS=" << threads;
    }
  }
  ::unsetenv("GEORANK_THREADS");
}

}  // namespace
}  // namespace georank::scenario
