#include "rank/customer_cone.hpp"

#include <gtest/gtest.h>

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using sanitize::SanitizedPath;

Prefix pfx(const char* text) { return *Prefix::parse(text); }

SanitizedPath make_path(AsPath path, const char* prefix, std::uint64_t weight) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{path[0], path[0]};
  sp.prefix = pfx(prefix);
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

TEST(ConeSuffix, StartsAfterLastNonP2cLink) {
  topo::AsGraph g;
  g.add_p2p(1, 2);
  g.add_p2c(2, 3);
  g.add_p2c(3, 4);
  CustomerCone cone{g};
  // 1-2 peer, 2-3 p2c, 3-4 p2c: suffix starts at index 1 (AS 2).
  EXPECT_EQ(cone.cone_suffix_start(AsPath{1, 2, 3, 4}), 1u);
  // All p2c: whole path.
  EXPECT_EQ(cone.cone_suffix_start(AsPath{2, 3, 4}), 0u);
}

TEST(ConeSuffix, AscendingLinksExcluded) {
  topo::AsGraph g;
  g.add_p2c(2, 1);  // 1's provider is 2 (walking 1->2 ascends)
  g.add_p2c(2, 3);
  CustomerCone cone{g};
  // 1->2 is c2p (ascending), 2->3 is p2c: suffix starts at AS 2.
  EXPECT_EQ(cone.cone_suffix_start(AsPath{1, 2, 3}), 1u);
}

TEST(ConeSuffix, UnknownLinkTreatedAsNonP2c) {
  topo::AsGraph g;
  g.add_p2c(2, 3);
  g.add_as(1);
  CustomerCone cone{g};
  EXPECT_EQ(cone.cone_suffix_start(AsPath{1, 2, 3}), 1u);
}

TEST(ConeSuffix, OnlyOriginWhenLastLinkNotP2c) {
  topo::AsGraph g;
  g.add_p2p(1, 2);
  CustomerCone cone{g};
  EXPECT_EQ(cone.cone_suffix_start(AsPath{1, 2}), 1u);
}

TEST(CustomerCone, EveryAsInItsOwnCone) {
  topo::AsGraph g;
  g.add_p2p(1, 2);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{make_path(AsPath{1, 2}, "10.0.0.0/24", 256)};
  ConeResult r = cone.compute(paths);
  EXPECT_TRUE(r.as_cone.at(1).contains(1));
  EXPECT_TRUE(r.as_cone.at(2).contains(2));
  // Peer-observed: 2 not in 1's cone.
  EXPECT_FALSE(r.as_cone.at(1).contains(2));
}

TEST(CustomerCone, DownstreamAsesAndPrefixesCollected) {
  topo::AsGraph g;
  g.add_p2c(10, 20);
  g.add_p2c(20, 30);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{make_path(AsPath{10, 20, 30}, "10.0.0.0/24", 256)};
  ConeResult r = cone.compute(paths);
  EXPECT_EQ(r.cone_size(10), 3u);  // 10, 20, 30
  EXPECT_EQ(r.cone_size(20), 2u);
  EXPECT_EQ(r.cone_size(30), 1u);
  EXPECT_EQ(r.cone_addresses(10), 256u);
  EXPECT_EQ(r.cone_addresses(30), 256u);  // origin covers its own prefix
}

TEST(CustomerCone, NotRecursivelyClosed) {
  // Ground truth has 10>20 and 20>30, but observed paths never show 30
  // downstream of 10: 30 must NOT be in 10's cone (the paper's
  // anti-inflation rule, §1.1).
  topo::AsGraph g;
  g.add_p2c(10, 20);
  g.add_p2c(20, 30);
  g.add_p2c(40, 30);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{
      make_path(AsPath{10, 20}, "10.0.0.0/24", 256),    // 20's own prefix
      make_path(AsPath{40, 30}, "10.1.0.0/24", 256),    // 30 via 40 only
  };
  ConeResult r = cone.compute(paths);
  EXPECT_TRUE(r.as_cone.at(10).contains(20));
  EXPECT_FALSE(r.as_cone.at(10).contains(30));
  EXPECT_TRUE(r.as_cone.at(40).contains(30));
}

TEST(CustomerCone, PeerSegmentExcludedFromUpstreamCones) {
  topo::AsGraph g;
  g.add_p2c(2, 1);   // walking 1->2 ascends
  g.add_p2p(2, 3);   // peer at the top
  g.add_p2c(3, 4);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{make_path(AsPath{1, 2, 3, 4}, "10.0.0.0/24", 256)};
  ConeResult r = cone.compute(paths);
  // Suffix is 3<4: only 3 gains 4.
  EXPECT_TRUE(r.as_cone.at(3).contains(4));
  EXPECT_FALSE(r.as_cone.at(2).contains(4));
  EXPECT_FALSE(r.as_cone.at(2).contains(3));
  EXPECT_FALSE(r.as_cone.at(1).contains(2));
}

TEST(CustomerCone, WeightsCountedOncePerPrefix) {
  topo::AsGraph g;
  g.add_p2c(10, 20);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{
      make_path(AsPath{10, 20}, "10.0.0.0/24", 256),
      make_path(AsPath{10, 20}, "10.0.0.0/24", 256),  // same prefix again
      make_path(AsPath{10, 20}, "10.0.1.0/24", 256),
  };
  ConeResult r = cone.compute(paths);
  EXPECT_EQ(r.total_weight, 512u);
  EXPECT_EQ(r.cone_addresses(10), 512u);
}

TEST(CustomerCone, RankingByAddresses) {
  topo::AsGraph g;
  g.add_p2c(10, 20);
  g.add_p2c(10, 30);
  CustomerCone cone{g};
  std::vector<SanitizedPath> paths{
      make_path(AsPath{10, 20}, "10.0.0.0/24", 256),
      make_path(AsPath{10, 30}, "10.1.0.0/23", 512),
  };
  ConeResult r = cone.compute(paths);
  Ranking by_addr = r.by_addresses();
  EXPECT_EQ(by_addr.entries()[0].asn, 10u);
  EXPECT_DOUBLE_EQ(by_addr.score_of(10), 1.0);
  EXPECT_DOUBLE_EQ(by_addr.score_of(30), 512.0 / 768.0);
  EXPECT_DOUBLE_EQ(by_addr.score_of(20), 256.0 / 768.0);

  Ranking by_count = r.by_as_count();
  EXPECT_EQ(by_count.entries()[0].asn, 10u);
  EXPECT_DOUBLE_EQ(by_count.score_of(10), 3.0);
}

TEST(CustomerCone, EmptyInput) {
  topo::AsGraph g;
  CustomerCone cone{g};
  ConeResult r = cone.compute({});
  EXPECT_TRUE(r.as_cone.empty());
  EXPECT_EQ(r.total_weight, 0u);
  EXPECT_TRUE(r.by_addresses().empty());
}

}  // namespace
}  // namespace georank::rank
