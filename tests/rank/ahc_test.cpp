#include "rank/ahc.hpp"

#include <gtest/gtest.h>

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index,
                 const char* prefix_cc = "AU") {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.prefix_country = CountryCode::of(prefix_cc);
  sp.weight = 256;
  sp.path = std::move(path);
  return sp;
}

TEST(Ahc, AveragesPerOriginHegemonyOverRegisteredAses) {
  // Origins 201 and 202 are registered in AU; 300 is not.
  AsRegistry registry{{201, CountryCode::of("AU")},
                      {202, CountryCode::of("AU")},
                      {300, CountryCode::of("US")}};
  std::vector<SanitizedPath> paths{
      // AS 50 transits ALL paths to 201 but none to 202.
      mk(1, AsPath{1, 50, 201}, 1),
      mk(2, AsPath{2, 50, 201}, 1),
      mk(1, AsPath{1, 60, 202}, 2),
      mk(2, AsPath{2, 60, 202}, 2),
      // Paths to the US-registered origin must not count.
      mk(1, AsPath{1, 70, 300}, 3),
  };
  AhcRanking ahc{registry};
  Ranking r = ahc.compute(paths, CountryCode::of("AU"));
  // H_201(50)=1, H_202(50)=0 -> AHC(50)=0.5; same for 60.
  EXPECT_DOUBLE_EQ(r.score_of(50), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(60), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(70), 0.0);
  // Origins themselves score 0.5 each (on all their own paths).
  EXPECT_DOUBLE_EQ(r.score_of(201), 0.5);
}

TEST(Ahc, UsesRegistrationNotPrefixGeolocation) {
  // The Amazon effect (§5.1.2): a hypergiant registered in the US
  // originating AU-geolocated prefixes is INVISIBLE to AHC for AU but its
  // transit providers toward its US-registered AS are counted fully.
  AsRegistry registry{{16509, CountryCode::of("US")},
                      {201, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 50, 16509}, 1, "AU"),  // AU prefix, US-registered AS
      mk(1, AsPath{1, 60, 201}, 2, "AU"),
  };
  AhcRanking ahc{registry};
  Ranking au = ahc.compute(paths, CountryCode::of("AU"));
  // Only origin 201 counts for AU: AS 50 gets nothing.
  EXPECT_DOUBLE_EQ(au.score_of(50), 0.0);
  EXPECT_DOUBLE_EQ(au.score_of(60), 1.0);
  // And for the US ranking, the AU-geolocated path DOES count.
  Ranking us = ahc.compute(paths, CountryCode::of("US"));
  EXPECT_DOUBLE_EQ(us.score_of(50), 1.0);
}

TEST(Ahc, EqualWeightPerOriginRegardlessOfSize) {
  // Origin 201 originates 4 prefixes, 202 only one: AHC still averages
  // with one vote per AS ("disregards AS size", §1.2.1).
  AsRegistry registry{{201, CountryCode::of("AU")},
                      {202, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 50, 201}, 1),
      mk(1, AsPath{1, 50, 201}, 2),
      mk(1, AsPath{1, 50, 201}, 3),
      mk(1, AsPath{1, 50, 201}, 4),
      mk(1, AsPath{1, 60, 202}, 5),
  };
  AhcRanking ahc{registry};
  Ranking r = ahc.compute(paths, CountryCode::of("AU"));
  EXPECT_DOUBLE_EQ(r.score_of(50), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(60), 0.5);
}

TEST(Ahc, NoOriginsForCountry) {
  AsRegistry registry{{201, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{mk(1, AsPath{1, 201}, 1)};
  AhcRanking ahc{registry};
  EXPECT_TRUE(ahc.compute(paths, CountryCode::of("JP")).empty());
}

}  // namespace
}  // namespace georank::rank
