#include "rank/hegemony.hpp"

#include <gtest/gtest.h>

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using sanitize::SanitizedPath;

SanitizedPath make_path(std::uint32_t vp_ip, AsPath path, const char* prefix,
                        std::uint64_t weight) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.prefix = *Prefix::parse(prefix);
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

TEST(TrimmedAverage, PadsWithZeros) {
  Hegemony h;
  // One VP saw score 1.0, another saw nothing -> scores {1.0, 0.0};
  // n=2 < 3: no trim, mean = 0.5.
  EXPECT_DOUBLE_EQ(h.trimmed_average({1.0}, 2), 0.5);
}

TEST(TrimmedAverage, ThreeVpsTrimOneEachSide) {
  Hegemony h;
  // The Figure 2 rule: with three VP scores the top and bottom are
  // removed, leaving the middle value.
  EXPECT_DOUBLE_EQ(h.trimmed_average({1.0, 0.67, 0.33}, 3), 0.67);
}

TEST(TrimmedAverage, TenVpsTrimTenPercent) {
  Hegemony h;
  std::vector<double> scores{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 10.0};
  // Removes 0.0 and 10.0; mean of the middle 8 = 0.45.
  EXPECT_NEAR(h.trimmed_average(scores, 10), 0.45, 1e-9);
}

TEST(TrimmedAverage, EmptyVpSet) {
  Hegemony h;
  EXPECT_DOUBLE_EQ(h.trimmed_average({}, 0), 0.0);
}

TEST(TrimmedAverage, SingleVpNoTrim) {
  Hegemony h;
  EXPECT_DOUBLE_EQ(h.trimmed_average({0.8}, 1), 0.8);
}

TEST(Hegemony, SingleVpFractions) {
  Hegemony h;
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 20, 30}, "10.0.0.0/24", 100),
      make_path(1, AsPath{10, 20, 31}, "10.0.1.0/24", 100),
      make_path(1, AsPath{10, 21, 32}, "10.0.2.0/24", 200),
  };
  HegemonyResult r = h.compute(paths);
  EXPECT_EQ(r.vp_count, 1u);
  EXPECT_DOUBLE_EQ(r.score_of(10), 1.0);           // on every path
  EXPECT_DOUBLE_EQ(r.score_of(20), 0.5);           // 200/400
  EXPECT_DOUBLE_EQ(r.score_of(21), 0.5);           // 200/400
  EXPECT_DOUBLE_EQ(r.score_of(30), 0.25);          // 100/400
  EXPECT_DOUBLE_EQ(r.score_of(99), 0.0);
}

TEST(Hegemony, AbsentAsScoresZeroAtOtherVps) {
  Hegemony h;
  // AS 50 only appears at VP 1; VP 2 contributes a zero for it.
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 50, 30}, "10.0.0.0/24", 100),
      make_path(2, AsPath{11, 30}, "10.0.0.0/24", 100),
  };
  HegemonyResult r = h.compute(paths);
  EXPECT_EQ(r.vp_count, 2u);
  // n=2: no trim. Scores for 50: {1.0 (vp1), 0.0 (vp2)} -> 0.5.
  EXPECT_DOUBLE_EQ(r.score_of(50), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(30), 1.0);
}

TEST(Hegemony, TrimSuppressesVpProximityBias) {
  Hegemony h;
  // AS 60 is the first hop of exactly one VP (score 1.0 there) and absent
  // at nine others: with 10 VPs the 1.0 gets trimmed away entirely.
  std::vector<SanitizedPath> paths;
  paths.push_back(make_path(1, AsPath{60, 30}, "10.0.0.0/24", 100));
  for (std::uint32_t vp = 2; vp <= 10; ++vp) {
    paths.push_back(make_path(vp, AsPath{vp + 100, 30}, "10.0.0.0/24", 100));
  }
  HegemonyResult r = h.compute(paths);
  EXPECT_EQ(r.vp_count, 10u);
  EXPECT_DOUBLE_EQ(r.score_of(60), 0.0);
  EXPECT_DOUBLE_EQ(r.score_of(30), 1.0);  // trimming symmetric values keeps 1
}

TEST(Hegemony, WeightsByAddresses) {
  Hegemony h;
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 20}, "10.0.0.0/22", 1024),
      make_path(1, AsPath{10, 21}, "10.1.0.0/24", 256),
  };
  HegemonyResult r = h.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(20), 1024.0 / 1280.0);
  EXPECT_DOUBLE_EQ(r.score_of(21), 256.0 / 1280.0);
}

TEST(Hegemony, UnweightedVariantIgnoresPrefixSizes) {
  HegemonyOptions options;
  options.weight_by_addresses = false;
  Hegemony h{options};
  // A huge prefix behind 20 and a tiny one behind 21: unweighted, both
  // paths count the same.
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 20}, "10.0.0.0/22", 1024),
      make_path(1, AsPath{10, 21}, "10.1.0.0/24", 256),
  };
  HegemonyResult r = h.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(20), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(21), 0.5);
  // The default weighting favors the large prefix (see WeightsByAddresses).
}

TEST(Hegemony, ExcludeVpAsOption) {
  HegemonyOptions options;
  options.exclude_vp_as = true;
  Hegemony h{options};
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 20}, "10.0.0.0/24", 100),
  };
  HegemonyResult r = h.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(10), 0.0);
  EXPECT_DOUBLE_EQ(r.score_of(20), 1.0);
}

TEST(Hegemony, RankingOrders) {
  Hegemony h;
  std::vector<SanitizedPath> paths{
      make_path(1, AsPath{10, 20, 30}, "10.0.0.0/24", 100),
      make_path(1, AsPath{10, 20, 31}, "10.0.1.0/24", 100),
  };
  Ranking ranking = h.compute(paths).ranking();
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking.entries()[0].asn, 10u);  // ties broken by ASN: 10 < 20
  EXPECT_EQ(ranking.entries()[1].asn, 20u);
}

TEST(Hegemony, EmptyInput) {
  Hegemony h;
  HegemonyResult r = h.compute({});
  EXPECT_EQ(r.vp_count, 0u);
  EXPECT_TRUE(r.scores.empty());
}

}  // namespace
}  // namespace georank::rank
