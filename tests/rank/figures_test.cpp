// The paper's worked examples, encoded exactly:
//   Figure 1 pins the customer-cone path-segment semantics;
//   Figure 2 pins the hegemony per-VP scoring and trim rule.
#include <gtest/gtest.h>

#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"
#include "topo/route_propagation.hpp"

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using sanitize::SanitizedPath;

// Figure 1 ASes: A=101 B=102 C=103 D=104 E=105 F=106 G=107 H=108.
constexpr bgp::Asn A = 101, B = 102, C = 103, D = 104, E = 105, F = 106,
                   G = 107, H = 108;

topo::AsGraph figure1_graph() {
  topo::AsGraph g;
  g.add_p2p(A, B);
  g.add_p2p(A, C);
  g.add_p2p(B, C);
  g.add_p2c(C, D);
  g.add_p2c(D, E);
  g.add_p2c(D, F);
  g.add_p2c(A, G);
  g.add_p2c(B, H);
  return g;
}

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.weight = 256;
  sp.path = std::move(path);
  return sp;
}

std::vector<SanitizedPath> figure1_paths() {
  // v_g lives in G, v_h lives in H; one prefix per origin AS, indexed by
  // the origin's ASN so both VPs share prefixes.
  std::vector<SanitizedPath> paths;
  auto add = [&](std::uint32_t vp, AsPath p) {
    std::uint32_t idx = p[p.size() - 1];
    paths.push_back(mk(vp, std::move(p), idx));
  };
  // From v_g (VP ip 1).
  add(1, AsPath{G, A, C, D, E});
  add(1, AsPath{G, A, C, D, F});
  add(1, AsPath{G, A, C, D});
  add(1, AsPath{G, A, C});
  add(1, AsPath{G, A, B, H});
  add(1, AsPath{G, A, B});
  add(1, AsPath{G, A});
  // From v_h (VP ip 2).
  add(2, AsPath{H, B, C, D, E});
  add(2, AsPath{H, B, C, D, F});
  add(2, AsPath{H, B, C, D});
  add(2, AsPath{H, B, C});
  add(2, AsPath{H, B, A, G});
  add(2, AsPath{H, B, A});
  add(2, AsPath{H, B});
  return paths;
}

TEST(Figure1, PropagatorReproducesTheFigureSPaths) {
  topo::AsGraph g = figure1_graph();
  topo::RoutePropagator prop{g};
  // v_g's path to E must be G A C D E (the figure's red+gray path).
  topo::RoutingTable tE = prop.compute(E);
  EXPECT_EQ(tE.path_from(g.id_of(G)), (AsPath{G, A, C, D, E}));
  EXPECT_EQ(tE.path_from(g.id_of(H)), (AsPath{H, B, C, D, E}));
  topo::RoutingTable tH = prop.compute(H);
  EXPECT_EQ(tH.path_from(g.id_of(G)), (AsPath{G, A, B, H}));
  topo::RoutingTable tG = prop.compute(G);
  EXPECT_EQ(tG.path_from(g.id_of(H)), (AsPath{H, B, A, G}));
}

TEST(Figure1, SharedSegments) {
  topo::AsGraph g = figure1_graph();
  CustomerCone cone{g};
  ConeResult r = cone.compute(figure1_paths());

  // "Both VPs share visibility of C<D<E and C<D<F (red)."
  EXPECT_TRUE(r.as_cone.at(C).contains(D));
  EXPECT_TRUE(r.as_cone.at(C).contains(E));
  EXPECT_TRUE(r.as_cone.at(C).contains(F));
  EXPECT_TRUE(r.as_cone.at(D).contains(E));
  EXPECT_TRUE(r.as_cone.at(D).contains(F));
}

TEST(Figure1, PerVpSegments) {
  topo::AsGraph g = figure1_graph();
  CustomerCone cone{g};
  ConeResult r = cone.compute(figure1_paths());

  // "B<H from v_g (blue) and A<G from v_h (green)."
  EXPECT_TRUE(r.as_cone.at(B).contains(H));
  EXPECT_TRUE(r.as_cone.at(A).contains(G));
}

TEST(Figure1, DroppedSegmentsStayOut) {
  topo::AsGraph g = figure1_graph();
  CustomerCone cone{g};
  ConeResult r = cone.compute(figure1_paths());

  // The gray (dropped) portions must not leak into cones: A and B peer
  // with C, so C's cone members never enter A's or B's cone.
  EXPECT_FALSE(r.as_cone.at(A).contains(C));
  EXPECT_FALSE(r.as_cone.at(A).contains(D));
  EXPECT_FALSE(r.as_cone.at(A).contains(E));
  EXPECT_FALSE(r.as_cone.at(B).contains(D));
  // G is a stub: its cone is just itself.
  EXPECT_EQ(r.cone_size(G), 1u);
  EXPECT_EQ(r.cone_size(H), 1u);
  // Exact cone contents.
  EXPECT_EQ(r.cone_size(C), 4u);  // C D E F
  EXPECT_EQ(r.cone_size(D), 3u);  // D E F
  EXPECT_EQ(r.cone_size(A), 2u);  // A G
  EXPECT_EQ(r.cone_size(B), 2u);  // B H
}

TEST(Figure2, PerVpScoresAndTrim) {
  // AS 100 ("AS A") is on 3/3 paths at VP1, 2/3 at VP2, 1/3 at VP3 with
  // equal-size prefixes: per-VP scores 1, 0.67, 0.33. The trim removes
  // the top and bottom, leaving 0.67 (Figure 2's worked example).
  std::vector<SanitizedPath> paths;
  auto add = [&](std::uint32_t vp, AsPath p, std::uint32_t pfx_index) {
    paths.push_back(mk(vp, std::move(p), pfx_index));
  };
  add(1, AsPath{1, 100, 201}, 1);
  add(1, AsPath{1, 100, 202}, 2);
  add(1, AsPath{1, 100, 203}, 3);
  add(2, AsPath{2, 100, 201}, 1);
  add(2, AsPath{2, 100, 202}, 2);
  add(2, AsPath{2, 99, 203}, 3);
  add(3, AsPath{3, 100, 201}, 1);
  add(3, AsPath{3, 98, 202}, 2);
  add(3, AsPath{3, 98, 203}, 3);

  Hegemony hegemony;
  HegemonyResult r = hegemony.compute(paths);
  ASSERT_EQ(r.vp_count, 3u);
  EXPECT_NEAR(r.score_of(100), 2.0 / 3.0, 1e-9);
}

TEST(Figure2, ConeAndHegemonyDisagreeByDesign) {
  // An AS reached mostly over PEERING scores high on hegemony but low on
  // customer cone (the Hurricane pattern, §3.3/§5.4).
  topo::AsGraph g;
  g.add_p2c(10, 1);  // VP AS 1 buys from 10
  g.add_p2c(11, 2);
  g.add_p2c(12, 3);
  g.add_p2p(10, 50);
  g.add_p2p(11, 50);
  g.add_p2p(12, 50);
  g.add_p2c(50, 60);  // 50's only customer
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 10, 50, 60}, 1),
      mk(2, AsPath{2, 11, 50, 60}, 1),
      mk(3, AsPath{3, 12, 50, 60}, 1),
  };
  CustomerCone cone{g};
  ConeResult cr = cone.compute(paths);
  Hegemony hegemony;
  HegemonyResult hr = hegemony.compute(paths);

  // Hegemony: 50 is on every path -> 1.0 after trim.
  EXPECT_DOUBLE_EQ(hr.score_of(50), 1.0);
  // Cone: the peer link 10-50 caps 50's cone to {50, 60}; 10,11,12 gain
  // nothing.
  EXPECT_EQ(cr.cone_size(50), 2u);
  EXPECT_EQ(cr.cone_size(10), 1u);
}

}  // namespace
}  // namespace georank::rank
