#include "rank/ranking.hpp"

#include <gtest/gtest.h>

namespace georank::rank {
namespace {

TEST(Ranking, SortsDescending) {
  Ranking r = Ranking::from_scores({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.entries()[0].asn, 2u);
  EXPECT_EQ(r.entries()[1].asn, 3u);
  EXPECT_EQ(r.entries()[2].asn, 1u);
}

TEST(Ranking, TiesBreakByAscendingAsn) {
  Ranking r = Ranking::from_scores({{30, 0.5}, {10, 0.5}, {20, 0.5}});
  EXPECT_EQ(r.entries()[0].asn, 10u);
  EXPECT_EQ(r.entries()[1].asn, 20u);
  EXPECT_EQ(r.entries()[2].asn, 30u);
}

TEST(Ranking, RankOfIsOneBased) {
  Ranking r = Ranking::from_scores({{1, 0.2}, {2, 0.9}});
  EXPECT_EQ(r.rank_of(2), 1u);
  EXPECT_EQ(r.rank_of(1), 2u);
  EXPECT_FALSE(r.rank_of(99).has_value());
}

TEST(Ranking, ScoreOf) {
  Ranking r = Ranking::from_scores({{1, 0.25}});
  EXPECT_DOUBLE_EQ(r.score_of(1), 0.25);
  EXPECT_DOUBLE_EQ(r.score_of(2), 0.0);
}

TEST(Ranking, TopClamps) {
  Ranking r = Ranking::from_scores({{1, 3}, {2, 2}, {3, 1}});
  EXPECT_EQ(r.top(2).size(), 2u);
  EXPECT_EQ(r.top(10).size(), 3u);
  EXPECT_EQ(r.top(2)[0].asn, 1u);
}

TEST(Ranking, EmptyBehaviour) {
  Ranking r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.top(5).empty());
  EXPECT_FALSE(r.rank_of(1).has_value());
}

}  // namespace
}  // namespace georank::rank
