#include "rank/cti.hpp"

#include <gtest/gtest.h>

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using sanitize::SanitizedPath;

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index,
                 std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

TEST(Cti, ReverseDistanceWeighting) {
  // Path 1 -> 10 -> 20 -> 30 (origin), all p2c: weights are 0 for the
  // origin, 1/1 for AS 20, 1/2 for AS 10, 1/3 for AS 1.
  topo::AsGraph g;
  g.add_p2c(1, 10);
  g.add_p2c(10, 20);
  g.add_p2c(20, 30);
  CtiRanking cti{g};
  std::vector<SanitizedPath> paths{mk(1, AsPath{1, 10, 20, 30}, 1)};
  Ranking r = cti.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(30), 0.0);  // origin scores nothing
  EXPECT_DOUBLE_EQ(r.score_of(20), 1.0);
  EXPECT_DOUBLE_EQ(r.score_of(10), 0.5);
  EXPECT_NEAR(r.score_of(1), 1.0 / 3.0, 1e-12);
}

TEST(Cti, TransitOnlyPortionCounted) {
  // The peer hop and everything VP-side of it is excluded.
  topo::AsGraph g;
  g.add_p2c(10, 1);  // 1 ascends to 10
  g.add_p2p(10, 20);
  g.add_p2c(20, 30);
  CtiRanking cti{g};
  std::vector<SanitizedPath> paths{mk(1, AsPath{1, 10, 20, 30}, 1)};
  Ranking r = cti.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(10), 0.0);  // VP-side of the peer link
  EXPECT_DOUBLE_EQ(r.score_of(1), 0.0);
  EXPECT_DOUBLE_EQ(r.score_of(20), 1.0);  // head of the p2c suffix
}

TEST(Cti, NormalizesByVpMass) {
  topo::AsGraph g;
  g.add_p2c(20, 30);
  g.add_p2c(20, 31);
  g.add_p2c(1, 20);
  CtiRanking cti{g};
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 20, 30}, 1, 300),
      mk(1, AsPath{1, 20, 31}, 2, 100),
  };
  Ranking r = cti.compute(paths);
  // AS 20 adjacent to both origins: (300*1 + 100*1) / 400 = 1.
  EXPECT_DOUBLE_EQ(r.score_of(20), 1.0);
  // AS 1 at distance 2: (300*0.5 + 100*0.5)/400 = 0.5.
  EXPECT_DOUBLE_EQ(r.score_of(1), 0.5);
}

TEST(Cti, AdjacentAsOutscoresOriginOfLargePrefix) {
  // The paper's AOLP point (§1.3): CTI favors the AS adjacent to an
  // origin announcing large prefixes over the origin itself.
  topo::AsGraph g;
  g.add_p2c(20, 30);
  CtiRanking cti{g};
  std::vector<SanitizedPath> paths{mk(1, AsPath{20, 30}, 1, 1 << 16)};
  Ranking r = cti.compute(paths);
  EXPECT_GT(r.score_of(20), r.score_of(30));
}

TEST(Cti, TrimAcrossVps) {
  topo::AsGraph g;
  g.add_p2c(20, 30);
  CtiRanking cti{g};
  // 10 VPs; AS 20 adjacent to origin at every one: survives the trim.
  std::vector<SanitizedPath> paths;
  for (std::uint32_t vp = 1; vp <= 10; ++vp) {
    paths.push_back(mk(vp, AsPath{20, 30}, 1));
  }
  Ranking r = cti.compute(paths);
  EXPECT_DOUBLE_EQ(r.score_of(20), 1.0);
}

TEST(Cti, EmptyInput) {
  topo::AsGraph g;
  CtiRanking cti{g};
  EXPECT_TRUE(cti.compute({}).empty());
}

}  // namespace
}  // namespace georank::rank
