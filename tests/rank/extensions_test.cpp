// Tests for the ranking extensions: per-origin (IHR "local graph")
// hegemony and the address-weighted AHC variant.
#include <gtest/gtest.h>

#include "rank/ahc.hpp"
#include "rank/hegemony.hpp"

namespace georank::rank {
namespace {

using bgp::AsPath;
using bgp::Prefix;
using geo::CountryCode;
using sanitize::SanitizedPath;

SanitizedPath mk(std::uint32_t vp_ip, AsPath path, std::uint32_t pfx_index,
                 std::uint64_t weight = 256) {
  SanitizedPath sp;
  sp.vp = bgp::VpId{vp_ip, path[0]};
  sp.prefix = Prefix{0x0A000000 + pfx_index * 256, 24};
  sp.weight = weight;
  sp.path = std::move(path);
  return sp;
}

TEST(PerOriginHegemony, RestrictsToOneOrigin) {
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 50, 201}, 1),
      mk(2, AsPath{2, 50, 201}, 1),
      mk(1, AsPath{1, 60, 202}, 2),  // different origin: ignored
  };
  HegemonyResult r = per_origin_hegemony(paths, 201);
  EXPECT_EQ(r.vp_count, 2u);
  EXPECT_DOUBLE_EQ(r.score_of(50), 1.0);
  EXPECT_DOUBLE_EQ(r.score_of(60), 0.0);  // only on paths to 202
}

TEST(PerOriginHegemony, UnknownOriginIsEmpty) {
  std::vector<SanitizedPath> paths{mk(1, AsPath{1, 50, 201}, 1)};
  HegemonyResult r = per_origin_hegemony(paths, 999);
  EXPECT_EQ(r.vp_count, 0u);
  EXPECT_TRUE(r.scores.empty());
}

TEST(PerOriginHegemony, MatchesAhcBuildingBlock) {
  // AHC with one origin equals that origin's per-origin hegemony.
  AsRegistry registry{{201, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 50, 201}, 1),
      mk(2, AsPath{2, 51, 201}, 1),
  };
  AhcRanking ahc{registry};
  Ranking country = ahc.compute(paths, CountryCode::of("AU"));
  HegemonyResult origin = per_origin_hegemony(paths, 201);
  for (const auto& [asn, score] : origin.scores) {
    EXPECT_DOUBLE_EQ(country.score_of(asn), score) << asn;
  }
}

TEST(AhcWeighted, EqualVsAddressWeighting) {
  // Origin 201 holds 4x the address space of origin 202. AS 50 transits
  // only 201, AS 60 only 202.
  AsRegistry registry{{201, CountryCode::of("AU")},
                      {202, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{
      mk(1, AsPath{1, 50, 201}, 1, 1024),
      mk(1, AsPath{1, 60, 202}, 2, 256),
  };
  AhcRanking equal{registry, {}, AhcWeighting::kEqualPerAs};
  AhcRanking weighted{registry, {}, AhcWeighting::kByAddresses};

  Ranking by_as = equal.compute(paths, CountryCode::of("AU"));
  Ranking by_addr = weighted.compute(paths, CountryCode::of("AU"));

  // Equal weighting: both transits get 0.5.
  EXPECT_DOUBLE_EQ(by_as.score_of(50), 0.5);
  EXPECT_DOUBLE_EQ(by_as.score_of(60), 0.5);
  // Address weighting: 50 gets 1024/1280, 60 gets 256/1280 (the VP's own
  // AS 1 is on every path and scores 1.0 under both weightings).
  EXPECT_DOUBLE_EQ(by_addr.score_of(50), 0.8);
  EXPECT_DOUBLE_EQ(by_addr.score_of(60), 0.2);
  EXPECT_LT(*by_addr.rank_of(50), *by_addr.rank_of(60));
}

TEST(AhcWeighted, DuplicatePrefixCountedOnce) {
  AsRegistry registry{{201, CountryCode::of("AU")},
                      {202, CountryCode::of("AU")}};
  std::vector<SanitizedPath> paths{
      // Same prefix of 201 seen from two VPs: address weight counts once.
      mk(1, AsPath{1, 50, 201}, 1, 256),
      mk(2, AsPath{2, 50, 201}, 1, 256),
      mk(1, AsPath{1, 60, 202}, 2, 256),
  };
  AhcRanking weighted{registry, {}, AhcWeighting::kByAddresses};
  Ranking r = weighted.compute(paths, CountryCode::of("AU"));
  EXPECT_DOUBLE_EQ(r.score_of(50), 0.5);
  EXPECT_DOUBLE_EQ(r.score_of(60), 0.5);
}

}  // namespace
}  // namespace georank::rank
