// Locks in the paper-level findings on the full evaluation world, so
// regressions in the generator, sanitizer or metrics that would silently
// corrupt the reproduction fail loudly here. Each assertion mirrors a
// claim in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <bit>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank {
namespace {

using namespace gen::asn;
using geo::CountryCode;

class DefaultWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new gen::WorldSpec(gen::default_world_spec());
    world_ = new gen::World(gen::InternetGenerator{*spec_}.generate());
    bgp::RibCollection ribs =
        gen::RibGenerator{*world_, spec_->noise, 7}.generate(5);
    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world_->clique;
    cfg.sanitizer.route_server_asns = world_->route_servers;
    pipeline_ = new core::Pipeline(world_->geo_db, world_->vps,
                                   world_->asn_registry, world_->graph, cfg);
    pipeline_->load(ribs);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete world_;
    delete spec_;
    pipeline_ = nullptr;
    world_ = nullptr;
    spec_ = nullptr;
  }

  static gen::WorldSpec* spec_;
  static gen::World* world_;
  static core::Pipeline* pipeline_;
};

gen::WorldSpec* DefaultWorldTest::spec_ = nullptr;
gen::World* DefaultWorldTest::world_ = nullptr;
core::Pipeline* DefaultWorldTest::pipeline_ = nullptr;

TEST_F(DefaultWorldTest, FilteringSharesMatchTable1Shape) {
  const auto& s = pipeline_->sanitized().stats;
  auto share = [&](std::size_t n) {
    return static_cast<double>(n) / static_cast<double>(s.total);
  };
  EXPECT_GT(share(s.accepted), 0.60);
  EXPECT_LT(share(s.accepted), 0.90);
  EXPECT_GT(share(s.vp_no_location), 0.05);   // the dominant reject reason
  EXPECT_GT(share(s.unstable), 0.03);
  EXPECT_LT(share(s.loop), 0.01);
  EXPECT_LT(share(s.unallocated), 0.01);
  EXPECT_LT(share(s.prefix_no_location), 0.02);
}

TEST_F(DefaultWorldTest, AustraliaTable5Shape) {
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  // Telstra's split: domestic AS in the AHI top-3, international AS high
  // internationally but ~nothing nationally.
  EXPECT_LE(*au.ahi.rank_of(kTelstra), 3u);
  EXPECT_LE(*au.ahi.rank_of(kTelstraIntl), 3u);
  EXPECT_GT(au.ccn.rank_of(kTelstraIntl).value_or(999), 20u);
  EXPECT_LT(au.ahn.score_of(kTelstraIntl), 0.02);
  // Vocus: cone rank 1 nationally, hegemony far below.
  EXPECT_EQ(*au.ccn.rank_of(kVocus), 1u);
  EXPECT_GT(au.ccn.score_of(kVocus), 2.0 * au.ahi.score_of(kVocus));
  // Arelion ranks high on CCI by inheriting Vocus's cone (paper: #1; the
  // exact winner among Vocus's three tier-1 upstreams varies with the
  // world seed).
  EXPECT_LE(*au.cci.rank_of(kArelion), 4u);
}

TEST_F(DefaultWorldTest, JapanTable6Shape) {
  core::CountryMetrics jp = pipeline_->country(CountryCode::of("JP"));
  EXPECT_EQ(*jp.cci.rank_of(kNttAmerica), 1u);
  EXPECT_EQ(*jp.ahi.rank_of(kNttAmerica), 1u);
  EXPECT_GT(jp.ccn.rank_of(kNttAmerica).value_or(999), 5u);  // ~invisible nationally
  EXPECT_LE(*jp.ahn.rank_of(kKddi), 3u);
  EXPECT_LE(*jp.cci.rank_of(kGtt), 3u);           // transit cone into JP
  EXPECT_LT(jp.ahn.score_of(kGtt), 0.02);         // ...with no national paths
}

TEST_F(DefaultWorldTest, RussiaTable7Shape) {
  core::CountryMetrics ru = pipeline_->country(CountryCode::of("RU"));
  EXPECT_EQ(*ru.ahi.rank_of(kRostelecom), 1u);
  EXPECT_EQ(*ru.ahn.rank_of(kRostelecom), 1u);
  // Lumen: the cone/paths paradox.
  EXPECT_EQ(*ru.cci.rank_of(kLumen), 1u);
  EXPECT_GT(ru.cci.score_of(kLumen), 0.7);
  EXPECT_LT(ru.ccn.score_of(kLumen), 0.05);
  EXPECT_LT(ru.ahi.score_of(kLumen), 0.5 * ru.cci.score_of(kLumen));
}

TEST_F(DefaultWorldTest, UnitedStatesTable8Shape) {
  core::CountryMetrics us = pipeline_->country(CountryCode::of("US"));
  EXPECT_EQ(*us.cci.rank_of(kLumen), 1u);
  EXPECT_EQ(*us.ccn.rank_of(kLumen), 1u);
  EXPECT_EQ(*us.ahn.rank_of(kLumen), 1u);
  // Hurricane: hegemony outruns its cone rank (liberal peering).
  EXPECT_LE(*us.ahi.rank_of(kHurricane), 4u);
}

TEST_F(DefaultWorldTest, AmazonEffectTable9) {
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  rank::Ranking ahc = pipeline_->ahc(world_->as_registry, CountryCode::of("AU"));
  EXPECT_GT(au.ahn.score_of(kAmazon), 0.0);      // prefix geolocation sees it
  EXPECT_DOUBLE_EQ(ahc.score_of(kAmazon), 0.0);  // registration-keyed AHC doesn't
}

TEST_F(DefaultWorldTest, SovietBlocFigure7) {
  const auto& paths = pipeline_->sanitized().paths;
  const auto& rankings = pipeline_->rankings();
  geo::CountryCode ru = CountryCode::of("RU");
  auto max_ru_ahi = [&](const char* cc) {
    core::CountryView view =
        core::ViewBuilder::international(paths, CountryCode::of(cc));
    rank::Ranking ahi = rankings.hegemony_ranking(view);
    double best = 0.0;
    for (const auto& e : ahi.entries()) {
      auto reg = world_->as_registry.find(e.asn);
      if (reg != world_->as_registry.end() && reg->second == ru) {
        best = std::max(best, e.score);
      }
    }
    return best;
  };
  for (const char* cc : {"KZ", "KG", "TJ", "TM"}) {
    EXPECT_GT(max_ru_ahi(cc), 0.2) << cc;
  }
  EXPECT_LT(max_ru_ahi("UA"), 0.05);
  EXPECT_LT(max_ru_ahi("DE"), 0.05);
}

TEST_F(DefaultWorldTest, OutboundViewsHaveEgressGateways) {
  core::OutboundMetrics au = pipeline_->outbound(CountryCode::of("AU"));
  ASSERT_FALSE(au.aho.empty());
  EXPECT_GT(au.vps, 0u);
  // Telstra's international gateway carries a big share of egress.
  EXPECT_GT(au.aho.score_of(kTelstraIntl) + au.aho.score_of(kVocus) +
                au.aho.score_of(kTelstra),
            0.3);
}

TEST_F(DefaultWorldTest, GlobalConeRankingTopIsTier1) {
  rank::Ranking ccg = pipeline_->global_cone_by_as_count();
  bgp::Asn top = ccg.entries()[0].asn;
  EXPECT_TRUE(std::binary_search(world_->clique.begin(), world_->clique.end(),
                                 top));
}

void expect_bitwise_equal(const rank::Ranking& a, const rank::Ranking& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.entries()[i].asn, b.entries()[i].asn) << "position " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.entries()[i].score),
              std::bit_cast<std::uint64_t>(b.entries()[i].score))
        << "AS " << a.entries()[i].asn;
  }
}

// The zero-copy PathStore path (Pipeline::country/outbound) must be
// bit-for-bit identical to the seed's copy-based span computation for
// EVERY country on the full evaluation world — same iteration order,
// same floating-point accumulation, same ranking bytes.
TEST_F(DefaultWorldTest, IndexedPipelineMatchesCopyBasedComputationBitForBit) {
  const auto& paths = pipeline_->sanitized().paths;
  const core::CountryRankings& rankings = pipeline_->rankings();
  for (geo::CountryCode cc : pipeline_->store().countries()) {
    core::CountryMetrics indexed = pipeline_->country(cc);
    core::CountryMetrics copied = rankings.compute(paths, cc);
    ASSERT_EQ(indexed.country, copied.country);
    ASSERT_EQ(indexed.national_vps, copied.national_vps) << cc.to_string();
    ASSERT_EQ(indexed.international_vps, copied.international_vps);
    ASSERT_EQ(indexed.national_addresses, copied.national_addresses);
    ASSERT_EQ(indexed.international_addresses, copied.international_addresses);
    expect_bitwise_equal(indexed.cci, copied.cci);
    expect_bitwise_equal(indexed.ccn, copied.ccn);
    expect_bitwise_equal(indexed.ahi, copied.ahi);
    expect_bitwise_equal(indexed.ahn, copied.ahn);

    core::OutboundMetrics out_indexed = pipeline_->outbound(cc);
    core::OutboundMetrics out_copied = rankings.compute_outbound(paths, cc);
    ASSERT_EQ(out_indexed.vps, out_copied.vps);
    ASSERT_EQ(out_indexed.foreign_addresses, out_copied.foreign_addresses);
    expect_bitwise_equal(out_indexed.cco, out_copied.cco);
    expect_bitwise_equal(out_indexed.aho, out_copied.aho);
  }
}

}  // namespace
}  // namespace georank
