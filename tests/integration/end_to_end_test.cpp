// End-to-end: generate a world, synthesize noisy multi-day RIBs, round-trip
// them through the bgpdump-style text format, run the full pipeline, and
// check that the country metrics recover the structure the scenario
// encodes — the same shape of validation the paper performs in §5.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/stability.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

namespace georank {
namespace {

using namespace gen::asn;
using geo::CountryCode;

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new gen::World(
        gen::InternetGenerator{gen::mini_world_spec(77)}.generate());
    gen::NoiseSpec noise;  // default realistic noise
    ribs_ = new bgp::RibCollection(
        gen::RibGenerator{*world_, noise, 3}.generate(5));

    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world_->clique;
    cfg.sanitizer.route_server_asns = world_->route_servers;
    pipeline_ = new core::Pipeline(world_->geo_db, world_->vps,
                                   world_->asn_registry, world_->graph, cfg);
    pipeline_->load_text(bgp::to_mrt_text(*ribs_));
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete ribs_;
    delete world_;
    pipeline_ = nullptr;
    ribs_ = nullptr;
    world_ = nullptr;
  }

  static gen::World* world_;
  static bgp::RibCollection* ribs_;
  static core::Pipeline* pipeline_;
};

gen::World* EndToEndTest::world_ = nullptr;
bgp::RibCollection* EndToEndTest::ribs_ = nullptr;
core::Pipeline* EndToEndTest::pipeline_ = nullptr;

TEST_F(EndToEndTest, ParseCleanly) {
  EXPECT_EQ(pipeline_->parse_stats().malformed, 0u);
  EXPECT_EQ(pipeline_->parse_stats().parsed, ribs_->total_entries());
}

TEST_F(EndToEndTest, SanitizerAccountingConsistent) {
  const auto& stats = pipeline_->sanitized().stats;
  EXPECT_EQ(stats.total, ribs_->total_entries());
  EXPECT_EQ(stats.total, stats.accepted + stats.rejected());
  // Default noise produces every rejection category.
  EXPECT_GT(stats.unstable, 0u);
  EXPECT_GT(stats.vp_no_location, 0u);
  EXPECT_GT(stats.accepted, stats.rejected());  // most paths survive
}

TEST_F(EndToEndTest, SanitizedPathsAreClean) {
  for (const auto& sp : pipeline_->sanitized().paths) {
    EXPECT_FALSE(sp.path.has_nonadjacent_duplicate());
    EXPECT_TRUE(sp.vp_country.valid());
    EXPECT_TRUE(sp.prefix_country.valid());
    EXPECT_GT(sp.weight, 0u);
    for (bgp::Asn rs : world_->route_servers) {
      EXPECT_FALSE(sp.path.contains(rs));
    }
    for (bgp::Asn hop : sp.path.hops()) {
      EXPECT_TRUE(world_->asn_registry.allocated(hop));
    }
  }
}

TEST_F(EndToEndTest, AustraliaMetricsRecoverMarketStructure) {
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));

  // Telstra's domestic AS dominates the national hegemony view.
  auto telstra_ahn = au.ahn.rank_of(kTelstra);
  ASSERT_TRUE(telstra_ahn.has_value());
  EXPECT_LE(*telstra_ahn, 3u);

  // Vocus (the transit challenger) holds a large international cone.
  EXPECT_GT(au.cci.score_of(kVocus), 0.25);

  // Arelion inherits Vocus's cone transitively.
  EXPECT_GE(au.cci.score_of(kArelion), au.cci.score_of(kVocus));

  // Telstra's international AS matters internationally, not domestically.
  EXPECT_GT(au.ahi.score_of(kTelstraIntl), au.ahn.score_of(kTelstraIntl));
}

TEST_F(EndToEndTest, AmazonVisibleToPrefixMetricsInvisibleToAhc) {
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  rank::Ranking ahc = pipeline_->ahc(world_->as_registry, CountryCode::of("AU"));

  // Amazon originates AU-geolocated prefixes: the prefix-based metrics
  // see it...
  EXPECT_GT(au.ahi.score_of(kAmazon), 0.0);
  // ...but IHR's AHC keys on AS registration (US), so it does not
  // (§5.1.2, the Amazon-in-Australia effect).
  EXPECT_DOUBLE_EQ(ahc.score_of(kAmazon), 0.0);
}

TEST_F(EndToEndTest, NationalAndInternationalViewsDiffer) {
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  ASSERT_FALSE(au.ahn.empty());
  ASSERT_FALSE(au.ahi.empty());
  // Tier-1s appear in the international top-10 far more than nationally.
  std::size_t tier1_in_ahi = 0, tier1_in_ahn = 0;
  for (const auto& e : au.ahi.top(10)) {
    if (std::find(world_->clique.begin(), world_->clique.end(), e.asn) !=
        world_->clique.end()) {
      ++tier1_in_ahi;
    }
  }
  for (const auto& e : au.ahn.top(10)) {
    if (std::find(world_->clique.begin(), world_->clique.end(), e.asn) !=
        world_->clique.end()) {
      ++tier1_in_ahn;
    }
  }
  EXPECT_GE(tier1_in_ahi, tier1_in_ahn);
}

TEST_F(EndToEndTest, CtiFallsBetweenConeAndHegemonyInSpirit) {
  rank::Ranking cti = pipeline_->cti(CountryCode::of("AU"));
  ASSERT_FALSE(cti.empty());
  // CTI is transit-only: the liberal peer Hurricane must score lower on
  // CTI than on AHI.
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  EXPECT_LE(cti.score_of(kHurricane), au.ahi.score_of(kHurricane) + 1e-12);
}

TEST_F(EndToEndTest, InternationalViewIsStableWithAllVps) {
  core::CountryView intl = core::ViewBuilder::international(
      pipeline_->sanitized().paths, CountryCode::of("AU"));
  core::StabilityAnalyzer analyzer{pipeline_->rankings()};
  core::StabilityOptions options;
  std::size_t n = intl.vp_count();
  ASSERT_GT(n, 4u);
  options.sample_sizes = {n / 2, n};
  options.trials_per_size = 4;
  auto curve = analyzer.analyze(intl, core::MetricKind::kHegemony, options);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.back().mean_ndcg, 1.0);
  EXPECT_GT(curve.front().mean_ndcg, 0.6);  // half the VPs: already close
}

TEST_F(EndToEndTest, GlobalRankingsDifferFromCountryRankings) {
  rank::Ranking ccg = pipeline_->global_cone_by_as_count();
  core::CountryMetrics au = pipeline_->country(CountryCode::of("AU"));
  // Somewhere in AU's CCI top-5 there is an AS whose global rank differs
  // from its country rank (the Table 9 argument).
  bool differs = false;
  std::size_t position = 0;
  for (const auto& e : au.cci.top(5)) {
    ++position;
    auto global = ccg.rank_of(e.asn);
    if (!global || *global != position) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace georank
