#include "infer/clique.hpp"

#include <gtest/gtest.h>

namespace georank::infer {
namespace {

/// Feed paths that make ASes 1..4 a high-transit-degree clique with
/// stubs hanging off each.
void feed_clique_world(TransitDegree& td, ObservedAdjacency& adj) {
  std::vector<Asn> clique{1, 2, 3, 4};
  int stub = 100;
  for (Asn a : clique) {
    for (Asn b : clique) {
      if (a == b) continue;
      // stub -> a -> b -> stub paths exercise every clique link and give
      // the clique members large transit degree.
      AsPath p{static_cast<Asn>(stub++), a, b, static_cast<Asn>(stub++)};
      td.add_path(p);
      adj.add_path(p);
    }
  }
}

TEST(CliqueInference, RecoversFullMesh) {
  TransitDegree td;
  ObservedAdjacency adj;
  feed_clique_world(td, adj);
  auto clique = infer_clique(td, adj);
  EXPECT_EQ(clique, (std::vector<Asn>{1, 2, 3, 4}));
}

TEST(CliqueInference, ExcludesNonInterconnectedBigAs) {
  TransitDegree td;
  ObservedAdjacency adj;
  feed_clique_world(td, adj);
  // AS 50 has huge transit degree but never connects to 1..4.
  for (int i = 0; i < 30; ++i) {
    AsPath p{static_cast<Asn>(200 + i), 50, static_cast<Asn>(300 + i)};
    td.add_path(p);
    adj.add_path(p);
  }
  auto clique = infer_clique(td, adj);
  EXPECT_EQ(clique, (std::vector<Asn>{1, 2, 3, 4}));
}

TEST(CliqueInference, EmptyInput) {
  TransitDegree td;
  ObservedAdjacency adj;
  EXPECT_TRUE(infer_clique(td, adj).empty());
}

TEST(CliqueInference, SinglePathYieldsAPair) {
  TransitDegree td;
  ObservedAdjacency adj;
  AsPath p{1, 2, 3};
  td.add_path(p);
  adj.add_path(p);
  // The largest observed clique is an adjacent pair containing the only
  // transit AS (2).
  auto clique = infer_clique(td, adj);
  EXPECT_EQ(clique.size(), 2u);
  EXPECT_TRUE(std::find(clique.begin(), clique.end(), 2u) != clique.end());
}

TEST(CliqueInference, GreedyExtensionBeyondSearchWindow) {
  TransitDegree td;
  ObservedAdjacency adj;
  feed_clique_world(td, adj);
  CliqueOptions opts;
  opts.candidate_count = 2;  // only ASes 1,2 in the exact search
  opts.extension_window = 10;
  auto clique = infer_clique(td, adj, opts);
  // 3 and 4 connect to everything and must join greedily.
  EXPECT_EQ(clique, (std::vector<Asn>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace georank::infer
