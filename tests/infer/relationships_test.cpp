#include "infer/relationships.hpp"

#include <gtest/gtest.h>

#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "topo/route_propagation.hpp"

namespace georank::infer {
namespace {

TEST(RelationshipInference, SimpleHierarchy) {
  // Two providers (1, 2) peering at the top, each with a customer chain.
  RelationshipInference inf;
  // Paths as a VP inside 11 and 21 would see them.
  inf.add_path(AsPath{11, 1, 2, 21});   // up, peer, down
  inf.add_path(AsPath{21, 2, 1, 11});   // reverse direction
  inf.add_path(AsPath{12, 11, 1, 2, 21});
  inf.add_path(AsPath{22, 21, 2, 1, 11});
  InferenceResult result = inf.infer();

  EXPECT_EQ(result.graph.relationship(1, 11), topo::Rel::kCustomer);
  EXPECT_EQ(result.graph.relationship(11, 12), topo::Rel::kCustomer);
  EXPECT_EQ(result.graph.relationship(2, 21), topo::Rel::kCustomer);
  EXPECT_EQ(result.graph.relationship(1, 2), topo::Rel::kPeer);
}

TEST(RelationshipInference, IgnoresLoopedAndCollapsesPrepending) {
  RelationshipInference inf;
  inf.add_path(AsPath{1, 2, 1});        // loop: dropped
  inf.add_path(AsPath{3, 3, 4, 4, 5});  // prepending: collapsed
  InferenceResult result = inf.infer();
  EXPECT_FALSE(result.graph.contains(1));
  EXPECT_TRUE(result.graph.relationship(3, 4).has_value());
  EXPECT_TRUE(result.graph.relationship(4, 5).has_value());
}

TEST(RelationshipInference, LinkCountMatchesDistinctLinks) {
  RelationshipInference inf;
  inf.add_path(AsPath{1, 2, 3});
  inf.add_path(AsPath{1, 2, 3});
  inf.add_path(AsPath{4, 2, 3});
  InferenceResult result = inf.infer();
  EXPECT_EQ(result.link_count, 3u);  // 1-2, 2-3, 4-2
}

TEST(Validation, ScoresOrientations) {
  topo::AsGraph truth;
  truth.add_p2c(1, 2);
  truth.add_p2p(3, 4);
  truth.add_p2c(5, 6);

  topo::AsGraph inferred;
  inferred.add_p2c(1, 2);  // correct
  inferred.add_p2p(3, 4);  // correct
  inferred.add_p2c(6, 5);  // wrong orientation
  inferred.add_p2c(7, 8);  // not in truth: not scored

  ValidationScore score = validate_against(truth, inferred);
  EXPECT_EQ(score.shared_links, 3u);
  EXPECT_EQ(score.correct, 2u);
  EXPECT_EQ(score.total_p2p, 1u);
  EXPECT_EQ(score.correct_p2p, 1u);
  EXPECT_EQ(score.total_p2c, 2u);
  EXPECT_EQ(score.correct_p2c, 1u);
  EXPECT_NEAR(score.accuracy(), 2.0 / 3.0, 1e-9);
}

TEST(Validation, EmptyGraphs) {
  topo::AsGraph a, b;
  ValidationScore score = validate_against(a, b);
  EXPECT_EQ(score.shared_links, 0u);
  EXPECT_DOUBLE_EQ(score.accuracy(), 0.0);
}

// Integration-grade property: on the full evaluation world, inference
// from the propagated paths recovers the clique exactly and nearly all
// relationships (~97% in practice; see bench_ablation_inference).
TEST(RelationshipInference, AccurateOnGeneratedWorld) {
  gen::World world =
      gen::InternetGenerator{gen::default_world_spec()}.generate();
  gen::NoiseSpec no_noise;
  no_noise.prefix_flap_rate = 0;
  no_noise.loop_rate = 0;
  no_noise.poison_rate = 0;
  no_noise.unallocated_rate = 0;
  no_noise.prepend_rate = 0;
  no_noise.route_server_rate = 0;
  bgp::RibCollection ribs = gen::RibGenerator{world, no_noise, 5}.generate(1);

  RelationshipInference inf;
  for (const auto& entry : ribs.days[0].entries) inf.add_path(entry.path);
  InferenceResult result = inf.infer();

  EXPECT_EQ(result.clique, world.clique);  // tier-1 set recovered exactly

  ValidationScore score = validate_against(world.graph, result.graph);
  EXPECT_GT(score.shared_links, 1000u);
  EXPECT_GT(score.accuracy(), 0.9) << "p2c: " << score.correct_p2c << "/"
                                   << score.total_p2c
                                   << " p2p: " << score.correct_p2p << "/"
                                   << score.total_p2p;
  EXPECT_GT(static_cast<double>(score.correct_p2c),
            0.9 * static_cast<double>(score.total_p2c));
  EXPECT_GT(static_cast<double>(score.correct_p2p),
            0.9 * static_cast<double>(score.total_p2p));
}

}  // namespace
}  // namespace georank::infer
