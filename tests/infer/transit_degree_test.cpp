#include "infer/transit_degree.hpp"

#include <gtest/gtest.h>

namespace georank::infer {
namespace {

TEST(TransitDegree, MiddleHopsGainDegree) {
  TransitDegree td;
  td.add_path(AsPath{1, 2, 3});
  EXPECT_EQ(td.degree(2), 2u);   // neighbors 1 and 3
  EXPECT_EQ(td.degree(1), 0u);   // endpoint
  EXPECT_EQ(td.degree(3), 0u);   // endpoint
}

TEST(TransitDegree, DistinctNeighborsOnly) {
  TransitDegree td;
  td.add_path(AsPath{1, 2, 3});
  td.add_path(AsPath{1, 2, 3});  // repeat adds nothing
  td.add_path(AsPath{4, 2, 3});  // new neighbor 4
  EXPECT_EQ(td.degree(2), 3u);
}

TEST(TransitDegree, EndpointsStillRegistered) {
  TransitDegree td;
  td.add_path(AsPath{1, 2});
  EXPECT_EQ(td.degree(1), 0u);
  EXPECT_EQ(td.as_count(), 2u);
}

TEST(TransitDegree, RankedOrdersByDegreeThenAsn) {
  TransitDegree td;
  td.add_path(AsPath{1, 10, 2});
  td.add_path(AsPath{3, 10, 4});
  td.add_path(AsPath{1, 20, 2});
  auto ranked = td.ranked();
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 10u);  // degree 4
  EXPECT_EQ(ranked[1], 20u);  // degree 2
}

TEST(TransitDegree, RankedTieBreaksByAscendingAsn) {
  TransitDegree td;
  td.add_path(AsPath{1, 30, 2});
  td.add_path(AsPath{1, 20, 2});
  auto ranked = td.ranked();
  // Both have degree 2 -> lower ASN first.
  EXPECT_EQ(ranked[0], 20u);
  EXPECT_EQ(ranked[1], 30u);
}

TEST(ObservedAdjacency, TracksLinks) {
  ObservedAdjacency adj;
  adj.add_path(AsPath{1, 2, 3});
  EXPECT_TRUE(adj.adjacent(1, 2));
  EXPECT_TRUE(adj.adjacent(2, 1));
  EXPECT_TRUE(adj.adjacent(2, 3));
  EXPECT_FALSE(adj.adjacent(1, 3));
  EXPECT_FALSE(adj.adjacent(1, 99));
}

TEST(ObservedAdjacency, IgnoresSelfLinksFromPrepending) {
  ObservedAdjacency adj;
  adj.add_path(AsPath{1, 1, 2});
  EXPECT_FALSE(adj.adjacent(1, 1));
  EXPECT_TRUE(adj.adjacent(1, 2));
}

}  // namespace
}  // namespace georank::infer
