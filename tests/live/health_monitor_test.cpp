// live::HealthMonitor — the staleness state machine and reopen backoff
// clock. Time enters only as caller-supplied seconds (GR002), so every
// behaviour here, jitter included, is exactly reproducible.
#include "live/health_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace georank::live {
namespace {

using robust::ServingState;

HealthMonitorOptions fast_options() {
  HealthMonitorOptions options;
  options.staleness.stale_after_seconds = 10.0;
  options.staleness.degraded_after_seconds = 30.0;
  return options;
}

TEST(HealthMonitor, AgesFreshThroughStaleToDegraded) {
  HealthMonitor monitor{fast_options()};
  monitor.note_progress(100.0);
  EXPECT_EQ(monitor.tick(105.0), ServingState::kFresh);
  EXPECT_EQ(monitor.tick(110.0), ServingState::kStale);  // boundary is >=
  EXPECT_EQ(monitor.tick(129.0), ServingState::kStale);
  EXPECT_EQ(monitor.tick(130.0), ServingState::kDegraded);
  EXPECT_EQ(monitor.tick(10000.0), ServingState::kDegraded);
  EXPECT_DOUBLE_EQ(monitor.age(130.0), 30.0);

  const HealthCounters& counters = monitor.counters();
  EXPECT_EQ(counters.entered[static_cast<std::size_t>(ServingState::kStale)],
            1u);
  EXPECT_EQ(counters.entered[static_cast<std::size_t>(ServingState::kDegraded)],
            1u);
}

TEST(HealthMonitor, ProgressRestoresFreshness) {
  HealthMonitor monitor{fast_options()};
  monitor.note_progress(0.0);
  EXPECT_EQ(monitor.tick(50.0), ServingState::kDegraded);
  monitor.note_progress(60.0);
  EXPECT_EQ(monitor.state(), ServingState::kFresh);
  EXPECT_EQ(monitor.tick(65.0), ServingState::kFresh);
  // The first decay jumped straight to degraded (the age was already
  // past both thresholds), so this is the machine's FIRST entry into
  // stale.
  EXPECT_EQ(monitor.tick(75.0), ServingState::kStale);
  EXPECT_EQ(monitor.counters()
                .entered[static_cast<std::size_t>(ServingState::kStale)],
            1u);
}

TEST(HealthMonitor, RecoveryPinsTheStateUntilEnded) {
  HealthMonitor monitor{fast_options()};
  monitor.note_progress(0.0);
  monitor.begin_recovery(5.0);
  EXPECT_EQ(monitor.state(), ServingState::kRecovering);
  // Neither aging nor progress can pull the machine out of recovery —
  // only the recovery path itself knows when it is done.
  EXPECT_EQ(monitor.tick(1000.0), ServingState::kRecovering);
  monitor.note_progress(1000.0);
  EXPECT_EQ(monitor.state(), ServingState::kRecovering);

  monitor.end_recovery(2000.0);
  EXPECT_EQ(monitor.state(), ServingState::kFresh);
  // Freshness restarted at end_recovery time, not at the old watermark.
  EXPECT_EQ(monitor.tick(2005.0), ServingState::kFresh);
  EXPECT_EQ(monitor.tick(2010.0), ServingState::kStale);
}

TEST(HealthMonitor, BackoffLadderIsExponentialJitteredAndCapped) {
  HealthMonitorOptions options = fast_options();
  options.backoff_initial_seconds = 1.0;
  options.backoff_max_seconds = 60.0;
  HealthMonitor monitor{options};

  std::vector<double> delays;
  for (int i = 0; i < 10; ++i) {
    delays.push_back(monitor.note_reopen_failure(100.0 + i));
  }
  EXPECT_EQ(monitor.state(), ServingState::kRecovering);
  EXPECT_EQ(monitor.counters().reopen_failures, 10u);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double base =
        std::min(options.backoff_max_seconds, std::ldexp(1.0, static_cast<int>(i)));
    EXPECT_GE(delays[i], 0.5 * base) << "attempt " << i;
    EXPECT_LT(delays[i], 1.5 * base) << "attempt " << i;
  }
  EXPECT_DOUBLE_EQ(monitor.last_backoff_seconds(), delays.back());

  // Success resets both the ladder and the state.
  monitor.note_reopen_success(200.0);
  EXPECT_EQ(monitor.state(), ServingState::kFresh);
  EXPECT_EQ(monitor.counters().reopen_successes, 1u);
  const double restart = monitor.note_reopen_failure(300.0);
  EXPECT_GE(restart, 0.5 * options.backoff_initial_seconds);
  EXPECT_LT(restart, 1.5 * options.backoff_initial_seconds);
}

TEST(HealthMonitor, BackoffIsDeterministicPerSeed) {
  HealthMonitorOptions options = fast_options();
  options.backoff_seed = 1234;
  HealthMonitor a{options};
  HealthMonitor b{options};
  bool jitter_seen = false;
  for (int i = 0; i < 8; ++i) {
    const double da = a.note_reopen_failure(10.0 * i);
    const double db = b.note_reopen_failure(10.0 * i);
    EXPECT_DOUBLE_EQ(da, db) << "attempt " << i;
    jitter_seen = jitter_seen || da != std::min(60.0, std::ldexp(1.0, i));
  }
  EXPECT_TRUE(jitter_seen) << "jitter never moved a delay off its base";

  options.backoff_seed = 99;
  HealthMonitor c{options};
  options.backoff_seed = 1234;
  HealthMonitor a2{options};
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    diverged = diverged ||
               c.note_reopen_failure(10.0 * i) != a2.note_reopen_failure(10.0 * i);
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical ladders";
}

TEST(HealthMonitor, AgeIsZeroBeforeAnyProgress) {
  HealthMonitor monitor{fast_options()};
  EXPECT_DOUBLE_EQ(monitor.age(12345.0), 0.0);
  EXPECT_EQ(monitor.tick(12345.0), ServingState::kFresh);
}

}  // namespace
}  // namespace georank::live
