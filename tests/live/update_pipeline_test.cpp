#include "live/update_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/update_stream.hpp"
#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "io/snapshot_codec.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

namespace georank::live {
namespace {

using bgp::UpdateMessage;
using geo::CountryCode;

constexpr std::uint64_t kBase = 1617235200;

struct LiveFixture {
  gen::World world;
  bgp::RibCollection ribs;
  std::vector<UpdateMessage> archive;

  explicit LiveFixture(std::uint64_t seed = 17, int days = 3)
      : world(gen::InternetGenerator{gen::mini_world_spec(seed)}.generate()) {
    gen::NoiseSpec noise;
    ribs = gen::RibGenerator{world, noise, 5}.generate(days);
    archive = bgp::collection_to_updates(ribs);
  }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return cfg;
  }

  core::Pipeline make_pipeline() const {
    return core::Pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config()};
  }
};

/// The correctness bar from DESIGN.md §4f: after any replayed archive the
/// incremental snapshot must be BYTE-identical (through the GRSNAP01
/// codec) to a from-scratch batch recompute of the same final RIB state.
void expect_bit_identical_to_batch(const LiveFixture& f,
                                   const std::vector<UpdateMessage>& archive,
                                   std::size_t flush_batch) {
  // Batch side: replay the archive into a collection, one fresh load.
  core::Pipeline batch = f.make_pipeline();
  batch.load(bgp::replay_to_collection(archive, bgp::ReplayOptions{}));
  serve::SnapshotMeta meta;
  meta.id = 42;
  meta.created_unix = 1234567890;
  meta.label = "bit-identity";
  const std::string want =
      io::encode_snapshot(serve::Snapshot::build(batch, meta));

  // Live side: stream the same archive through incremental flushes.
  core::Pipeline incremental = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = flush_batch;
  UpdatePipeline live{incremental, service, options};
  for (const UpdateMessage& u : archive) (void)live.push(u);
  FlushReport last = live.drain();
  EXPECT_GT(live.stats().publishes, 0u);
  EXPECT_TRUE(last.published || last.batch == 0);

  const std::string got =
      io::encode_snapshot(serve::Snapshot::build(incremental, meta));
  // EXPECT_EQ on mismatch would dump megabytes of binary; compare first.
  EXPECT_TRUE(got == want) << "live snapshot diverged from batch recompute"
                           << " (flush_batch " << flush_batch << ")";
}

TEST(UpdatePipeline, BitIdenticalToBatchAcrossFlushCadences) {
  LiveFixture f;
  ASSERT_GT(f.archive.size(), 1000u);
  // Odd cadences land flush boundaries mid-day and mid-burst; the huge
  // one exercises the single-flush (pure drain) path.
  for (std::size_t flush_batch : {257u, 4096u, 1u << 20}) {
    expect_bit_identical_to_batch(f, f.archive, flush_batch);
  }
}

TEST(UpdatePipeline, BitIdenticalWithQuietDaySpliced) {
  LiveFixture f{23, 2};
  // Splice a no-change day between the two generated days (the same
  // construction the bgp-level round-trip test uses).
  bgp::RibCollection with_quiet;
  with_quiet.days.push_back(f.ribs.days[0]);
  bgp::RibSnapshot quiet = f.ribs.days[0];
  quiet.day = 1;
  with_quiet.days.push_back(quiet);
  bgp::RibSnapshot last = f.ribs.days[1];
  last.day = 2;
  with_quiet.days.push_back(last);

  std::vector<UpdateMessage> archive = bgp::collection_to_updates(with_quiet);
  expect_bit_identical_to_batch(f, archive, 513);
}

TEST(UpdatePipeline, ReorderWindowRecoversLateUpdates) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;
  options.reorder_window = 3600;
  UpdatePipeline live{pipeline, service, options};

  // Swap adjacent same-day pairs: without the window these rewinds are
  // out-of-order drops; within it they re-sort losslessly.
  std::vector<UpdateMessage> shuffled = f.archive;
  std::size_t swapped = 0;
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    if (shuffled[i].timestamp != shuffled[i + 1].timestamp) {
      std::swap(shuffled[i], shuffled[i + 1]);
      ++swapped;
    }
  }
  ASSERT_GT(swapped, 0u);
  for (const UpdateMessage& u : shuffled) (void)live.push(u);
  (void)live.drain();
  EXPECT_EQ(live.stats().out_of_order, 0u);
  EXPECT_EQ(live.stats().applied, shuffled.size());

  // The re-sorted stream reproduces the in-order replay's final state.
  bgp::RibCollection want = bgp::replay_to_collection(f.archive);
  bgp::RibSnapshot got = live.rib().snapshot(want.days.back().day);
  EXPECT_EQ(got.entries, want.days.back().entries);
}

TEST(UpdatePipeline, WithoutWindowLateUpdatesAreCountedDrops) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, UpdatePipelineOptions{}};

  (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 100,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                   bgp::AsPath{701, 1299}});
  (void)live.push({UpdateMessage::Kind::kWithdraw, kBase + 50,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                   bgp::AsPath{}});
  EXPECT_EQ(live.stats().out_of_order, 1u);
  EXPECT_EQ(live.stats().applied, 1u);
  EXPECT_EQ(live.rib().route_count(), 1u);  // the withdraw never landed
}

TEST(UpdatePipeline, StrictModeThrowsTypedErrorOnLateUpdate) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.mode = bgp::ParseMode::kStrict;
  UpdatePipeline live{pipeline, service, options};

  (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 100,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                   bgp::AsPath{701, 1299}});
  try {
    (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 10,
                     bgp::VpId{1, 701}, *bgp::Prefix::parse("10.1.0.0/16"),
                     bgp::AsPath{701, 174}});
    FAIL() << "strict live pipeline accepted a late update";
  } catch (const bgp::UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), bgp::UpdateReplayError::Kind::kOutOfOrder);
    EXPECT_EQ(e.timestamp(), kBase + 10);
  }
  // Pre-base_time in strict mode is the other typed kind.
  try {
    (void)live.push({UpdateMessage::Kind::kAnnounce, kBase - 1,
                     bgp::VpId{1, 701}, *bgp::Prefix::parse("10.2.0.0/16"),
                     bgp::AsPath{701, 174}});
    FAIL() << "strict live pipeline accepted a pre-base_time update";
  } catch (const bgp::UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), bgp::UpdateReplayError::Kind::kDayOutOfRange);
  }
}

TEST(UpdatePipeline, QuietDaysAreClosedAndCounted) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, UpdatePipelineOptions{}};
  (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 10,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                   bgp::AsPath{701, 1299}});
  (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 3 * 86400 + 10,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.1.0.0/16"),
                   bgp::AsPath{701, 174}});
  EXPECT_EQ(live.stats().days_closed, 3u);
  EXPECT_EQ(live.stats().quiet_days, 2u);
}

TEST(UpdatePipeline, NoChangeFlushKeepsShardsAndMemos) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;  // flush only when we say so
  UpdatePipeline live{pipeline, service, options};

  std::uint64_t max_ts = 0;
  for (const UpdateMessage& u : f.archive) {
    max_ts = std::max(max_ts, u.timestamp);
    (void)live.push(u);
  }
  FlushReport first = live.drain();
  ASSERT_TRUE(first.published);
  EXPECT_EQ(first.apply.shards_rebuilt, pipeline.store().shards().size());

  // Re-announce the live day's exact routes at the same (final)
  // timestamp: the RIB, and therefore every shard digest, is unchanged.
  const int final_day = static_cast<int>((max_ts - kBase) / 86400);
  const bgp::RibSnapshot final_state = live.rib().snapshot(final_day);
  for (const bgp::RouteEntry& e : final_state.entries) {
    (void)live.push(
        {UpdateMessage::Kind::kAnnounce, max_ts, e.vp, e.prefix, e.path});
  }
  FlushReport second = live.drain();
  ASSERT_TRUE(second.published);
  EXPECT_EQ(second.apply.shards_rebuilt, 0u);
  EXPECT_EQ(second.apply.shards_kept, pipeline.store().shards().size());
  EXPECT_EQ(second.apply.memos_evicted, 0u);
  // Snapshot::build warmed every country's memo on the first flush.
  EXPECT_GT(second.apply.memos_kept, 0u);
  // Publishing still happened: the service moved to a fresh snapshot id.
  EXPECT_EQ(service.current()->meta.id, second.snapshot_id);
  EXPECT_GT(second.snapshot_id, first.snapshot_id);
}

TEST(UpdatePipeline, IngestCountersReachTheService) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 500;
  UpdatePipeline live{pipeline, service, options};

  bgp::MrtParseStats parse_stats;
  parse_stats.lines = 9000;
  parse_stats.parsed = 8990;
  parse_stats.record_malformed(bgp::ParseReason::kBadFieldCount, 1, "x");
  live.set_parse_stats(parse_stats);

  for (const UpdateMessage& u : f.archive) (void)live.push(u);
  (void)live.drain();

  const LiveStats& stats = live.stats();
  serve::IngestCounters got = service.ingest();
  EXPECT_EQ(got.updates_applied, stats.applied);
  EXPECT_EQ(got.announces, stats.announces);
  EXPECT_EQ(got.withdraws, stats.withdraws);
  EXPECT_EQ(got.spurious_withdrawals, live.rib().spurious_withdrawals());
  EXPECT_EQ(got.parse_lines, 9000u);
  EXPECT_EQ(got.parse_malformed, 1u);
  EXPECT_EQ(got.republishes, stats.publishes);
  EXPECT_GT(got.republish_seconds_sum, 0.0);
  EXPECT_GT(got.last_batch, 0u);

  // And the metrics endpoint renders them.
  std::string metrics = service.metrics_text();
  EXPECT_NE(metrics.find("georank_ingest_updates_applied_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("georank_live_republishes_total"), std::string::npos);
}

TEST(UpdatePipeline, BoundedBufferDrainsOldestEarly) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;
  options.reorder_window = ~std::uint64_t{0} / 2;  // never drain by watermark
  options.max_pending = 16;
  UpdatePipeline live{pipeline, service, options};

  for (std::size_t i = 0; i < 64; ++i) {
    (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 10 + i,
                     bgp::VpId{1, 701},
                     *bgp::Prefix::parse("10.0.0.0/16"),
                     bgp::AsPath{701, 1299}});
  }
  // The buffer never exceeds its bound; overflow went to the live table.
  EXPECT_LE(live.buffered(), 16u);
  EXPECT_EQ(live.stats().applied + live.buffered(), 64u);
  (void)live.drain();
  EXPECT_EQ(live.stats().applied, 64u);
  EXPECT_EQ(live.stats().out_of_order, 0u);
  // kDrainOldest is the default policy, and it sheds nothing.
  EXPECT_EQ(UpdatePipelineOptions{}.overflow, OverflowPolicy::kDrainOldest);
  EXPECT_EQ(live.stats().shed, 0u);
}

TEST(UpdatePipeline, ShedNewestCountsTolerantDrops) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;
  options.reorder_window = ~std::uint64_t{0} / 2;  // never drain by watermark
  options.max_pending = 16;
  options.overflow = OverflowPolicy::kShedNewest;
  UpdatePipeline live{pipeline, service, options};

  for (std::size_t i = 0; i < 64; ++i) {
    const std::optional<FlushReport> report =
        live.push({UpdateMessage::Kind::kAnnounce, kBase + 10 + i,
                   bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                   bgp::AsPath{701, 1299}});
    EXPECT_FALSE(report.has_value());
  }
  // The first 16 filled the buffer; the remaining 48 were shed — and
  // every push still consumed a sequence number (recovery depends on
  // seq == stream index, shed pushes included).
  EXPECT_EQ(live.buffered(), 16u);
  EXPECT_EQ(live.stats().shed, 48u);
  EXPECT_EQ(live.stats().pushed, 64u);
  EXPECT_EQ(live.next_seq(), 64u);
  (void)live.drain();
  EXPECT_EQ(live.stats().applied, 16u);

  // The shed counter reaches /metrics through the ingest report.
  const std::string metrics = service.metrics_text();
  EXPECT_NE(metrics.find("georank_live_shed_total 48"), std::string::npos);
}

TEST(UpdatePipeline, ShedNewestInStrictModeThrowsTyped) {
  LiveFixture f;
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;
  options.reorder_window = ~std::uint64_t{0} / 2;
  options.max_pending = 4;
  options.overflow = OverflowPolicy::kShedNewest;
  options.mode = bgp::ParseMode::kStrict;
  UpdatePipeline live{pipeline, service, options};

  for (std::size_t i = 0; i < 4; ++i) {
    (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 10 + i,
                     bgp::VpId{1, 701}, *bgp::Prefix::parse("10.0.0.0/16"),
                     bgp::AsPath{701, 1299}});
  }
  try {
    (void)live.push({UpdateMessage::Kind::kAnnounce, kBase + 99,
                     bgp::VpId{1, 701}, *bgp::Prefix::parse("10.1.0.0/16"),
                     bgp::AsPath{701, 174}});
    FAIL() << "strict overflow must throw, not silently shed";
  } catch (const bgp::UpdateReplayError& e) {
    EXPECT_EQ(e.kind(), bgp::UpdateReplayError::Kind::kBufferOverflow);
    EXPECT_EQ(e.index(), 4u);
    EXPECT_EQ(e.timestamp(), kBase + 99);
  }
}

}  // namespace
}  // namespace georank::live
