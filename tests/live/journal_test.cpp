// GRJRNL01 write-ahead journal coverage (live/journal.hpp). The
// durability contract under test: every append the journal accepted is
// recoverable after a crash, a torn tail (any prefix of the final
// record) is repaired silently on open, and anything that is NOT a
// plain torn tail raises a typed JournalError.
#include "live/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/update_stream.hpp"

namespace georank::live {
namespace {

namespace fs = std::filesystem;
using bgp::UpdateMessage;

constexpr std::uint64_t kBase = 1617235200;

struct TempDir {
  fs::path path;

  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "georank-journal-XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

UpdateMessage make_update(std::uint64_t i) {
  UpdateMessage u;
  u.kind = i % 3 == 0 ? UpdateMessage::Kind::kWithdraw
                      : UpdateMessage::Kind::kAnnounce;
  u.timestamp = kBase + i;
  u.vp = bgp::VpId{static_cast<std::uint32_t>(0x0a000001 + i),
                   static_cast<std::uint32_t>(701 + i % 5)};
  u.prefix = bgp::Prefix{static_cast<std::uint32_t>(0xc0000000 + (i << 8)),
                         static_cast<std::uint8_t>(24)};
  if (u.kind == UpdateMessage::Kind::kAnnounce) {
    u.path = bgp::AsPath{701 + static_cast<bgp::Asn>(i % 5), 1299,
                         static_cast<bgp::Asn>(64500 + i)};
    if (i % 7 == 0) u.path.mark_as_set();
  }
  return u;
}


fs::path only_segment(const fs::path& dir) {
  fs::path found;
  std::size_t count = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".grjrnl") {
      found = e.path();
      ++count;
    }
  }
  EXPECT_EQ(count, 1u);
  return found;
}

TEST(UpdateJournal, RoundTripsRecordsAcrossReopen) {
  TempDir dir;
  constexpr std::uint64_t kCount = 40;
  {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    EXPECT_EQ(journal.next_seq(), 0u);
    for (std::uint64_t i = 0; i < kCount; ++i) {
      journal.append(i, make_update(i));
    }
    journal.sync();
    EXPECT_EQ(journal.stats().appended, kCount);
  }
  UpdateJournal reopened{UpdateJournalOptions{dir.path.string()}};
  EXPECT_EQ(reopened.next_seq(), kCount);
  EXPECT_EQ(reopened.stats().records, kCount);
  EXPECT_EQ(reopened.stats().truncated_bytes, 0u);

  const std::vector<JournalRecord> records = reopened.read_all();
  ASSERT_EQ(records.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_TRUE(records[i].update == make_update(i)) << "seq " << i;
  }
  // The reopened journal keeps appending where the first left off.
  reopened.append(kCount, make_update(kCount));
  EXPECT_EQ(reopened.next_seq(), kCount + 1);
}

TEST(UpdateJournal, EveryTornTailPrefixIsRepairedOnOpen) {
  // One segment, K whole records. Cut the file to EVERY length that
  // leaves the final record incomplete: each cut must reopen as K-1
  // records with exactly the cut bytes counted as truncated, and the
  // journal must accept a fresh append at seq K-1 afterwards.
  TempDir dir;
  constexpr std::uint64_t kCount = 6;
  {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    for (std::uint64_t i = 0; i < kCount; ++i) {
      journal.append(i, make_update(i));
    }
  }
  const fs::path segment = only_segment(dir.path);
  std::ifstream is{segment, std::ios::binary};
  std::string pristine{std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>()};
  is.close();

  // Find where the final record starts: reopen sizes after truncating
  // to K-1 records equals the pristine size minus the last record, so
  // derive it by cutting one byte and letting the repair tell us.
  std::size_t last_start = 0;
  {
    fs::resize_file(segment, pristine.size() - 1);
    UpdateJournal probe{UpdateJournalOptions{dir.path.string()}};
    EXPECT_EQ(probe.stats().records, kCount - 1);
    last_start = pristine.size() - 1 -
                 static_cast<std::size_t>(probe.stats().truncated_bytes);
  }
  ASSERT_GT(last_start, 16u);
  ASSERT_LT(last_start, pristine.size());

  for (std::size_t cut = last_start; cut < pristine.size(); ++cut) {
    std::ofstream os{segment, std::ios::binary | std::ios::trunc};
    os.write(pristine.data(), static_cast<std::streamsize>(cut));
    os.close();

    UpdateJournal repaired{UpdateJournalOptions{dir.path.string()}};
    EXPECT_EQ(repaired.stats().records, kCount - 1) << "cut " << cut;
    EXPECT_EQ(repaired.stats().truncated_bytes, cut - last_start)
        << "cut " << cut;
    EXPECT_EQ(repaired.next_seq(), kCount - 1) << "cut " << cut;
    repaired.append(kCount - 1, make_update(kCount - 1));
    EXPECT_EQ(repaired.read_all().size(), kCount) << "cut " << cut;
  }
}

TEST(UpdateJournal, TruncationIntoTheHeaderDropsTheSegment) {
  TempDir dir;
  {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    journal.append(0, make_update(0));
  }
  const fs::path segment = only_segment(dir.path);
  fs::resize_file(segment, 7);  // not even a whole magic
  UpdateJournal repaired{UpdateJournalOptions{dir.path.string()}};
  EXPECT_EQ(repaired.stats().records, 0u);
  EXPECT_EQ(repaired.stats().truncated_bytes, 7u);
  EXPECT_EQ(repaired.next_seq(), 0u);
  repaired.append(0, make_update(0));
  EXPECT_EQ(repaired.read_all().size(), 1u);
}

TEST(UpdateJournal, RotatesSegmentsAtTheByteBound) {
  TempDir dir;
  UpdateJournalOptions options{dir.path.string()};
  options.segment_bytes = 256;  // a few records per segment
  constexpr std::uint64_t kCount = 50;
  {
    UpdateJournal journal{options};
    for (std::uint64_t i = 0; i < kCount; ++i) {
      journal.append(i, make_update(i));
    }
    EXPECT_GT(journal.stats().segments, 3u);
  }
  UpdateJournal reopened{options};
  EXPECT_EQ(reopened.stats().records, kCount);
  EXPECT_GT(reopened.stats().segments, 3u);
  const std::vector<JournalRecord> records = reopened.read_all();
  ASSERT_EQ(records.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(records[i].seq, i);
  }
}

TEST(UpdateJournal, FsyncPolicyDrivesTheSyncCounter) {
  TempDir dir;
  UpdateJournalOptions each{dir.path.string() + "/each"};
  each.fsync = FsyncPolicy::kEachRecord;
  UpdateJournal paranoid{each};
  for (std::uint64_t i = 0; i < 5; ++i) paranoid.append(i, make_update(i));
  EXPECT_EQ(paranoid.stats().syncs, 5u);

  UpdateJournalOptions lazy{dir.path.string() + "/never"};
  UpdateJournal relaxed{lazy};
  for (std::uint64_t i = 0; i < 5; ++i) relaxed.append(i, make_update(i));
  EXPECT_EQ(relaxed.stats().syncs, 0u);
  relaxed.sync();
  EXPECT_EQ(relaxed.stats().syncs, 1u);
}

TEST(UpdateJournal, DropSegmentsBelowSparesTheActiveSegment) {
  TempDir dir;
  UpdateJournalOptions options{dir.path.string()};
  options.segment_bytes = 256;
  UpdateJournal journal{options};
  constexpr std::uint64_t kCount = 50;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    journal.append(i, make_update(i));
  }
  const std::uint64_t before = journal.stats().segments;
  ASSERT_GT(before, 3u);

  const std::size_t dropped = journal.drop_segments_below(kCount / 2);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(journal.stats().segments, before - dropped);

  // Whatever survives is a contiguous run ending at the newest record.
  const std::vector<JournalRecord> records = journal.read_all();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().seq, kCount - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
  // Dropping everything never drops the active segment.
  (void)journal.drop_segments_below(~std::uint64_t{0});
  EXPECT_EQ(journal.stats().segments, 1u);
}

TEST(UpdateJournal, ReopensAfterCheckpointGc) {
  // After GC the first surviving record's seq anchors the sequence: a
  // journal that begins past zero must reopen cleanly (this is the
  // normal post-checkpoint restart state).
  TempDir dir;
  UpdateJournalOptions options{dir.path.string()};
  options.segment_bytes = 256;
  std::uint64_t surviving_first = 0;
  {
    UpdateJournal journal{options};
    for (std::uint64_t i = 0; i < 50; ++i) journal.append(i, make_update(i));
    (void)journal.drop_segments_below(25);
    surviving_first = journal.read_all().front().seq;
    ASSERT_GT(surviving_first, 0u);
  }
  UpdateJournal reopened{options};
  EXPECT_EQ(reopened.next_seq(), 50u);
  EXPECT_EQ(reopened.read_all().front().seq, surviving_first);
  reopened.append(50, make_update(50));
}

TEST(UpdateJournal, AppendWithWrongSequenceThrowsTyped) {
  TempDir dir;
  UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
  journal.append(0, make_update(0));
  try {
    journal.append(2, make_update(2));
    FAIL() << "gap in append sequence must throw";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalErrorKind::kBadSequence);
  }
}

TEST(UpdateJournal, ForeignAndFutureSegmentsAreRejectedTyped) {
  TempDir dir;
  const fs::path bogus = dir.path / "seg-00000000000000000000.grjrnl";
  {
    std::ofstream os{bogus, std::ios::binary};
    os << "NOTJRNL0" << std::string(64, '\0');
  }
  try {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    FAIL() << "foreign magic must throw";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalErrorKind::kBadMagic);
  }

  {
    std::ofstream os{bogus, std::ios::binary | std::ios::trunc};
    os << "GRJRNL01";
    const char version[4] = {99, 0, 0, 0};  // little-endian 99
    os.write(version, 4);
    os.write("\0\0\0\0", 4);
  }
  try {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    FAIL() << "future version must throw";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalErrorKind::kBadVersion);
  }
}

TEST(UpdateJournal, MidJournalCorruptionIsNotATornTail) {
  // A damaged record in a NON-final segment can never be crash debris
  // (the next segment proves writes continued past it); refusing to
  // skip it is what keeps replay loss-free.
  TempDir dir;
  UpdateJournalOptions options{dir.path.string()};
  options.segment_bytes = 256;
  std::vector<std::string> segments;
  {
    UpdateJournal journal{options};
    for (std::uint64_t i = 0; i < 50; ++i) journal.append(i, make_update(i));
    ASSERT_GT(journal.stats().segments, 2u);
  }
  for (const fs::directory_entry& e : fs::directory_iterator(dir.path)) {
    segments.push_back(e.path().string());
  }
  std::sort(segments.begin(), segments.end());
  fs::resize_file(segments.front(), fs::file_size(segments.front()) - 3);
  try {
    UpdateJournal journal{options};
    FAIL() << "mid-journal corruption must throw";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalErrorKind::kIo);
  }
}

TEST(UpdateJournal, ScanJournalIsReadOnly) {
  TempDir dir;
  constexpr std::uint64_t kCount = 8;
  {
    UpdateJournal journal{UpdateJournalOptions{dir.path.string()}};
    for (std::uint64_t i = 0; i < kCount; ++i) {
      journal.append(i, make_update(i));
    }
  }
  const fs::path segment = only_segment(dir.path);
  const std::uintmax_t pristine_size = fs::file_size(segment);
  fs::resize_file(segment, pristine_size - 5);  // tear the tail

  const JournalScan scan = scan_journal(dir.path.string());
  EXPECT_EQ(scan.records, kCount - 1);
  EXPECT_EQ(scan.next_seq, kCount - 1);
  EXPECT_EQ(scan.segments, 1u);
  EXPECT_GT(scan.torn_bytes, 0u);
  // The scan repaired nothing: the torn bytes are still on disk.
  EXPECT_EQ(fs::file_size(segment), pristine_size - 5);

  EXPECT_THROW((void)scan_journal((dir.path / "nope").string()), JournalError);
}

}  // namespace
}  // namespace georank::live
