// Crash-recovery proof for DESIGN.md §4g: kill the live pipeline at
// scheduled fault points (bgp::make_crash_schedule), recover from
// checkpoint + journal, finish the stream, and byte-compare the final
// GRSNAP01 against an uninterrupted run. recover() replays through the
// normal push path, so every drain/shed/flush decision is re-made
// identically — the comparison is exact, not approximate.
#include "live/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/fault_inject.hpp"
#include "bgp/update_stream.hpp"
#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "io/snapshot_codec.hpp"
#include "live/journal.hpp"
#include "live/update_pipeline.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

namespace georank::live {
namespace {

namespace fs = std::filesystem;
using bgp::UpdateMessage;

struct TempDir {
  fs::path path;

  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "georank-recover-XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct RecoveryFixture {
  gen::World world;
  std::vector<UpdateMessage> archive;

  explicit RecoveryFixture(std::uint64_t seed = 17, int days = 3)
      : world(gen::InternetGenerator{gen::mini_world_spec(seed)}.generate()) {
    gen::NoiseSpec noise;
    archive =
        bgp::collection_to_updates(gen::RibGenerator{world, noise, 5}.generate(days));
  }

  core::Pipeline make_pipeline() const {
    core::PipelineConfig cfg;
    cfg.sanitizer.clique = world.clique;
    cfg.sanitizer.route_server_asns = world.route_servers;
    return core::Pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, cfg};
  }
};

serve::SnapshotMeta fixed_meta() {
  serve::SnapshotMeta meta;
  meta.id = 42;
  meta.created_unix = 1234567890;
  meta.label = "recovery";
  return meta;
}

/// Final GRSNAP01 bytes (and stats) of an uninterrupted run.
struct ReferenceRun {
  std::string bytes;
  LiveStats stats;
};

ReferenceRun uninterrupted(const RecoveryFixture& f,
                           const UpdatePipelineOptions& options) {
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, options};
  for (const UpdateMessage& u : f.archive) (void)live.push(u);
  (void)live.drain();
  return ReferenceRun{
      io::encode_snapshot(serve::Snapshot::build(pipeline, fixed_meta())),
      live.stats()};
}

UpdateJournalOptions journal_options(const TempDir& dir) {
  UpdateJournalOptions options{(dir.path / "journal").string()};
  options.segment_bytes = 64u << 10;  // force rotation (and checkpoint GC)
  return options;
}

/// Runs the doomed process up to `point`, abandons it, recovers a fresh
/// pipeline from the same journal dir, finishes the stream, and returns
/// the final snapshot bytes plus the recovered pipeline's stats.
ReferenceRun crash_and_recover(const RecoveryFixture& f,
                               const UpdatePipelineOptions& options,
                               const bgp::ProcessFaultPoint& point,
                               std::uint64_t checkpoint_every) {
  TempDir dir;
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  {
    // The doomed run. Leaving this scope without drain() or a final
    // checkpoint IS the kill: only what the journal and checkpoint
    // already persisted survives.
    core::Pipeline pipeline = f.make_pipeline();
    serve::RankingService service;
    UpdatePipeline live{pipeline, service, options};
    UpdateJournal journal{journal_options(dir)};
    live.set_journal(&journal);
    live.set_checkpoint(ckpt, checkpoint_every);
    for (std::size_t i = 0; i < point.update_index; ++i) {
      (void)live.push(f.archive[i]);
    }
    switch (point.kind) {
      case bgp::ProcessFaultKind::kAfterJournalAppend:
        // The crash lands between the WAL append and the buffer absorb:
        // journal the record directly, never push it.
        journal.append(journal.next_seq(), f.archive[point.update_index]);
        break;
      case bgp::ProcessFaultKind::kAfterPush:
        (void)live.push(f.archive[point.update_index]);
        break;
      case bgp::ProcessFaultKind::kAfterCheckpoint:
        (void)live.push(f.archive[point.update_index]);
        live.write_checkpoint();
        break;
    }
  }

  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, options};
  UpdateJournal journal{journal_options(dir)};
  const RecoveryResult recovery = recover(live, journal, ckpt);
  EXPECT_EQ(recovery.next_seq, journal.next_seq());
  EXPECT_EQ(recovery.next_seq, live.next_seq());
  // Every journaled record made it back in (from the checkpoint or the
  // replay), so the stream resumes at exactly the next input index —
  // seq IS the stream index, shed pushes included.
  live.set_journal(&journal);
  live.set_checkpoint(ckpt, checkpoint_every);
  for (std::size_t i = recovery.next_seq; i < f.archive.size(); ++i) {
    (void)live.push(f.archive[i]);
  }
  (void)live.drain();
  return ReferenceRun{
      io::encode_snapshot(serve::Snapshot::build(pipeline, fixed_meta())),
      live.stats()};
}

TEST(Recovery, KillAtEveryScheduledPointIsBitIdentical) {
  RecoveryFixture f;
  ASSERT_GT(f.archive.size(), 1000u);
  UpdatePipelineOptions options;
  options.flush_batch = 257;      // flush boundaries land mid-burst
  options.reorder_window = 3600;  // keep a nonempty pending buffer
  const ReferenceRun want = uninterrupted(f, options);

  bgp::ProcessFaultSpec spec;
  spec.seed = 7;
  spec.points = 6;
  spec.stream_length = f.archive.size();
  const std::vector<bgp::ProcessFaultPoint> schedule =
      bgp::make_crash_schedule(spec);
  ASSERT_EQ(schedule.size(), 6u);

  for (const bgp::ProcessFaultPoint& point : schedule) {
    const ReferenceRun got = crash_and_recover(f, options, point, 263);
    EXPECT_TRUE(got.bytes == want.bytes)
        << "diverged after crash at update " << point.update_index << " ("
        << bgp::to_string(point.kind) << ")";
    // The recovered run's cumulative accounting continues the doomed
    // run's, so totals match the uninterrupted stream too.
    EXPECT_EQ(got.stats.pushed, want.stats.pushed);
    EXPECT_EQ(got.stats.applied, want.stats.applied);
    EXPECT_EQ(got.stats.publishes, want.stats.publishes);
    EXPECT_EQ(got.stats.days_closed, want.stats.days_closed);
  }
}

TEST(Recovery, ShedPolicyRemakesTheSameDecisionsAfterRecovery) {
  // kShedNewest drops are pure functions of buffer state, which the
  // checkpoint restores exactly — so a crash mid-shed-storm recovers to
  // the same final state AND the same shed count.
  RecoveryFixture f;
  UpdatePipelineOptions options;
  options.flush_batch = 1 << 20;
  options.reorder_window = ~std::uint64_t{0} / 2;  // never drain early
  options.max_pending = 16;
  options.overflow = OverflowPolicy::kShedNewest;
  const ReferenceRun want = uninterrupted(f, options);
  ASSERT_GT(want.stats.shed, 0u);

  bgp::ProcessFaultPoint point;
  point.update_index = f.archive.size() / 2;
  point.kind = bgp::ProcessFaultKind::kAfterPush;
  const ReferenceRun got = crash_and_recover(f, options, point, 101);
  EXPECT_TRUE(got.bytes == want.bytes);
  EXPECT_EQ(got.stats.shed, want.stats.shed);
}

TEST(Recovery, CorruptCheckpointFallsBackToFullReplay) {
  RecoveryFixture f;
  UpdatePipelineOptions options;
  options.flush_batch = 257;
  const std::size_t half = f.archive.size() / 2;

  TempDir dir;
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  {
    // Journal-only doomed run: no checkpoints means no segment GC, so
    // the journal still holds the complete history the fallback needs.
    core::Pipeline pipeline = f.make_pipeline();
    serve::RankingService service;
    UpdatePipeline live{pipeline, service, options};
    UpdateJournal journal{journal_options(dir)};
    live.set_journal(&journal);
    for (std::size_t i = 0; i < half; ++i) (void)live.push(f.archive[i]);
  }
  {
    std::ofstream os{ckpt, std::ios::binary};
    os << "GRCKPT01 but the rest is garbage";
  }

  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, options};
  UpdateJournal journal{journal_options(dir)};
  const RecoveryResult recovery = recover(live, journal, ckpt);
  EXPECT_FALSE(recovery.checkpoint_loaded);
  EXPECT_TRUE(recovery.checkpoint_discarded);
  EXPECT_EQ(recovery.replay_from, 0u);
  EXPECT_EQ(recovery.records_replayed, half);

  live.set_journal(&journal);
  for (std::size_t i = half; i < f.archive.size(); ++i) {
    (void)live.push(f.archive[i]);
  }
  (void)live.drain();
  const ReferenceRun want = uninterrupted(f, options);
  EXPECT_TRUE(io::encode_snapshot(serve::Snapshot::build(
                  pipeline, fixed_meta())) == want.bytes);
}

TEST(Recovery, MissingCheckpointReplaysFromZero) {
  RecoveryFixture f;
  TempDir dir;
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  {
    core::Pipeline pipeline = f.make_pipeline();
    serve::RankingService service;
    UpdatePipeline live{pipeline, service, UpdatePipelineOptions{}};
    UpdateJournal journal{journal_options(dir)};
    live.set_journal(&journal);
    for (std::size_t i = 0; i < 100; ++i) (void)live.push(f.archive[i]);
  }
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, UpdatePipelineOptions{}};
  UpdateJournal journal{journal_options(dir)};
  const RecoveryResult recovery = recover(live, journal, ckpt);
  EXPECT_FALSE(recovery.checkpoint_loaded);
  EXPECT_FALSE(recovery.checkpoint_discarded);
  EXPECT_EQ(recovery.replay_from, 0u);
  EXPECT_EQ(recovery.records_replayed, 100u);
  EXPECT_EQ(recovery.next_seq, 100u);
}

TEST(Recovery, GcedJournalWithoutCheckpointIsRefusedTyped) {
  // Checkpoint GC dropped the journal's early segments; without the
  // checkpoint that covered them, replay cannot reconstruct history —
  // recover() must refuse rather than silently resume from a gap.
  RecoveryFixture f;
  TempDir dir;
  UpdateJournalOptions options{(dir.path / "journal").string()};
  options.segment_bytes = 1u << 10;
  {
    UpdateJournal journal{options};
    for (std::size_t i = 0; i < 200; ++i) {
      journal.append(i, f.archive[i]);
    }
    ASSERT_GT(journal.drop_segments_below(150), 0u);
  }
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipeline live{pipeline, service, UpdatePipelineOptions{}};
  UpdateJournal journal{options};
  try {
    (void)recover(live, journal, (dir.path / "nope.grckpt").string());
    FAIL() << "recover() accepted a GC'd journal with no checkpoint";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalErrorKind::kBadSequence);
  }
}

TEST(Recovery, CheckpointPublishIsAtomicAndRoundTrips) {
  RecoveryFixture f;
  TempDir dir;
  const std::string ckpt = (dir.path / "checkpoint.grckpt").string();
  core::Pipeline pipeline = f.make_pipeline();
  serve::RankingService service;
  UpdatePipelineOptions options;
  options.reorder_window = 3600;  // leave something in the buffer
  UpdatePipeline live{pipeline, service, options};
  UpdateJournal journal{journal_options(dir)};
  live.set_journal(&journal);
  live.set_checkpoint(ckpt, 0);  // manual checkpoints only
  for (std::size_t i = 0; i < 500; ++i) (void)live.push(f.archive[i]);
  live.write_checkpoint();

  // Atomic publish: the tmp staging file never outlives the rename.
  EXPECT_TRUE(fs::exists(ckpt));
  EXPECT_FALSE(fs::exists(ckpt + ".tmp"));

  // The codec is a bit-exact round trip, pending buffer included.
  const Checkpoint captured = live.make_checkpoint();
  EXPECT_FALSE(captured.pending.empty());
  const std::string bytes = encode_checkpoint(captured);
  EXPECT_TRUE(encode_checkpoint(decode_checkpoint(bytes)) == bytes);
}

}  // namespace
}  // namespace georank::live
